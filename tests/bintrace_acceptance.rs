//! Acceptance test for the real-ELF trace frontend: record a
//! 10M-instruction `pif-bintrace` walk of a **real binary** — this very
//! test executable — and assert the sampled estimator agrees with the
//! exhaustive run over it.
//!
//! The synthetic-workload differential (`sampled_acceptance.rs`) proves
//! the estimator on generated control flow; this one proves it on a
//! compiler-produced code layout with tens of thousands of recovered
//! basic blocks, where block sizes, branch densities, and working-set
//! shape are whatever rustc emitted, not what a generator chose.
//!
//! `#[ignore]`d like its sibling (minutes of release-mode work); CI's
//! scheduled `acceptance` job runs it with `--ignored --release` and
//! uploads `target/bintrace_sampled_vs_exhaustive.json`.

use std::io::{BufReader, BufWriter, Write as _};
use std::sync::Arc;
use std::time::Instant;

use pif_repro::bintrace::cfg::Cfg;
use pif_repro::bintrace::elf::ElfImage;
use pif_repro::bintrace::walk::{WalkConfig, Walker};
use pif_repro::prelude::*;
use pif_repro::sim::sampling::{sample_trace_file, SamplingPlan};

const INSTRUCTIONS: usize = 10_000_000;

/// Records the 10M-record walk of the current test executable once per
/// process (both assertions below share it).
fn trace_path() -> std::path::PathBuf {
    static PATH: std::sync::OnceLock<std::path::PathBuf> = std::sync::OnceLock::new();
    PATH.get_or_init(|| {
        let exe = std::env::current_exe().expect("test executable path");
        let bytes = std::fs::read(&exe).expect("test executable readable");
        let image = ElfImage::parse(&bytes).expect("test executable is a loadable ELF64");
        let cfg = Arc::new(Cfg::recover(&image));
        println!(
            "recorded binary: {} ({} blocks, {} static instrs)",
            exe.display(),
            cfg.block_count(),
            cfg.insn_count(),
        );
        assert!(
            cfg.block_count() > 1_000,
            "a real test binary recovers a large CFG, got {} blocks",
            cfg.block_count()
        );
        let walker = Walker::new(cfg, WalkConfig::default()).expect("binary has walkable code");

        let path = std::env::temp_dir().join(format!(
            "pif-bintrace-acceptance-{}-{}.pift",
            INSTRUCTIONS,
            std::process::id()
        ));
        let file = std::fs::File::create(&path).unwrap();
        let mut writer = TraceWriter::new(BufWriter::new(file), "current-exe").unwrap();
        let mut io_err = None;
        for instr in walker.take(INSTRUCTIONS) {
            if io_err.is_none() {
                io_err = writer.push(&instr).err();
            }
        }
        assert!(io_err.is_none(), "{io_err:?}");
        writer.finish().unwrap();
        path
    })
    .clone()
}

struct Comparison {
    prefetcher: &'static str,
    exhaustive_uipc: f64,
    exhaustive_s: f64,
    sampled_mean: f64,
    sampled_ci95: f64,
    rel_err: f64,
    sampled_s: f64,
}

fn compare<P: Prefetcher>(
    engine: &Engine,
    path: &std::path::Path,
    plan: &SamplingPlan,
    mut mk: impl FnMut() -> P,
) -> Comparison {
    let t0 = Instant::now();
    let file = std::fs::File::open(path).unwrap();
    let mut source = TraceReader::open(BufReader::new(file)).unwrap().instrs();
    let ex = engine.run(
        &mut source,
        mk(),
        RunOptions::new().warmup(INSTRUCTIONS * 3 / 10),
    );
    assert!(source.error().is_none());
    let exhaustive_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let sampled = sample_trace_file(engine.config(), plan, path, |_| mk()).unwrap();
    let sampled_s = t0.elapsed().as_secs_f64();
    let uipc = sampled.uipc();
    Comparison {
        prefetcher: ex.prefetcher,
        exhaustive_uipc: ex.timing.uipc(),
        exhaustive_s,
        sampled_mean: uipc.mean,
        sampled_ci95: uipc.ci95,
        rel_err: uipc.relative_error(),
        sampled_s,
    }
}

fn write_artifact(rows: &[Comparison], plan: &SamplingPlan) {
    let dir = std::path::Path::new("target");
    std::fs::create_dir_all(dir).ok();
    let mut f = std::fs::File::create(dir.join("bintrace_sampled_vs_exhaustive.json")).unwrap();
    let mut s = String::from("{\n  \"schema\": \"pif-bintrace-acceptance/v1\",\n");
    s.push_str(&format!("  \"instructions\": {INSTRUCTIONS},\n"));
    s.push_str(&format!(
        "  \"plan\": {{\"samples\": {}, \"warmup_instrs\": {}, \"measure_instrs\": {}, \"burn_in\": {}}},\n",
        plan.samples, plan.warmup_instrs, plan.measure_instrs, plan.burn_in
    ));
    s.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"prefetcher\": \"{}\", \"exhaustive_uipc\": {:.6}, \"exhaustive_s\": {:.3}, \
             \"sampled_uipc\": {:.6}, \"sampled_ci95\": {:.6}, \"rel_err\": {:.6}, \
             \"sampled_s\": {:.3}, \"within_ci95\": {}}}{}\n",
            r.prefetcher,
            r.exhaustive_uipc,
            r.exhaustive_s,
            r.sampled_mean,
            r.sampled_ci95,
            r.rel_err,
            r.sampled_s,
            (r.sampled_mean - r.exhaustive_uipc).abs() <= r.sampled_ci95,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    f.write_all(s.as_bytes()).unwrap();
}

/// The differential: at the accuracy plan, every prefetcher's sampled
/// UIPC over the real-binary walk lands within its own reported ci95 of
/// the exhaustive value, with < 5% relative error — the same bar the
/// synthetic-workload acceptance test sets.
#[test]
#[ignore = "acceptance-scale (10M-instruction ELF walk); run with --ignored --release"]
fn sampled_agrees_with_exhaustive_on_a_real_binary_walk() {
    let engine = Engine::new(EngineConfig::paper_default());
    let path = trace_path();
    let plan = SamplingPlan::random(28, 0x9a3f, 150_000, 40_000).with_burn_in(8);
    let rows = vec![
        compare(&engine, &path, &plan, || NoPrefetcher),
        compare(&engine, &path, &plan, || {
            Pif::new(PifConfig::paper_default())
        }),
        compare(&engine, &path, &plan, || Tifs::new(Default::default())),
    ];
    write_artifact(&rows, &plan);
    let mut failures = Vec::new();
    for r in &rows {
        let delta = (r.sampled_mean - r.exhaustive_uipc).abs();
        println!(
            "{:<14} exhaustive={:.4} sampled={:.4} ±{:.4} (rel {:.1}%) [{:.2}s vs {:.2}s]",
            r.prefetcher,
            r.exhaustive_uipc,
            r.sampled_mean,
            r.sampled_ci95,
            100.0 * r.rel_err,
            r.exhaustive_s,
            r.sampled_s,
        );
        if delta > r.sampled_ci95 {
            failures.push(format!(
                "{}: |{:.4} - {:.4}| = {delta:.4} > ci95 {:.4}",
                r.prefetcher, r.sampled_mean, r.exhaustive_uipc, r.sampled_ci95
            ));
        }
        if r.rel_err >= 0.05 {
            failures.push(format!("{}: rel_err {:.3} >= 5%", r.prefetcher, r.rel_err));
        }
    }
    assert!(failures.is_empty(), "{failures:#?}");
    let _ = std::fs::remove_file(trace_path());
}
