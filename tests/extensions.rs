//! Integration: the extension features work end-to-end — shared predictor
//! storage across cores, trace serialization, and the CMP driver with
//! confidence intervals.

use std::sync::Arc;

use pif_core::shared::{SharedPif, SharedPifStorage};
use pif_core::{Pif, PifConfig};
use pif_sim::multicore::run_cmp;
use pif_sim::{Engine, EngineConfig, NoPrefetcher, RunOptions};
use pif_workloads::{io, WorkloadProfile};

#[test]
fn serialized_traces_drive_identical_simulations() {
    let trace = WorkloadProfile::oltp_oracle().scaled(0.2).generate(100_000);
    let bytes = io::encode_trace(&trace);
    let restored = io::decode_trace(&bytes).expect("round trip");
    let engine = Engine::new(EngineConfig::paper_default());
    let a = engine.run(
        trace.instrs().iter().copied(),
        Pif::new(PifConfig::paper_default()),
        RunOptions::new(),
    );
    let b = engine.run(
        restored.instrs().iter().copied(),
        Pif::new(PifConfig::paper_default()),
        RunOptions::new(),
    );
    assert_eq!(a.fetch, b.fetch);
    assert_eq!(a.timing, b.timing);
}

#[test]
fn shared_storage_helps_cores_running_the_same_binary() {
    // Four cores execute different threads of one binary. With private
    // storage each core learns alone; with shared storage they pool what
    // they learn. On short traces the shared configuration must not lose
    // (and typically wins on) coverage.
    let profile = WorkloadProfile::web_apache().scaled(0.3);
    let per_core = 150_000;
    let engine = EngineConfig::paper_default();
    let trace_for = |core: usize| {
        profile
            .generate_with_execution_seed(per_core, core as u64)
            .instrs()
            .to_vec()
    };

    let private = run_cmp(&engine, 4, 0, trace_for, |_| {
        Pif::new(PifConfig::paper_default())
    });
    let storage = Arc::new(SharedPifStorage::new(PifConfig::paper_default()));
    let shared = run_cmp(&engine, 4, 0, trace_for, |_| {
        SharedPif::attach(Arc::clone(&storage))
    });
    assert!(
        shared.miss_coverage().mean >= private.miss_coverage().mean - 0.05,
        "shared {} vs private {}",
        shared.miss_coverage().mean,
        private.miss_coverage().mean
    );
}

#[test]
fn cmp_confidence_intervals_are_reported() {
    let profile = WorkloadProfile::dss_qry2().scaled(0.2);
    let report = run_cmp(
        &EngineConfig::paper_default(),
        8,
        20_000,
        |core| {
            profile
                .generate_with_execution_seed(80_000, core as u64)
                .instrs()
                .to_vec()
        },
        |_| NoPrefetcher,
    );
    let uipc = report.uipc();
    assert!(uipc.mean > 0.0);
    assert!(uipc.ci95 >= 0.0);
    // Independent executions of the same binary should agree reasonably
    // well (the paper targets ±5%; we allow more at this tiny scale).
    assert!(
        uipc.relative_error() < 0.25,
        "relative error {}",
        uipc.relative_error()
    );
}

#[test]
fn execution_seeds_share_the_code_image() {
    let profile = WorkloadProfile::oltp_db2().scaled(0.2);
    let a = profile.generate_with_execution_seed(30_000, 0);
    let b = profile.generate_with_execution_seed(30_000, 1);
    assert_ne!(a.instrs(), b.instrs(), "different interleavings");
    // Same binary: block sets overlap heavily.
    let blocks = |t: &pif_workloads::Trace| {
        let mut v: Vec<u64> = t.instrs().iter().map(|i| i.pc.block().number()).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let (ba, bb) = (blocks(&a), blocks(&b));
    let common = ba.iter().filter(|x| bb.binary_search(x).is_ok()).count();
    assert!(
        common as f64 / ba.len() as f64 > 0.4,
        "only {common}/{} blocks shared",
        ba.len()
    );
}
