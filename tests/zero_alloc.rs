//! Proof that the engine's steady-state loop is allocation-free.
//!
//! A counting global allocator measures the number of heap allocations a
//! full engine run performs. Running the *same* cyclic workload for N and
//! 2N laps must allocate (nearly) the same number of times: everything the
//! engine allocates — caches, scratch buffers, predictor tables, queues —
//! is set up during construction and the first laps, after which the
//! per-retirement path runs out of fixed-capacity storage.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use pif_core::{Pif, PifConfig};
use pif_sim::{Engine, EngineConfig, NoPrefetcher, RunOptions};
use pif_types::{Address, RetiredInstr, TrapLevel};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The allocation counter is process-global, so the two tests in this
/// binary must not overlap: each takes this lock for its whole body
/// (trace generation included) to keep the other's allocations out of
/// its measurement windows.
static SERIAL: Mutex<()> = Mutex::new(());

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// A thrashing sweep (footprint 2× the L1-I) repeated `laps` times.
fn sweep_trace(laps: u64) -> Vec<RetiredInstr> {
    let mut v = Vec::new();
    for _ in 0..laps {
        for blk in 0..2048u64 {
            for i in 0..16 {
                v.push(RetiredInstr::simple(
                    Address::new(blk * 64 + i * 4),
                    TrapLevel::Tl0,
                ));
            }
        }
    }
    v
}

#[test]
fn engine_steady_state_is_allocation_free_without_prefetcher() {
    let _serial = SERIAL.lock().unwrap();
    let engine = Engine::new(EngineConfig::paper_default());
    let short = sweep_trace(4);
    let long = sweep_trace(8);
    let a_short = allocs_during(|| {
        engine.run(short.iter().copied(), NoPrefetcher, RunOptions::new());
    });
    let a_long = allocs_during(|| {
        engine.run(long.iter().copied(), NoPrefetcher, RunOptions::new());
    });
    assert_eq!(
        a_short, a_long,
        "engine allocations must not scale with trace length \
         ({a_short} for 4 laps vs {a_long} for 8 laps)"
    );
}

#[test]
fn engine_steady_state_is_allocation_free_with_pif() {
    let _serial = SERIAL.lock().unwrap();
    let engine = Engine::new(EngineConfig::paper_default());
    let short = sweep_trace(4);
    let long = sweep_trace(8);
    let a_short = allocs_during(|| {
        engine.run(
            short.iter().copied(),
            Pif::new(PifConfig::paper_default()),
            RunOptions::new(),
        );
    });
    let a_long = allocs_during(|| {
        engine.run(
            long.iter().copied(),
            Pif::new(PifConfig::paper_default()),
            RunOptions::new(),
        );
    });
    // PIF's end-of-run stream-lifetime log (`completed`) legitimately
    // grows amortized with the number of replaced streams; everything on
    // the per-retirement path is allocation-free. 131k extra instructions
    // may therefore add at most a handful of amortized Vec doublings.
    let extra = a_long.saturating_sub(a_short);
    assert!(
        extra <= 8,
        "steady-state PIF run allocated {extra} times over 4 extra laps \
         ({a_short} vs {a_long})"
    );
}
