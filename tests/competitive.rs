//! Integration: the Figure 10 competitive ordering holds end-to-end on a
//! pressured workload — PIF beats TIFS beats next-line, and nothing beats
//! the perfect cache.

use pif_baselines::{NextLinePrefetcher, PerfectICache, Tifs};
use pif_core::{Pif, PifConfig};
use pif_sim::{Engine, EngineConfig, NoPrefetcher, RunOptions};
use pif_workloads::WorkloadProfile;

const INSTRS: usize = 600_000;
const WARMUP: usize = 250_000;

fn scenario() -> (Engine, pif_workloads::Trace) {
    let engine = Engine::new(EngineConfig::paper_default());
    let trace = WorkloadProfile::web_zeus().scaled(0.4).generate(INSTRS);
    (engine, trace)
}

#[test]
fn pif_beats_next_line_and_approaches_perfect() {
    let (engine, trace) = scenario();
    let base = engine.run(
        trace.instrs().iter().copied(),
        NoPrefetcher,
        RunOptions::new().warmup(WARMUP),
    );
    let nl = engine.run(
        trace.instrs().iter().copied(),
        NextLinePrefetcher::aggressive(),
        RunOptions::new().warmup(WARMUP),
    );
    let pif = engine.run(
        trace.instrs().iter().copied(),
        Pif::new(PifConfig::paper_default()),
        RunOptions::new().warmup(WARMUP),
    );
    let perfect = engine.run(
        trace.instrs().iter().copied(),
        PerfectICache,
        RunOptions::new().warmup(WARMUP),
    );

    assert!(
        base.fetch.demand_misses > 2_000,
        "baseline needs cache pressure, got {} misses",
        base.fetch.demand_misses
    );
    assert!(
        pif.miss_coverage() > nl.miss_coverage(),
        "PIF {} vs next-line {}",
        pif.miss_coverage(),
        nl.miss_coverage()
    );
    let pif_speedup = pif.speedup_over(&base);
    let perfect_speedup = perfect.speedup_over(&base);
    assert!(pif_speedup > 1.02, "PIF speedup {pif_speedup}");
    assert!(
        perfect_speedup >= pif_speedup - 0.01,
        "perfect {perfect_speedup} vs PIF {pif_speedup}"
    );
    // The paper's headline: PIF converges toward the perfect cache. At
    // this scale PIF covers ~90% of misses; the uncovered residue is
    // dominated by cold misses, which the perfect cache also eliminates,
    // so the speedup ratio saturates around 0.78 regardless of how large
    // the PIF structures are made (measured by sweeping history/SAB
    // sizes). Assert the measured behavior with margin.
    assert!(
        pif.miss_coverage() > 0.85,
        "PIF coverage {} should eliminate most misses",
        pif.miss_coverage()
    );
    assert!(
        pif_speedup / perfect_speedup > 0.72,
        "PIF ({pif_speedup}) should recover most of perfect ({perfect_speedup})"
    );
}

#[test]
fn pif_matches_or_beats_tifs() {
    let (engine, trace) = scenario();
    let tifs = engine.run(
        trace.instrs().iter().copied(),
        Tifs::unbounded(),
        RunOptions::new().warmup(WARMUP),
    );
    let pif = engine.run(
        trace.instrs().iter().copied(),
        Pif::new(PifConfig::paper_default()),
        RunOptions::new().warmup(WARMUP),
    );
    assert!(
        pif.miss_coverage() >= tifs.miss_coverage() - 0.02,
        "PIF {} vs TIFS {}",
        pif.miss_coverage(),
        tifs.miss_coverage()
    );
}

#[test]
fn demand_access_counts_are_prefetcher_independent() {
    // The front end is deterministic: every prefetcher sees the same
    // demand access stream; only hit/miss outcomes differ.
    let (engine, trace) = scenario();
    let base = engine.run(
        trace.instrs().iter().copied(),
        NoPrefetcher,
        RunOptions::new().warmup(WARMUP),
    );
    let nl = engine.run(
        trace.instrs().iter().copied(),
        NextLinePrefetcher::aggressive(),
        RunOptions::new().warmup(WARMUP),
    );
    let pif = engine.run(
        trace.instrs().iter().copied(),
        Pif::new(PifConfig::paper_default()),
        RunOptions::new().warmup(WARMUP),
    );
    assert_eq!(base.fetch.demand_accesses, nl.fetch.demand_accesses);
    assert_eq!(base.fetch.demand_accesses, pif.fetch.demand_accesses);
    assert_eq!(base.frontend.mispredicts, pif.frontend.mispredicts);
}

#[test]
fn prefetched_runs_report_consistent_miss_accounting() {
    let (engine, trace) = scenario();
    let base = engine.run(
        trace.instrs().iter().copied(),
        NoPrefetcher,
        RunOptions::new().warmup(WARMUP),
    );
    let pif = engine.run(
        trace.instrs().iter().copied(),
        Pif::new(PifConfig::paper_default()),
        RunOptions::new().warmup(WARMUP),
    );
    // Baseline-equivalent misses (remaining + covered) should be within a
    // modest factor of the true baseline's misses.
    let b = base.fetch.demand_misses as f64;
    let e = pif.fetch.baseline_equivalent_misses() as f64;
    assert!(
        (e / b - 1.0).abs() < 0.4,
        "baseline misses {b} vs PIF baseline-equivalent {e}"
    );
}
