//! End-to-end tests of the trace subsystem: golden byte fixtures for
//! cross-version compatibility, out-of-core simulation through
//! `Engine::run_source`, and the v2 compression target.
//!
//! The golden fixtures pin the *byte layouts* of both format versions; if
//! either codec changes its on-disk format, these tests fail before any
//! archived trace out in the world stops decoding. The fixture bytes are
//! reproduced by `cargo run -p pif-trace --example dump_golden`.

use std::io::{BufReader, BufWriter};

use pif_repro::prelude::*;
use pif_repro::trace::{scan_info, TraceDecodeError};
use pif_repro::workloads::io::{decode_trace, encode_trace};
use pif_repro::workloads::Trace;
use pif_types::{BranchInfo, BranchKind};

fn golden_instrs() -> Vec<RetiredInstr> {
    vec![
        RetiredInstr::simple(Address::new(0x40_0000), TrapLevel::Tl0),
        RetiredInstr::branch(
            Address::new(0x40_0004),
            TrapLevel::Tl0,
            BranchInfo {
                kind: BranchKind::Call,
                taken: true,
                taken_target: Address::new(0x40_1000),
                fall_through: Address::new(0x40_0008),
            },
        ),
        RetiredInstr::simple(Address::new(0x40_1000), TrapLevel::Tl1),
    ]
}

/// The v1 encoding of [`golden_instrs`], laid out by hand from the spec:
/// magic, version 1, name, u64 count, then 10- or 28-byte records.
fn golden_v1_bytes() -> Vec<u8> {
    let mut b = Vec::new();
    b.extend_from_slice(b"PIFT");
    b.extend_from_slice(&1u32.to_le_bytes());
    b.extend_from_slice(&6u32.to_le_bytes());
    b.extend_from_slice(b"golden");
    b.extend_from_slice(&3u64.to_le_bytes());
    // Record 1: simple @ 0x40_0000, TL0.
    b.extend_from_slice(&0x40_0000u64.to_le_bytes());
    b.extend_from_slice(&[0, 0]);
    // Record 2: taken call @ 0x40_0004 → 0x40_1000, fall 0x40_0008.
    b.extend_from_slice(&0x40_0004u64.to_le_bytes());
    b.extend_from_slice(&[0, 1, 2, 1]);
    b.extend_from_slice(&0x40_1000u64.to_le_bytes());
    b.extend_from_slice(&0x40_0008u64.to_le_bytes());
    // Record 3: simple @ 0x40_1000, TL1.
    b.extend_from_slice(&0x40_1000u64.to_le_bytes());
    b.extend_from_slice(&[1, 0]);
    b
}

/// The v2 encoding of [`golden_instrs`]: one chunk of three
/// delta/varint records plus the terminator.
const GOLDEN_V2_BYTES: &[u8] = &[
    0x50, 0x49, 0x46, 0x54, // magic "PIFT"
    0x02, 0x00, 0x00, 0x00, // version 2
    0x06, 0x00, 0x00, 0x00, // name length
    0x67, 0x6f, 0x6c, 0x64, 0x65, 0x6e, // "golden"
    0x03, 0x00, 0x00, 0x00, // chunk: 3 records
    0x0c, 0x00, 0x00, 0x00, // chunk: 12 payload bytes
    0x00, 0x80, 0x80, 0x80, 0x04, // simple, Δpc = +0x40_0000
    0xd4, 0x08, 0xf8, 0x3f, // taken call, Δpc = +4, Δtarget, implicit fall
    0x01, 0xf8, 0x3f, // simple TL1, Δpc
    0x00, 0x00, 0x00, 0x00, // terminator marker
    0x08, 0x00, 0x00, 0x00, // terminator payload length
    0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // total = 3
];

#[test]
fn golden_v1_fixture_still_decodes_everywhere() {
    let bytes = golden_v1_bytes();
    let expected = Trace::new("golden", golden_instrs());

    // The legacy slice decoder.
    assert_eq!(decode_trace(&bytes).unwrap(), expected);
    // The v1 encoder still produces exactly this layout.
    assert_eq!(encode_trace(&expected).as_ref(), bytes.as_slice());
    // The new streaming reader handles v1 transparently.
    let (name, instrs) = pif_repro::trace::decode(&bytes).unwrap();
    assert_eq!(name, "golden");
    assert_eq!(instrs, golden_instrs());
    let mut reader = TraceReader::open(bytes.as_slice()).unwrap();
    assert_eq!(reader.version(), 1);
    assert_eq!(reader.declared_count(), Some(3));
    assert_eq!(
        reader.by_ref().collect::<Result<Vec<_>, _>>().unwrap(),
        golden_instrs()
    );
}

#[test]
fn golden_v2_fixture_is_byte_stable() {
    assert_eq!(
        pif_repro::trace::encode_v2("golden", &golden_instrs()),
        GOLDEN_V2_BYTES,
        "v2 byte layout changed — archived traces would stop decoding"
    );
    let (name, instrs) = pif_repro::trace::decode(GOLDEN_V2_BYTES).unwrap();
    assert_eq!(name, "golden");
    assert_eq!(instrs, golden_instrs());
    let info = scan_info(GOLDEN_V2_BYTES).unwrap();
    assert_eq!((info.records, info.chunks), (3, 1));
    assert_eq!(info.bytes, GOLDEN_V2_BYTES.len() as u64);
}

#[test]
fn generated_v1_traces_decode_via_streaming_reader() {
    let trace = WorkloadProfile::dss_qry17().scaled(0.05).generate(20_000);
    let v1 = encode_trace(&trace);
    let mut source = TraceReader::open(v1.as_ref()).unwrap().instrs();
    let streamed: Vec<_> = source.by_ref().collect();
    assert!(source.error().is_none());
    assert_eq!(streamed.as_slice(), trace.instrs());
}

#[test]
fn v2_is_at_least_2x_smaller_than_v1_on_oltp_db2() {
    let trace = WorkloadProfile::oltp_db2().scaled(0.2).generate(100_000);
    let v1 = encode_trace(&trace);
    let v2 = pif_repro::trace::encode_v2(trace.name(), trace.instrs());
    assert!(
        v2.len() * 2 <= v1.len(),
        "v2 {} bytes vs v1 {} bytes ({:.2}x)",
        v2.len(),
        v1.len(),
        v1.len() as f64 / v2.len() as f64
    );
}

/// Record a workload to disk streaming, then simulate it out of core:
/// generator → TraceWriter → file → TraceReader → Engine::run_source,
/// with no full `Vec<RetiredInstr>` on either side of the disk.
#[test]
fn record_to_disk_then_simulate_out_of_core() {
    let instructions = 120_000;
    let profile = WorkloadProfile::oltp_db2().scaled(0.1);
    let path = std::env::temp_dir().join(format!("pif-trace-e2e-{}.pift", std::process::id()));

    // Record: stream the generator straight into the compressed writer.
    let file = std::fs::File::create(&path).unwrap();
    let mut writer = TraceWriter::new(BufWriter::new(file), profile.name()).unwrap();
    let mut io_err = None;
    profile.generate_into(instructions, |instr| {
        if io_err.is_none() {
            io_err = writer.push(&instr).err();
        }
    });
    assert!(io_err.is_none(), "{io_err:?}");
    assert_eq!(writer.records_written(), instructions as u64);
    writer.finish().unwrap();

    // Replay from disk, one chunk at a time.
    let file = std::fs::File::open(&path).unwrap();
    let mut source = TraceReader::open(BufReader::new(file)).unwrap().instrs();
    let engine = Engine::new(EngineConfig::paper_default());
    let from_disk = engine.run(
        &mut source,
        Pif::new(PifConfig::paper_default()),
        RunOptions::new(),
    );
    assert!(source.error().is_none());

    // Reference: the fully materialized path.
    let reference = engine.run(
        profile.generate(instructions).instrs().iter().copied(),
        Pif::new(PifConfig::paper_default()),
        RunOptions::new(),
    );
    assert_eq!(from_disk.fetch, reference.fetch);
    assert_eq!(from_disk.timing, reference.timing);
    assert_eq!(from_disk.frontend, reference.frontend);

    std::fs::remove_file(&path).ok();
}

/// The acceptance-scale run: a 10M-instruction OLTP-DB2 trace recorded
/// to disk and simulated via `run_source` without materializing it.
/// Ignored by default (minutes of work); run with `cargo test -q
/// --test trace_subsystem -- --ignored`.
#[test]
#[ignore = "acceptance-scale (10M instructions); run explicitly"]
fn ten_million_instruction_oltp_trace_out_of_core() {
    let instructions = 10_000_000;
    let profile = WorkloadProfile::oltp_db2();
    let path = std::env::temp_dir().join(format!("pif-trace-10m-{}.pift", std::process::id()));
    let file = std::fs::File::create(&path).unwrap();
    let mut writer = TraceWriter::new(BufWriter::new(file), profile.name()).unwrap();
    let mut io_err = None;
    profile.generate_into(instructions, |instr| {
        if io_err.is_none() {
            io_err = writer.push(&instr).err();
        }
    });
    assert!(io_err.is_none(), "{io_err:?}");
    writer.finish().unwrap();

    let bytes = std::fs::metadata(&path).unwrap().len();
    assert!(
        bytes < instructions as u64 * 13 / 2,
        "{bytes} bytes is not ≥2x smaller than a v1 encoding"
    );

    let file = std::fs::File::open(&path).unwrap();
    let mut source = TraceReader::open(BufReader::new(file)).unwrap().instrs();
    let report = Engine::new(EngineConfig::paper_default()).run(
        &mut source,
        Pif::new(PifConfig::paper_default()),
        RunOptions::new(),
    );
    assert!(source.error().is_none());
    assert_eq!(report.frontend.instructions, instructions as u64);
    std::fs::remove_file(&path).ok();
}

#[test]
fn run_cmp_sources_streams_per_core_without_materializing() {
    use pif_repro::sim::multicore::{run_cmp, run_cmp_sources};
    let profile = WorkloadProfile::web_apache().scaled(0.05);
    let config = EngineConfig::paper_default();
    let streamed = run_cmp_sources(
        &config,
        4,
        1_000,
        |core| profile.stream_with_execution_seed(15_000, core as u64),
        |_| NoPrefetcher,
    );
    let materialized = run_cmp(
        &config,
        4,
        1_000,
        |core| {
            profile
                .generate_with_execution_seed(15_000, core as u64)
                .instrs()
                .to_vec()
        },
        |_| NoPrefetcher,
    );
    assert_eq!(streamed.per_core.len(), 4);
    for (a, b) in streamed.per_core.iter().zip(&materialized.per_core) {
        assert_eq!(a.fetch, b.fetch);
        assert_eq!(a.timing, b.timing);
    }
}

#[test]
fn v1_to_v2_conversion_preserves_records() {
    let trace = WorkloadProfile::web_zeus().scaled(0.05).generate(10_000);
    let v1 = encode_trace(&trace);

    // Stream-convert exactly as `tracectl convert` does.
    let mut reader = TraceReader::open(v1.as_ref()).unwrap();
    let mut writer = TraceWriter::new(Vec::new(), reader.name()).unwrap();
    for result in reader.by_ref() {
        writer.push(&result.unwrap()).unwrap();
    }
    let v2 = writer.finish().unwrap();

    let (name, instrs) = pif_repro::trace::decode(&v2).unwrap();
    assert_eq!(name, trace.name());
    assert_eq!(instrs.as_slice(), trace.instrs());
    assert!(v2.len() * 2 < v1.len(), "conversion should shrink the file");
}

#[test]
fn corrupt_files_error_cleanly_not_loudly() {
    // An empty file, a bad magic, and an absurd v1 count all yield typed
    // errors (comparable without matches! boilerplate).
    assert!(pif_repro::trace::decode(&[]).is_err());
    assert_eq!(
        TraceReader::open(&b"XXXX\x01\x00\x00\x00"[..]).err(),
        Some(TraceDecodeError::BadMagic)
    );
    let mut absurd = Vec::new();
    absurd.extend_from_slice(b"PIFT");
    absurd.extend_from_slice(&1u32.to_le_bytes());
    absurd.extend_from_slice(&0u32.to_le_bytes());
    absurd.extend_from_slice(&u64::MAX.to_le_bytes());
    assert_eq!(
        decode_trace(&absurd).err(),
        Some(TraceDecodeError::Corrupt("record count exceeds payload"))
    );
}
