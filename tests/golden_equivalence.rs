//! Golden-equivalence guard for the engine's zero-allocation refactor.
//!
//! The flat (structure-of-arrays) `SetAssocCache` layout, the packed
//! per-set replacement state, and the sink-style prefetcher interfaces are
//! pure performance refactors: every `RunReport` counter must be
//! bit-identical to the pre-refactor engine. The constants below were
//! captured from the original implementation (PR 2 tree, commit
//! `7b07f0d`) on two deterministic traces — a synthetic OLTP profile and a
//! thrashing sweep — for every prefetcher. Any behavioural drift in the
//! cache, replacement, prefetch-queue, SAB, or event-dispatch paths shows
//! up here as a counter mismatch.

use pif_baselines::{DiscontinuityPrefetcher, NextLinePrefetcher, PerfectICache, Tifs};
use pif_core::{Pif, PifConfig};
use pif_sim::{Engine, EngineConfig, NoPrefetcher, RunOptions, RunReport};
use pif_types::{Address, RetiredInstr, TrapLevel};
use pif_workloads::WorkloadProfile;

/// Canonical one-line rendering of every counter in a [`RunReport`].
fn fingerprint(r: &RunReport) -> String {
    format!(
        "{}|fetch:{},{},{},{},{},{}|pf:{},{},{},{}|fe:{},{},{},{}|t:{},{},{},{},{}|l2:{},{}",
        r.prefetcher,
        r.fetch.demand_accesses,
        r.fetch.wrong_path_accesses,
        r.fetch.demand_misses,
        r.fetch.wrong_path_misses,
        r.fetch.covered_by_prefetch,
        r.fetch.partial_covered,
        r.prefetch.issued,
        r.prefetch.dropped_resident,
        r.prefetch.useful,
        r.prefetch.unused_evicted,
        r.frontend.instructions,
        r.frontend.branches,
        r.frontend.mispredicts,
        r.frontend.wrong_path_accesses,
        r.timing.instructions,
        r.timing.cycles,
        r.timing.base_cycles,
        r.timing.fetch_stall_cycles,
        r.timing.mispredict_cycles,
        r.l2_hits,
        r.l2_misses,
    )
}

fn sweep_trace(blocks: u64, reps: u64) -> Vec<RetiredInstr> {
    let mut v = Vec::new();
    for _ in 0..reps {
        for blk in 0..blocks {
            for i in 0..16 {
                v.push(RetiredInstr::simple(
                    Address::new(blk * 64 + i * 4),
                    TrapLevel::Tl0,
                ));
            }
        }
    }
    v
}

fn check(trace: &[RetiredInstr], warmup: usize, golden: &[&str]) {
    let engine = Engine::new(EngineConfig::paper_default());
    let runs: Vec<RunReport> = vec![
        engine.run(
            trace.iter().copied(),
            NoPrefetcher,
            RunOptions::new().warmup(warmup),
        ),
        engine.run(
            trace.iter().copied(),
            Pif::new(PifConfig::paper_default()),
            RunOptions::new().warmup(warmup),
        ),
        engine.run(
            trace.iter().copied(),
            NextLinePrefetcher::aggressive(),
            RunOptions::new().warmup(warmup),
        ),
        engine.run(
            trace.iter().copied(),
            Tifs::new(Default::default()),
            RunOptions::new().warmup(warmup),
        ),
        engine.run(
            trace.iter().copied(),
            DiscontinuityPrefetcher::paper_scale(),
            RunOptions::new().warmup(warmup),
        ),
        engine.run(
            trace.iter().copied(),
            PerfectICache,
            RunOptions::new().warmup(warmup),
        ),
    ];
    assert_eq!(runs.len(), golden.len());
    for (run, expected) in runs.iter().zip(golden) {
        assert_eq!(
            fingerprint(run),
            *expected,
            "RunReport drifted from the pre-refactor engine for {}",
            run.prefetcher
        );
    }
}

/// OLTP-style workload, warmed: the paper's steady-state methodology.
#[test]
fn golden_counters_oltp_trace() {
    let trace = WorkloadProfile::oltp_db2().scaled(0.05).generate(120_000);
    check(
        trace.instrs(),
        36_000,
        &[
            "None|fetch:11575,1408,457,244,0,0|pf:0,0,0,0|fe:120000,8645,762,2716|t:84096,86798,65875,16159,4764|l2:469,1123",
            "PIF|fetch:11575,1408,172,182,355,10|pf:607,3909,365,242|fe:120000,8645,762,2716|t:84096,83040,65875,12401,4764|l2:852,1123",
            "Next-Line|fetch:11575,1408,94,79,441,81|pf:1180,6060,522,658|fe:120000,8645,762,2716|t:84096,74830,65875,4191,4764|l2:1389,1552",
            "TIFS|fetch:11575,1408,200,182,321,22|pf:584,961,343,241|fe:120000,8645,762,2716|t:84096,83458,65875,12819,4764|l2:774,1123",
            "Discontinuity|fetch:11575,1408,47,189,350,125|pf:879,50239,475,404|fe:120000,8645,762,2716|t:84096,76298,65875,5659,4764|l2:1282,1240",
            "Perfect|fetch:11575,1408,0,0,0,0|pf:0,0,0,0|fe:120000,8645,762,2716|t:84096,70639,65875,0,4764|l2:0,0",
        ],
    );
}

/// Branch-free thrashing sweep (2048 blocks > 1024-block L1-I), cold.
#[test]
fn golden_counters_sweep_trace() {
    let trace = sweep_trace(2048, 3);
    check(
        &trace,
        0,
        &[
            "None|fetch:6144,0,6144,0,0,0|pf:0,0,0,0|fe:98304,0,0,0|t:98304,298188,77004,221184,0|l2:4096,2048",
            "PIF|fetch:6144,0,2049,0,4094,1|pf:4131,1,4095,30|fe:98304,0,0,0|t:98304,242908,77004,165903,0|l2:4132,2048",
            "Next-Line|fetch:6144,0,3,0,6132,9|pf:6165,42987,6141,22|fe:98304,0,0,0|t:98304,77246,77004,242,0|l2:4112,2056",
            "TIFS|fetch:6144,0,2049,0,4094,1|pf:4107,0,4095,10|fe:98304,0,0,0|t:98304,242908,77004,165903,0|l2:4108,2048",
            "Discontinuity|fetch:6144,0,2,0,4090,2052|pf:6151,6143,6142,4|fe:98304,0,0,0|t:98304,140242,77004,63237,0|l2:4103,2050",
            "Perfect|fetch:6144,0,0,0,0,0|pf:0,0,0,0|fe:98304,0,0,0|t:98304,77004,77004,0,0|l2:0,0",
        ],
    );
}

/// The deprecated slice/streaming wrappers stay equivalent to the
/// collapsed [`Engine::run`] entry point on golden workloads.
#[test]
#[allow(deprecated)]
fn golden_deprecated_wrappers_match_run() {
    let trace = WorkloadProfile::oltp_db2().scaled(0.05).generate(60_000);
    let engine = Engine::new(EngineConfig::paper_default());
    let direct = engine.run(
        trace.instrs().iter().copied(),
        Pif::new(PifConfig::paper_default()),
        RunOptions::new().warmup(20_000),
    );
    let sliced =
        engine.run_instrs_warmup(trace.instrs(), Pif::new(PifConfig::paper_default()), 20_000);
    let streamed = engine.run_source_warmup(
        trace.instrs().iter().copied(),
        Pif::new(PifConfig::paper_default()),
        20_000,
    );
    assert_eq!(fingerprint(&direct), fingerprint(&sliced));
    assert_eq!(fingerprint(&direct), fingerprint(&streamed));
}
