//! Integration: the PIF mechanism's end-to-end properties on real
//! workload traces — compaction effectiveness, per-trap-level recording,
//! and the analyzer/engine consistency.

use pif_core::analysis::{analyze_regions, PifAnalyzer};
use pif_core::{Pif, PifConfig, SpatialCompactor, TemporalCompactor};
use pif_sim::{Engine, EngineConfig, ICacheConfig, NoPrefetcher, RunOptions};
use pif_types::{RegionGeometry, TrapLevel};
use pif_workloads::WorkloadProfile;

#[test]
fn compaction_shrinks_history_substantially() {
    // §3: recording spatial regions instead of raw block addresses should
    // compact the stream by several x on real code.
    let trace = WorkloadProfile::oltp_db2().scaled(0.2).generate(200_000);
    let geometry = RegionGeometry::paper_default();
    let mut spatial = SpatialCompactor::new(geometry);
    let mut temporal = TemporalCompactor::new(4);
    let mut raw_blocks = 0u64;
    let mut last = None;
    for instr in trace.instrs() {
        if instr.trap_level != TrapLevel::Tl0 {
            continue;
        }
        let b = instr.pc.block();
        if last != Some(b) {
            raw_blocks += 1;
            last = Some(b);
        }
        if let Some(rec) = spatial.observe(b, true) {
            temporal.filter(rec);
        }
    }
    let records = temporal.forwarded();
    assert!(records > 0);
    let ratio = raw_blocks as f64 / records as f64;
    assert!(
        ratio > 2.0,
        "compaction ratio {ratio:.2} too low ({raw_blocks} blocks -> {records} records)"
    );
}

#[test]
fn pif_records_both_trap_levels_on_server_traces() {
    let trace = WorkloadProfile::web_apache().scaled(0.2).generate(200_000);
    let engine = Engine::new(EngineConfig::paper_default());
    // Run PIF through the engine; then inspect structure sizes via a
    // fresh analyzer pass (the engine consumes the prefetcher).
    let report = engine.run(
        trace.instrs().iter().copied(),
        Pif::new(PifConfig::paper_default()),
        RunOptions::new(),
    );
    assert!(report.prefetch.issued > 0);

    let mut pif = Pif::new(PifConfig::paper_default());
    let mut harness = pif_sim::PrefetcherHarness::new(ICacheConfig::paper_default());
    for instr in trace.instrs() {
        harness.drive(|ctx| {
            use pif_sim::Prefetcher;
            pif.on_retire(instr, false, ctx);
        });
    }
    assert!(
        pif.history_len(TrapLevel::Tl0) > 100,
        "TL0 history recorded"
    );
    assert!(pif.history_len(TrapLevel::Tl1) > 10, "TL1 history recorded");
}

#[test]
fn analyzer_coverage_tracks_engine_coverage() {
    // The trace-study analyzer and the execution engine measure different
    // things (predictions vs prefetch outcomes) but must agree on the
    // big picture for the same design point.
    let trace = WorkloadProfile::dss_qry17().scaled(0.3).generate(400_000);
    let engine = Engine::new(EngineConfig::paper_default());
    let engine_cov = engine
        .run(
            trace.instrs().iter().copied(),
            Pif::new(PifConfig::paper_default()),
            RunOptions::new().warmup(150_000),
        )
        .miss_coverage();
    let analyzer_cov = PifAnalyzer::new(PifConfig::paper_default(), ICacheConfig::paper_default())
        .analyze(trace.instrs(), 150_000)
        .miss_coverage(TrapLevel::Tl0);
    assert!(
        (engine_cov - analyzer_cov).abs() < 0.25,
        "engine {engine_cov} vs analyzer {analyzer_cov}"
    );
}

#[test]
fn regions_on_real_traces_match_paper_characterization() {
    // Fig. 3's headline: >50% of regions access more than one block.
    let trace = WorkloadProfile::oltp_oracle().scaled(0.3).generate(300_000);
    let report = analyze_regions(trace.instrs(), RegionGeometry::new(8, 23).unwrap());
    assert!(report.total_regions > 200);
    let multi = 1.0 - report.density_fraction(1, 1);
    assert!(multi > 0.5, "multi-block region fraction {multi}");
}

#[test]
fn bigger_history_never_hurts_on_real_traces() {
    let trace = WorkloadProfile::web_zeus().scaled(0.3).generate(400_000);
    let mut small_cfg = PifConfig::paper_default();
    small_cfg.history_capacity = 512;
    let small = PifAnalyzer::new(small_cfg, ICacheConfig::paper_default())
        .analyze(trace.instrs(), 150_000)
        .overall_predictor_coverage();
    let large = PifAnalyzer::new(PifConfig::paper_default(), ICacheConfig::paper_default())
        .analyze(trace.instrs(), 150_000)
        .overall_predictor_coverage();
    assert!(
        large >= small - 0.02,
        "32K-region history {large} vs 512-region {small}"
    );
}

#[test]
fn no_prefetch_baseline_sees_server_class_stalls() {
    // Sanity: the synthetic workloads reproduce the motivating problem —
    // significant fetch-stall time without prefetching.
    let trace = WorkloadProfile::web_apache().scaled(0.4).generate(500_000);
    let report = Engine::new(EngineConfig::paper_default()).run(
        trace.instrs().iter().copied(),
        NoPrefetcher,
        RunOptions::new().warmup(200_000),
    );
    assert!(
        report.timing.fetch_stall_fraction() > 0.15,
        "fetch stalls {:.3} too low to motivate prefetching",
        report.timing.fetch_stall_fraction()
    );
}
