//! Soak test for the `pifd` service stack (ignored by default; the
//! weekly acceptance CI job runs it via `cargo test --release -- --ignored`).
//!
//! Twelve concurrent clients hammer one daemon over TCP with a rotating
//! mix of specs against a deliberately tiny job queue, so submissions
//! constantly hit backpressure, and against a shared result cache that
//! some specs are pre-warmed into — mixed cached/uncached traffic. The
//! acceptance criteria from the ISSUE: no deadlocks (every client
//! finishes), the queue high-water mark never exceeds its bound, and
//! every returned report validates and is byte-identical to a direct
//! `run_spec` of the same job.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::AtomicBool;

use pif_lab::json::Json;
use pif_lab::protocol::{serve, Request, Response};
use pif_lab::report::validate_report;
use pif_lab::service::{Service, ServiceConfig};
use pif_lab::{registry, run_spec, ResultCache, RunOptions, Scale, SweepSpec};

const CLIENTS: usize = 12;
const ROUNDS: usize = 3;
const QUEUE_DEPTH: usize = 4;

fn specs() -> Vec<SweepSpec> {
    vec![
        registry::table1(),
        registry::fig9_history(),
        registry::fig10(),
    ]
}

fn submit(stream: &TcpStream, spec: &str) -> Response {
    let mut writer = stream.try_clone().unwrap();
    let request = Request::Submit {
        id: 0,
        spec: spec.to_string(),
        scale: Scale::tiny(),
        smoke: true,
        deadline_ms: None,
    };
    writer.write_all(request.to_line().as_bytes()).unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    BufReader::new(stream.try_clone().unwrap())
        .read_line(&mut line)
        .unwrap();
    Response::parse(&line).unwrap()
}

#[test]
#[ignore = "soak test: run via the weekly acceptance job (cargo test -- --ignored)"]
fn daemon_survives_concurrent_mixed_load() {
    let cache_dir = std::env::temp_dir().join(format!("pifd-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);

    // Reference bytes for every spec in the mix, computed without any
    // cache or daemon involvement.
    let reference: Vec<(String, String)> = specs()
        .iter()
        .map(|spec| {
            let report = run_spec(
                spec,
                &RunOptions::new()
                    .scale(Scale::tiny())
                    .threads(2)
                    .smoke(true),
            );
            (spec.name.to_string(), report.to_json().unwrap())
        })
        .collect();

    // Pre-warm ONE spec into the cache so the daemon sees cached traffic
    // from its very first job, not only after the first round.
    {
        let cache = ResultCache::open(&cache_dir).unwrap();
        run_spec(
            &registry::table1(),
            &RunOptions::new()
                .scale(Scale::tiny())
                .threads(2)
                .smoke(true)
                .cache(&cache),
        );
    }

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let service = Service::start(ServiceConfig {
        queue_depth: QUEUE_DEPTH,
        threads: 2,
        cache_dir: Some(cache_dir.clone()),
        ..ServiceConfig::default()
    });
    let shutdown = AtomicBool::new(false);

    std::thread::scope(|s| {
        let server = s.spawn(|| serve(listener, &service, &shutdown).unwrap());

        let reference = &reference;
        let clients: Vec<_> = (0..CLIENTS)
            .map(|client| {
                s.spawn(move || {
                    let stream = TcpStream::connect(addr).unwrap();
                    let mut cached_seen = 0u64;
                    for round in 0..ROUNDS {
                        // Rotate the mix per client so cached and
                        // uncached jobs interleave in the queue.
                        let (name, want) = &reference[(client + round) % reference.len()];
                        match submit(&stream, name) {
                            Response::Report {
                                spec,
                                cached_cells,
                                json,
                                ..
                            } => {
                                assert_eq!(&spec, name);
                                validate_report(&Json::parse(&json).unwrap()).unwrap();
                                assert_eq!(
                                    &json, want,
                                    "client {client} round {round}: {name} bytes drifted"
                                );
                                cached_seen += cached_cells;
                            }
                            other => panic!("client {client}: unexpected {other:?}"),
                        }
                    }
                    cached_seen
                })
            })
            .collect();

        let cached_total: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
        assert!(
            cached_total > 0,
            "mixed load must include cache replays (table1 was pre-warmed)"
        );

        let stream = TcpStream::connect(addr).unwrap();
        match submit(&stream, "table1") {
            Response::Report { .. } => {}
            other => panic!("post-soak submit failed: {other:?}"),
        }
        let mut writer = stream.try_clone().unwrap();
        writer
            .write_all(Request::Shutdown.to_line().as_bytes())
            .unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        assert_eq!(Response::parse(&line).unwrap(), Response::ShuttingDown);
        server.join().unwrap();
    });

    let stats = service.shutdown();
    let expected = (CLIENTS * ROUNDS + 1) as u64;
    assert_eq!(stats.submitted, expected, "no submission lost");
    assert_eq!(stats.completed, expected, "no job stuck in the queue");
    assert!(
        stats.max_queue_depth <= QUEUE_DEPTH,
        "backpressure bound violated: {} > {QUEUE_DEPTH}",
        stats.max_queue_depth
    );

    let _ = std::fs::remove_dir_all(&cache_dir);
}
