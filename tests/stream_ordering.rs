//! Integration: the paper's §2 hierarchy of stream predictability holds
//! end-to-end — recording closer to retirement (and separating trap
//! levels) never hurts, and the miss stream is the worst observation
//! point.

use pif_sim::predictor_eval::{evaluate_stream_coverage_warmup, TemporalPredictorConfig};
use pif_sim::EngineConfig;
use pif_workloads::WorkloadProfile;

fn coverage_for(profile: WorkloadProfile) -> pif_sim::predictor_eval::StreamCoverageReport {
    let trace = profile.scaled(0.3).generate(400_000);
    evaluate_stream_coverage_warmup(
        &EngineConfig::paper_default(),
        TemporalPredictorConfig::default(),
        trace.instrs(),
        150_000,
    )
}

#[test]
fn retire_streams_dominate_miss_streams() {
    // Aggregate across two workload classes to damp small-trace noise.
    for profile in [WorkloadProfile::oltp_db2(), WorkloadProfile::web_apache()] {
        let name = profile.name().to_string();
        let r = coverage_for(profile);
        assert!(
            r.correct_path_misses > 500,
            "{name}: too few misses ({}) for a meaningful test",
            r.correct_path_misses
        );
        // Retire-order streams must beat the cache-filtered miss stream.
        assert!(
            r.retire >= r.miss - 0.01,
            "{name}: retire {} vs miss {}",
            r.retire,
            r.miss
        );
        // Separating trap levels never hurts materially.
        assert!(
            r.retire_sep >= r.retire - 0.01,
            "{name}: retire_sep {} vs retire {}",
            r.retire_sep,
            r.retire
        );
    }
}

#[test]
fn all_coverages_are_probabilities() {
    let r = coverage_for(WorkloadProfile::dss_qry17());
    for v in [r.miss, r.access, r.retire, r.retire_sep] {
        assert!((0.0..=1.0).contains(&v), "coverage out of range: {v}");
    }
}

#[test]
fn deeper_replay_windows_never_hurt_retire_coverage() {
    let trace = WorkloadProfile::oltp_oracle().scaled(0.3).generate(300_000);
    let engine = EngineConfig::paper_default();
    let small = evaluate_stream_coverage_warmup(
        &engine,
        TemporalPredictorConfig {
            window: 32,
            miss_window: 8,
            pool: 8,
            history_capacity: None,
        },
        trace.instrs(),
        100_000,
    );
    let large = evaluate_stream_coverage_warmup(
        &engine,
        TemporalPredictorConfig::default(),
        trace.instrs(),
        100_000,
    );
    assert!(
        large.retire >= small.retire - 0.02,
        "deep window {} vs shallow {}",
        large.retire,
        small.retire
    );
}
