//! Acceptance tests for the sampled-simulation subsystem: the sampled
//! estimator must agree with the exhaustive run it replaces, and be
//! dramatically cheaper.
//!
//! Both tests are `#[ignore]`d (minutes of release-mode work over a
//! 10M-instruction trace); CI's scheduled `acceptance` job runs them with
//! `cargo test --release -- --ignored` and uploads the comparison
//! artifact written by `differential_sampled_vs_exhaustive_all_prefetchers`.
//!
//! Methodology (see `pif_sim::sampling`): seeded-random windows,
//! per-sample functional warmup, checkpoint-warmed L2, continuous
//! predictor warming across windows, burn-in of the coldest leading
//! windows. Two plans are exercised:
//!
//! * the **accuracy plan** (28 × (150k + 40k), burn-in 8) — the
//!   differential test: sampled UIPC within its own reported ci95 of the
//!   exhaustive value for all 6 prefetchers, and relative error < 5%;
//! * the **efficiency plan** (30 × (30k + 10k)) — the speed test:
//!   ≥ 5× faster wall-clock than exhaustive while the estimate still
//!   lands within its own ci95.

use std::io::{BufReader, BufWriter, Write as _};
use std::time::Instant;

use pif_lab::sampled::sample_trace_file_parallel;
use pif_lab::Pool;
use pif_repro::prelude::*;
use pif_sim::sampling::{sample_trace_file, SamplingPlan, WarmStrategy};

const INSTRUCTIONS: usize = 10_000_000;

/// Records the 10M-instruction OLTP-DB2 trace once per process. Both
/// tests run concurrently in the same binary, so generation is guarded
/// by a `OnceLock` — a bare `path.exists()` check would let the second
/// test read a half-written file.
fn trace_path() -> std::path::PathBuf {
    static PATH: std::sync::OnceLock<std::path::PathBuf> = std::sync::OnceLock::new();
    PATH.get_or_init(|| {
        let path = std::env::temp_dir().join(format!(
            "pif-sampled-acceptance-{}-{}.pift",
            INSTRUCTIONS,
            std::process::id()
        ));
        let profile = WorkloadProfile::oltp_db2();
        let file = std::fs::File::create(&path).unwrap();
        let mut writer = TraceWriter::new(BufWriter::new(file), profile.name()).unwrap();
        let mut io_err = None;
        profile.generate_into(INSTRUCTIONS, |instr| {
            if io_err.is_none() {
                io_err = writer.push(&instr).err();
            }
        });
        assert!(io_err.is_none(), "{io_err:?}");
        writer.finish().unwrap();
        path
    })
    .clone()
}

fn exhaustive(
    engine: &Engine,
    path: &std::path::Path,
    prefetcher: impl Prefetcher,
) -> (RunReport, f64) {
    let t0 = Instant::now();
    let file = std::fs::File::open(path).unwrap();
    let mut source = TraceReader::open(BufReader::new(file)).unwrap().instrs();
    let report = engine.run(
        &mut source,
        prefetcher,
        RunOptions::new().warmup(INSTRUCTIONS * 3 / 10),
    );
    assert!(source.error().is_none());
    (report, t0.elapsed().as_secs_f64())
}

struct Comparison {
    prefetcher: &'static str,
    exhaustive_uipc: f64,
    exhaustive_s: f64,
    sampled_mean: f64,
    sampled_ci95: f64,
    rel_err: f64,
    sampled_s: f64,
}

fn compare<P: Prefetcher>(
    engine: &Engine,
    path: &std::path::Path,
    plan: &SamplingPlan,
    mut mk: impl FnMut() -> P,
) -> Comparison {
    let (ex, ex_s) = exhaustive(engine, path, mk());
    let t0 = Instant::now();
    let sampled = sample_trace_file(engine.config(), plan, path, |_| mk()).unwrap();
    let sampled_s = t0.elapsed().as_secs_f64();
    let uipc = sampled.uipc();
    Comparison {
        prefetcher: ex.prefetcher,
        exhaustive_uipc: ex.timing.uipc(),
        exhaustive_s: ex_s,
        sampled_mean: uipc.mean,
        sampled_ci95: uipc.ci95,
        rel_err: uipc.relative_error(),
        sampled_s,
    }
}

fn write_artifact(rows: &[Comparison], plan: &SamplingPlan) {
    let dir = std::path::Path::new("target");
    std::fs::create_dir_all(dir).ok();
    let mut f = std::fs::File::create(dir.join("sampled_vs_exhaustive.json")).unwrap();
    let mut s = String::from("{\n  \"schema\": \"pif-sampled-acceptance/v1\",\n");
    s.push_str(&format!("  \"instructions\": {INSTRUCTIONS},\n"));
    s.push_str(&format!(
        "  \"plan\": {{\"samples\": {}, \"warmup_instrs\": {}, \"measure_instrs\": {}, \"burn_in\": {}}},\n",
        plan.samples, plan.warmup_instrs, plan.measure_instrs, plan.burn_in
    ));
    s.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"prefetcher\": \"{}\", \"exhaustive_uipc\": {:.6}, \"exhaustive_s\": {:.3}, \
             \"sampled_uipc\": {:.6}, \"sampled_ci95\": {:.6}, \"rel_err\": {:.6}, \
             \"sampled_s\": {:.3}, \"within_ci95\": {}}}{}\n",
            r.prefetcher,
            r.exhaustive_uipc,
            r.exhaustive_s,
            r.sampled_mean,
            r.sampled_ci95,
            r.rel_err,
            r.sampled_s,
            (r.sampled_mean - r.exhaustive_uipc).abs() <= r.sampled_ci95,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    f.write_all(s.as_bytes()).unwrap();
}

fn run_all(plan: &SamplingPlan) -> Vec<Comparison> {
    let engine = Engine::new(EngineConfig::paper_default());
    let path = trace_path();
    vec![
        compare(&engine, &path, plan, || NoPrefetcher),
        compare(
            &engine,
            &path,
            plan,
            || Pif::new(PifConfig::paper_default()),
        ),
        compare(&engine, &path, plan, NextLinePrefetcher::aggressive),
        compare(&engine, &path, plan, || Tifs::new(Default::default())),
        compare(&engine, &path, plan, DiscontinuityPrefetcher::paper_scale),
        compare(&engine, &path, plan, || PerfectICache),
    ]
}

/// The differential test: at the accuracy plan, every prefetcher's
/// sampled UIPC lands within its own reported ci95 of the exhaustive
/// value, with < 5% relative error (the paper's §5 target).
#[test]
#[ignore = "acceptance-scale (10M instructions x 12 runs); run with --ignored --release"]
fn differential_sampled_vs_exhaustive_all_prefetchers() {
    let plan = SamplingPlan::random(28, 0x9a3f, 150_000, 40_000).with_burn_in(8);
    let rows = run_all(&plan);
    write_artifact(&rows, &plan);
    let mut failures = Vec::new();
    for r in &rows {
        let delta = (r.sampled_mean - r.exhaustive_uipc).abs();
        println!(
            "{:<14} exhaustive={:.4} sampled={:.4} ±{:.4} (rel {:.1}%) [{:.2}s vs {:.2}s]",
            r.prefetcher,
            r.exhaustive_uipc,
            r.sampled_mean,
            r.sampled_ci95,
            100.0 * r.rel_err,
            r.exhaustive_s,
            r.sampled_s,
        );
        if delta > r.sampled_ci95 {
            failures.push(format!(
                "{}: |{:.4} - {:.4}| = {delta:.4} > ci95 {:.4}",
                r.prefetcher, r.sampled_mean, r.exhaustive_uipc, r.sampled_ci95
            ));
        }
        if r.rel_err >= 0.05 {
            failures.push(format!("{}: rel_err {:.3} >= 5%", r.prefetcher, r.rel_err));
        }
    }
    assert!(failures.is_empty(), "{failures:#?}");
}

/// The speed test: at the efficiency plan, the sampled run is ≥ 5×
/// faster wall-clock than exhaustive while its UIPC estimate still lands
/// within its own reported ci95 of the exhaustive value.
#[test]
#[ignore = "acceptance-scale (10M instructions); run with --ignored --release"]
fn sampled_run_is_5x_faster_within_ci95() {
    let engine = Engine::new(EngineConfig::paper_default());
    let path = trace_path();
    let plan = SamplingPlan::random(30, 0x9a3f, 30_000, 10_000);
    let r = compare(&engine, &path, &plan, || NoPrefetcher);
    println!(
        "exhaustive {:.4} in {:.2}s; sampled {:.4} ±{:.4} in {:.2}s ({:.1}x)",
        r.exhaustive_uipc,
        r.exhaustive_s,
        r.sampled_mean,
        r.sampled_ci95,
        r.sampled_s,
        r.exhaustive_s / r.sampled_s
    );
    assert!(
        (r.sampled_mean - r.exhaustive_uipc).abs() <= r.sampled_ci95,
        "estimate must land within its own ci95"
    );
    // Wall-clock assertions only mean something in release builds.
    if cfg!(debug_assertions) {
        eprintln!("debug build: skipping the wall-clock speedup assertion");
        return;
    }
    assert!(
        r.exhaustive_s >= 5.0 * r.sampled_s,
        "sampled must be >=5x faster: exhaustive {:.2}s vs sampled {:.2}s",
        r.exhaustive_s,
        r.sampled_s
    );
}

/// The parallel-driver differential at acceptance scale: a per-window
/// plan over the 10M-instruction trace produces **equal reports in every
/// field** under the serial driver and under the pool-parallel driver at
/// 1, 2, and 8 threads. Wall-clock per thread count is recorded in the
/// uploaded artifact; it is not asserted on, because aggregate speedup
/// is a property of the host's core count, while the equality contract
/// must hold everywhere.
#[test]
#[ignore = "acceptance-scale (10M instructions x 4 sampled runs); run with --ignored --release"]
fn parallel_sampled_equals_serial_at_acceptance_scale() {
    let config = EngineConfig::paper_default();
    let path = trace_path();
    // The accuracy plan, re-based onto per-window warming: the extra
    // burn-in stands in for the predictor history continuous warming
    // carried across windows.
    let plan = SamplingPlan::random(28, 0x9a3f, 150_000, 40_000)
        .with_warm_strategy(WarmStrategy::PerWindow {
            extra_warmup_instrs: 150_000,
        })
        .with_burn_in(8);
    let mk = || Pif::new(PifConfig::paper_default());

    let t0 = Instant::now();
    let serial = sample_trace_file(&config, &plan, &path, |_| mk()).unwrap();
    let serial_s = t0.elapsed().as_secs_f64();

    let mut rows = Vec::new();
    for threads in [1usize, 2, 8] {
        let t0 = Instant::now();
        let parallel =
            sample_trace_file_parallel(&config, &plan, &path, |_| mk(), &Pool::new(threads))
                .unwrap();
        let elapsed = t0.elapsed().as_secs_f64();
        assert_eq!(
            parallel, serial,
            "threads={threads}: parallel report must equal the serial report"
        );
        println!(
            "threads={threads}: {:.2}s (serial {:.2}s), uipc {:.4} ±{:.4}",
            elapsed,
            serial_s,
            parallel.uipc().mean,
            parallel.uipc().ci95
        );
        rows.push((threads, elapsed));
    }

    let dir = std::path::Path::new("target");
    std::fs::create_dir_all(dir).ok();
    let mut f = std::fs::File::create(dir.join("sampled_parallel_vs_serial.json")).unwrap();
    let uipc = serial.uipc();
    let mut s = String::from("{\n  \"schema\": \"pif-sampled-parallel/v1\",\n");
    s.push_str(&format!("  \"instructions\": {INSTRUCTIONS},\n"));
    s.push_str(&format!(
        "  \"plan\": {{\"samples\": {}, \"warmup_instrs\": {}, \"measure_instrs\": {}, \
         \"extra_warmup_instrs\": {}, \"burn_in\": {}}},\n",
        plan.samples,
        plan.warmup_instrs,
        plan.measure_instrs,
        plan.effective_warmup_instrs() - plan.warmup_instrs,
        plan.burn_in
    ));
    s.push_str(&format!(
        "  \"uipc_mean\": {:.6},\n  \"uipc_ci95\": {:.6},\n  \"serial_s\": {serial_s:.3},\n",
        uipc.mean, uipc.ci95
    ));
    s.push_str("  \"reports_identical\": true,\n  \"parallel\": [\n");
    for (i, (threads, elapsed)) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"threads\": {threads}, \"elapsed_s\": {elapsed:.3}, \"speedup\": {:.3}}}{}\n",
            serial_s / elapsed,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    f.write_all(s.as_bytes()).unwrap();
}
