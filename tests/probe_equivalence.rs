//! Probe-enabled runs must be observationally identical to unprobed runs.
//!
//! The `Probe` layer (`pif_sim::probe`) is a passive observer: the
//! engine hands it stall magnitudes, queue depths, and prefetcher
//! gauges, and it feeds nothing back. This test drives the same traces
//! through `Engine::run` (implicitly `NoProbe`) and
//! `Engine::run_probed` with a live metrics-recording `EngineProbe`,
//! and requires every `RunReport` counter to match exactly — while also
//! checking the probe actually captured data and that its registry
//! renders valid Prometheus exposition.

use pif_baselines::{NextLinePrefetcher, Tifs};
use pif_core::{Pif, PifConfig};
use pif_sim::{Engine, EngineConfig, EngineProbe, NoPrefetcher, RunOptions, RunReport};
use pif_workloads::WorkloadProfile;

/// Canonical rendering of every counter in a [`RunReport`] (same shape
/// as `tests/golden_equivalence.rs`).
fn fingerprint(r: &RunReport) -> String {
    format!(
        "{}|fetch:{},{},{},{},{},{}|pf:{},{},{},{}|fe:{},{},{},{}|t:{},{},{},{},{}|l2:{},{}",
        r.prefetcher,
        r.fetch.demand_accesses,
        r.fetch.wrong_path_accesses,
        r.fetch.demand_misses,
        r.fetch.wrong_path_misses,
        r.fetch.covered_by_prefetch,
        r.fetch.partial_covered,
        r.prefetch.issued,
        r.prefetch.dropped_resident,
        r.prefetch.useful,
        r.prefetch.unused_evicted,
        r.frontend.instructions,
        r.frontend.branches,
        r.frontend.mispredicts,
        r.frontend.wrong_path_accesses,
        r.timing.instructions,
        r.timing.cycles,
        r.timing.base_cycles,
        r.timing.fetch_stall_cycles,
        r.timing.mispredict_cycles,
        r.l2_hits,
        r.l2_misses,
    )
}

fn histogram_count(probe: &EngineProbe, name: &str) -> u64 {
    match &probe
        .registry()
        .snapshot()
        .iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("probe registry missing {name}"))
        .value
    {
        pif_obs::MetricValue::Histogram(h) => h.count(),
        other => panic!("{name} is not a histogram: {other:?}"),
    }
}

#[test]
fn probed_run_reports_match_noprobe_for_every_prefetcher() {
    let trace = WorkloadProfile::oltp_db2().scaled(0.05).generate(120_000);
    let engine = Engine::new(EngineConfig::paper_default());

    // One closure per prefetcher so each probed/unprobed pair gets a
    // freshly-constructed prefetcher with identical initial state.
    type Case<'a> = (
        &'a str,
        Box<dyn Fn(Option<&mut EngineProbe>) -> RunReport + 'a>,
    );
    let cases: Vec<Case> = vec![
        (
            "None",
            Box::new(|probe| match probe {
                Some(p) => engine.run_probed(
                    trace.instrs().iter().copied(),
                    NoPrefetcher,
                    RunOptions::new().warmup(36_000),
                    p,
                ),
                None => engine.run(
                    trace.instrs().iter().copied(),
                    NoPrefetcher,
                    RunOptions::new().warmup(36_000),
                ),
            }),
        ),
        (
            "PIF",
            Box::new(|probe| match probe {
                Some(p) => engine.run_probed(
                    trace.instrs().iter().copied(),
                    Pif::new(PifConfig::paper_default()),
                    RunOptions::new().warmup(36_000),
                    p,
                ),
                None => engine.run(
                    trace.instrs().iter().copied(),
                    Pif::new(PifConfig::paper_default()),
                    RunOptions::new().warmup(36_000),
                ),
            }),
        ),
        (
            "Next-Line",
            Box::new(|probe| match probe {
                Some(p) => engine.run_probed(
                    trace.instrs().iter().copied(),
                    NextLinePrefetcher::aggressive(),
                    RunOptions::new().warmup(36_000),
                    p,
                ),
                None => engine.run(
                    trace.instrs().iter().copied(),
                    NextLinePrefetcher::aggressive(),
                    RunOptions::new().warmup(36_000),
                ),
            }),
        ),
        (
            "TIFS",
            Box::new(|probe| match probe {
                Some(p) => engine.run_probed(
                    trace.instrs().iter().copied(),
                    Tifs::new(Default::default()),
                    RunOptions::new().warmup(36_000),
                    p,
                ),
                None => engine.run(
                    trace.instrs().iter().copied(),
                    Tifs::new(Default::default()),
                    RunOptions::new().warmup(36_000),
                ),
            }),
        ),
    ];

    for (name, run) in &cases {
        let plain = run(None);
        let mut probe = EngineProbe::new();
        let probed = run(Some(&mut probe));
        assert_eq!(
            fingerprint(&plain),
            fingerprint(&probed),
            "probe perturbed the {name} run"
        );
        // The probe must have observed the run, not just stayed silent.
        assert!(
            histogram_count(&probe, "pif_engine_prefetch_queue_depth") > 0,
            "{name}: queue-depth histogram is empty"
        );
    }
}

#[test]
fn probe_captures_stall_breakdown_and_sab_residency_for_pif() {
    let trace = WorkloadProfile::oltp_db2().scaled(0.05).generate(120_000);
    let engine = Engine::new(EngineConfig::paper_default());
    let mut probe = EngineProbe::new();
    let report = engine.run_probed(
        trace.instrs().iter().copied(),
        Pif::new(PifConfig::paper_default()),
        RunOptions::new(),
        &mut probe,
    );

    // Stall samples must reconcile with the report's miss counters.
    assert_eq!(
        histogram_count(&probe, "pif_engine_demand_stall_cycles"),
        report.fetch.demand_misses,
        "one demand-stall sample per demand miss"
    );
    assert_eq!(
        histogram_count(&probe, "pif_engine_late_prefetch_stall_cycles"),
        report.fetch.partial_covered,
        "one late-prefetch sample per partially covered miss"
    );
    // PIF's gauges surface SAB residency via the periodic sampler.
    assert!(
        histogram_count(&probe, "pif_engine_sab_active_streams") > 0,
        "SAB residency gauge never sampled"
    );

    // And the whole registry must render valid exposition text.
    let text = pif_obs::render_prometheus(probe.registry());
    pif_obs::validate_prometheus(&text).expect("probe exposition must validate");
    assert!(text.contains("# TYPE pif_engine_demand_stall_cycles histogram"));
}
