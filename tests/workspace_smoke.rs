//! Workspace smoke test: the `pif_repro::prelude` quickstart path works
//! end-to-end exactly as the crate-level documentation advertises —
//! generate a trace, run the engine with PIF attached, and get a report
//! with real coverage. Guards the facade's re-export wiring (every name
//! here resolves through `pif_repro::prelude`).

use pif_repro::prelude::*;

#[test]
fn prelude_quickstart_path_works_end_to_end() {
    // Mirrors the doc example in src/lib.rs.
    let trace = WorkloadProfile::oltp_db2().scaled(0.02).generate(50_000);
    assert_eq!(trace.len(), 50_000);

    let config = EngineConfig::paper_default();
    let pif = Pif::new(PifConfig::default());
    let report = Engine::new(config).run(trace.instrs().iter().copied(), pif, RunOptions::new());
    assert!(report.fetch.demand_accesses > 0, "engine saw no fetches");

    // At the doc example's scale the footprint fits in L1-I (all misses
    // are cold), so demonstrate nonzero coverage on a pressured trace.
    let trace = WorkloadProfile::oltp_db2().scaled(0.3).generate(150_000);
    let pif = Pif::new(PifConfig::default());
    let report = Engine::new(config).run(trace.instrs().iter().copied(), pif, RunOptions::new());
    assert!(report.fetch.demand_misses > 0, "trace exerts no pressure");
    let coverage = report.miss_coverage();
    assert!(
        coverage > 0.1 && coverage <= 1.0,
        "PIF should cover a real fraction of misses, got {coverage}"
    );
}

#[test]
fn prelude_exposes_baselines_and_types() {
    // Every baseline the paper compares against is constructible from the
    // prelude, and runs on the same engine/trace pair.
    let trace = WorkloadProfile::web_apache().scaled(0.02).generate(20_000);
    let engine = Engine::new(EngineConfig::paper_default());

    let nl = engine.run(
        trace.instrs().iter().copied(),
        NextLinePrefetcher::aggressive(),
        RunOptions::new(),
    );
    let tifs = engine.run(
        trace.instrs().iter().copied(),
        Tifs::unbounded(),
        RunOptions::new(),
    );
    let disc = engine.run(
        trace.instrs().iter().copied(),
        DiscontinuityPrefetcher::paper_scale(),
        RunOptions::new(),
    );
    let perfect = engine.run(
        trace.instrs().iter().copied(),
        PerfectICache,
        RunOptions::new(),
    );
    let base = engine.run(
        trace.instrs().iter().copied(),
        NoPrefetcher,
        RunOptions::new(),
    );

    for report in [&nl, &tifs, &disc, &perfect] {
        assert_eq!(report.fetch.demand_accesses, base.fetch.demand_accesses);
    }
    assert_eq!(perfect.fetch.demand_misses, 0);

    // The prelude's type vocabulary is usable directly.
    let geometry = RegionGeometry::paper_default();
    let trigger = BlockAddr::from_number(42);
    let mut record = SpatialRegionRecord::new(trigger);
    assert!(record.record_block(geometry, trigger.offset(1)));
    let pc = Address::new(0x4000);
    let instr = RetiredInstr::simple(pc, TrapLevel::Tl0);
    assert_eq!(instr.pc.block(), pc.block());
}
