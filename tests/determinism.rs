//! Integration: everything is deterministic — trace generation, the
//! front end, the engine, and the experiment pipeline. Reproducibility is
//! a first-class requirement for a paper-reproduction artifact.

use pif_core::{Pif, PifConfig};
use pif_sim::{Engine, EngineConfig, RunOptions};
use pif_workloads::WorkloadProfile;

#[test]
fn trace_generation_is_reproducible() {
    let a = WorkloadProfile::web_apache().scaled(0.2).generate(100_000);
    let b = WorkloadProfile::web_apache().scaled(0.2).generate(100_000);
    assert_eq!(a.instrs(), b.instrs());
}

#[test]
fn engine_runs_are_reproducible() {
    let trace = WorkloadProfile::oltp_db2().scaled(0.2).generate(150_000);
    let engine = Engine::new(EngineConfig::paper_default());
    let r1 = engine.run(
        trace.instrs().iter().copied(),
        Pif::new(PifConfig::paper_default()),
        RunOptions::new().warmup(50_000),
    );
    let r2 = engine.run(
        trace.instrs().iter().copied(),
        Pif::new(PifConfig::paper_default()),
        RunOptions::new().warmup(50_000),
    );
    assert_eq!(r1.fetch, r2.fetch);
    assert_eq!(r1.prefetch, r2.prefetch);
    assert_eq!(r1.timing, r2.timing);
}

#[test]
fn workload_profiles_are_mutually_distinct() {
    let mut traces = Vec::new();
    for w in WorkloadProfile::all() {
        traces.push((w.name().to_string(), w.scaled(0.1).generate(20_000)));
    }
    for i in 0..traces.len() {
        for j in i + 1..traces.len() {
            assert_ne!(
                traces[i].1.instrs(),
                traces[j].1.instrs(),
                "{} and {} generated identical traces",
                traces[i].0,
                traces[j].0
            );
        }
    }
}

#[test]
fn trace_prefixes_are_stable_under_length() {
    let w = WorkloadProfile::dss_qry2().scaled(0.2);
    let short = w.generate(50_000);
    let long = w.generate(120_000);
    assert_eq!(short.instrs(), &long.instrs()[..50_000]);
}
