//! Spatial regions: the compact trigger + bit-vector representation of a
//! group of spatially-adjacent instruction blocks (paper §3, §4.1).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{BlockAddr, ConfigError};

/// Geometry of a spatial region: how many blocks before and after the
/// trigger block belong to the region.
///
/// The paper's default (justified by Figure 8) is **2 preceding and 5
/// succeeding** blocks, i.e. 8 blocks total including the trigger.
///
/// # Example
///
/// ```
/// use pif_types::RegionGeometry;
///
/// let g = RegionGeometry::paper_default();
/// assert_eq!(g.preceding(), 2);
/// assert_eq!(g.succeeding(), 5);
/// assert_eq!(g.total_blocks(), 8);
/// assert!(g.contains_offset(-2) && g.contains_offset(5));
/// assert!(!g.contains_offset(-3) && !g.contains_offset(6));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegionGeometry {
    preceding: u8,
    succeeding: u8,
}

impl RegionGeometry {
    /// Maximum number of non-trigger blocks representable (bit-vector width).
    pub const MAX_BITS: usize = 31;

    /// Creates a geometry with the given number of preceding and succeeding
    /// blocks.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `preceding + succeeding` exceeds
    /// [`RegionGeometry::MAX_BITS`].
    pub fn new(preceding: u8, succeeding: u8) -> Result<Self, ConfigError> {
        if preceding as usize + succeeding as usize > Self::MAX_BITS {
            return Err(ConfigError::new(format!(
                "spatial region too large: {preceding} preceding + {succeeding} succeeding \
                 exceeds {} non-trigger blocks",
                Self::MAX_BITS
            )));
        }
        Ok(RegionGeometry {
            preceding,
            succeeding,
        })
    }

    /// The paper's default geometry: 2 preceding, 5 succeeding (8 blocks).
    pub const fn paper_default() -> Self {
        RegionGeometry {
            preceding: 2,
            succeeding: 5,
        }
    }

    /// A geometry with `total` blocks, skewed toward succeeding blocks the
    /// way the paper's sensitivity study (Fig. 8 right) sweeps region size:
    /// at most 2 preceding blocks, remainder succeeding.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `total` is zero or exceeds
    /// [`RegionGeometry::MAX_BITS`] + 1.
    pub fn skewed_with_total(total: u8) -> Result<Self, ConfigError> {
        if total == 0 {
            return Err(ConfigError::new(
                "spatial region must contain the trigger block",
            ));
        }
        let non_trigger = total - 1;
        // The paper's skew: regions of size >= 4 reserve 2 preceding blocks,
        // smaller regions favour succeeding blocks.
        let preceding = match total {
            1 | 2 => 0,
            3 => 1,
            _ => 2,
        };
        let succeeding = non_trigger - preceding;
        Self::new(preceding, succeeding)
    }

    /// Number of blocks preceding the trigger.
    #[inline]
    pub const fn preceding(self) -> u8 {
        self.preceding
    }

    /// Number of blocks succeeding the trigger.
    #[inline]
    pub const fn succeeding(self) -> u8 {
        self.succeeding
    }

    /// Total number of blocks in the region, including the trigger.
    #[inline]
    pub const fn total_blocks(self) -> usize {
        self.preceding as usize + self.succeeding as usize + 1
    }

    /// True if `offset` (in blocks relative to the trigger; 0 = trigger)
    /// falls inside the region.
    #[inline]
    pub const fn contains_offset(self, offset: i64) -> bool {
        offset >= -(self.preceding as i64) && offset <= self.succeeding as i64
    }

    /// Maps a non-zero in-region offset to its bit index, or `None` if the
    /// offset is 0 (the trigger, which is implicit) or out of range.
    ///
    /// Bit layout: bits `0..preceding` are the preceding blocks ordered from
    /// nearest (`-1` = bit 0) to farthest; bits `preceding..` are the
    /// succeeding blocks from nearest (`+1`) to farthest.
    #[inline]
    pub const fn bit_for_offset(self, offset: i64) -> Option<u32> {
        if offset == 0 || !self.contains_offset(offset) {
            None
        } else if offset < 0 {
            Some((-offset - 1) as u32)
        } else {
            Some(self.preceding as u32 + (offset - 1) as u32)
        }
    }

    /// Inverse of [`RegionGeometry::bit_for_offset`].
    #[inline]
    pub const fn offset_for_bit(self, bit: u32) -> i64 {
        if bit < self.preceding as u32 {
            -(bit as i64) - 1
        } else {
            (bit - self.preceding as u32) as i64 + 1
        }
    }

    /// Number of bit-vector bits (non-trigger blocks).
    #[inline]
    pub const fn bit_count(self) -> u32 {
        self.preceding as u32 + self.succeeding as u32
    }
}

impl Default for RegionGeometry {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Bit vector recording which non-trigger blocks of a spatial region were
/// accessed.
///
/// Always interpreted relative to a [`RegionGeometry`]; the trigger block is
/// implicit (always accessed) and has no bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct RegionBits(u32);

impl RegionBits {
    /// An empty bit vector (only the trigger block accessed).
    #[inline]
    pub const fn empty() -> Self {
        RegionBits(0)
    }

    /// Creates from a raw bit mask (bit layout per
    /// [`RegionGeometry::bit_for_offset`]).
    #[inline]
    pub const fn from_raw(raw: u32) -> Self {
        RegionBits(raw)
    }

    /// Raw bit mask.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Sets the bit for the block at `offset` from the trigger. Offsets of 0
    /// (the trigger) or outside the geometry are ignored and return `false`.
    #[inline]
    pub fn set_offset(&mut self, geometry: RegionGeometry, offset: i64) -> bool {
        match geometry.bit_for_offset(offset) {
            Some(bit) => {
                self.0 |= 1 << bit;
                true
            }
            None => false,
        }
    }

    /// True if the bit for `offset` is set. The trigger offset 0 reports
    /// `true` (the trigger is always accessed).
    #[inline]
    pub fn contains_offset(self, geometry: RegionGeometry, offset: i64) -> bool {
        if offset == 0 {
            return true;
        }
        match geometry.bit_for_offset(offset) {
            Some(bit) => self.0 & (1 << bit) != 0,
            None => false,
        }
    }

    /// Number of set bits (accessed non-trigger blocks).
    #[inline]
    pub const fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// True if every bit set in `self` is also set in `other`.
    #[inline]
    pub const fn is_subset_of(self, other: RegionBits) -> bool {
        self.0 & !other.0 == 0
    }

    /// Union of two bit vectors.
    #[must_use]
    #[inline]
    pub const fn union(self, other: RegionBits) -> RegionBits {
        RegionBits(self.0 | other.0)
    }

    /// Iterates over the set offsets in *replay order*: preceding blocks
    /// from farthest to nearest, then succeeding blocks from nearest to
    /// farthest — i.e. traversing the conceptual bit vector left to right as
    /// the paper's SAB does (§4.3).
    pub fn offsets_in_order(self, geometry: RegionGeometry) -> impl Iterator<Item = i64> {
        let bits = self.0;
        let prec = geometry.preceding() as i64;
        let succ = geometry.succeeding() as i64;
        (-prec..=succ).filter(move |&off| {
            off != 0
                && geometry
                    .bit_for_offset(off)
                    .is_some_and(|b| bits & (1 << b) != 0)
        })
    }
}

impl fmt::Display for RegionBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:b}", self.0)
    }
}

/// A spatial region record: a trigger block plus the bit vector of its
/// accessed neighbours. This is the unit stored in the temporal compactor
/// and the history buffer (paper Fig. 5).
///
/// # Example
///
/// ```
/// use pif_types::{BlockAddr, RegionGeometry, SpatialRegionRecord};
///
/// let g = RegionGeometry::paper_default();
/// let mut r = SpatialRegionRecord::new(BlockAddr::from_number(100));
/// r.record_block(g, BlockAddr::from_number(101));
/// r.record_block(g, BlockAddr::from_number(99));
/// let blocks: Vec<u64> = r.blocks_in_order(g).map(|b| b.number()).collect();
/// assert_eq!(blocks, vec![99, 100, 101]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SpatialRegionRecord {
    /// Block address of the trigger (first accessed) block of the region.
    pub trigger: BlockAddr,
    /// Accessed neighbour blocks.
    pub bits: RegionBits,
}

impl SpatialRegionRecord {
    /// Creates a record for a region triggered at `trigger` with no
    /// neighbour accesses yet.
    pub const fn new(trigger: BlockAddr) -> Self {
        SpatialRegionRecord {
            trigger,
            bits: RegionBits::empty(),
        }
    }

    /// True if `block` falls within the region spanned by this record's
    /// trigger under `geometry` (whether or not its bit is set).
    #[inline]
    pub fn spans_block(&self, geometry: RegionGeometry, block: BlockAddr) -> bool {
        geometry.contains_offset(self.trigger.signed_distance(block))
    }

    /// Records an access to `block`. Returns `false` (and records nothing)
    /// if the block is outside the region.
    #[inline]
    pub fn record_block(&mut self, geometry: RegionGeometry, block: BlockAddr) -> bool {
        let offset = self.trigger.signed_distance(block);
        if offset == 0 {
            return true; // trigger block: implicitly recorded
        }
        self.bits.set_offset(geometry, offset)
    }

    /// True if the record marks `block` as accessed (trigger included).
    #[inline]
    pub fn contains_block(&self, geometry: RegionGeometry, block: BlockAddr) -> bool {
        self.bits
            .contains_offset(geometry, self.trigger.signed_distance(block))
    }

    /// Number of accessed blocks, including the trigger.
    #[inline]
    pub fn accessed_blocks(&self) -> u32 {
        self.bits.count() + 1
    }

    /// Iterates the accessed blocks in replay order (farthest-preceding
    /// first, then trigger, then succeeding), matching the SAB's
    /// left-to-right bit-vector traversal (§4.3).
    pub fn blocks_in_order(&self, geometry: RegionGeometry) -> impl Iterator<Item = BlockAddr> {
        let trigger = self.trigger;
        let bits = self.bits;
        let prec = geometry.preceding() as i64;
        let succ = geometry.succeeding() as i64;
        // `contains_offset` reports the implicit trigger bit at offset 0.
        (-prec..=succ)
            .filter(move |&off| bits.contains_offset(geometry, off))
            .map(move |off| trigger.offset(off))
    }

    /// Number of *discontinuous runs* of accessed blocks within the region:
    /// maximal groups of consecutive accessed blocks (used by Fig. 3 right).
    pub fn discontinuous_runs(&self, geometry: RegionGeometry) -> u32 {
        let prec = geometry.preceding() as i64;
        let succ = geometry.succeeding() as i64;
        let mut runs = 0;
        let mut in_run = false;
        for off in -prec..=succ {
            let accessed = off == 0 || self.bits.contains_offset(geometry, off);
            if accessed && !in_run {
                runs += 1;
            }
            in_run = accessed;
        }
        runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const G: RegionGeometry = RegionGeometry::paper_default();

    #[test]
    fn geometry_rejects_oversized_regions() {
        assert!(RegionGeometry::new(16, 16).is_err());
        assert!(RegionGeometry::new(2, 29).is_ok());
    }

    #[test]
    fn bit_offset_mapping_round_trips() {
        for off in -2i64..=5 {
            if off == 0 {
                assert_eq!(G.bit_for_offset(0), None);
                continue;
            }
            let bit = G.bit_for_offset(off).unwrap();
            assert_eq!(G.offset_for_bit(bit), off);
        }
    }

    #[test]
    fn bits_outside_geometry_are_rejected() {
        assert_eq!(G.bit_for_offset(-3), None);
        assert_eq!(G.bit_for_offset(6), None);
        let mut bits = RegionBits::empty();
        assert!(!bits.set_offset(G, -3));
        assert!(!bits.set_offset(G, 6));
        assert_eq!(bits.count(), 0);
    }

    #[test]
    fn subset_semantics() {
        let mut a = RegionBits::empty();
        a.set_offset(G, 1);
        let mut b = a;
        b.set_offset(G, 2);
        assert!(a.is_subset_of(b));
        assert!(!b.is_subset_of(a));
        assert!(a.is_subset_of(a));
        assert!(RegionBits::empty().is_subset_of(a));
    }

    #[test]
    fn record_tracks_in_region_blocks_only() {
        let mut r = SpatialRegionRecord::new(BlockAddr::from_number(100));
        assert!(r.record_block(G, BlockAddr::from_number(100))); // trigger
        assert!(r.record_block(G, BlockAddr::from_number(98))); // -2
        assert!(r.record_block(G, BlockAddr::from_number(105))); // +5
        assert!(!r.record_block(G, BlockAddr::from_number(97))); // -3
        assert!(!r.record_block(G, BlockAddr::from_number(106))); // +6
        assert_eq!(r.accessed_blocks(), 3);
    }

    #[test]
    fn blocks_in_order_matches_left_to_right_traversal() {
        let mut r = SpatialRegionRecord::new(BlockAddr::from_number(50));
        r.record_block(G, BlockAddr::from_number(49));
        r.record_block(G, BlockAddr::from_number(48));
        r.record_block(G, BlockAddr::from_number(52));
        let blocks: Vec<u64> = r.blocks_in_order(G).map(|b| b.number()).collect();
        assert_eq!(blocks, vec![48, 49, 50, 52]);
    }

    #[test]
    fn discontinuous_runs_counts_gaps() {
        let mut r = SpatialRegionRecord::new(BlockAddr::from_number(50));
        assert_eq!(r.discontinuous_runs(G), 1); // trigger only
        r.record_block(G, BlockAddr::from_number(51));
        assert_eq!(r.discontinuous_runs(G), 1); // contiguous
        r.record_block(G, BlockAddr::from_number(53));
        assert_eq!(r.discontinuous_runs(G), 2); // gap at 52
        r.record_block(G, BlockAddr::from_number(48));
        assert_eq!(r.discontinuous_runs(G), 3); // gap at 49
        r.record_block(G, BlockAddr::from_number(49));
        assert_eq!(r.discontinuous_runs(G), 2); // 48-51 now contiguous
    }

    #[test]
    fn spans_block_uses_geometry() {
        let r = SpatialRegionRecord::new(BlockAddr::from_number(100));
        assert!(r.spans_block(G, BlockAddr::from_number(98)));
        assert!(r.spans_block(G, BlockAddr::from_number(105)));
        assert!(!r.spans_block(G, BlockAddr::from_number(97)));
        assert!(!r.spans_block(G, BlockAddr::from_number(106)));
    }

    #[test]
    fn skewed_totals_match_paper_sweep() {
        // Fig. 8 (right) sweeps total region sizes 1, 2, 4, 6, 8.
        let g1 = RegionGeometry::skewed_with_total(1).unwrap();
        assert_eq!((g1.preceding(), g1.succeeding()), (0, 0));
        let g2 = RegionGeometry::skewed_with_total(2).unwrap();
        assert_eq!((g2.preceding(), g2.succeeding()), (0, 1));
        let g4 = RegionGeometry::skewed_with_total(4).unwrap();
        assert_eq!((g4.preceding(), g4.succeeding()), (2, 1));
        let g8 = RegionGeometry::skewed_with_total(8).unwrap();
        assert_eq!((g8.preceding(), g8.succeeding()), (2, 5));
        assert!(RegionGeometry::skewed_with_total(0).is_err());
    }

    #[test]
    fn union_is_commutative_and_idempotent() {
        let mut a = RegionBits::empty();
        a.set_offset(G, 1);
        let mut b = RegionBits::empty();
        b.set_offset(G, -1);
        assert_eq!(a.union(b), b.union(a));
        assert_eq!(a.union(a), a);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn geometry_strategy() -> impl Strategy<Value = RegionGeometry> {
        (0u8..=8, 0u8..=16).prop_map(|(p, s)| RegionGeometry::new(p, s).expect("within MAX_BITS"))
    }

    proptest! {
        #[test]
        fn bit_offset_round_trip(g in geometry_strategy()) {
            for bit in 0..g.bit_count() {
                let off = g.offset_for_bit(bit);
                prop_assert_eq!(g.bit_for_offset(off), Some(bit));
            }
        }

        #[test]
        fn set_then_contains(g in geometry_strategy(), off in -20i64..20) {
            let mut bits = RegionBits::empty();
            let accepted = bits.set_offset(g, off);
            prop_assert_eq!(accepted, off != 0 && g.contains_offset(off));
            if accepted {
                prop_assert!(bits.contains_offset(g, off));
                prop_assert_eq!(bits.count(), 1);
            }
        }

        #[test]
        fn record_conserves_in_region_blocks(
            g in geometry_strategy(),
            trigger in 1_000u64..2_000,
            offsets in proptest::collection::vec(-20i64..20, 0..32),
        ) {
            let t = BlockAddr::from_number(trigger);
            let mut r = SpatialRegionRecord::new(t);
            let mut expected: Vec<u64> = vec![trigger];
            for off in offsets {
                let b = t.offset(off);
                let ok = r.record_block(g, b);
                prop_assert_eq!(ok, g.contains_offset(off));
                if ok && !expected.contains(&b.number()) {
                    expected.push(b.number());
                }
            }
            expected.sort_unstable();
            let mut got: Vec<u64> = r.blocks_in_order(g).map(|b| b.number()).collect();
            got.sort_unstable();
            prop_assert_eq!(got, expected);
        }

        #[test]
        fn runs_bounded_by_accessed_blocks(
            g in geometry_strategy(),
            raw in any::<u32>(),
        ) {
            let mask = if g.bit_count() == 32 { u32::MAX } else { (1u32 << g.bit_count()) - 1 };
            let r = SpatialRegionRecord {
                trigger: BlockAddr::from_number(1_000),
                bits: RegionBits::from_raw(raw & mask),
            };
            let runs = r.discontinuous_runs(g);
            prop_assert!(runs >= 1);
            prop_assert!(runs <= r.accessed_blocks());
        }
    }
}
