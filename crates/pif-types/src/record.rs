//! Trace records: retired instructions and front-end fetch accesses.

use serde::{Deserialize, Serialize};

use crate::{Address, TrapLevel};

/// Kind of control-flow instruction, for the front-end/branch-predictor
/// model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchKind {
    /// Conditional branch; the direction predictor guesses taken/not-taken.
    Conditional,
    /// Unconditional direct jump (target known at decode; no RAS effect).
    Direct,
    /// Direct call (target known at decode; pushes the return address).
    Call,
    /// Indirect call/jump through a register (target predicted by the BTB;
    /// pushes the return address).
    IndirectCall,
    /// Return from a function (target predicted by the return address
    /// stack).
    Return,
}

impl BranchKind {
    /// True if this branch pushes a return address onto the RAS.
    pub const fn pushes_return(self) -> bool {
        matches!(self, BranchKind::Call | BranchKind::IndirectCall)
    }
}

/// Control-flow metadata attached to a retired branch instruction.
///
/// The front-end model (`pif-sim`'s `frontend` module) replays the
/// retire-order trace and uses this metadata to decide, at every branch,
/// whether its branch predictor would have speculated down the wrong path —
/// which is what injects wrong-path noise into the fetch-access stream
/// (paper §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BranchInfo {
    /// What kind of branch this is.
    pub kind: BranchKind,
    /// Whether the branch was actually taken on the correct path.
    /// Non-conditional kinds are always taken.
    pub taken: bool,
    /// The branch's taken-path target. For conditional/direct branches this
    /// is the static target; for indirect branches and returns it is the
    /// dynamic target actually taken this time.
    pub taken_target: Address,
    /// The fall-through address (PC + instruction size); where execution
    /// continues when the branch is not taken, and the return address
    /// pushed by calls. Used to synthesize wrong-path fetch sequences.
    pub fall_through: Address,
}

impl BranchInfo {
    /// The address control actually transferred to on the correct path.
    pub const fn actual_target(&self) -> Address {
        if self.taken {
            self.taken_target
        } else {
            self.fall_through
        }
    }
}

/// One record of the correct-path, retire-order instruction stream.
///
/// This is the stream PIF's compactor observes at the back-end of the core
/// (paper §4.1) and the ground truth from which the front-end model derives
/// the speculative fetch-access stream.
///
/// # Example
///
/// ```
/// use pif_types::{Address, RetiredInstr, TrapLevel};
///
/// let instr = RetiredInstr::simple(Address::new(0x400), TrapLevel::Tl0);
/// assert!(instr.branch.is_none());
/// assert_eq!(instr.pc.block().number(), 0x10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetiredInstr {
    /// Program counter of the retired instruction.
    pub pc: Address,
    /// Trap level at which the instruction retired.
    pub trap_level: TrapLevel,
    /// Branch metadata if this instruction is a control transfer.
    pub branch: Option<BranchInfo>,
}

impl RetiredInstr {
    /// Creates a non-branch retired instruction.
    pub const fn simple(pc: Address, trap_level: TrapLevel) -> Self {
        RetiredInstr {
            pc,
            trap_level,
            branch: None,
        }
    }

    /// Creates a retired branch instruction.
    pub const fn branch(pc: Address, trap_level: TrapLevel, info: BranchInfo) -> Self {
        RetiredInstr {
            pc,
            trap_level,
            branch: Some(info),
        }
    }

    /// True if this instruction is any kind of control transfer.
    pub const fn is_branch(&self) -> bool {
        self.branch.is_some()
    }
}

/// Why the front end issued a fetch access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FetchKind {
    /// Fetch on the correct (eventually retired) path.
    CorrectPath,
    /// Fetch on a speculative wrong path that was later squashed.
    WrongPath,
}

/// One front-end instruction-cache access.
///
/// The sequence of `FetchAccess`es is what the L1-I cache, and any
/// access/miss-stream prefetcher (e.g. TIFS), actually observes. It differs
/// from the retire-order stream by the injected wrong-path accesses and by
/// fetch happening at block granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FetchAccess {
    /// Address fetched (the front end fetches block-aligned groups; we keep
    /// the instruction address for trigger-PC bookkeeping).
    pub pc: Address,
    /// Correct-path or wrong-path.
    pub kind: FetchKind,
    /// Trap level of the fetching context.
    pub trap_level: TrapLevel,
}

impl FetchAccess {
    /// Creates a correct-path fetch access.
    pub const fn correct(pc: Address, trap_level: TrapLevel) -> Self {
        FetchAccess {
            pc,
            kind: FetchKind::CorrectPath,
            trap_level,
        }
    }

    /// Creates a wrong-path fetch access.
    pub const fn wrong(pc: Address, trap_level: TrapLevel) -> Self {
        FetchAccess {
            pc,
            kind: FetchKind::WrongPath,
            trap_level,
        }
    }

    /// True if the access is on the correct path.
    pub const fn is_correct_path(&self) -> bool {
        matches!(self.kind, FetchKind::CorrectPath)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_instruction_is_not_a_branch() {
        let i = RetiredInstr::simple(Address::new(4), TrapLevel::Tl0);
        assert!(!i.is_branch());
    }

    #[test]
    fn branch_instruction_carries_metadata() {
        let info = BranchInfo {
            kind: BranchKind::Conditional,
            taken: true,
            taken_target: Address::new(0x100),
            fall_through: Address::new(0x44),
        };
        let i = RetiredInstr::branch(Address::new(0x40), TrapLevel::Tl0, info);
        assert!(i.is_branch());
        assert_eq!(i.branch.unwrap().actual_target(), Address::new(0x100));
    }

    #[test]
    fn actual_target_follows_direction() {
        let mut info = BranchInfo {
            kind: BranchKind::Conditional,
            taken: true,
            taken_target: Address::new(0x100),
            fall_through: Address::new(0x44),
        };
        assert_eq!(info.actual_target(), Address::new(0x100));
        info.taken = false;
        assert_eq!(info.actual_target(), Address::new(0x44));
    }

    #[test]
    fn fetch_access_path_classification() {
        let c = FetchAccess::correct(Address::new(0), TrapLevel::Tl0);
        let w = FetchAccess::wrong(Address::new(0), TrapLevel::Tl0);
        assert!(c.is_correct_path());
        assert!(!w.is_correct_path());
    }

    #[test]
    fn ras_pushing_kinds() {
        assert!(BranchKind::Call.pushes_return());
        assert!(BranchKind::IndirectCall.pushes_return());
        assert!(!BranchKind::Conditional.pushes_return());
        assert!(!BranchKind::Direct.pushes_return());
        assert!(!BranchKind::Return.pushes_return());
    }
}
