//! Core value types shared by every crate in the Proactive Instruction Fetch
//! (PIF) reproduction.
//!
//! This crate defines the vocabulary of the whole system:
//!
//! * [`Address`] — a byte address in the simulated instruction memory.
//! * [`BlockAddr`] — a cache-block (64 B by default) aligned address; the
//!   granularity at which caches and prefetchers operate.
//! * [`TrapLevel`] — SPARC-style processor trap level used to separate
//!   application references ([`TrapLevel::Tl0`]) from hardware interrupt
//!   handler references ([`TrapLevel::Tl1`]).
//! * [`RetiredInstr`] — one record of the retire-order instruction stream,
//!   the stream PIF learns from.
//! * [`FetchAccess`] — one front-end instruction-cache access, possibly on
//!   the wrong path, the stream the I-cache actually observes.
//! * [`SpatialRegionRecord`] — the compact trigger+bitvector representation
//!   of a group of spatially-close instruction blocks (paper §3, §4.1).
//! * [`InstrSource`] — a pull-based stream of retired instructions, the
//!   abstraction that lets the engine simulate traces larger than RAM.
//!
//! # Example
//!
//! ```
//! use pif_types::{Address, BlockAddr, BLOCK_SIZE};
//!
//! let pc = Address::new(0x4_0040);
//! let block = pc.block();
//! assert_eq!(block.base().raw(), 0x4_0040 & !(BLOCK_SIZE as u64 - 1));
//! assert_eq!(block.next(), BlockAddr::containing(Address::new(0x4_0080)));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod address;
mod error;
mod record;
mod region;
mod source;
mod trap;

pub use address::{Address, BlockAddr, BLOCK_SHIFT, BLOCK_SIZE};
pub use error::ConfigError;
pub use record::{BranchInfo, BranchKind, FetchAccess, FetchKind, RetiredInstr};
pub use region::{RegionBits, RegionGeometry, SpatialRegionRecord};
pub use source::InstrSource;
pub use trap::TrapLevel;
