//! Byte addresses and cache-block addresses.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Log2 of the instruction-cache block size in bytes (64 B blocks, Table I).
pub const BLOCK_SHIFT: u32 = 6;

/// Instruction-cache block size in bytes (Table I: 64 B blocks).
pub const BLOCK_SIZE: usize = 1 << BLOCK_SHIFT;

/// A byte address in the simulated instruction memory.
///
/// Addresses are opaque 64-bit values; arithmetic helpers are provided for
/// the handful of operations the simulator needs (sequential advance and
/// block extraction).
///
/// # Example
///
/// ```
/// use pif_types::Address;
///
/// let a = Address::new(0x1000);
/// assert_eq!(a.offset(16).raw(), 0x1010);
/// assert_eq!(a.block().base(), Address::new(0x1000));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Address(u64);

impl Address {
    /// Creates an address from a raw 64-bit value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Address(raw)
    }

    /// Returns the raw 64-bit value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the address advanced by `bytes` bytes (wrapping).
    #[must_use]
    #[inline]
    pub const fn offset(self, bytes: u64) -> Self {
        Address(self.0.wrapping_add(bytes))
    }

    /// Returns the cache block containing this address.
    #[inline]
    pub const fn block(self) -> BlockAddr {
        BlockAddr(self.0 >> BLOCK_SHIFT)
    }

    /// Returns the byte offset of this address within its cache block.
    #[inline]
    pub const fn block_offset(self) -> usize {
        (self.0 & (BLOCK_SIZE as u64 - 1)) as usize
    }
}

impl From<u64> for Address {
    fn from(raw: u64) -> Self {
        Address(raw)
    }
}

impl From<Address> for u64 {
    fn from(a: Address) -> Self {
        a.0
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A cache-block address: a byte address divided by [`BLOCK_SIZE`].
///
/// Caches, prefetchers, and all recorded history operate at this
/// granularity. The inner value is the *block number*, not the byte
/// address; use [`BlockAddr::base`] to recover the byte address of the
/// block's first byte.
///
/// # Example
///
/// ```
/// use pif_types::{Address, BlockAddr};
///
/// let b = BlockAddr::containing(Address::new(0x1040));
/// assert_eq!(b.number(), 0x41);
/// assert_eq!(b.next().number(), 0x42);
/// assert_eq!(b.signed_distance(b.next()), 1);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address from a raw block *number*.
    #[inline]
    pub const fn from_number(number: u64) -> Self {
        BlockAddr(number)
    }

    /// Returns the block containing the given byte address.
    #[inline]
    pub const fn containing(addr: Address) -> Self {
        addr.block()
    }

    /// Returns the block number (byte address >> [`BLOCK_SHIFT`]).
    #[inline]
    pub const fn number(self) -> u64 {
        self.0
    }

    /// Returns the byte address of the first byte of this block.
    #[inline]
    pub const fn base(self) -> Address {
        Address(self.0 << BLOCK_SHIFT)
    }

    /// Returns the immediately following block.
    #[must_use]
    #[inline]
    pub const fn next(self) -> Self {
        BlockAddr(self.0.wrapping_add(1))
    }

    /// Returns the immediately preceding block.
    #[must_use]
    #[inline]
    pub const fn prev(self) -> Self {
        BlockAddr(self.0.wrapping_sub(1))
    }

    /// Returns the block `delta` blocks away (negative = preceding blocks).
    #[must_use]
    #[inline]
    pub const fn offset(self, delta: i64) -> Self {
        BlockAddr(self.0.wrapping_add(delta as u64))
    }

    /// Returns `other - self` in blocks as a signed distance.
    ///
    /// Saturates at `i64::MIN`/`i64::MAX` in the (absurd for our traces)
    /// case of distances exceeding the signed range.
    #[inline]
    pub const fn signed_distance(self, other: BlockAddr) -> i64 {
        other.0.wrapping_sub(self.0) as i64
    }
}

impl From<Address> for BlockAddr {
    fn from(a: Address) -> Self {
        a.block()
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_extraction_masks_low_bits() {
        let a = Address::new(0x1234);
        assert_eq!(a.block().base().raw(), 0x1200);
        assert_eq!(a.block_offset(), 0x34);
    }

    #[test]
    fn block_numbering_matches_shift() {
        assert_eq!(Address::new(0).block().number(), 0);
        assert_eq!(Address::new(63).block().number(), 0);
        assert_eq!(Address::new(64).block().number(), 1);
        assert_eq!(Address::new(128).block().number(), 2);
    }

    #[test]
    fn next_prev_are_inverses() {
        let b = BlockAddr::from_number(100);
        assert_eq!(b.next().prev(), b);
        assert_eq!(b.prev().next(), b);
    }

    #[test]
    fn signed_distance_is_antisymmetric() {
        let a = BlockAddr::from_number(10);
        let b = BlockAddr::from_number(14);
        assert_eq!(a.signed_distance(b), 4);
        assert_eq!(b.signed_distance(a), -4);
        assert_eq!(a.signed_distance(a), 0);
    }

    #[test]
    fn offset_moves_by_signed_blocks() {
        let b = BlockAddr::from_number(10);
        assert_eq!(b.offset(3).number(), 13);
        assert_eq!(b.offset(-3).number(), 7);
        assert_eq!(b.offset(0), b);
    }

    #[test]
    fn display_formats_hex() {
        assert_eq!(format!("{}", Address::new(0xff)), "0xff");
        assert_eq!(format!("{}", BlockAddr::from_number(0x2)), "B0x2");
    }

    #[test]
    fn conversions_round_trip() {
        let a = Address::from(0xdead_beefu64);
        let raw: u64 = a.into();
        assert_eq!(raw, 0xdead_beef);
        let b: BlockAddr = a.into();
        assert_eq!(b, a.block());
    }
}
