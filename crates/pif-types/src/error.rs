//! Error types.

use std::error::Error;
use std::fmt;

/// Error returned when a simulator or prefetcher configuration is invalid
/// (e.g. non-power-of-two cache geometry, oversized spatial region).
///
/// # Example
///
/// ```
/// use pif_types::RegionGeometry;
///
/// let err = RegionGeometry::new(30, 30).unwrap_err();
/// assert!(err.to_string().contains("spatial region too large"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates a configuration error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }

    /// The human-readable reason the configuration was rejected.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_round_trips() {
        let e = ConfigError::new("bad geometry");
        assert_eq!(e.message(), "bad geometry");
        assert_eq!(e.to_string(), "bad geometry");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
    }
}
