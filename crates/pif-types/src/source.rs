//! Streaming instruction sources.
//!
//! The simulation engine historically consumed fully-materialized
//! `&[RetiredInstr]` slices, which caps trace length at available RAM.
//! [`InstrSource`] abstracts "a stream of retired instructions" so the
//! engine can pull records lazily — from an in-memory slice, a generator
//! running in another thread, or a compressed trace file being decoded
//! one chunk at a time (out-of-core simulation).

use crate::RetiredInstr;

/// A pull-based stream of retired instructions.
///
/// Every `Iterator<Item = RetiredInstr>` is an `InstrSource` via the
/// blanket implementation, so slices (`trace.iter().copied()`), vectors
/// (`vec.into_iter()`), lazily-generating iterators, and streaming trace
/// decoders all plug into `pif_sim::Engine::run_source` directly.
/// `&mut S` works wherever `S` does (mutable iterator references are
/// iterators), which lets callers keep ownership and inspect the source —
/// e.g. for deferred decode errors — after a run.
///
/// # Example
///
/// ```
/// use pif_types::{Address, InstrSource, RetiredInstr, TrapLevel};
///
/// let mut source = (0..4u64).map(|i| {
///     RetiredInstr::simple(Address::new(i * 4), TrapLevel::Tl0)
/// });
/// let mut n = 0;
/// while let Some(instr) = source.next_instr() {
///     assert_eq!(instr.pc.raw(), n * 4);
///     n += 1;
/// }
/// assert_eq!(n, 4);
/// ```
pub trait InstrSource {
    /// Pulls the next retired instruction, or `None` at end of stream.
    fn next_instr(&mut self) -> Option<RetiredInstr>;

    /// Bounds on the number of instructions remaining, mirroring
    /// [`Iterator::size_hint`]. Purely advisory (e.g. for buffer
    /// presizing); `(0, None)` is always correct.
    fn instrs_hint(&self) -> (u64, Option<u64>) {
        (0, None)
    }
}

impl<I: Iterator<Item = RetiredInstr>> InstrSource for I {
    fn next_instr(&mut self) -> Option<RetiredInstr> {
        self.next()
    }

    fn instrs_hint(&self) -> (u64, Option<u64>) {
        let (lo, hi) = self.size_hint();
        (lo as u64, hi.map(|h| h as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Address, TrapLevel};

    fn instr(pc: u64) -> RetiredInstr {
        RetiredInstr::simple(Address::new(pc), TrapLevel::Tl0)
    }

    #[test]
    fn iterators_are_sources() {
        let v = vec![instr(0), instr(4), instr(8)];
        let mut src = v.clone().into_iter();
        assert_eq!(src.instrs_hint(), (3, Some(3)));
        assert_eq!(src.next_instr(), Some(instr(0)));
        assert_eq!(src.instrs_hint(), (2, Some(2)));
        let mut slice_src = v.iter().copied();
        assert_eq!(slice_src.next_instr(), Some(instr(0)));
    }

    #[test]
    fn mutable_references_are_sources() {
        fn drain(mut s: impl InstrSource) -> u64 {
            let mut n = 0;
            while s.next_instr().is_some() {
                n += 1;
            }
            n
        }
        let mut it = vec![instr(0), instr(4)].into_iter();
        assert_eq!(drain(&mut it), 2);
        assert_eq!(it.next_instr(), None);
    }
}
