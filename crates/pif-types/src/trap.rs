//! Processor trap levels.

use std::fmt;

use serde::{Deserialize, Serialize};

/// SPARC-style processor trap level of a retired instruction.
///
/// The paper (§2.3) separates instruction streams by trap level so that
/// spontaneous hardware interrupt handlers do not fragment the application's
/// temporal streams. We model two levels, which is all the evaluation uses:
/// `Tl0` for ordinary application/OS execution and `Tl1` for hardware
/// interrupt handlers (e.g. network card interrupts, TLB misses).
///
/// # Example
///
/// ```
/// use pif_types::TrapLevel;
///
/// assert!(TrapLevel::Tl0.is_application());
/// assert!(TrapLevel::Tl1.is_interrupt());
/// assert_eq!(TrapLevel::Tl1.index(), 1);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum TrapLevel {
    /// Trap level 0: ordinary application and system-call execution.
    #[default]
    Tl0,
    /// Trap level 1: hardware interrupt handler execution.
    Tl1,
}

impl TrapLevel {
    /// Number of distinct trap levels modeled.
    pub const COUNT: usize = 2;

    /// All trap levels, in ascending order.
    pub const ALL: [TrapLevel; Self::COUNT] = [TrapLevel::Tl0, TrapLevel::Tl1];

    /// Returns a dense index in `0..TrapLevel::COUNT`, suitable for array
    /// indexing (e.g. per-trap-level history buffers).
    pub const fn index(self) -> usize {
        match self {
            TrapLevel::Tl0 => 0,
            TrapLevel::Tl1 => 1,
        }
    }

    /// Returns the trap level with the given dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= TrapLevel::COUNT`.
    pub fn from_index(index: usize) -> Self {
        Self::ALL[index]
    }

    /// True for ordinary application/OS execution (trap level 0).
    pub const fn is_application(self) -> bool {
        matches!(self, TrapLevel::Tl0)
    }

    /// True for hardware interrupt handler execution (trap level 1).
    pub const fn is_interrupt(self) -> bool {
        matches!(self, TrapLevel::Tl1)
    }
}

impl fmt::Display for TrapLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrapLevel::Tl0 => f.write_str("TL0"),
            TrapLevel::Tl1 => f.write_str("TL1"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_round_trip() {
        for (i, tl) in TrapLevel::ALL.iter().enumerate() {
            assert_eq!(tl.index(), i);
            assert_eq!(TrapLevel::from_index(i), *tl);
        }
    }

    #[test]
    #[should_panic]
    fn from_index_rejects_out_of_range() {
        let _ = TrapLevel::from_index(TrapLevel::COUNT);
    }

    #[test]
    fn classification_is_exclusive() {
        for tl in TrapLevel::ALL {
            assert_ne!(tl.is_application(), tl.is_interrupt());
        }
    }

    #[test]
    fn default_is_application_level() {
        assert_eq!(TrapLevel::default(), TrapLevel::Tl0);
    }

    #[test]
    fn display_names() {
        assert_eq!(TrapLevel::Tl0.to_string(), "TL0");
        assert_eq!(TrapLevel::Tl1.to_string(), "TL1");
    }
}
