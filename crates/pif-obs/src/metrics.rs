//! Atomic metric registry: counters, gauges, and log2 histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s over
//! preallocated atomics, so recording is lock-free and allocation-free;
//! the registry's mutex is touched only at registration and snapshot
//! time. All operations use relaxed ordering: metrics are monotone
//! diagnostics, not synchronization primitives, and a snapshot taken
//! concurrently with recording is allowed to be mid-update (each
//! individual cell is still a torn-free atomic read).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log2 buckets in every [`Histogram`].
///
/// Bucket `i` holds values `v` with `floor(log2(max(v, 1))) == i`, i.e.
/// `[2^i, 2^(i+1) - 1]` (values `0` and `1` both land in bucket 0), and
/// the last bucket absorbs everything at or above `2^(HIST_BUCKETS-1)`.
/// 32 buckets cover microsecond latencies up to ~35 minutes and cycle
/// counts up to ~2 billion before clamping.
pub const HIST_BUCKETS: usize = 32;

/// Returns the bucket index for `value` (same formula as
/// `pif_sim::stats::Log2Histogram`).
fn bucket_for(value: u64) -> usize {
    ((63 - value.max(1).leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i`, or `None` for the last
/// (clamping) bucket, whose effective bound is `+Inf`.
pub(crate) fn bucket_bound(i: usize) -> Option<u64> {
    if i + 1 >= HIST_BUCKETS {
        None
    } else {
        Some((1u64 << (i + 1)) - 1)
    }
}

/// A monotonically increasing counter handle.
///
/// Cloning yields another handle to the same underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a counter not attached to any registry (useful in tests).
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments the counter by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Returns the current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge handle.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Creates a gauge not attached to any registry (useful in tests).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Returns the current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCells {
    fn default() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket log2 histogram handle.
///
/// Buckets are preallocated at construction; [`Histogram::record`] is
/// three relaxed atomic RMW ops with no locking or allocation.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramCells>);

impl Histogram {
    /// Creates a histogram not attached to any registry (useful in
    /// tests).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample of `value`.
    pub fn record(&self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` samples of `value`.
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.0.buckets[bucket_for(value)].fetch_add(n, Ordering::Relaxed);
        self.0
            .sum
            .fetch_add(value.wrapping_mul(n), Ordering::Relaxed);
        self.0.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Returns a point-in-time copy of the bucket contents.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (out, cell) in buckets.iter_mut().zip(&self.0.buckets) {
            *out = cell.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.0.sum.load(Ordering::Relaxed),
            max: self.0.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
///
/// Snapshots form a commutative monoid under [`HistogramSnapshot::merge`]
/// (bucket-wise addition, wrapping sum, max of maxima), so per-shard
/// histograms can be folded together in any order or grouping, and
/// merging matches recording the concatenated sample streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts; see [`HIST_BUCKETS`] for the bucket
    /// boundaries.
    pub buckets: [u64; HIST_BUCKETS],
    /// Sum of all recorded values (wrapping — a diagnostics total, not
    /// an accounting one; `u64` microseconds wrap after ~580k years).
    pub sum: u64,
    /// Largest recorded value (exact, not a bucket bound).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean of the recorded values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }

    /// Folds `other` into `self` (bucket-wise addition).
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.wrapping_add(*b);
        }
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// What kind of metric a registry entry is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing counter.
    Counter,
    /// Last-value-wins gauge.
    Gauge,
    /// Fixed-bucket log2 histogram.
    Histogram,
}

impl MetricKind {
    /// Prometheus/JSON type name.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A snapshot of one registered metric's value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram contents (boxed: much larger than the scalar variants).
    Histogram(Box<HistogramSnapshot>),
}

impl MetricValue {
    /// The kind of metric this value came from.
    pub fn kind(&self) -> MetricKind {
        match self {
            MetricValue::Counter(_) => MetricKind::Counter,
            MetricValue::Gauge(_) => MetricKind::Gauge,
            MetricValue::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// One registered metric, captured by [`Registry::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSnapshot {
    /// Metric name (`[a-zA-Z_][a-zA-Z0-9_]*`).
    pub name: String,
    /// One-line help text.
    pub help: String,
    /// Captured value.
    pub value: MetricValue,
}

#[derive(Debug)]
enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Slot {
    fn kind(&self) -> MetricKind {
        match self {
            Slot::Counter(_) => MetricKind::Counter,
            Slot::Gauge(_) => MetricKind::Gauge,
            Slot::Histogram(_) => MetricKind::Histogram,
        }
    }
}

#[derive(Debug)]
struct Entry {
    name: String,
    help: String,
    slot: Slot,
}

/// A named collection of metrics.
///
/// Cloning a `Registry` yields another handle to the same collection;
/// the internal mutex guards only registration and snapshotting, never
/// the recording hot path. Registering a name twice returns a handle to
/// the *existing* metric (and panics if the kinds disagree — that is a
/// programming error, like a type mismatch).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    entries: Arc<Mutex<Vec<Entry>>>,
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register<T: Clone>(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        get: impl Fn(&Slot) -> Option<T>,
        make: impl FnOnce() -> (Slot, T),
    ) -> T {
        assert!(
            valid_name(name),
            "invalid metric name {name:?}: want [a-zA-Z_][a-zA-Z0-9_]*"
        );
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        if let Some(entry) = entries.iter().find(|e| e.name == name) {
            return get(&entry.slot).unwrap_or_else(|| {
                panic!(
                    "metric {name:?} already registered as {}, requested {}",
                    entry.slot.kind().as_str(),
                    kind.as_str()
                )
            });
        }
        let (slot, handle) = make();
        entries.push(Entry {
            name: name.to_owned(),
            help: help.to_owned(),
            slot,
        });
        handle
    }

    /// Registers (or retrieves) a counter named `name`.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.register(
            name,
            help,
            MetricKind::Counter,
            |slot| match slot {
                Slot::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || {
                let c = Counter::new();
                (Slot::Counter(c.clone()), c)
            },
        )
    }

    /// Registers (or retrieves) a gauge named `name`.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.register(
            name,
            help,
            MetricKind::Gauge,
            |slot| match slot {
                Slot::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || {
                let g = Gauge::new();
                (Slot::Gauge(g.clone()), g)
            },
        )
    }

    /// Registers (or retrieves) a histogram named `name`.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.register(
            name,
            help,
            MetricKind::Histogram,
            |slot| match slot {
                Slot::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            || {
                let h = Histogram::new();
                (Slot::Histogram(h.clone()), h)
            },
        )
    }

    /// Captures every registered metric, in registration order.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let entries = self.entries.lock().expect("metrics registry poisoned");
        entries
            .iter()
            .map(|e| MetricSnapshot {
                name: e.name.clone(),
                help: e.help.clone(),
                value: match &e.slot {
                    Slot::Counter(c) => MetricValue::Counter(c.get()),
                    Slot::Gauge(g) => MetricValue::Gauge(g.get()),
                    Slot::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("jobs_total", "Jobs.");
        c.inc();
        c.add(4);
        let g = reg.gauge("queue_depth", "Depth.");
        g.set(7);
        g.set(3);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].value, MetricValue::Counter(5));
        assert_eq!(snap[1].value, MetricValue::Gauge(3));
    }

    #[test]
    fn reregistering_returns_same_cell() {
        let reg = Registry::new();
        let a = reg.counter("hits", "Hits.");
        let b = reg.counter("hits", "Hits.");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(reg.snapshot().len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x", "");
        reg.gauge("x", "");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_name_panics() {
        Registry::new().counter("9lives", "");
    }

    #[test]
    fn histogram_bucketing_matches_log2_contract() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.buckets[0], 2, "0 and 1 share bucket 0");
        assert_eq!(snap.buckets[1], 2, "2 and 3 share bucket 1");
        assert_eq!(snap.buckets[2], 2, "4 and 7 share bucket 2");
        assert_eq!(snap.buckets[3], 1);
        assert_eq!(snap.buckets[HIST_BUCKETS - 1], 1, "u64::MAX clamps");
        assert_eq!(snap.count(), 8);
        assert_eq!(snap.max, u64::MAX);
        let expected_sum = (1u64 + 2 + 3 + 4 + 7 + 8).wrapping_add(u64::MAX);
        assert_eq!(snap.sum, expected_sum, "sum wraps");
    }

    #[test]
    fn histogram_mean_and_bounds() {
        let h = Histogram::new();
        h.record_n(10, 3);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 3);
        assert_eq!(snap.sum, 30);
        assert!((snap.mean() - 10.0).abs() < 1e-12);
        assert_eq!(bucket_bound(0), Some(1));
        assert_eq!(bucket_bound(1), Some(3));
        assert_eq!(bucket_bound(HIST_BUCKETS - 1), None);
    }
}
