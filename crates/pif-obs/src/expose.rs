//! Exposition: renders a [`Registry`] as Prometheus text or JSON.
//!
//! Both renderers are hand-rolled (no serde) and deterministic for a
//! fixed snapshot: metrics appear in registration order, histogram
//! buckets in ascending bound order. [`validate_prometheus`] is the
//! other half of the contract — CI scrapes the daemon's `metrics` verb
//! and rejects malformed exposition text.

use std::fmt::Write as _;

use crate::metrics::{bucket_bound, MetricValue, Registry, HIST_BUCKETS};

/// Renders `registry` in the Prometheus text exposition format
/// (version 0.0.4).
///
/// Counters and gauges become single samples; a histogram named `h`
/// becomes cumulative `h_bucket{le="..."}` samples (upper bounds
/// `2^(i+1)-1` per log2 bucket, then `+Inf`), plus `h_sum` and
/// `h_count`. All-zero interior buckets are still emitted so scrapes
/// are fixed-shape.
pub fn render_prometheus(registry: &Registry) -> String {
    let mut out = String::new();
    for metric in registry.snapshot() {
        let name = &metric.name;
        let kind = metric.value.kind().as_str();
        if !metric.help.is_empty() {
            let _ = writeln!(out, "# HELP {name} {}", metric.help.replace('\n', " "));
        }
        let _ = writeln!(out, "# TYPE {name} {kind}");
        match &metric.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Histogram(h) => {
                let mut cumulative = 0u64;
                for (i, count) in h.buckets.iter().enumerate().take(HIST_BUCKETS - 1) {
                    cumulative += count;
                    let bound = bucket_bound(i).expect("interior bucket has finite bound");
                    let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
                let _ = writeln!(out, "{name}_sum {}", h.sum);
                let _ = writeln!(out, "{name}_count {}", h.count());
            }
        }
    }
    out
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders `registry` as a `pif-obs/v1` JSON document.
///
/// Shape:
///
/// ```json
/// {"schema": "pif-obs/v1", "metrics": [
///   {"name": "...", "type": "counter", "help": "...", "value": 42},
///   {"name": "...", "type": "gauge", "help": "...", "value": 7},
///   {"name": "...", "type": "histogram", "help": "...",
///    "count": 5, "sum": 123, "max": 64, "buckets": [0, 1, ...]}
/// ]}
/// ```
///
/// `buckets` always has [`HIST_BUCKETS`] entries (raw per-bucket counts,
/// not cumulative). All numbers are unsigned integers, so the document
/// round-trips exactly through any JSON parser that preserves `u64`.
pub fn render_json(registry: &Registry) -> String {
    let mut out = String::from("{\"schema\": \"pif-obs/v1\", \"metrics\": [");
    for (i, metric) in registry.snapshot().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"name\": \"");
        escape_json(&metric.name, &mut out);
        let _ = write!(out, "\", \"type\": \"{}\", ", metric.value.kind().as_str());
        out.push_str("\"help\": \"");
        escape_json(&metric.help, &mut out);
        out.push_str("\", ");
        match &metric.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                let _ = write!(out, "\"value\": {v}}}");
            }
            MetricValue::Histogram(h) => {
                let _ = write!(
                    out,
                    "\"count\": {}, \"sum\": {}, \"max\": {}, ",
                    h.count(),
                    h.sum,
                    h.max
                );
                out.push_str("\"buckets\": [");
                for (j, b) in h.buckets.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{b}");
                }
                out.push_str("]}");
            }
        }
    }
    out.push_str("]}");
    out
}

fn valid_sample_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Checks that `text` is well-formed Prometheus exposition as produced
/// by [`render_prometheus`]: every line is a `# HELP`/`# TYPE` comment
/// or a `name[{labels}] value` sample with a valid metric name and an
/// integer value, and every sample's base name was announced by a
/// preceding `# TYPE` line. Returns the first offence.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    let mut typed: Vec<String> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                return Err(format!("line {n}: malformed TYPE comment"));
            };
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("line {n}: unknown metric type {kind:?}"));
            }
            if !valid_sample_name(name) {
                return Err(format!("line {n}: invalid metric name {name:?}"));
            }
            typed.push(name.to_owned());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (name_part, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: sample missing value"))?;
        let base = name_part.split('{').next().unwrap_or(name_part);
        if let Some(labels) = name_part.strip_prefix(base) {
            if !labels.is_empty() && (!labels.starts_with('{') || !labels.ends_with('}')) {
                return Err(format!("line {n}: malformed label set {labels:?}"));
            }
        }
        if !valid_sample_name(base) {
            return Err(format!("line {n}: invalid sample name {base:?}"));
        }
        if value.parse::<u64>().is_err() {
            return Err(format!("line {n}: non-integer sample value {value:?}"));
        }
        let announced = typed.iter().any(|t| {
            base == t
                || (base.starts_with(t.as_str())
                    && matches!(&base[t.len()..], "_bucket" | "_sum" | "_count"))
        });
        if !announced {
            return Err(format!("line {n}: sample {base:?} has no preceding TYPE"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        reg.counter("pif_jobs_total", "Jobs completed.").add(5);
        reg.gauge("pif_queue_depth", "Current queue depth.").set(2);
        let h = reg.histogram("pif_exec_us", "Per-job execution time.");
        h.record(0);
        h.record(3);
        h.record(1_000_000);
        reg
    }

    #[test]
    fn prometheus_text_is_valid_and_cumulative() {
        let text = render_prometheus(&sample_registry());
        validate_prometheus(&text).expect("own exposition must validate");
        assert!(text.contains("# TYPE pif_jobs_total counter\npif_jobs_total 5\n"));
        assert!(text.contains("# TYPE pif_exec_us histogram\n"));
        assert!(text.contains("pif_exec_us_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("pif_exec_us_bucket{le=\"3\"} 2\n"));
        assert!(text.contains("pif_exec_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("pif_exec_us_sum 1000003\n"));
        assert!(text.ends_with("pif_exec_us_count 3\n"));
    }

    #[test]
    fn cumulative_bucket_counts_are_monotone() {
        let text = render_prometheus(&sample_registry());
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("pif_exec_us_bucket")) {
            let value: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(value >= last, "cumulative counts must be monotone: {line}");
            last = value;
        }
        assert_eq!(last, 3, "+Inf bucket must equal the sample count");
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(
            validate_prometheus("pif_x 1\n").is_err(),
            "sample without TYPE"
        );
        assert!(validate_prometheus("# TYPE pif_x counter\npif_x nan\n").is_err());
        assert!(validate_prometheus("# TYPE 9bad counter\n").is_err());
        assert!(validate_prometheus("# TYPE pif_x summary\n").is_err());
        assert!(validate_prometheus("").is_ok(), "empty exposition is fine");
    }

    #[test]
    fn json_document_has_schema_and_buckets() {
        let json = render_json(&sample_registry());
        assert!(json.starts_with("{\"schema\": \"pif-obs/v1\""));
        assert!(json.contains("\"name\": \"pif_exec_us\""));
        assert!(json.contains("\"count\": 3"));
        let buckets = json.split("\"buckets\": [").nth(1).unwrap();
        let buckets = buckets.split(']').next().unwrap();
        assert_eq!(buckets.split(", ").count(), HIST_BUCKETS);
    }
}
