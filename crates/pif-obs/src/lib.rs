//! Observability primitives for the PIF reproduction: metrics, logging,
//! and exposition — with zero dependencies.
//!
//! Three pieces, all hand-rolled (like `pif_lab::json`) so nothing new
//! has to build offline:
//!
//! * [`metrics`] — an atomic metric registry. [`Counter`], [`Gauge`],
//!   and [`Histogram`] are cloneable handles over shared atomics;
//!   recording a sample is one or two relaxed atomic ops with no locks
//!   and no allocation. Histograms use fixed power-of-two (log2)
//!   buckets, preallocated at registration, mirroring
//!   `pif_sim::stats::Log2Histogram` bucketing so engine-side and
//!   service-side distributions line up.
//! * [`expose`] — renders a [`Registry`] snapshot as Prometheus text
//!   exposition or as a `pif-obs/v1` JSON document, and validates
//!   exposition text (used by CI when scraping the daemon).
//! * [`log`] — a leveled structured logger writing `key=value` lines to
//!   stderr, filtered by the `PIF_LOG` environment variable
//!   (`PIF_LOG=debug` or `PIF_LOG=warn,pifd=trace`). Disabled targets
//!   cost one relaxed atomic load and a short scan.
//!
//! Nothing in this crate touches simulated state: metrics and logs are
//! about the *host* (wall-clock latencies, queue depths, cache traffic),
//! and must never leak into a `SweepReport` or any other byte-identical
//! artifact. Callers that honor that contract (the engine's `Probe`
//! layer, `pif_lab::service`) keep every golden stable with
//! observability enabled.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod expose;
pub mod log;
pub mod metrics;

pub use expose::{render_json, render_prometheus, validate_prometheus};
pub use log::Level;
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricKind, MetricSnapshot, MetricValue,
    Registry, HIST_BUCKETS,
};
