//! Leveled structured logging with a `PIF_LOG` environment filter.
//!
//! Log lines are `key=value` records written to stderr:
//!
//! ```text
//! level=info target=pifd msg="job completed" spec=fig10 exec_us=5321
//! ```
//!
//! The filter is read from `PIF_LOG` once, on first use. The syntax is
//! a comma-separated list of `target=level` entries plus an optional
//! bare default level, e.g.:
//!
//! * `PIF_LOG=debug` — everything at debug and above
//! * `PIF_LOG=warn,pifd=trace` — warn by default, trace for the `pifd`
//!   target
//! * unset — [`Level::Warn`] and above
//!
//! Unknown level names are ignored (the entry is dropped), never fatal:
//! a typo in an env var must not take down a daemon. Logging goes to
//! stderr only, so it can never contaminate report bytes written to
//! stdout or to files.

use std::fmt::Display;
use std::io::Write as _;
use std::sync::OnceLock;

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-loss conditions.
    Error,
    /// Suspicious but survivable conditions (default threshold).
    Warn,
    /// High-level lifecycle events.
    Info,
    /// Per-operation detail.
    Debug,
    /// Everything, including hot-path events.
    Trace,
}

impl Level {
    /// Lower-case name as it appears in log lines and `PIF_LOG`.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a level name (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

/// A parsed `PIF_LOG` filter: a default threshold plus per-target
/// overrides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Filter {
    default: Level,
    targets: Vec<(String, Level)>,
}

impl Default for Filter {
    fn default() -> Self {
        Filter {
            default: Level::Warn,
            targets: Vec::new(),
        }
    }
}

impl Filter {
    /// Parses a `PIF_LOG`-style spec. Malformed entries are dropped.
    pub fn parse(spec: &str) -> Filter {
        let mut filter = Filter::default();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            match entry.split_once('=') {
                Some((target, level)) => {
                    if let Some(level) = Level::parse(level) {
                        filter.targets.push((target.trim().to_owned(), level));
                    }
                }
                None => {
                    if let Some(level) = Level::parse(entry) {
                        filter.default = level;
                    }
                }
            }
        }
        filter
    }

    /// Whether a record at `level` for `target` passes this filter.
    /// The most specific matching entry wins (exact target match beats
    /// the default).
    pub fn enabled(&self, level: Level, target: &str) -> bool {
        let threshold = self
            .targets
            .iter()
            .find(|(t, _)| t == target)
            .map(|(_, l)| *l)
            .unwrap_or(self.default);
        level <= threshold
    }
}

static FILTER: OnceLock<Filter> = OnceLock::new();

fn filter() -> &'static Filter {
    FILTER.get_or_init(|| {
        std::env::var("PIF_LOG")
            .map(|spec| Filter::parse(&spec))
            .unwrap_or_default()
    })
}

/// Whether a record at `level` for `target` would be emitted under the
/// process-wide `PIF_LOG` filter. Cheap enough to guard field
/// formatting with.
pub fn enabled(level: Level, target: &str) -> bool {
    filter().enabled(level, target)
}

/// Emits one structured record to stderr if the filter allows it.
///
/// `fields` are appended as `key=value` pairs; values containing
/// whitespace, quotes, or `=` are quoted with embedded quotes escaped.
/// Prefer the level helpers ([`info`], [`warn`], ...) at call sites.
pub fn log(level: Level, target: &str, msg: &str, fields: &[(&str, &dyn Display)]) {
    if !enabled(level, target) {
        return;
    }
    let mut line = String::with_capacity(64);
    line.push_str("level=");
    line.push_str(level.as_str());
    line.push_str(" target=");
    line.push_str(target);
    line.push_str(" msg=");
    push_value(&mut line, msg);
    for (key, value) in fields {
        line.push(' ');
        line.push_str(key);
        line.push('=');
        push_value(&mut line, &value.to_string());
    }
    line.push('\n');
    // A failed stderr write is not actionable from here; drop the record.
    let _ = std::io::stderr().lock().write_all(line.as_bytes());
}

fn push_value(line: &mut String, value: &str) {
    let needs_quoting = value.is_empty()
        || value
            .chars()
            .any(|c| c.is_whitespace() || c == '"' || c == '=');
    if needs_quoting {
        line.push('"');
        for c in value.chars() {
            match c {
                '"' => line.push_str("\\\""),
                '\\' => line.push_str("\\\\"),
                '\n' => line.push_str("\\n"),
                c => line.push(c),
            }
        }
        line.push('"');
    } else {
        line.push_str(value);
    }
}

/// Logs at [`Level::Error`].
pub fn error(target: &str, msg: &str, fields: &[(&str, &dyn Display)]) {
    log(Level::Error, target, msg, fields);
}

/// Logs at [`Level::Warn`].
pub fn warn(target: &str, msg: &str, fields: &[(&str, &dyn Display)]) {
    log(Level::Warn, target, msg, fields);
}

/// Logs at [`Level::Info`].
pub fn info(target: &str, msg: &str, fields: &[(&str, &dyn Display)]) {
    log(Level::Info, target, msg, fields);
}

/// Logs at [`Level::Debug`].
pub fn debug(target: &str, msg: &str, fields: &[(&str, &dyn Display)]) {
    log(Level::Debug, target, msg, fields);
}

/// Logs at [`Level::Trace`].
pub fn trace(target: &str, msg: &str, fields: &[(&str, &dyn Display)]) {
    log(Level::Trace, target, msg, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_filter_is_warn() {
        let f = Filter::default();
        assert!(f.enabled(Level::Error, "x"));
        assert!(f.enabled(Level::Warn, "x"));
        assert!(!f.enabled(Level::Info, "x"));
    }

    #[test]
    fn per_target_override_beats_default() {
        let f = Filter::parse("warn,pifd=trace");
        assert!(f.enabled(Level::Trace, "pifd"));
        assert!(!f.enabled(Level::Info, "engine"));
        assert!(f.enabled(Level::Warn, "engine"));
    }

    #[test]
    fn bare_level_sets_default() {
        let f = Filter::parse("debug");
        assert!(f.enabled(Level::Debug, "anything"));
        assert!(!f.enabled(Level::Trace, "anything"));
    }

    #[test]
    fn malformed_entries_are_dropped_not_fatal() {
        let f = Filter::parse("bogus,=,pifd=verbose,info");
        assert_eq!(
            f,
            Filter {
                default: Level::Info,
                targets: Vec::new(),
            }
        );
    }

    #[test]
    fn values_with_spaces_are_quoted() {
        let mut line = String::new();
        push_value(&mut line, "two words");
        assert_eq!(line, "\"two words\"");
        let mut line = String::new();
        push_value(&mut line, "plain");
        assert_eq!(line, "plain");
        let mut line = String::new();
        push_value(&mut line, "a\"b");
        assert_eq!(line, "\"a\\\"b\"");
    }
}
