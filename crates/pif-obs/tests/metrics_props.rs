//! Property tests for the metrics layer.
//!
//! Histogram snapshots must form a commutative monoid under `merge`
//! (so per-shard histograms fold in any order), and the Prometheus
//! exposition must always validate and keep its cumulative invariants,
//! whatever got recorded.

use pif_obs::{render_prometheus, validate_prometheus, Histogram, HistogramSnapshot, Registry};
use proptest::prelude::*;

fn samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u64>(), 0..64)
}

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

fn merged(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
    let mut out = *a;
    out.merge(b);
    out
}

proptest! {
    #[test]
    fn merge_is_associative(
        a in samples(),
        b in samples(),
        c in samples(),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        let left = merged(&merged(&sa, &sb), &sc);
        let right = merged(&sa, &merged(&sb, &sc));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_is_commutative_with_empty_identity(
        a in samples(),
        b in samples(),
    ) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        prop_assert_eq!(merged(&sa, &sb), merged(&sb, &sa));
        prop_assert_eq!(merged(&sa, &HistogramSnapshot::default()), sa);
    }

    #[test]
    fn merge_matches_recording_concatenation(
        a in samples(),
        b in samples(),
    ) {
        let concat: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(
            merged(&snapshot_of(&a), &snapshot_of(&b)),
            snapshot_of(&concat)
        );
    }

    #[test]
    fn exposition_always_validates(
        counter in any::<u64>(),
        gauge in any::<u64>(),
        values in samples(),
    ) {
        let reg = Registry::new();
        reg.counter("pif_test_total", "A counter.").add(counter);
        reg.gauge("pif_test_depth", "A gauge.").set(gauge);
        let h = reg.histogram("pif_test_us", "A histogram.");
        for &v in &values {
            h.record(v);
        }
        let text = render_prometheus(&reg);
        prop_assert!(validate_prometheus(&text).is_ok(), "invalid exposition:\n{}", text);

        // Cumulative invariants: monotone buckets, +Inf == count.
        let mut last = 0u64;
        let mut inf = None;
        for line in text.lines().filter(|l| l.starts_with("pif_test_us_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            prop_assert!(v >= last);
            last = v;
            if line.contains("+Inf") {
                inf = Some(v);
            }
        }
        prop_assert_eq!(inf, Some(values.len() as u64));
    }
}
