//! The history buffer (§4.2): a circular FIFO of spatial region records.

use std::collections::VecDeque;

use pif_types::SpatialRegionRecord;

/// One history buffer entry: the region record, its trigger's
/// not-prefetched tag, and the cumulative block position at insertion
/// (used for jump-distance accounting, Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoryEntry {
    /// The compacted region record.
    pub record: SpatialRegionRecord,
    /// Fetch-stage tag of the trigger instruction (gates index insertion).
    pub tagged: bool,
    /// Number of instruction-block accesses recorded before this entry
    /// (monotonic across the whole run, not wrapped).
    pub block_position: u64,
}

/// A circular buffer of [`HistoryEntry`]s addressed by *monotonic
/// positions*: appending never invalidates position arithmetic, old
/// positions simply stop resolving once overwritten.
///
/// # Example
///
/// ```
/// use pif_core::HistoryBuffer;
/// use pif_types::{BlockAddr, SpatialRegionRecord};
///
/// let mut h = HistoryBuffer::new(2);
/// let p0 = h.append(SpatialRegionRecord::new(BlockAddr::from_number(1)), true);
/// let p1 = h.append(SpatialRegionRecord::new(BlockAddr::from_number(2)), true);
/// let p2 = h.append(SpatialRegionRecord::new(BlockAddr::from_number(3)), true);
/// assert!(h.get(p0).is_none(), "overwritten by wraparound");
/// assert!(h.get(p1).is_some() && h.get(p2).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct HistoryBuffer {
    entries: VecDeque<HistoryEntry>,
    capacity: usize,
    /// Monotonic position of `entries[0]`.
    base: u64,
    /// Cumulative accessed-block count across all appended records.
    block_position: u64,
}

impl HistoryBuffer {
    /// Creates a history buffer holding `capacity` region records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "history buffer needs >= 1 record");
        HistoryBuffer {
            entries: VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity,
            base: 0,
            block_position: 0,
        }
    }

    /// Appends a record (always performed, §4.2) and returns its position.
    pub fn append(&mut self, record: SpatialRegionRecord, tagged: bool) -> u64 {
        let pos = self.end();
        self.entries.push_back(HistoryEntry {
            record,
            tagged,
            block_position: self.block_position,
        });
        self.block_position += u64::from(record.accessed_blocks());
        if self.entries.len() > self.capacity {
            self.entries.pop_front();
            self.base += 1;
        }
        pos
    }

    /// Position one past the most recent record.
    pub fn end(&self) -> u64 {
        self.base + self.entries.len() as u64
    }

    /// Oldest still-resident position.
    pub fn start(&self) -> u64 {
        self.base
    }

    /// Fetches the entry at `pos`, if it has not been overwritten.
    pub fn get(&self, pos: u64) -> Option<&HistoryEntry> {
        if pos < self.base {
            return None;
        }
        self.entries.get((pos - self.base) as usize)
    }

    /// Number of resident records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Configured capacity in records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cumulative accessed-block count (for jump-distance measurements).
    pub fn block_position(&self) -> u64 {
        self.block_position
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pif_types::{BlockAddr, RegionGeometry};

    fn rec(n: u64) -> SpatialRegionRecord {
        SpatialRegionRecord::new(BlockAddr::from_number(n))
    }

    #[test]
    fn append_returns_monotonic_positions() {
        let mut h = HistoryBuffer::new(4);
        assert_eq!(h.append(rec(1), true), 0);
        assert_eq!(h.append(rec(2), true), 1);
        assert_eq!(h.append(rec(3), false), 2);
        assert_eq!(h.end(), 3);
        assert_eq!(h.get(1).unwrap().record.trigger, BlockAddr::from_number(2));
        assert!(!h.get(2).unwrap().tagged);
    }

    #[test]
    fn wraparound_invalidates_oldest() {
        let mut h = HistoryBuffer::new(3);
        for n in 0..5 {
            h.append(rec(n), true);
        }
        assert_eq!(h.len(), 3);
        assert_eq!(h.start(), 2);
        assert!(h.get(0).is_none());
        assert!(h.get(1).is_none());
        for pos in 2..5 {
            assert_eq!(
                h.get(pos).unwrap().record.trigger,
                BlockAddr::from_number(pos)
            );
        }
    }

    #[test]
    fn block_position_accumulates_accessed_blocks() {
        let g = RegionGeometry::paper_default();
        let mut h = HistoryBuffer::new(8);
        let mut r = rec(100);
        r.record_block(g, BlockAddr::from_number(101));
        r.record_block(g, BlockAddr::from_number(102));
        h.append(r, true); // 3 blocks
        h.append(rec(200), true); // 1 block
        assert_eq!(h.block_position(), 4);
        assert_eq!(h.get(0).unwrap().block_position, 0);
        assert_eq!(h.get(1).unwrap().block_position, 3);
    }

    #[test]
    fn get_past_end_is_none() {
        let mut h = HistoryBuffer::new(2);
        h.append(rec(1), true);
        assert!(h.get(1).is_none());
        assert!(h.get(99).is_none());
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = HistoryBuffer::new(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use pif_types::BlockAddr;
    use proptest::prelude::*;

    proptest! {
        /// FIFO/positions invariant: after any append sequence, exactly the
        /// last min(n, capacity) positions resolve, in insertion order.
        #[test]
        fn fifo_positions_resolve(
            cap in 1usize..16,
            n in 0u64..200,
        ) {
            let mut h = HistoryBuffer::new(cap);
            for i in 0..n {
                let pos = h.append(
                    SpatialRegionRecord::new(BlockAddr::from_number(i)),
                    i % 2 == 0,
                );
                prop_assert_eq!(pos, i);
            }
            prop_assert_eq!(h.end(), n);
            let start = n.saturating_sub(cap as u64);
            for pos in 0..n {
                match h.get(pos) {
                    Some(e) => {
                        prop_assert!(pos >= start);
                        prop_assert_eq!(e.record.trigger, BlockAddr::from_number(pos));
                    }
                    None => prop_assert!(pos < start),
                }
            }
        }
    }
}
