//! Stream address buffers (§4.3): active prediction streams replaying the
//! history buffer ahead of the core's fetch stream.

use std::collections::VecDeque;

use pif_types::{BlockAddr, RegionGeometry, SpatialRegionRecord};

use crate::history::HistoryBuffer;

/// One stream address buffer: a window of consecutive history records
/// belonging to an active prediction stream.
#[derive(Debug, Clone)]
pub struct Sab {
    /// Trap-level index of the stream.
    level: usize,
    /// Next history position to read into the window.
    next_pos: u64,
    /// The tracked window of (position, record) pairs.
    window: VecDeque<(u64, SpatialRegionRecord)>,
    /// LRU timestamp.
    last_use: u64,
    /// Fetches matched by this stream (correct predictions).
    predictions: u64,
    /// Regions the stream has advanced past.
    regions_advanced: u64,
    /// Jump distance (in recorded blocks) captured at allocation (Fig. 7).
    jump_distance_blocks: u64,
}

impl Sab {
    /// Trap level this stream belongs to.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Correct predictions made so far.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Current window contents (positions and records).
    pub fn window(&self) -> impl Iterator<Item = &(u64, SpatialRegionRecord)> {
        self.window.iter()
    }

    /// Number of regions currently held in the window.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }
}

/// Lifetime statistics of a retired (replaced) stream, for the paper's
/// Fig. 7 (jump distance weighted by predictions) and Fig. 9 left (stream
/// length weighted by predictions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedStream {
    /// Trap level of the stream.
    pub level: usize,
    /// Correct predictions the stream made.
    pub predictions: u64,
    /// Length of the stream in regions advanced.
    pub regions_advanced: u64,
    /// Jump distance (recorded blocks between recurrence and recording).
    pub jump_distance_blocks: u64,
}

/// The pool of SABs (paper: four, LRU-replaced).
///
/// # Example
///
/// ```
/// use pif_core::{HistoryBuffer, SabPool};
/// use pif_types::{BlockAddr, RegionGeometry, SpatialRegionRecord};
///
/// let g = RegionGeometry::paper_default();
/// let mut h = HistoryBuffer::new(64);
/// for n in 0..16u64 {
///     h.append(SpatialRegionRecord::new(BlockAddr::from_number(n * 10)), true);
/// }
/// let mut pool = SabPool::new(4, 7);
/// let mut records = Vec::new();
/// pool.allocate(0, 0, 0, g, &h, &mut records);
/// assert!(!records.is_empty(), "allocation yields prefetch candidates");
/// // A fetch of the second region's trigger advances the stream.
/// assert!(pool.advance(0, BlockAddr::from_number(10), g, &h, &mut records));
/// ```
#[derive(Debug, Clone)]
pub struct SabPool {
    sabs: Vec<Sab>,
    count: usize,
    window: usize,
    clock: u64,
}

impl SabPool {
    /// Creates a pool of `count` SABs, each tracking `window` regions.
    ///
    /// # Panics
    ///
    /// Panics if `count` or `window` is zero.
    pub fn new(count: usize, window: usize) -> Self {
        assert!(
            count > 0 && window > 0,
            "SAB pool and window must be non-zero"
        );
        SabPool {
            sabs: Vec::with_capacity(count),
            count,
            window,
            clock: 0,
        }
    }

    /// Attempts to advance an active stream with a fetch of `block` at
    /// trap level `level`. On a match, the window slides to the matched
    /// region and refills from `history`, appending the *newly read*
    /// records (prefetch candidates) to `out`; returns `true`. Returns
    /// `false` if no stream matched. `out` is cleared first either way, so
    /// a caller-owned scratch buffer can be reused allocation-free.
    pub fn advance(
        &mut self,
        level: usize,
        block: BlockAddr,
        geometry: RegionGeometry,
        history: &HistoryBuffer,
        out: &mut Vec<SpatialRegionRecord>,
    ) -> bool {
        out.clear();
        self.clock += 1;
        for sab in &mut self.sabs {
            if sab.level != level {
                continue;
            }
            if let Some(i) = sab
                .window
                .iter()
                .position(|(_, rec)| rec.contains_block(geometry, block))
            {
                sab.predictions += 1;
                sab.last_use = self.clock;
                sab.regions_advanced += i as u64;
                sab.window.drain(..i);
                while sab.window.len() < self.window {
                    match history.get(sab.next_pos) {
                        Some(entry) => {
                            sab.window.push_back((sab.next_pos, entry.record));
                            out.push(entry.record);
                            sab.next_pos += 1;
                        }
                        None => break,
                    }
                }
                return true;
            }
        }
        false
    }

    /// Allocates a new stream replaying history from `pos`, replacing the
    /// LRU SAB if the pool is full. Clears `out` and fills it with the
    /// initial window's records (prefetch candidates); returns the
    /// lifetime stats of any stream that was replaced.
    pub fn allocate(
        &mut self,
        level: usize,
        pos: u64,
        jump_distance_blocks: u64,
        _geometry: RegionGeometry,
        history: &HistoryBuffer,
        out: &mut Vec<SpatialRegionRecord>,
    ) -> Option<CompletedStream> {
        out.clear();
        self.clock += 1;
        // Claim a slot first: an empty one if the pool has room, otherwise
        // the LRU stream's — whose window buffer is reused in place, so a
        // steady-state stream open performs no heap allocation.
        let (slot, completed) = if self.sabs.len() < self.count {
            self.sabs.push(Sab {
                level,
                next_pos: pos,
                window: VecDeque::with_capacity(self.window),
                last_use: self.clock,
                predictions: 0,
                regions_advanced: 0,
                jump_distance_blocks,
            });
            (self.sabs.last_mut().expect("just pushed"), None)
        } else {
            let lru = self
                .sabs
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_use)
                .map(|(i, _)| i)
                .expect("pool is non-empty");
            let old = &mut self.sabs[lru];
            let completed = CompletedStream {
                level: old.level,
                predictions: old.predictions,
                regions_advanced: old.regions_advanced,
                jump_distance_blocks: old.jump_distance_blocks,
            };
            old.level = level;
            old.next_pos = pos;
            old.window.clear();
            old.last_use = self.clock;
            old.predictions = 0;
            old.regions_advanced = 0;
            old.jump_distance_blocks = jump_distance_blocks;
            (old, Some(completed))
        };
        while slot.window.len() < self.window {
            match history.get(slot.next_pos) {
                Some(entry) => {
                    slot.window.push_back((slot.next_pos, entry.record));
                    out.push(entry.record);
                    slot.next_pos += 1;
                }
                None => break,
            }
        }
        completed
    }

    /// Drains all streams' lifetime stats (end of run).
    pub fn drain_completed(&mut self) -> Vec<CompletedStream> {
        self.sabs
            .drain(..)
            .map(|s| CompletedStream {
                level: s.level,
                predictions: s.predictions,
                regions_advanced: s.regions_advanced,
                jump_distance_blocks: s.jump_distance_blocks,
            })
            .collect()
    }

    /// Number of active streams.
    pub fn active(&self) -> usize {
        self.sabs.len()
    }

    /// Iterates over the active SABs (read-only — e.g. for residency
    /// gauges and diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = &Sab> {
        self.sabs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const G: RegionGeometry = RegionGeometry::paper_default();

    fn b(n: u64) -> BlockAddr {
        BlockAddr::from_number(n)
    }

    fn history_of(triggers: &[u64]) -> HistoryBuffer {
        let mut h = HistoryBuffer::new(1024);
        for &t in triggers {
            h.append(SpatialRegionRecord::new(b(t)), true);
        }
        h
    }

    /// Convenience wrappers keeping the assertions below readable.
    fn alloc(
        pool: &mut SabPool,
        level: usize,
        pos: u64,
        jump: u64,
        h: &HistoryBuffer,
    ) -> (Vec<SpatialRegionRecord>, Option<CompletedStream>) {
        let mut out = Vec::new();
        let completed = pool.allocate(level, pos, jump, G, h, &mut out);
        (out, completed)
    }

    fn advance(
        pool: &mut SabPool,
        level: usize,
        block: BlockAddr,
        h: &HistoryBuffer,
    ) -> Option<Vec<SpatialRegionRecord>> {
        let mut out = Vec::new();
        pool.advance(level, block, G, h, &mut out).then_some(out)
    }

    #[test]
    fn allocation_fills_window() {
        let h = history_of(&[10, 20, 30, 40, 50, 60, 70, 80, 90]);
        let mut pool = SabPool::new(4, 7);
        let (records, completed) = alloc(&mut pool, 0, 0, 0, &h);
        assert_eq!(records.len(), 7);
        assert!(completed.is_none());
        assert_eq!(pool.active(), 1);
    }

    #[test]
    fn allocation_near_history_end_truncates() {
        let h = history_of(&[10, 20, 30]);
        let mut pool = SabPool::new(4, 7);
        let (records, _) = alloc(&mut pool, 0, 1, 0, &h);
        assert_eq!(records.len(), 2, "only positions 1..3 exist");
    }

    #[test]
    fn allocation_clears_the_scratch_buffer() {
        let h = history_of(&[10, 20, 30]);
        let mut pool = SabPool::new(4, 2);
        let mut out = vec![SpatialRegionRecord::new(b(999))];
        pool.allocate(0, 0, 0, G, &h, &mut out);
        assert_eq!(out.len(), 2, "stale scratch contents must be dropped");
        assert_eq!(out[0].trigger, b(10));
    }

    #[test]
    fn advance_slides_and_reads_new_records() {
        let h = history_of(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        let mut pool = SabPool::new(4, 3);
        // Allocate window 10,20,30; the fetch of 30's trigger then
        // skips 2 regions and reads 2 more.
        alloc(&mut pool, 0, 0, 0, &h);
        let new = advance(&mut pool, 0, b(30), &h).unwrap();
        assert_eq!(new.len(), 2);
        assert_eq!(new[0].trigger, b(40));
        assert_eq!(new[1].trigger, b(50));
    }

    #[test]
    fn advance_matches_region_members_not_just_triggers() {
        let g = G;
        let mut h = HistoryBuffer::new(64);
        let mut r = SpatialRegionRecord::new(b(100));
        r.record_block(g, b(102));
        h.append(r, true);
        h.append(SpatialRegionRecord::new(b(200)), true);
        let mut pool = SabPool::new(2, 2);
        alloc(&mut pool, 0, 0, 0, &h);
        assert!(
            advance(&mut pool, 0, b(102), &h).is_some(),
            "bit-vector member matches"
        );
        assert!(
            advance(&mut pool, 0, b(104), &h).is_none(),
            "unset bit does not match"
        );
    }

    #[test]
    fn advance_respects_trap_level() {
        let h = history_of(&[10, 20, 30]);
        let mut pool = SabPool::new(2, 2);
        alloc(&mut pool, 1, 0, 0, &h);
        assert!(advance(&mut pool, 0, b(10), &h).is_none());
        assert!(advance(&mut pool, 1, b(10), &h).is_some());
    }

    #[test]
    fn lru_replacement_returns_completed_stats() {
        let h = history_of(&[10, 20, 30, 40, 50]);
        let mut pool = SabPool::new(2, 2);
        alloc(&mut pool, 0, 0, 1, &h);
        alloc(&mut pool, 0, 1, 2, &h);
        // Touch the first stream so the second is LRU.
        assert!(advance(&mut pool, 0, b(10), &h).is_some());
        let (_, completed) = alloc(&mut pool, 0, 2, 3, &h);
        let done = completed.expect("pool full: someone was replaced");
        assert_eq!(
            done.jump_distance_blocks, 2,
            "the untouched stream was evicted"
        );
    }

    #[test]
    fn predictions_and_length_accumulate() {
        let h = history_of(&[10, 20, 30, 40, 50, 60]);
        let mut pool = SabPool::new(1, 3);
        alloc(&mut pool, 0, 0, 0, &h);
        advance(&mut pool, 0, b(10), &h);
        advance(&mut pool, 0, b(20), &h);
        advance(&mut pool, 0, b(30), &h);
        let done = pool.drain_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].predictions, 3);
        assert_eq!(
            done[0].regions_advanced, 2,
            "advanced past regions 10 and 20"
        );
    }

    #[test]
    fn no_match_returns_false_and_keeps_state() {
        let h = history_of(&[10, 20]);
        let mut pool = SabPool::new(1, 2);
        alloc(&mut pool, 0, 0, 0, &h);
        assert!(advance(&mut pool, 0, b(999), &h).is_none());
        // Stream intact: trigger still matches.
        assert!(advance(&mut pool, 0, b(10), &h).is_some());
    }

    #[test]
    #[should_panic]
    fn zero_pool_rejected() {
        let _ = SabPool::new(0, 7);
    }
}
