//! The spatial compactor (§4.1, Fig. 5).
//!
//! Monitors the block addresses of retiring instructions and combines
//! accesses that fall within one *spatial region* — a trigger block plus
//! `N` preceding and `M` succeeding blocks — into a single
//! trigger + bit-vector record. When a retirement falls outside the
//! current region, the finished record is emitted (to the temporal
//! compactor) and a new region opens at the new block.

use pif_types::{BlockAddr, RegionGeometry, SpatialRegionRecord};

/// A spatial region record annotated with the paper's fetch-stage tag:
/// whether the region's *trigger instruction* was **not** explicitly
/// prefetched. The tag gates index-table insertion (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaggedRecord {
    /// The compacted region record.
    pub record: SpatialRegionRecord,
    /// True if the trigger instruction was not brought in by a prefetch.
    pub trigger_not_prefetched: bool,
}

/// The spatial compactor: one per trap level.
///
/// # Example
///
/// ```
/// use pif_core::SpatialCompactor;
/// use pif_types::{BlockAddr, RegionGeometry};
///
/// let mut c = SpatialCompactor::new(RegionGeometry::paper_default());
/// let b = |n| BlockAddr::from_number(n);
/// assert!(c.observe(b(100), true).is_none()); // opens region @100
/// assert!(c.observe(b(101), true).is_none()); // same region
/// let rec = c.observe(b(200), true).unwrap(); // leaves region: emit
/// assert_eq!(rec.record.trigger, b(100));
/// assert_eq!(rec.record.accessed_blocks(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SpatialCompactor {
    geometry: RegionGeometry,
    current: Option<TaggedRecord>,
    last_block: Option<BlockAddr>,
}

impl SpatialCompactor {
    /// Creates a compactor with the given region geometry.
    pub fn new(geometry: RegionGeometry) -> Self {
        SpatialCompactor {
            geometry,
            current: None,
            last_block: None,
        }
    }

    /// The region geometry.
    pub fn geometry(&self) -> RegionGeometry {
        self.geometry
    }

    /// Observes the block of a retiring instruction.
    ///
    /// Consecutive retirements in the same block are collapsed (the PC
    /// collapse of §4.1). Returns the finished region record when the
    /// retirement leaves the current spatial region.
    ///
    /// `not_prefetched` is the instruction's fetch-stage tag; it is
    /// captured for the instruction that *triggers* a region.
    pub fn observe(&mut self, block: BlockAddr, not_prefetched: bool) -> Option<TaggedRecord> {
        // Collapse consecutive same-block retirements.
        if self.last_block == Some(block) {
            return None;
        }
        self.last_block = Some(block);

        match &mut self.current {
            Some(tagged) if tagged.record.spans_block(self.geometry, block) => {
                tagged.record.record_block(self.geometry, block);
                None
            }
            Some(_) => {
                let finished = self.current.take();
                self.current = Some(TaggedRecord {
                    record: SpatialRegionRecord::new(block),
                    trigger_not_prefetched: not_prefetched,
                });
                finished
            }
            None => {
                self.current = Some(TaggedRecord {
                    record: SpatialRegionRecord::new(block),
                    trigger_not_prefetched: not_prefetched,
                });
                None
            }
        }
    }

    /// Emits the in-progress region, if any (end of trace).
    pub fn flush(&mut self) -> Option<TaggedRecord> {
        self.last_block = None;
        self.current.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const G: RegionGeometry = RegionGeometry::paper_default();

    fn b(n: u64) -> BlockAddr {
        BlockAddr::from_number(n)
    }

    fn compactor() -> SpatialCompactor {
        SpatialCompactor::new(G)
    }

    #[test]
    fn paper_figure5_walkthrough() {
        // Figure 5 uses a 1-preceding/2-succeeding region; PCA triggers a
        // region spanning A-1, A, A+1, A+2; PCB is outside.
        let g = RegionGeometry::new(1, 2).unwrap();
        let mut c = SpatialCompactor::new(g);
        let a = 1000u64;
        let bb = 2000u64;
        // Step 1: PCA opens the region.
        assert!(c.observe(b(a), true).is_none());
        // Step 2: PCA+2's block (A) collapses; same block.
        assert!(c.observe(b(a), true).is_none());
        // Step 3: PCA-1 sets the preceding bit.
        assert!(c.observe(b(a - 1), true).is_none());
        // Step 4: PCB leaves the region: record {A: prec=1} emitted.
        let rec = c.observe(b(bb), true).unwrap();
        assert_eq!(rec.record.trigger, b(a));
        assert!(rec.record.contains_block(g, b(a - 1)));
        assert_eq!(rec.record.accessed_blocks(), 2);
    }

    #[test]
    fn consecutive_same_block_collapses() {
        let mut c = compactor();
        c.observe(b(10), true);
        c.observe(b(10), true);
        c.observe(b(10), true);
        let rec = c.observe(b(100), true).unwrap();
        assert_eq!(rec.record.accessed_blocks(), 1);
    }

    #[test]
    fn region_captures_preceding_and_succeeding() {
        let mut c = compactor();
        c.observe(b(100), true);
        c.observe(b(102), true); // +2
        c.observe(b(98), true); // -2
        c.observe(b(105), true); // +5
        let rec = c.observe(b(500), true).unwrap();
        assert_eq!(rec.record.accessed_blocks(), 4);
        assert!(rec.record.contains_block(G, b(98)));
        assert!(rec.record.contains_block(G, b(105)));
    }

    #[test]
    fn block_outside_geometry_closes_region() {
        let mut c = compactor();
        c.observe(b(100), true);
        // +6 is outside a (2,5) region anchored at 100.
        let rec = c.observe(b(106), true).unwrap();
        assert_eq!(rec.record.trigger, b(100));
        // And 106 opened a new region.
        let rec2 = c.observe(b(400), true).unwrap();
        assert_eq!(rec2.record.trigger, b(106));
    }

    #[test]
    fn backward_jump_beyond_preceding_closes_region() {
        let mut c = compactor();
        c.observe(b(100), true);
        let rec = c.observe(b(97), true).unwrap(); // -3: outside
        assert_eq!(rec.record.trigger, b(100));
    }

    #[test]
    fn tag_belongs_to_trigger_not_followers() {
        let mut c = compactor();
        c.observe(b(100), false); // trigger was prefetched
        c.observe(b(101), true); // follower not prefetched: irrelevant
        let rec = c.observe(b(300), true).unwrap();
        assert!(!rec.trigger_not_prefetched);
        let rec2 = c.flush().unwrap();
        assert!(
            rec2.trigger_not_prefetched,
            "new trigger carried its own tag"
        );
    }

    #[test]
    fn flush_emits_open_region() {
        let mut c = compactor();
        assert!(c.flush().is_none());
        c.observe(b(1), true);
        let rec = c.flush().unwrap();
        assert_eq!(rec.record.trigger, b(1));
        assert!(c.flush().is_none());
    }

    #[test]
    fn loop_within_region_records_once() {
        // A tight loop bouncing between blocks 100 and 101 stays in one
        // region and sets one bit — regardless of iteration count.
        let mut c = compactor();
        for _ in 0..100 {
            c.observe(b(100), true);
            c.observe(b(101), true);
        }
        let rec = c.observe(b(900), true).unwrap();
        assert_eq!(rec.record.accessed_blocks(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Conservation: every observed block appears in exactly one
        /// emitted region record (spanning it), and every record's blocks
        /// were observed.
        #[test]
        fn no_block_is_lost(
            blocks in proptest::collection::vec(0u64..2_000, 1..400),
        ) {
            let g = RegionGeometry::paper_default();
            let mut c = SpatialCompactor::new(g);
            let mut emitted: Vec<SpatialRegionRecord> = Vec::new();
            let mut observed: Vec<u64> = Vec::new();
            let mut last = None;
            for n in blocks {
                let blk = BlockAddr::from_number(n);
                if last != Some(n) {
                    observed.push(n);
                }
                last = Some(n);
                if let Some(r) = c.observe(blk, true) {
                    emitted.push(r.record);
                }
            }
            if let Some(r) = c.flush() {
                emitted.push(r.record);
            }
            // Walk the observation sequence and check each block is
            // covered by the record that was open at that time. Rebuild
            // coverage by replaying records in order.
            let mut record_iter = emitted.iter();
            let mut current = record_iter.next();
            let mut idx = 0;
            for &n in &observed {
                let blk = BlockAddr::from_number(n);
                // Advance to the record containing this observation.
                while let Some(r) = current {
                    if r.contains_block(g, blk) {
                        break;
                    }
                    current = record_iter.next();
                    idx += 1;
                }
                prop_assert!(
                    current.is_some(),
                    "block {n} (obs #{idx}) not covered by any region record"
                );
            }
        }
    }
}
