//! Trace-study instrumentation over the PIF mechanism.
//!
//! The paper's Figures 3, 7, 8 and 9 are *trace-based* studies on
//! correct-path, in-order instruction traces (§5: "For the trace-based
//! analyses, we use correct-path, in-order instruction reference
//! traces"). This module runs the real PIF structures (compactors,
//! history, index, SABs) over a retire-order trace — tracking the
//! predictions that would be made without prefetching or perturbing the
//! cache — and reports:
//!
//! * per-trap-level **miss coverage** and **predictor coverage** (Fig. 8
//!   right, Fig. 9 right);
//! * the **jump distance** distribution weighted by correct predictions
//!   (Fig. 7);
//! * the **stream length** distribution weighted by correct predictions
//!   (Fig. 9 left);
//! * **spatial-region density**, **discontinuous runs**, and
//!   **trigger-offset** distributions (Fig. 3, Fig. 8 left).

use pif_sim::cache::InstructionCache;
use pif_sim::{ICacheConfig, Log2Histogram};
use pif_types::{BlockAddr, RegionGeometry, RetiredInstr, TrapLevel};

use crate::config::PifConfig;
use crate::history::HistoryBuffer;
use crate::index::IndexTable;
use crate::sab::SabPool;
use crate::spatial::SpatialCompactor;
use crate::temporal::TemporalCompactor;

/// Coverage and stream-shape measurements from one analysis run.
#[derive(Debug, Clone)]
pub struct PifCoverageReport {
    /// Correct-path block accesses per trap level.
    pub access_total: [u64; TrapLevel::COUNT],
    /// Accesses predicted by an active stream, per trap level.
    pub access_predicted: [u64; TrapLevel::COUNT],
    /// L1-I misses per trap level.
    pub miss_total: [u64; TrapLevel::COUNT],
    /// Misses predicted by an active stream, per trap level.
    pub miss_predicted: [u64; TrapLevel::COUNT],
    /// Jump distances (recorded blocks between stream recurrence and its
    /// recording), weighted by the stream's correct predictions (Fig. 7).
    pub jump_distance: Log2Histogram,
    /// Stream lengths in regions advanced, weighted by correct
    /// predictions (Fig. 9 left).
    pub stream_length: Log2Histogram,
}

impl PifCoverageReport {
    /// Miss coverage for one trap level (Fig. 8 right).
    pub fn miss_coverage(&self, tl: TrapLevel) -> f64 {
        let i = tl.index();
        if self.miss_total[i] == 0 {
            return 0.0;
        }
        self.miss_predicted[i] as f64 / self.miss_total[i] as f64
    }

    /// Predictor coverage for one trap level: fraction of all block
    /// accesses predicted (§5.4 uses this for Fig. 9 right, where stream
    /// heads may hit in the cache).
    pub fn predictor_coverage(&self, tl: TrapLevel) -> f64 {
        let i = tl.index();
        if self.access_total[i] == 0 {
            return 0.0;
        }
        self.access_predicted[i] as f64 / self.access_total[i] as f64
    }

    /// Miss coverage over both trap levels.
    pub fn overall_miss_coverage(&self) -> f64 {
        let total: u64 = self.miss_total.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.miss_predicted.iter().sum::<u64>() as f64 / total as f64
    }

    /// Predictor coverage over both trap levels.
    pub fn overall_predictor_coverage(&self) -> f64 {
        let total: u64 = self.access_total.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.access_predicted.iter().sum::<u64>() as f64 / total as f64
    }
}

/// Runs the PIF predictor over a correct-path trace, measuring coverage
/// without prefetching (the processor is undisturbed, as in §2's studies).
///
/// `warmup_instrs` retirements are processed before counting begins.
#[derive(Debug)]
pub struct PifAnalyzer {
    config: PifConfig,
    icache: InstructionCache,
    levels: Vec<LevelState>,
    sabs: SabPool,
    report: PifCoverageReport,
    counting: bool,
    last_block: Option<BlockAddr>,
    last_tl: TrapLevel,
    /// Reusable scratch for SAB advance/allocate records (discarded; the
    /// analyzer measures prediction, it does not prefetch).
    records_scratch: Vec<pif_types::SpatialRegionRecord>,
}

#[derive(Debug)]
struct LevelState {
    spatial: SpatialCompactor,
    temporal: TemporalCompactor,
    history: HistoryBuffer,
    index: IndexTable,
}

impl PifAnalyzer {
    /// Creates an analyzer with the given PIF design point and L1-I
    /// geometry.
    ///
    /// # Panics
    ///
    /// Panics if either configuration is invalid.
    pub fn new(config: PifConfig, icache: ICacheConfig) -> Self {
        config.validate().expect("invalid PIF configuration");
        PifAnalyzer {
            icache: InstructionCache::new(icache).expect("invalid icache configuration"),
            levels: (0..TrapLevel::COUNT)
                .map(|_| LevelState {
                    spatial: SpatialCompactor::new(config.geometry),
                    temporal: TemporalCompactor::new(config.temporal_entries),
                    history: HistoryBuffer::new(config.history_capacity),
                    index: IndexTable::new(config.index_entries, config.index_ways)
                        .expect("validated geometry"),
                })
                .collect(),
            sabs: SabPool::new(config.sab_count, config.sab_window),
            report: PifCoverageReport {
                access_total: [0; TrapLevel::COUNT],
                access_predicted: [0; TrapLevel::COUNT],
                miss_total: [0; TrapLevel::COUNT],
                miss_predicted: [0; TrapLevel::COUNT],
                jump_distance: Log2Histogram::new(26),
                stream_length: Log2Histogram::new(22),
            },
            counting: false,
            last_block: None,
            last_tl: TrapLevel::Tl0,
            records_scratch: Vec::new(),
            config,
        }
    }

    /// Analyzes a whole trace with the first `warmup_instrs` uncounted.
    pub fn analyze(mut self, trace: &[RetiredInstr], warmup_instrs: usize) -> PifCoverageReport {
        for (i, instr) in trace.iter().enumerate() {
            if !self.counting && i >= warmup_instrs {
                self.counting = true;
            }
            self.step(instr);
        }
        self.finish()
    }

    fn step(&mut self, instr: &RetiredInstr) {
        let tl = instr.trap_level;
        let block = instr.pc.block();

        // Fetch side: block-granularity accesses with redirect on trap
        // switch, mirroring the front end.
        if tl != self.last_tl {
            self.last_block = None;
            self.last_tl = tl;
        }
        if self.last_block != Some(block) {
            self.last_block = Some(block);
            self.on_block_access(tl, block);
        }

        // Retire side: the compactor chain records the stream. All
        // instructions carry the not-prefetched tag (nothing is
        // prefetched in an analysis run).
        let state = &mut self.levels[tl.index()];
        if let Some(finished) = state.spatial.observe(block, true) {
            if let Some(admitted) = state.temporal.filter(finished) {
                let pos = state.history.append(admitted.record, true);
                state.index.insert(admitted.record.trigger, pos);
            }
        }
    }

    fn on_block_access(&mut self, tl: TrapLevel, block: BlockAddr) {
        let level = tl.index();
        let geometry = self.config.geometry;
        let missed = !self.icache.demand_access(block).is_hit();

        let predicted = self.sabs.advance(
            level,
            block,
            geometry,
            &self.levels[level].history,
            &mut self.records_scratch,
        );

        if self.counting {
            self.report.access_total[level] += 1;
            if predicted {
                self.report.access_predicted[level] += 1;
            }
            if missed {
                self.report.miss_total[level] += 1;
                if predicted {
                    self.report.miss_predicted[level] += 1;
                }
            }
        }

        if !predicted {
            // Try to open a stream at the block's most recent record.
            let state = &mut self.levels[level];
            if let Some(pos) = state.index.lookup(block) {
                if let Some(entry) = state.history.get(pos) {
                    let jump = state.history.block_position() - entry.block_position;
                    let completed = self.sabs.allocate(
                        level,
                        pos,
                        jump,
                        geometry,
                        &state.history,
                        &mut self.records_scratch,
                    );
                    if let Some(done) = completed {
                        self.record_stream(
                            done.jump_distance_blocks,
                            done.regions_advanced,
                            done.predictions,
                        );
                    }
                }
            }
        }
    }

    fn record_stream(&mut self, jump: u64, regions: u64, predictions: u64) {
        if predictions == 0 || !self.counting {
            return;
        }
        self.report
            .jump_distance
            .record_weighted(jump.max(1), predictions);
        self.report
            .stream_length
            .record_weighted(regions.max(1), predictions);
    }

    fn finish(mut self) -> PifCoverageReport {
        for done in self.sabs.drain_completed() {
            if done.predictions > 0 && self.counting {
                self.report
                    .jump_distance
                    .record_weighted(done.jump_distance_blocks.max(1), done.predictions);
                self.report
                    .stream_length
                    .record_weighted(done.regions_advanced.max(1), done.predictions);
            }
        }
        self.report
    }
}

/// Spatial-region characterization of a retire-order trace (Fig. 3 and
/// Fig. 8 left): density of unique block accesses per region,
/// discontinuous runs per region, and the distribution of accesses by
/// offset from the trigger.
#[derive(Debug, Clone)]
pub struct RegionReport {
    /// Geometry the regions were formed with.
    pub geometry: RegionGeometry,
    /// `density[k]` = number of regions with exactly `k` accessed blocks
    /// (index 0 unused).
    pub density: Vec<u64>,
    /// `runs[k]` = number of regions with exactly `k` discontinuous runs
    /// (index 0 unused).
    pub runs: Vec<u64>,
    /// Accesses by offset from the trigger: index 0 is offset
    /// `-preceding`, the trigger sits at index `preceding`.
    pub offset_counts: Vec<u64>,
    /// Total regions observed.
    pub total_regions: u64,
}

impl RegionReport {
    /// Fraction of regions whose accessed-block count falls in
    /// `lo..=hi` (Fig. 3's bucket labels).
    pub fn density_fraction(&self, lo: u32, hi: u32) -> f64 {
        if self.total_regions == 0 {
            return 0.0;
        }
        let count: u64 = (lo..=hi.min(self.density.len() as u32 - 1))
            .map(|k| self.density[k as usize])
            .sum();
        count as f64 / self.total_regions as f64
    }

    /// Fraction of regions with `lo..=hi` discontinuous runs.
    pub fn runs_fraction(&self, lo: u32, hi: u32) -> f64 {
        if self.total_regions == 0 {
            return 0.0;
        }
        let count: u64 = (lo..=hi.min(self.runs.len() as u32 - 1))
            .map(|k| self.runs[k as usize])
            .sum();
        count as f64 / self.total_regions as f64
    }

    /// Normalized access frequency at `offset` from the trigger
    /// (Fig. 8 left's y-axis).
    pub fn offset_frequency(&self, offset: i64) -> f64 {
        let idx = offset + i64::from(self.geometry.preceding());
        if idx < 0 || idx as usize >= self.offset_counts.len() {
            return 0.0;
        }
        let total: u64 = self.offset_counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.offset_counts[idx as usize] as f64 / total as f64
    }
}

/// Characterizes the spatial regions of a retire-order trace under
/// `geometry` (application trap level only, matching Fig. 3's application
/// reference analysis). The temporal compactor is applied first so loop
/// iterations do not over-count (as the paper does: "we count only unique
/// accesses to that region").
pub fn analyze_regions(trace: &[RetiredInstr], geometry: RegionGeometry) -> RegionReport {
    let total_blocks = geometry.total_blocks();
    let mut spatial = SpatialCompactor::new(geometry);
    let mut temporal = TemporalCompactor::new(4);
    let mut density = vec![0u64; total_blocks + 1];
    let mut runs = vec![0u64; total_blocks + 1];
    let mut offset_counts = vec![0u64; total_blocks];
    let mut total_regions = 0u64;

    let mut tally = |record: crate::spatial::TaggedRecord,
                     density: &mut Vec<u64>,
                     runs: &mut Vec<u64>,
                     offsets: &mut Vec<u64>| {
        let r = record.record;
        total_regions += 1;
        density[(r.accessed_blocks() as usize).min(total_blocks)] += 1;
        runs[(r.discontinuous_runs(geometry) as usize).min(total_blocks)] += 1;
        let prec = i64::from(geometry.preceding());
        for off in -prec..=i64::from(geometry.succeeding()) {
            if r.bits.contains_offset(geometry, off) {
                offsets[(off + prec) as usize] += 1;
            }
        }
    };

    for instr in trace {
        if instr.trap_level != TrapLevel::Tl0 {
            continue;
        }
        if let Some(finished) = spatial.observe(instr.pc.block(), true) {
            if let Some(admitted) = temporal.filter(finished) {
                tally(admitted, &mut density, &mut runs, &mut offset_counts);
            }
        }
    }
    if let Some(finished) = spatial.flush() {
        if let Some(admitted) = temporal.filter(finished) {
            tally(admitted, &mut density, &mut runs, &mut offset_counts);
        }
    }

    RegionReport {
        geometry,
        density,
        runs,
        offset_counts,
        total_regions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pif_types::Address;

    fn sweep(blocks: u64, reps: u64) -> Vec<RetiredInstr> {
        let mut v = Vec::new();
        for _ in 0..reps {
            for blk in 0..blocks {
                for i in 0..4 {
                    v.push(RetiredInstr::simple(
                        Address::new(blk * 64 + i * 16),
                        TrapLevel::Tl0,
                    ));
                }
            }
        }
        v
    }

    #[test]
    fn repetitive_sweep_reaches_high_coverage() {
        let trace = sweep(4096, 4);
        let report = PifAnalyzer::new(PifConfig::paper_default(), ICacheConfig::paper_default())
            .analyze(&trace, trace.len() / 2);
        assert!(
            report.overall_predictor_coverage() > 0.9,
            "predictor coverage {}",
            report.overall_predictor_coverage()
        );
        assert!(
            report.miss_coverage(TrapLevel::Tl0) > 0.9,
            "miss coverage {}",
            report.miss_coverage(TrapLevel::Tl0)
        );
    }

    #[test]
    fn random_unrepetitive_code_has_low_coverage() {
        // A non-repeating walk: nothing recurs, so nothing is predictable.
        let mut v = Vec::new();
        for blk in 0..20_000u64 {
            v.push(RetiredInstr::simple(
                Address::new(blk * 131 * 64),
                TrapLevel::Tl0,
            ));
        }
        let report = PifAnalyzer::new(PifConfig::paper_default(), ICacheConfig::paper_default())
            .analyze(&v, v.len() / 4);
        assert!(
            report.overall_predictor_coverage() < 0.1,
            "coverage {} on unrepeatable stream",
            report.overall_predictor_coverage()
        );
    }

    #[test]
    fn small_history_hurts_coverage() {
        let trace = sweep(4096, 4);
        let big = PifAnalyzer::new(PifConfig::paper_default(), ICacheConfig::paper_default())
            .analyze(&trace, trace.len() / 2);
        let mut small_cfg = PifConfig::paper_default();
        small_cfg.history_capacity = 128; // 4096-block sweep >> 128 regions
        let small = PifAnalyzer::new(small_cfg, ICacheConfig::paper_default())
            .analyze(&trace, trace.len() / 2);
        assert!(
            small.overall_predictor_coverage() < big.overall_predictor_coverage(),
            "small {} vs big {}",
            small.overall_predictor_coverage(),
            big.overall_predictor_coverage()
        );
    }

    #[test]
    fn jump_and_length_histograms_populate() {
        let trace = sweep(2048, 6);
        let report = PifAnalyzer::new(PifConfig::paper_default(), ICacheConfig::paper_default())
            .analyze(&trace, trace.len() / 3);
        assert!(report.jump_distance.total() > 0);
        assert!(report.stream_length.total() > 0);
    }

    #[test]
    fn region_report_on_sequential_code_is_dense() {
        // Straight-line code through 8-block groups: every region is full
        // and has one run.
        let trace = sweep(4096, 1);
        let report = analyze_regions(&trace, RegionGeometry::paper_default());
        assert!(report.total_regions > 100);
        // Sequential code fills the trigger + all 5 succeeding blocks (the
        // 2 preceding slots stay empty): 6 accessed blocks per region.
        assert!(
            report.density_fraction(5, 8) > 0.9,
            "sequential code fills regions: {:?}",
            &report.density[..]
        );
        assert!(report.runs_fraction(1, 1) > 0.9);
    }

    #[test]
    fn region_report_counts_offsets() {
        let trace = sweep(256, 1);
        let g = RegionGeometry::new(4, 12).unwrap();
        let report = analyze_regions(&trace, g);
        // Sequential code: successor offsets dominate, predecessors ~0.
        assert!(report.offset_frequency(1) > report.offset_frequency(-1));
        assert_eq!(report.offset_frequency(100), 0.0);
    }

    #[test]
    fn tl1_misses_tracked_separately() {
        let mut trace = sweep(512, 2);
        // Interleave handler bursts.
        for rep in 0..50u64 {
            for i in 0..8u64 {
                trace.push(RetiredInstr::simple(
                    Address::new(0x7000_0000 + (rep % 4) * 1024 + i * 64),
                    TrapLevel::Tl1,
                ));
            }
            trace.extend(sweep(64, 1));
        }
        let report = PifAnalyzer::new(PifConfig::paper_default(), ICacheConfig::paper_default())
            .analyze(&trace, 0);
        assert!(report.access_total[1] > 0, "TL1 accesses counted");
    }
}
