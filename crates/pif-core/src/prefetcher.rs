//! The complete PIF prefetcher: compactor chain on the retire side,
//! index-triggered SAB replay on the fetch side (paper Fig. 4 and Fig. 6).

use pif_sim::cache::AccessOutcome;
use pif_sim::{PrefetchContext, Prefetcher};
use pif_types::{BlockAddr, FetchAccess, RetiredInstr, TrapLevel};

use crate::config::PifConfig;
use crate::history::HistoryBuffer;
use crate::index::IndexTable;
use crate::sab::{CompletedStream, SabPool};
use crate::spatial::SpatialCompactor;
use crate::temporal::TemporalCompactor;

/// Per-trap-level recording state (§2.3: streams are recorded in separate
/// temporal streams per trap level).
#[derive(Debug)]
struct LevelState {
    spatial: SpatialCompactor,
    temporal: TemporalCompactor,
    history: HistoryBuffer,
    index: IndexTable,
}

impl LevelState {
    fn new(config: &PifConfig) -> Self {
        LevelState {
            spatial: SpatialCompactor::new(config.geometry),
            temporal: TemporalCompactor::new(config.temporal_entries),
            history: HistoryBuffer::new(config.history_capacity),
            index: IndexTable::new(config.index_entries, config.index_ways)
                .expect("validated index geometry"),
        }
    }
}

/// Proactive Instruction Fetch.
///
/// Attach to the engine via `Engine::run(&trace, Pif::new(config))`.
///
/// # Example
///
/// ```
/// use pif_core::{Pif, PifConfig};
/// use pif_sim::Prefetcher;
///
/// let pif = Pif::new(PifConfig::paper_default());
/// assert_eq!(pif.name(), "PIF");
/// ```
#[derive(Debug)]
pub struct Pif {
    config: PifConfig,
    levels: Vec<LevelState>,
    sabs: SabPool,
    completed: Vec<CompletedStream>,
    /// Streams opened (index hits that allocated a SAB).
    streams_opened: u64,
    /// Reusable scratch for records produced by SAB advance/allocate;
    /// reaches a fixed capacity after warmup (no steady-state allocation).
    records_scratch: Vec<pif_types::SpatialRegionRecord>,
}

impl Pif {
    /// Creates a PIF prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (see [`PifConfig::validate`]).
    pub fn new(config: PifConfig) -> Self {
        config.validate().expect("invalid PIF configuration");
        let levels = if config.separate_trap_levels {
            TrapLevel::COUNT
        } else {
            1
        };
        Pif {
            levels: (0..levels).map(|_| LevelState::new(&config)).collect(),
            sabs: SabPool::new(config.sab_count, config.sab_window),
            completed: Vec::new(),
            streams_opened: 0,
            records_scratch: Vec::new(),
            config,
        }
    }

    /// Maps a trap level to the recording context index.
    fn level_index(&self, tl: TrapLevel) -> usize {
        if self.config.separate_trap_levels {
            tl.index()
        } else {
            0
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PifConfig {
        &self.config
    }

    /// Number of prediction streams opened so far.
    pub fn streams_opened(&self) -> u64 {
        self.streams_opened
    }

    /// Records kept in the history buffer for `level`.
    pub fn history_len(&self, level: TrapLevel) -> usize {
        self.levels[self.level_index(level)].history.len()
    }

    /// Lifetime stats of all completed (replaced) streams plus currently
    /// active ones. Consumes the active streams; intended for end-of-run
    /// analysis.
    pub fn take_stream_stats(&mut self) -> Vec<CompletedStream> {
        let mut out = std::mem::take(&mut self.completed);
        out.extend(self.sabs.drain_completed());
        out
    }
}

/// Issues block-level prefetches for `records`, traversing each bit vector
/// left to right (§4.3): preceding blocks, trigger, then succeeding blocks
/// — the order the core will want them.
fn issue_region_prefetches(
    geometry: pif_types::RegionGeometry,
    records: &[pif_types::SpatialRegionRecord],
    ctx: &mut PrefetchContext<'_>,
) {
    for rec in records {
        for block in rec.blocks_in_order(geometry) {
            ctx.prefetch(block);
        }
    }
}

impl Prefetcher for Pif {
    fn name(&self) -> &'static str {
        "PIF"
    }

    fn on_access_outcome(
        &mut self,
        access: &FetchAccess,
        block: BlockAddr,
        _outcome: AccessOutcome,
        ctx: &mut PrefetchContext<'_>,
    ) {
        let level = self.level_index(access.trap_level);
        let geometry = self.config.geometry;

        // 1. An active stream that contains this fetch advances and
        //    prefetches the records that slid into its window. Records are
        //    written into the reusable scratch buffer (no allocation).
        if self.sabs.advance(
            level,
            block,
            geometry,
            &self.levels[level].history,
            &mut self.records_scratch,
        ) {
            issue_region_prefetches(geometry, &self.records_scratch, ctx);
            return;
        }

        // 2. Fetches of blocks that were *not* explicitly prefetched
        //    trigger the prediction mechanism (§4.3): look the block up in
        //    the index and start replaying at its most recent record.
        if ctx.was_prefetched(block) {
            return;
        }
        let state = &mut self.levels[level];
        let Some(pos) = state.index.lookup(block) else {
            return;
        };
        let Some(entry) = state.history.get(pos) else {
            return; // stale pointer: record overwritten
        };
        let jump = state.history.block_position() - entry.block_position;
        let completed = self.sabs.allocate(
            level,
            pos,
            jump,
            geometry,
            &state.history,
            &mut self.records_scratch,
        );
        self.streams_opened += 1;
        if let Some(done) = completed {
            self.completed.push(done);
        }
        issue_region_prefetches(geometry, &self.records_scratch, ctx);
    }

    fn on_retire(
        &mut self,
        instr: &RetiredInstr,
        prefetched: bool,
        _ctx: &mut PrefetchContext<'_>,
    ) {
        let level = self.level_index(instr.trap_level);
        let state = &mut self.levels[level];
        let Some(finished) = state.spatial.observe(instr.pc.block(), !prefetched) else {
            return;
        };
        let Some(admitted) = state.temporal.filter(finished) else {
            return;
        };
        // History insertion is unconditional; index insertion requires the
        // trigger's not-prefetched tag (§4.2).
        let pos = state
            .history
            .append(admitted.record, admitted.trigger_not_prefetched);
        if admitted.trigger_not_prefetched {
            state.index.insert(admitted.record.trigger, pos);
        }
    }

    fn gauges(&self, emit: &mut dyn FnMut(&'static str, u64)) {
        // SAB residency (how many of the paper's four stream buffers are
        // live) and per-stream window occupancy — read-only snapshots,
        // sampled by the engine only when a probe is enabled.
        emit("sab_active_streams", self.sabs.active() as u64);
        for sab in self.sabs.iter() {
            emit("sab_window_regions", sab.window_len() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pif_sim::RunOptions;
    use pif_sim::{Engine, EngineConfig, NoPrefetcher};
    use pif_types::Address;

    fn sweep_trace(blocks: u64, reps: u64) -> Vec<RetiredInstr> {
        // A large repetitive sweep: footprint > L1-I so the baseline
        // thrashes, but perfectly repetitive so PIF should cover it.
        let mut v = Vec::new();
        for _ in 0..reps {
            for blk in 0..blocks {
                for i in 0..16 {
                    v.push(RetiredInstr::simple(
                        Address::new(blk * 64 + i * 4),
                        TrapLevel::Tl0,
                    ));
                }
            }
        }
        v
    }

    #[test]
    fn pif_covers_repetitive_thrashing_workload() {
        let trace = sweep_trace(2048, 4);
        let engine = Engine::new(EngineConfig::paper_default());
        let base = engine.run(trace.iter().copied(), NoPrefetcher, RunOptions::new());
        let pif = engine.run(
            trace.iter().copied(),
            Pif::new(PifConfig::paper_default()),
            RunOptions::new(),
        );
        assert!(
            base.fetch.demand_misses > 4000,
            "baseline must thrash: {} misses",
            base.fetch.demand_misses
        );
        assert!(
            pif.miss_coverage() > 0.6,
            "PIF coverage {} too low",
            pif.miss_coverage()
        );
        assert!(
            pif.speedup_over(&base) > 1.05,
            "PIF speedup {}",
            pif.speedup_over(&base)
        );
    }

    #[test]
    fn pif_records_streams_per_trap_level() {
        let mut trace = sweep_trace(64, 1);
        for i in 0..640u64 {
            trace.push(RetiredInstr::simple(
                Address::new(0x7000_0000 + i * 4),
                TrapLevel::Tl1,
            ));
        }
        let mut pif = Pif::new(PifConfig::paper_default());
        let mut harness = pif_sim::PrefetcherHarness::new(pif_sim::ICacheConfig::paper_default());
        for instr in &trace {
            harness.drive(|ctx| pif.on_retire(instr, false, ctx));
        }
        assert!(pif.history_len(TrapLevel::Tl0) > 0);
        assert!(pif.history_len(TrapLevel::Tl1) > 0);
    }

    #[test]
    fn fetch_of_recorded_trigger_opens_stream_and_prefetches() {
        let mut pif = Pif::new(PifConfig::paper_default());
        let mut harness = pif_sim::PrefetcherHarness::new(pif_sim::ICacheConfig::paper_default());
        // Record a retire-order sweep over far-apart regions twice so the
        // triggers land in the index.
        let triggers: Vec<u64> = (0..32).map(|i| 1_000 + i * 100).collect();
        for _ in 0..2 {
            for &t in &triggers {
                for off in 0..3u64 {
                    let instr = RetiredInstr::simple(Address::new((t + off) * 64), TrapLevel::Tl0);
                    harness.drive(|ctx| pif.on_retire(&instr, false, ctx));
                }
            }
        }
        // A fetch of the first trigger (not prefetched) must open a stream
        // and prefetch upcoming blocks.
        let access = FetchAccess::correct(Address::new(1_000 * 64), TrapLevel::Tl0);
        let requests = harness.drive(|ctx| {
            pif.on_access_outcome(&access, access.pc.block(), AccessOutcome::Miss, ctx);
        });
        assert!(pif.streams_opened() >= 1);
        assert!(
            requests.len() >= 3,
            "expected multi-region prefetch burst, got {requests:?}"
        );
        // The stream replays the recorded order: next trigger present.
        assert!(requests.contains(&BlockAddr::from_number(1_100)));
    }

    #[test]
    fn prefetched_fetches_do_not_open_streams() {
        let mut pif = Pif::new(PifConfig::paper_default());
        let mut harness = pif_sim::PrefetcherHarness::new(pif_sim::ICacheConfig::paper_default());
        // Record something so the index is non-empty.
        for rep in 0..2 {
            for t in 0..16u64 {
                let instr =
                    RetiredInstr::simple(Address::new((1_000 + t * 50) * 64), TrapLevel::Tl0);
                harness.drive(|ctx| pif.on_retire(&instr, false, ctx));
            }
            let _ = rep;
        }
        // Mark the trigger block as prefetched in the cache.
        harness
            .icache_mut()
            .fill_prefetch(BlockAddr::from_number(1_000));
        let access = FetchAccess::correct(Address::new(1_000 * 64), TrapLevel::Tl0);
        let before = pif.streams_opened();
        harness.drive(|ctx| {
            pif.on_access_outcome(&access, access.pc.block(), AccessOutcome::Hit, ctx);
        });
        assert_eq!(
            pif.streams_opened(),
            before,
            "explicitly-prefetched fetches must not re-trigger prediction"
        );
    }

    #[test]
    fn pif_beats_no_prefetch_on_synthetic_workload() {
        use pif_workloads::WorkloadProfile;
        let trace = WorkloadProfile::oltp_db2().scaled(0.05).generate(150_000);
        let engine = Engine::new(EngineConfig::paper_default());
        let base = engine.run(
            trace.instrs().iter().copied(),
            NoPrefetcher,
            RunOptions::new(),
        );
        let pif = engine.run(
            trace.instrs().iter().copied(),
            Pif::new(PifConfig::paper_default()),
            RunOptions::new(),
        );
        assert!(
            pif.fetch.demand_misses < base.fetch.demand_misses,
            "PIF {} vs baseline {} misses",
            pif.fetch.demand_misses,
            base.fetch.demand_misses
        );
    }
}
