//! Proactive Instruction Fetch (PIF) — the paper's primary contribution.
//!
//! PIF records the **correct-path, retire-order** instruction stream and
//! replays it to prefetch instruction blocks before the fetch unit needs
//! them. Four hardware structures (paper Fig. 4) are modeled faithfully:
//!
//! * the [`SpatialCompactor`]: collapses retired PCs into *spatial region
//!   records* — a trigger block plus a bit vector of accessed neighbours
//!   (§4.1, Fig. 5);
//! * the [`TemporalCompactor`]: a small MRU list that filters out records
//!   repeated by tight loops (§4.1);
//! * the [`HistoryBuffer`]: a circular buffer storing the compacted
//!   retire-order region sequence (§4.2);
//! * the [`IndexTable`]: maps a trigger block to its most recent history
//!   position (§4.2);
//! * the [`SabPool`] of *stream address buffers*: active prediction
//!   streams that replay history records and issue prefetches, advancing
//!   as the core's fetches confirm the stream (§4.3).
//!
//! `SabPool::advance` and `SabPool::allocate` are *sink-style*: they
//! write the records entering a stream's window into a caller-owned
//! scratch `Vec` (cleared on entry) instead of returning a fresh
//! allocation, so the per-fetch prediction path is allocation-free in
//! steady state — stream opens even reuse the replaced stream's window
//! buffer.
//!
//! Streams are recorded **separately per trap level** (§2.3), so interrupt
//! handlers do not fragment application streams.
//!
//! [`Pif`] wires these together as a `pif_sim::Prefetcher`, pluggable into
//! the simulation engine; [`analysis::PifAnalyzer`] instruments the same
//! mechanism for the paper's trace studies (Figures 3, 7, 8, 9).
//!
//! # Example
//!
//! ```
//! use pif_core::{Pif, PifConfig};
//! use pif_sim::{Engine, EngineConfig, NoPrefetcher, RunOptions};
//! use pif_workloads::WorkloadProfile;
//!
//! // A slice of OLTP-DB2 with enough code to pressure the 64 KB L1-I.
//! let trace = WorkloadProfile::oltp_db2().scaled(0.3).generate(300_000);
//! let engine = Engine::new(EngineConfig::paper_default());
//! let base = engine.run(trace.instrs().iter().copied(), NoPrefetcher, RunOptions::new().warmup(100_000));
//! let pif = engine.run(trace.instrs().iter().copied(), Pif::new(PifConfig::default()), RunOptions::new().warmup(100_000));
//! assert!(pif.miss_coverage() > 0.5, "PIF covers most would-be misses");
//! assert!(pif.speedup_over(&base) > 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
mod config;
mod history;
mod index;
mod prefetcher;
mod sab;
pub mod shared;
mod spatial;
mod temporal;

pub use config::PifConfig;
pub use history::{HistoryBuffer, HistoryEntry};
pub use index::IndexTable;
pub use prefetcher::Pif;
pub use sab::{Sab, SabPool};
pub use spatial::{SpatialCompactor, TaggedRecord};
pub use temporal::{spatial_tagged, TemporalCompactor};
