//! Shared-storage PIF: one history buffer + index serving multiple cores.
//!
//! The paper (§4) notes that "storage benefits can be attained by sharing
//! predictor structures among multiple cores or virtualizing the
//! predictor storage in the L2 cache", but evaluates dedicated per-core
//! hardware for clarity. This module implements the sharing extension:
//! cores running the same server binary record into, and predict from,
//! one [`SharedPifStorage`], so 16 cores pay for one history buffer
//! instead of 16.
//!
//! Per-core state (spatial/temporal compactors and SABs) stays private —
//! those track a single core's pipeline. Only the learned history and its
//! index are shared, which is also where nearly all the storage lives.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use pif_core::shared::{SharedPif, SharedPifStorage};
//! use pif_core::PifConfig;
//! use pif_sim::Prefetcher;
//!
//! let storage = Arc::new(SharedPifStorage::new(PifConfig::paper_default()));
//! let core0 = SharedPif::attach(Arc::clone(&storage));
//! let core1 = SharedPif::attach(Arc::clone(&storage));
//! assert_eq!(core0.name(), "PIF-shared");
//! drop((core0, core1));
//! ```

use std::sync::Arc;

use parking_lot::RwLock;

use pif_sim::cache::AccessOutcome;
use pif_sim::{PrefetchContext, Prefetcher};
use pif_types::{BlockAddr, FetchAccess, RetiredInstr, TrapLevel};

use crate::config::PifConfig;
use crate::history::HistoryBuffer;
use crate::index::IndexTable;
use crate::sab::SabPool;
use crate::spatial::SpatialCompactor;
use crate::temporal::TemporalCompactor;

/// One trap level's shared learned state.
#[derive(Debug)]
struct SharedLevel {
    history: HistoryBuffer,
    index: IndexTable,
}

/// History and index shared by all attached cores.
#[derive(Debug)]
pub struct SharedPifStorage {
    config: PifConfig,
    levels: Vec<RwLock<SharedLevel>>,
}

impl SharedPifStorage {
    /// Creates shared storage for the given design point.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid.
    pub fn new(config: PifConfig) -> Self {
        config.validate().expect("invalid PIF configuration");
        let levels = if config.separate_trap_levels {
            TrapLevel::COUNT
        } else {
            1
        };
        SharedPifStorage {
            config,
            levels: (0..levels)
                .map(|_| {
                    RwLock::new(SharedLevel {
                        history: HistoryBuffer::new(config.history_capacity),
                        index: IndexTable::new(config.index_entries, config.index_ways)
                            .expect("validated geometry"),
                    })
                })
                .collect(),
        }
    }

    /// The design point.
    pub fn config(&self) -> &PifConfig {
        &self.config
    }

    /// Records currently held for `level` (for diagnostics).
    pub fn history_len(&self, level: TrapLevel) -> usize {
        let idx = if self.config.separate_trap_levels {
            level.index()
        } else {
            0
        };
        self.levels[idx].read().history.len()
    }
}

/// Per-core private compaction state.
#[derive(Debug)]
struct CoreLevel {
    spatial: SpatialCompactor,
    temporal: TemporalCompactor,
}

/// A core's view of shared PIF storage: private compactors and SABs,
/// shared history/index.
#[derive(Debug)]
pub struct SharedPif {
    storage: Arc<SharedPifStorage>,
    locals: Vec<CoreLevel>,
    sabs: SabPool,
    /// Reusable scratch for SAB advance/allocate records.
    records_scratch: Vec<pif_types::SpatialRegionRecord>,
}

impl SharedPif {
    /// Attaches a core to shared storage.
    pub fn attach(storage: Arc<SharedPifStorage>) -> Self {
        let config = storage.config;
        let levels = storage.levels.len();
        SharedPif {
            storage,
            locals: (0..levels)
                .map(|_| CoreLevel {
                    spatial: SpatialCompactor::new(config.geometry),
                    temporal: TemporalCompactor::new(config.temporal_entries),
                })
                .collect(),
            sabs: SabPool::new(config.sab_count, config.sab_window),
            records_scratch: Vec::new(),
        }
    }

    fn level_index(&self, tl: TrapLevel) -> usize {
        if self.storage.config.separate_trap_levels {
            tl.index()
        } else {
            0
        }
    }

    fn issue_region_prefetches(&self, ctx: &mut PrefetchContext<'_>) {
        for rec in &self.records_scratch {
            for block in rec.blocks_in_order(self.storage.config.geometry) {
                ctx.prefetch(block);
            }
        }
    }
}

impl Prefetcher for SharedPif {
    fn name(&self) -> &'static str {
        "PIF-shared"
    }

    fn on_access_outcome(
        &mut self,
        access: &FetchAccess,
        block: BlockAddr,
        _outcome: AccessOutcome,
        ctx: &mut PrefetchContext<'_>,
    ) {
        let level = self.level_index(access.trap_level);
        let geometry = self.storage.config.geometry;

        // Advance active streams under a read lock.
        {
            let shared = self.storage.levels[level].read();
            if self.sabs.advance(
                level,
                block,
                geometry,
                &shared.history,
                &mut self.records_scratch,
            ) {
                drop(shared);
                self.issue_region_prefetches(ctx);
                return;
            }
        }

        if ctx.was_prefetched(block) {
            return;
        }

        // Open a new stream: index lookup mutates LRU state, so take the
        // write lock.
        {
            let mut shared = self.storage.levels[level].write();
            let Some(pos) = shared.index.lookup(block) else {
                return;
            };
            let Some(entry) = shared.history.get(pos) else {
                return;
            };
            let jump = shared.history.block_position() - entry.block_position;
            let _completed = self.sabs.allocate(
                level,
                pos,
                jump,
                geometry,
                &shared.history,
                &mut self.records_scratch,
            );
        }
        self.issue_region_prefetches(ctx);
    }

    fn on_retire(
        &mut self,
        instr: &RetiredInstr,
        prefetched: bool,
        _ctx: &mut PrefetchContext<'_>,
    ) {
        let level = self.level_index(instr.trap_level);
        let local = &mut self.locals[level];
        let Some(finished) = local.spatial.observe(instr.pc.block(), !prefetched) else {
            return;
        };
        let Some(admitted) = local.temporal.filter(finished) else {
            return;
        };
        let mut shared = self.storage.levels[level].write();
        let pos = shared
            .history
            .append(admitted.record, admitted.trigger_not_prefetched);
        if admitted.trigger_not_prefetched {
            shared.index.insert(admitted.record.trigger, pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pif_sim::multicore::run_cmp;
    use pif_sim::RunOptions;
    use pif_sim::{Engine, EngineConfig, NoPrefetcher};
    use pif_types::Address;

    fn sweep(blocks: u64, reps: u64, stride: u64) -> Vec<RetiredInstr> {
        let mut v = Vec::new();
        for _ in 0..reps {
            for blk in 0..blocks {
                for i in 0..8 {
                    v.push(RetiredInstr::simple(
                        Address::new((blk + stride) * 64 + i * 8),
                        TrapLevel::Tl0,
                    ));
                }
            }
        }
        v
    }

    #[test]
    fn shared_pif_prefetches_like_private_pif() {
        let trace = sweep(2048, 4, 0);
        let engine = Engine::new(EngineConfig::paper_default());
        let base = engine.run(trace.iter().copied(), NoPrefetcher, RunOptions::new());
        let storage = Arc::new(SharedPifStorage::new(PifConfig::paper_default()));
        let shared = engine.run(
            trace.iter().copied(),
            SharedPif::attach(storage),
            RunOptions::new(),
        );
        let private = engine.run(
            trace.iter().copied(),
            crate::Pif::new(PifConfig::paper_default()),
            RunOptions::new(),
        );
        assert!(shared.miss_coverage() > 0.6, "{}", shared.miss_coverage());
        assert!(
            (shared.miss_coverage() - private.miss_coverage()).abs() < 0.05,
            "single-core shared ({}) should match private ({})",
            shared.miss_coverage(),
            private.miss_coverage()
        );
        assert!(shared.speedup_over(&base) > 1.05);
    }

    #[test]
    fn cores_learn_from_each_other() {
        // Core 0 executes the code first; core 1 starts later but fetches
        // the same code. With shared storage, core 1's streams are warm
        // from the start of its second pass even though IT never... in
        // fact even its first pass can hit streams recorded by core 0.
        // We approximate by running cores over identical traces in a CMP
        // and checking aggregate coverage stays high.
        let storage = Arc::new(SharedPifStorage::new(PifConfig::paper_default()));
        let report = run_cmp(
            &EngineConfig::paper_default(),
            4,
            0,
            |_| sweep(2048, 3, 0),
            |_| SharedPif::attach(Arc::clone(&storage)),
        );
        let cov = report.miss_coverage();
        assert!(cov.mean > 0.5, "shared coverage {cov:?}");
        assert!(storage.history_len(TrapLevel::Tl0) > 0);
    }

    #[test]
    fn shared_storage_is_thread_safe() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedPifStorage>();
        fn assert_send<T: Send>() {}
        assert_send::<SharedPif>();
    }

    #[test]
    fn attach_does_not_duplicate_storage() {
        let storage = Arc::new(SharedPifStorage::new(PifConfig::paper_default()));
        let _a = SharedPif::attach(Arc::clone(&storage));
        let _b = SharedPif::attach(Arc::clone(&storage));
        assert_eq!(Arc::strong_count(&storage), 3);
    }
}
