//! PIF configuration.

use serde::{Deserialize, Serialize};

use pif_types::{ConfigError, RegionGeometry};

/// Configuration of the PIF hardware structures, defaulting to the paper's
/// chosen design points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PifConfig {
    /// Spatial region geometry (paper default: 2 preceding, 5 succeeding —
    /// 8 blocks, Fig. 8).
    pub geometry: RegionGeometry,
    /// Temporal compactor capacity: how many most-recent region records
    /// are checked for loop-repetition filtering (§4.1, "a small number").
    pub temporal_entries: usize,
    /// History buffer capacity in region records per trap level (§5.4:
    /// "little justification for growing temporal stream storage beyond
    /// 32K regions").
    pub history_capacity: usize,
    /// Index table entries (trigger block → history position).
    pub index_entries: usize,
    /// Index table associativity.
    pub index_ways: usize,
    /// Number of stream address buffers (§4.3 footnote: four SABs).
    pub sab_count: usize,
    /// SAB window: consecutive regions tracked per stream (§4.3 footnote:
    /// seven regions).
    pub sab_window: usize,
    /// Record streams separately per processor trap level (§2.3). The
    /// paper's design; disable to quantify how much interrupt handlers
    /// fragment a unified stream (the Fig. 2 Retire-vs-RetireSep gap).
    pub separate_trap_levels: bool,
}

impl PifConfig {
    /// The paper's design point.
    pub fn paper_default() -> Self {
        PifConfig {
            geometry: RegionGeometry::paper_default(),
            temporal_entries: 4,
            history_capacity: 32 * 1024,
            index_entries: 8 * 1024,
            index_ways: 4,
            sab_count: 4,
            sab_window: 7,
            separate_trap_levels: true,
        }
    }

    /// Returns the configuration with a new history-buffer capacity (in
    /// region records per trap level) — a config-sweep setter for the
    /// Fig. 9 history axis.
    #[must_use]
    pub const fn with_history_capacity(mut self, history_capacity: usize) -> Self {
        self.history_capacity = history_capacity;
        self
    }

    /// Returns the configuration with a new index-table entry count.
    #[must_use]
    pub const fn with_index_entries(mut self, index_entries: usize) -> Self {
        self.index_entries = index_entries;
        self
    }

    /// Returns the configuration with a new SAB-pool size (stream depth).
    #[must_use]
    pub const fn with_sab_count(mut self, sab_count: usize) -> Self {
        self.sab_count = sab_count;
        self
    }

    /// Returns the configuration with a new SAB stream-window length
    /// (consecutive regions tracked per stream).
    #[must_use]
    pub const fn with_sab_window(mut self, sab_window: usize) -> Self {
        self.sab_window = sab_window;
        self
    }

    /// Returns the configuration with a new spatial-region geometry.
    #[must_use]
    pub const fn with_geometry(mut self, geometry: RegionGeometry) -> Self {
        self.geometry = geometry;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on zero-sized structures or an index
    /// geometry whose set count is not a power of two.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.temporal_entries == 0 {
            return Err(ConfigError::new("temporal compactor needs >= 1 entry"));
        }
        if self.history_capacity == 0 {
            return Err(ConfigError::new("history buffer needs >= 1 record"));
        }
        if self.sab_count == 0 || self.sab_window == 0 {
            return Err(ConfigError::new("SAB pool and window must be non-zero"));
        }
        if self.index_ways == 0
            || !self.index_entries.is_multiple_of(self.index_ways)
            || !(self.index_entries / self.index_ways).is_power_of_two()
        {
            return Err(ConfigError::new("index table geometry invalid"));
        }
        Ok(())
    }

    /// Approximate storage cost in bytes: history records (~5 B each:
    /// 33-bit trigger + 7-bit vector) plus index entries (~7 B each), per
    /// trap level — matching the paper's storage discussion (§5.4).
    pub fn approx_storage_bytes(&self) -> usize {
        let per_level = self.history_capacity * 5 + self.index_entries * 7;
        per_level * pif_types::TrapLevel::COUNT
    }
}

impl Default for PifConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_validates() {
        assert!(PifConfig::paper_default().validate().is_ok());
    }

    #[test]
    fn paper_default_matches_published_design_point() {
        let c = PifConfig::paper_default();
        assert_eq!(c.geometry.total_blocks(), 8);
        assert_eq!(c.history_capacity, 32 * 1024);
        assert_eq!(c.sab_count, 4);
        assert_eq!(c.sab_window, 7);
        assert!(c.separate_trap_levels);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = PifConfig::paper_default();
        c.temporal_entries = 0;
        assert!(c.validate().is_err());

        let mut c = PifConfig::paper_default();
        c.history_capacity = 0;
        assert!(c.validate().is_err());

        let mut c = PifConfig::paper_default();
        c.sab_window = 0;
        assert!(c.validate().is_err());

        let mut c = PifConfig::paper_default();
        c.index_entries = 3000; // 750 sets: not a power of two
        assert!(c.validate().is_err());
    }

    #[test]
    fn storage_estimate_is_plausible() {
        // 32K regions x ~5B x 2 levels + index: a few hundred KB, in line
        // with the paper's "considerable chip real-estate" discussion.
        let bytes = PifConfig::paper_default().approx_storage_bytes();
        assert!(bytes > 100 * 1024 && bytes < 2 * 1024 * 1024);
    }
}
