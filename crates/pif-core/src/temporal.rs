//! The temporal compactor (§4.1, Fig. 5 steps 4-7).
//!
//! Tight loops whose footprint spans several spatial regions re-emit the
//! same region records every iteration. Recording every iteration wastes
//! history storage *and* hurts predictability (§3.2). The temporal
//! compactor keeps a small MRU list of recently emitted records: an
//! incoming record matching a resident one (same trigger, bit vector a
//! subset) is discarded and the resident record promoted; otherwise the
//! record is admitted (evicting the LRU entry) and forwarded to the
//! history buffer.

use pif_types::{BlockAddr, SpatialRegionRecord};

use crate::spatial::TaggedRecord;

/// The temporal compactor: one per trap level.
///
/// # Example
///
/// ```
/// use pif_core::TemporalCompactor;
/// use pif_core::SpatialCompactor;
/// use pif_types::{BlockAddr, RegionGeometry, SpatialRegionRecord};
///
/// let mut t = TemporalCompactor::new(2);
/// let rec = SpatialRegionRecord::new(BlockAddr::from_number(100));
/// let tagged = pif_core::spatial_tagged(rec, true);
/// assert!(t.filter(tagged).is_some(), "first sighting is forwarded");
/// assert!(t.filter(tagged).is_none(), "loop repetition is filtered");
/// ```
#[derive(Debug, Clone)]
pub struct TemporalCompactor {
    /// MRU-first list of recent records.
    entries: Vec<SpatialRegionRecord>,
    capacity: usize,
    filtered: u64,
    forwarded: u64,
}

/// Constructs a [`TaggedRecord`] (helper for examples and tests; the
/// spatial compactor produces these in normal operation).
pub fn spatial_tagged(record: SpatialRegionRecord, trigger_not_prefetched: bool) -> TaggedRecord {
    TaggedRecord {
        record,
        trigger_not_prefetched,
    }
}

impl TemporalCompactor {
    /// Creates a temporal compactor tracking `capacity` recent records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "temporal compactor needs >= 1 entry");
        TemporalCompactor {
            entries: Vec::with_capacity(capacity),
            capacity,
            filtered: 0,
            forwarded: 0,
        }
    }

    /// Filters an incoming record. Returns `Some` if the record should be
    /// appended to the history buffer, `None` if it repeats a
    /// recently-seen record (loop iteration).
    pub fn filter(&mut self, incoming: TaggedRecord) -> Option<TaggedRecord> {
        // Match: same trigger and incoming bits ⊆ stored bits.
        if let Some(pos) = self.entries.iter().position(|stored| {
            stored.trigger == incoming.record.trigger
                && incoming.record.bits.is_subset_of(stored.bits)
        }) {
            // Promote to MRU, discard the incoming record.
            let stored = self.entries.remove(pos);
            self.entries.insert(0, stored);
            self.filtered += 1;
            return None;
        }
        // No match: admit at MRU, evict LRU if full, forward to history.
        if self.entries.len() == self.capacity {
            self.entries.pop();
        }
        self.entries.insert(0, incoming.record);
        self.forwarded += 1;
        Some(incoming)
    }

    /// Looks up the resident record for `trigger`, if any.
    pub fn resident(&self, trigger: BlockAddr) -> Option<&SpatialRegionRecord> {
        self.entries.iter().find(|r| r.trigger == trigger)
    }

    /// Number of records filtered out (loop repetitions).
    pub fn filtered(&self) -> u64 {
        self.filtered
    }

    /// Number of records forwarded to the history buffer.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Clears the MRU list and counters.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.filtered = 0;
        self.forwarded = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pif_types::{RegionBits, RegionGeometry};

    const G: RegionGeometry = RegionGeometry::paper_default();

    fn rec(trigger: u64, offsets: &[i64]) -> TaggedRecord {
        let mut r = SpatialRegionRecord::new(BlockAddr::from_number(trigger));
        for &o in offsets {
            r.bits.set_offset(G, o);
        }
        spatial_tagged(r, true)
    }

    #[test]
    fn loop_over_two_regions_recorded_once() {
        // Paper Fig. 5 steps 4-7: alternating A and B records; each is
        // forwarded once, all repetitions filtered.
        let mut t = TemporalCompactor::new(4);
        let a = rec(100, &[1, 2]);
        let b = rec(200, &[]);
        assert!(t.filter(a).is_some());
        assert!(t.filter(b).is_some());
        for _ in 0..10 {
            assert!(t.filter(a).is_none());
            assert!(t.filter(b).is_none());
        }
        assert_eq!(t.forwarded(), 2);
        assert_eq!(t.filtered(), 20);
    }

    #[test]
    fn superset_bits_are_not_filtered() {
        let mut t = TemporalCompactor::new(4);
        assert!(t.filter(rec(100, &[1])).is_some());
        // Incoming has an extra block: not a subset -> forwarded.
        assert!(t.filter(rec(100, &[1, 2])).is_some());
        // Now the stored record has bits {1,2}: subset is filtered.
        assert!(t.filter(rec(100, &[2])).is_none());
    }

    #[test]
    fn subset_bits_are_filtered() {
        let mut t = TemporalCompactor::new(4);
        assert!(t.filter(rec(100, &[1, 2, 3])).is_some());
        assert!(t.filter(rec(100, &[2])).is_none());
        assert!(t.filter(rec(100, &[])).is_none());
    }

    #[test]
    fn lru_eviction_forgets_old_records() {
        let mut t = TemporalCompactor::new(2);
        t.filter(rec(100, &[]));
        t.filter(rec(200, &[]));
        t.filter(rec(300, &[])); // evicts 100
        assert!(t.resident(BlockAddr::from_number(100)).is_none());
        // 100 returns: forwarded again (loop longer than compactor reach).
        assert!(t.filter(rec(100, &[])).is_some());
    }

    #[test]
    fn match_promotes_to_mru() {
        let mut t = TemporalCompactor::new(2);
        t.filter(rec(100, &[]));
        t.filter(rec(200, &[]));
        // Touch 100: now 200 is LRU.
        assert!(t.filter(rec(100, &[])).is_none());
        t.filter(rec(300, &[])); // evicts 200
        assert!(t.resident(BlockAddr::from_number(100)).is_some());
        assert!(t.resident(BlockAddr::from_number(200)).is_none());
    }

    #[test]
    fn distinct_triggers_never_match() {
        let mut t = TemporalCompactor::new(4);
        assert!(t.filter(rec(100, &[1])).is_some());
        assert!(t.filter(rec(101, &[1])).is_some());
        assert_eq!(t.forwarded(), 2);
    }

    #[test]
    fn clear_resets() {
        let mut t = TemporalCompactor::new(2);
        t.filter(rec(100, &[]));
        t.clear();
        assert_eq!(t.forwarded(), 0);
        assert!(t.resident(BlockAddr::from_number(100)).is_none());
        assert!(t.filter(rec(100, &[])).is_some());
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = TemporalCompactor::new(0);
    }

    #[test]
    fn stored_record_keeps_original_bits_on_match() {
        // Filtering a subset must not shrink the stored record.
        let mut t = TemporalCompactor::new(4);
        t.filter(rec(100, &[1, 2]));
        t.filter(rec(100, &[1]));
        let stored = t.resident(BlockAddr::from_number(100)).unwrap();
        assert_eq!(stored.bits, {
            let mut b = RegionBits::empty();
            b.set_offset(G, 1);
            b.set_offset(G, 2);
            b
        });
    }
}
