//! The index table (§4.2): a small cache-like structure mapping a trigger
//! block to the location of its most recent record in the history buffer.

use pif_sim::cache::{Lru, SetAssocCache};
use pif_types::{BlockAddr, ConfigError};

/// The index table. Bounded and set-associative like the paper's
/// "small cache-like structure"; stale pointers (to overwritten history
/// positions) are filtered by the caller via `HistoryBuffer::get`.
///
/// # Example
///
/// ```
/// use pif_core::IndexTable;
/// use pif_types::BlockAddr;
///
/// let mut idx = IndexTable::new(256, 4).unwrap();
/// let b = BlockAddr::from_number(42);
/// idx.insert(b, 7);
/// assert_eq!(idx.lookup(b), Some(7));
/// idx.insert(b, 9); // newer stream head wins
/// assert_eq!(idx.lookup(b), Some(9));
/// ```
#[derive(Debug, Clone)]
pub struct IndexTable {
    table: SetAssocCache<Lru, u64>,
    inserts: u64,
    hits: u64,
    lookups: u64,
}

impl IndexTable {
    /// Creates an index with `entries` total entries of `ways`
    /// associativity.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the geometry is invalid.
    pub fn new(entries: usize, ways: usize) -> Result<Self, ConfigError> {
        if ways == 0 || entries == 0 || !entries.is_multiple_of(ways) {
            return Err(ConfigError::new("index entries must divide into ways"));
        }
        Ok(IndexTable {
            table: SetAssocCache::new(entries / ways, ways)?,
            inserts: 0,
            hits: 0,
            lookups: 0,
        })
    }

    /// Records that `trigger`'s most recent history record is at `pos`.
    pub fn insert(&mut self, trigger: BlockAddr, pos: u64) {
        self.inserts += 1;
        self.table.insert(trigger, pos);
    }

    /// Looks up the most recent history position for `trigger`, touching
    /// the entry for LRU.
    pub fn lookup(&mut self, trigger: BlockAddr) -> Option<u64> {
        self.lookups += 1;
        let hit = self.table.access(trigger).map(|p| *p);
        if hit.is_some() {
            self.hits += 1;
        }
        hit
    }

    /// Insertions performed.
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Lookup hit rate so far.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            return 0.0;
        }
        self.hits as f64 / self.lookups as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: u64) -> BlockAddr {
        BlockAddr::from_number(n)
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut idx = IndexTable::new(64, 4).unwrap();
        idx.insert(b(1), 100);
        idx.insert(b(2), 200);
        assert_eq!(idx.lookup(b(1)), Some(100));
        assert_eq!(idx.lookup(b(2)), Some(200));
        assert_eq!(idx.lookup(b(3)), None);
    }

    #[test]
    fn newer_insert_replaces_position() {
        let mut idx = IndexTable::new(64, 4).unwrap();
        idx.insert(b(1), 5);
        idx.insert(b(1), 50);
        assert_eq!(idx.lookup(b(1)), Some(50));
    }

    #[test]
    fn capacity_bounded_with_lru() {
        // 1 set x 2 ways: third distinct trigger evicts the LRU.
        let mut idx = IndexTable::new(2, 2).unwrap();
        idx.insert(b(0), 1);
        idx.insert(b(2), 2); // same set (even block numbers, 1 set total)
        idx.lookup(b(0)); // touch 0: 2 becomes LRU
        idx.insert(b(4), 3);
        assert_eq!(idx.lookup(b(0)), Some(1));
        assert_eq!(idx.lookup(b(2)), None);
    }

    #[test]
    fn stats_track_hits() {
        let mut idx = IndexTable::new(64, 4).unwrap();
        idx.insert(b(1), 1);
        idx.lookup(b(1));
        idx.lookup(b(9));
        assert_eq!(idx.inserts(), 1);
        assert!((idx.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn invalid_geometry_rejected() {
        assert!(IndexTable::new(0, 4).is_err());
        assert!(IndexTable::new(64, 0).is_err());
        assert!(IndexTable::new(65, 4).is_err());
    }
}
