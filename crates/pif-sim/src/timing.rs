//! Fetch-stall timing model.
//!
//! The paper reports UIPC (user instructions committed per cycle) from
//! cycle-accurate simulation. This model captures the first-order terms
//! that differ across prefetcher configurations: exposed instruction-fetch
//! stalls. Base execution cost (dispatch width + back-end CPI) and branch
//! misprediction penalties are charged identically for every prefetcher,
//! so relative speedups are driven — as in the paper — by how many fetch
//! stalls each prefetcher removes.

use serde::{Deserialize, Serialize};

use crate::config::TimingConfig;

/// Accumulates simulated cycles.
#[derive(Debug, Clone)]
pub struct TimingModel {
    config: TimingConfig,
    instructions: u64,
    base_cycles: f64,
    fetch_stall_cycles: f64,
    mispredict_cycles: f64,
    mark: Option<Box<TimingModel>>,
}

impl TimingModel {
    /// Creates a timing model.
    pub fn new(config: TimingConfig) -> Self {
        TimingModel {
            config,
            instructions: 0,
            base_cycles: 0.0,
            fetch_stall_cycles: 0.0,
            mispredict_cycles: 0.0,
            mark: None,
        }
    }

    /// Marks the warmup boundary: subsequent [`TimingModel::report`]s
    /// cover only activity after this point, while [`TimingModel::now`]
    /// keeps advancing monotonically (in-flight events stay consistent).
    pub fn mark(&mut self) {
        self.mark = Some(Box::new(TimingModel {
            config: self.config,
            instructions: self.instructions,
            base_cycles: self.base_cycles,
            fetch_stall_cycles: self.fetch_stall_cycles,
            mispredict_cycles: self.mispredict_cycles,
            mark: None,
        }));
    }

    /// Charges one retired instruction (and a misprediction penalty if it
    /// was a mispredicted branch).
    #[inline]
    pub fn retire_instruction(&mut self, mispredicted: bool) {
        self.instructions += 1;
        self.base_cycles += 1.0 / self.config.dispatch_width as f64 + self.config.backend_cpi;
        if mispredicted {
            self.mispredict_cycles += self.config.mispredict_penalty_cycles as f64;
        }
    }

    /// Charges an exposed instruction-fetch stall of `latency` cycles
    /// (scaled by the configured exposure factor).
    #[inline]
    pub fn fetch_stall(&mut self, latency: u64) {
        self.fetch_stall_cycles += latency as f64 * self.config.fetch_stall_exposure;
    }

    /// Current simulated cycle count.
    #[inline]
    pub fn now(&self) -> u64 {
        (self.base_cycles + self.fetch_stall_cycles + self.mispredict_cycles) as u64
    }

    /// Finalizes into a report covering activity since the last
    /// [`TimingModel::mark`] (or the whole run if never marked).
    pub fn report(&self) -> TimingReport {
        let (i0, b0, f0, m0) = match &self.mark {
            Some(m) => (
                m.instructions,
                m.base_cycles,
                m.fetch_stall_cycles,
                m.mispredict_cycles,
            ),
            None => (0, 0.0, 0.0, 0.0),
        };
        let cycles = (self.base_cycles - b0)
            + (self.fetch_stall_cycles - f0)
            + (self.mispredict_cycles - m0);
        TimingReport {
            instructions: self.instructions - i0,
            cycles: (cycles as u64).max(1),
            base_cycles: (self.base_cycles - b0) as u64,
            fetch_stall_cycles: (self.fetch_stall_cycles - f0) as u64,
            mispredict_cycles: (self.mispredict_cycles - m0) as u64,
        }
    }
}

/// Cycle breakdown and throughput for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingReport {
    /// Instructions retired.
    pub instructions: u64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Cycles from dispatch width and back-end CPI.
    pub base_cycles: u64,
    /// Exposed instruction-fetch stall cycles.
    pub fetch_stall_cycles: u64,
    /// Branch misprediction penalty cycles.
    pub mispredict_cycles: u64,
}

impl TimingReport {
    /// Instructions per cycle — the paper's UIPC throughput metric.
    pub fn uipc(&self) -> f64 {
        self.instructions as f64 / self.cycles as f64
    }

    /// Fraction of cycles spent stalled on instruction fetch.
    pub fn fetch_stall_fraction(&self) -> f64 {
        self.fetch_stall_cycles as f64 / self.cycles as f64
    }

    /// Speedup of `self` over a `baseline` run of the same trace.
    pub fn speedup_over(&self, baseline: &TimingReport) -> f64 {
        self.uipc() / baseline.uipc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TimingConfig {
        TimingConfig {
            dispatch_width: 4,
            fetch_stall_exposure: 1.0,
            mispredict_penalty_cycles: 10,
            backend_cpi: 0.0,
        }
    }

    #[test]
    fn base_cycles_follow_width() {
        let mut t = TimingModel::new(cfg());
        for _ in 0..400 {
            t.retire_instruction(false);
        }
        let r = t.report();
        assert_eq!(r.cycles, 100);
        assert!((r.uipc() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn fetch_stalls_add_cycles_and_cut_uipc() {
        let mut a = TimingModel::new(cfg());
        let mut b = TimingModel::new(cfg());
        for _ in 0..400 {
            a.retire_instruction(false);
            b.retire_instruction(false);
        }
        b.fetch_stall(100);
        assert!(b.report().uipc() < a.report().uipc());
        assert_eq!(b.report().fetch_stall_cycles, 100);
        assert!((a.report().speedup_over(&b.report()) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn exposure_scales_stalls() {
        let mut t = TimingModel::new(TimingConfig {
            fetch_stall_exposure: 0.5,
            ..cfg()
        });
        t.retire_instruction(false);
        t.fetch_stall(100);
        assert_eq!(t.report().fetch_stall_cycles, 50);
    }

    #[test]
    fn mispredicts_charged() {
        let mut t = TimingModel::new(cfg());
        t.retire_instruction(true);
        assert_eq!(t.report().mispredict_cycles, 10);
    }

    #[test]
    fn now_advances_monotonically() {
        let mut t = TimingModel::new(cfg());
        let mut prev = t.now();
        for i in 0..100 {
            t.retire_instruction(i % 7 == 0);
            if i % 13 == 0 {
                t.fetch_stall(15);
            }
            assert!(t.now() >= prev);
            prev = t.now();
        }
    }
}
