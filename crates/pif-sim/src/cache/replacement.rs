//! Replacement policies for the set-associative cache model.
//!
//! Policies are per-set state machines: the cache tells the policy when a
//! way is touched (hit or fill) and asks it which way to evict. Keeping the
//! policy behind a trait lets tests demonstrate the paper's §2.1
//! observation — that *the replacement policy's block-granularity decisions
//! fragment temporal streams* — under different policies.
//!
//! For cache-layout friendliness the policy itself is a stateless marker
//! type; the per-set state is an associated [`ReplacementPolicy::SetState`]
//! value that the cache stores inline in one flat array (no per-set heap
//! object). [`Lru`] and [`Fifo`] pack their state into a single `u64` word
//! (4-bit way fields, up to 16 ways); [`ArrayLru`] is the small-array
//! fallback for wider sets.

use std::fmt::Debug;

/// Per-set replacement policy.
///
/// The policy type carries no instance data; all per-set state lives in a
/// [`ReplacementPolicy::SetState`] value owned by the cache, one per set,
/// stored inline in a flat `Vec`.
pub trait ReplacementPolicy: Debug {
    /// Per-set replacement state, stored inline in the cache.
    type SetState: Copy + Debug;

    /// Widest set this policy's packed state supports. The cache checks
    /// this in `SetAssocCache::new` and reports a `ConfigError` for wider
    /// geometries (pick a wider policy such as [`ArrayLru`] instead).
    const MAX_WAYS: usize;

    /// Creates the state for a set with the given number of ways.
    ///
    /// # Panics
    ///
    /// May panic if `ways` exceeds [`ReplacementPolicy::MAX_WAYS`]; the
    /// cache constructor validates first.
    fn init(ways: usize) -> Self::SetState;

    /// Notes that `way` was touched (demand hit or new fill).
    fn touch(state: &mut Self::SetState, ways: usize, way: usize);

    /// Returns the way to evict next (the subsequent fill will
    /// [`ReplacementPolicy::touch`] the way).
    fn victim(state: &mut Self::SetState, ways: usize) -> usize;
}

/// True least-recently-used replacement (the paper's L1-I policy, §2.1).
///
/// State is a `u64` holding the way order as packed 4-bit fields,
/// most-recently-used in the low nibble. Supports up to 16 ways; use
/// [`ArrayLru`] beyond that.
#[derive(Debug, Clone, Copy)]
pub struct Lru;

impl ReplacementPolicy for Lru {
    type SetState = u64;
    const MAX_WAYS: usize = 16;

    fn init(ways: usize) -> u64 {
        assert!(
            ways > 0 && ways <= 16,
            "packed LRU supports 1..=16 ways (use ArrayLru beyond)"
        );
        // Nibble i holds way i: way 0 is MRU, way ways-1 is LRU.
        let mut state = 0u64;
        for way in 0..ways as u64 {
            state |= way << (4 * way);
        }
        state
    }

    #[inline]
    fn touch(state: &mut u64, ways: usize, way: usize) {
        let w = way as u64;
        let mut pos = 0;
        while pos < ways && (*state >> (4 * pos)) & 0xF != w {
            pos += 1;
        }
        if pos == ways {
            return; // way not tracked (cannot happen under cache invariants)
        }
        // Remove the nibble at `pos`, slide lower nibbles up, insert at MRU.
        let below = *state & ((1u64 << (4 * pos)) - 1);
        let above = if 4 * (pos + 1) >= 64 {
            0
        } else {
            *state & !((1u64 << (4 * (pos + 1))) - 1)
        };
        *state = above | (below << 4) | w;
    }

    #[inline]
    fn victim(state: &mut u64, ways: usize) -> usize {
        ((*state >> (4 * (ways - 1))) & 0xF) as usize
    }
}

/// First-in-first-out replacement: evicts in fill order, ignoring hits.
///
/// State packs the round-robin fill pointer (low byte) and the last
/// nominated victim plus one (second byte; 0 = none) into a `u64`. FIFO
/// ignores touches on hits but must still learn fill order; the pointer
/// advances only when the way it last nominated is touched, which the
/// cache signals by touching the way it just filled.
#[derive(Debug, Clone, Copy)]
pub struct Fifo;

const FIFO_NEXT_MASK: u64 = 0xFF;
const FIFO_VICTIM_SHIFT: u32 = 8;

impl ReplacementPolicy for Fifo {
    type SetState = u64;
    const MAX_WAYS: usize = 255;

    fn init(ways: usize) -> u64 {
        assert!(ways > 0 && ways <= 255, "unsupported way count");
        0
    }

    #[inline]
    fn touch(state: &mut u64, ways: usize, way: usize) {
        let nominated = *state >> FIFO_VICTIM_SHIFT;
        if nominated == way as u64 + 1 {
            let next = ((*state & FIFO_NEXT_MASK) + 1) % ways as u64;
            *state = next; // clears the nomination
        }
    }

    #[inline]
    fn victim(state: &mut u64, _ways: usize) -> usize {
        let next = *state & FIFO_NEXT_MASK;
        *state = next | ((next + 1) << FIFO_VICTIM_SHIFT);
        next as usize
    }
}

/// Pseudo-random replacement using a per-set xorshift generator.
#[derive(Debug, Clone, Copy)]
pub struct RandomEvict;

impl ReplacementPolicy for RandomEvict {
    type SetState = u64;
    const MAX_WAYS: usize = usize::MAX;

    fn init(ways: usize) -> u64 {
        assert!(ways > 0, "unsupported way count");
        0x9e37_79b9_7f4a_7c15
    }

    #[inline]
    fn touch(_state: &mut u64, _ways: usize, _way: usize) {}

    #[inline]
    fn victim(state: &mut u64, ways: usize) -> usize {
        // xorshift64*
        *state ^= *state >> 12;
        *state ^= *state << 25;
        *state ^= *state >> 27;
        (state.wrapping_mul(0x2545_f491_4f6c_dd1d) % ways as u64) as usize
    }
}

/// Small-array LRU fallback for sets wider than the 16 ways the packed
/// [`Lru`] word supports (up to 32 ways). Way indices are kept
/// most-recently-used first in a fixed inline array — still no per-set
/// heap allocation.
#[derive(Debug, Clone, Copy)]
pub struct ArrayLru;

impl ReplacementPolicy for ArrayLru {
    type SetState = [u8; 32];
    const MAX_WAYS: usize = 32;

    fn init(ways: usize) -> [u8; 32] {
        assert!(ways > 0 && ways <= 32, "array LRU supports 1..=32 ways");
        let mut order = [0u8; 32];
        for (i, slot) in order.iter_mut().enumerate().take(ways) {
            *slot = i as u8;
        }
        order
    }

    #[inline]
    fn touch(state: &mut [u8; 32], ways: usize, way: usize) {
        let w = way as u8;
        let Some(pos) = state[..ways].iter().position(|&x| x == w) else {
            return;
        };
        state.copy_within(..pos, 1);
        state[0] = w;
    }

    #[inline]
    fn victim(state: &mut [u8; 32], ways: usize) -> usize {
        state[ways - 1] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut s = Lru::init(3);
        Lru::touch(&mut s, 3, 0);
        Lru::touch(&mut s, 3, 1);
        Lru::touch(&mut s, 3, 2);
        assert_eq!(Lru::victim(&mut s, 3), 0);
        Lru::touch(&mut s, 3, 0); // 0 becomes MRU
        assert_eq!(Lru::victim(&mut s, 3), 1);
    }

    #[test]
    fn lru_initial_order_is_way_order() {
        // No touches: way 3 is the initial LRU.
        let mut s = Lru::init(4);
        assert_eq!(Lru::victim(&mut s, 4), 3);
    }

    #[test]
    fn lru_victim_is_idempotent_without_touch() {
        let mut s = Lru::init(2);
        Lru::touch(&mut s, 2, 1);
        assert_eq!(Lru::victim(&mut s, 2), 0);
        assert_eq!(Lru::victim(&mut s, 2), 0);
    }

    #[test]
    fn lru_supports_sixteen_ways() {
        let mut s = Lru::init(16);
        assert_eq!(Lru::victim(&mut s, 16), 15);
        // Touch ways 15 down to 0: way 0 ends up MRU, way 15 LRU.
        for way in (0..16).rev() {
            Lru::touch(&mut s, 16, way);
        }
        assert_eq!(Lru::victim(&mut s, 16), 15);
        Lru::touch(&mut s, 16, 15);
        assert_eq!(Lru::victim(&mut s, 16), 14);
    }

    #[test]
    fn fifo_cycles_through_ways_on_fills() {
        let mut s = Fifo::init(3);
        let v0 = Fifo::victim(&mut s, 3);
        Fifo::touch(&mut s, 3, v0); // fill
        let v1 = Fifo::victim(&mut s, 3);
        Fifo::touch(&mut s, 3, v1);
        let v2 = Fifo::victim(&mut s, 3);
        Fifo::touch(&mut s, 3, v2);
        let v3 = Fifo::victim(&mut s, 3);
        assert_eq!([v0, v1, v2, v3], [0, 1, 2, 0]);
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut s = Fifo::init(2);
        let v0 = Fifo::victim(&mut s, 2);
        Fifo::touch(&mut s, 2, v0);
        Fifo::touch(&mut s, 2, 0); // hit on way 0: must not perturb fill order
        Fifo::touch(&mut s, 2, 0);
        assert_eq!(Fifo::victim(&mut s, 2), 1);
    }

    #[test]
    fn random_victims_in_range_and_vary() {
        let mut s = RandomEvict::init(4);
        let mut seen = [false; 4];
        for _ in 0..64 {
            let v = RandomEvict::victim(&mut s, 4);
            assert!(v < 4);
            seen[v] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() >= 2, "degenerate RNG");
    }

    #[test]
    fn array_lru_matches_packed_lru() {
        // Drive both LRU implementations with the same touch/victim
        // sequence; they must agree at every step.
        for ways in [1usize, 2, 3, 7, 16] {
            let mut packed = Lru::init(ways);
            let mut array = ArrayLru::init(ways);
            let mut x = 0x1234_5678_u64;
            for _ in 0..500 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let way = (x % ways as u64) as usize;
                Lru::touch(&mut packed, ways, way);
                ArrayLru::touch(&mut array, ways, way);
                assert_eq!(
                    Lru::victim(&mut packed, ways),
                    ArrayLru::victim(&mut array, ways),
                    "ways={ways} way={way}"
                );
            }
        }
    }

    #[test]
    fn array_lru_supports_wide_sets() {
        let mut s = ArrayLru::init(32);
        assert_eq!(ArrayLru::victim(&mut s, 32), 31);
        ArrayLru::touch(&mut s, 32, 31);
        assert_eq!(ArrayLru::victim(&mut s, 32), 30);
    }
}
