//! Replacement policies for the set-associative cache model.
//!
//! Policies are per-set state machines: the cache tells the policy when a
//! way is touched (hit or fill) and asks it which way to evict. Keeping the
//! policy behind a trait lets tests demonstrate the paper's §2.1
//! observation — that *the replacement policy's block-granularity decisions
//! fragment temporal streams* — under different policies.

use std::fmt::Debug;

/// Per-set replacement policy.
///
/// Implementations hold the state for **one** cache set with `ways` ways.
/// The cache owns one policy instance per set.
pub trait ReplacementPolicy: Debug {
    /// Creates policy state for a set with the given number of ways.
    fn new(ways: usize) -> Self
    where
        Self: Sized;

    /// Notes that `way` was touched (demand hit or new fill).
    fn touch(&mut self, way: usize);

    /// Returns the way to evict next (does not modify state; the subsequent
    /// fill will [`ReplacementPolicy::touch`] the way).
    fn victim(&mut self) -> usize;
}

/// True least-recently-used replacement (the paper's L1-I policy, §2.1).
#[derive(Debug, Clone)]
pub struct Lru {
    /// Way indices ordered most-recently-used first.
    order: Vec<u8>,
}

impl ReplacementPolicy for Lru {
    fn new(ways: usize) -> Self {
        assert!(
            ways > 0 && ways <= u8::MAX as usize,
            "unsupported way count"
        );
        Lru {
            order: (0..ways as u8).collect(),
        }
    }

    fn touch(&mut self, way: usize) {
        let way = way as u8;
        if let Some(pos) = self.order.iter().position(|&w| w == way) {
            self.order.remove(pos);
            self.order.insert(0, way);
        }
    }

    fn victim(&mut self) -> usize {
        *self.order.last().expect("non-empty set") as usize
    }
}

/// First-in-first-out replacement: evicts in fill order, ignoring hits.
#[derive(Debug, Clone)]
pub struct Fifo {
    next: usize,
    ways: usize,
    /// FIFO ignores touches on hits but must still learn fill order; we
    /// advance the pointer only when the victim is consumed, which the
    /// cache signals by touching the way it just filled.
    last_victim: Option<usize>,
}

impl ReplacementPolicy for Fifo {
    fn new(ways: usize) -> Self {
        assert!(ways > 0, "unsupported way count");
        Fifo {
            next: 0,
            ways,
            last_victim: None,
        }
    }

    fn touch(&mut self, way: usize) {
        // A touch on the way we last nominated means it was filled: advance.
        if self.last_victim == Some(way) {
            self.next = (self.next + 1) % self.ways;
            self.last_victim = None;
        }
    }

    fn victim(&mut self) -> usize {
        self.last_victim = Some(self.next);
        self.next
    }
}

/// Pseudo-random replacement using a per-set xorshift generator.
#[derive(Debug, Clone)]
pub struct RandomEvict {
    state: u64,
    ways: usize,
}

impl ReplacementPolicy for RandomEvict {
    fn new(ways: usize) -> Self {
        assert!(ways > 0, "unsupported way count");
        RandomEvict {
            state: 0x9e37_79b9_7f4a_7c15,
            ways,
        }
    }

    fn touch(&mut self, _way: usize) {}

    fn victim(&mut self) -> usize {
        // xorshift64*
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        (self.state.wrapping_mul(0x2545_f491_4f6c_dd1d) % self.ways as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut lru = Lru::new(3);
        lru.touch(0);
        lru.touch(1);
        lru.touch(2);
        assert_eq!(lru.victim(), 0);
        lru.touch(0); // 0 becomes MRU
        assert_eq!(lru.victim(), 1);
    }

    #[test]
    fn lru_initial_order_is_way_order() {
        let mut lru = Lru::new(4);
        // No touches: way 3 is the initial LRU.
        assert_eq!(lru.victim(), 3);
    }

    #[test]
    fn lru_victim_is_idempotent_without_touch() {
        let mut lru = Lru::new(2);
        lru.touch(1);
        assert_eq!(lru.victim(), 0);
        assert_eq!(lru.victim(), 0);
    }

    #[test]
    fn fifo_cycles_through_ways_on_fills() {
        let mut fifo = Fifo::new(3);
        let v0 = fifo.victim();
        fifo.touch(v0); // fill
        let v1 = fifo.victim();
        fifo.touch(v1);
        let v2 = fifo.victim();
        fifo.touch(v2);
        let v3 = fifo.victim();
        assert_eq!([v0, v1, v2, v3], [0, 1, 2, 0]);
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut fifo = Fifo::new(2);
        let v0 = fifo.victim();
        fifo.touch(v0);
        fifo.touch(0); // hit on way 0: must not perturb fill order
        fifo.touch(0);
        assert_eq!(fifo.victim(), 1);
    }

    #[test]
    fn random_victims_in_range_and_vary() {
        let mut r = RandomEvict::new(4);
        let mut seen = [false; 4];
        for _ in 0..64 {
            let v = r.victim();
            assert!(v < 4);
            seen[v] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() >= 2, "degenerate RNG");
    }
}
