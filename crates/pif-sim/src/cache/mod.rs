//! Cache models: a generic set-associative cache with pluggable
//! replacement, the L1 instruction cache wrapper, and the L2 backing model.

mod icache;
mod l2;
mod replacement;
mod set_assoc;

pub use icache::{AccessOutcome, InstructionCache, LineProvenance};
pub use l2::L2Model;
pub use replacement::{ArrayLru, Fifo, Lru, RandomEvict, ReplacementPolicy};
pub use set_assoc::SetAssocCache;
