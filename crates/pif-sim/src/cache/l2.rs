//! L2/backing-store model for instruction blocks.
//!
//! Decides whether an L1-I miss is served by the on-chip L2 (15-cycle hit,
//! Table I) or by main memory (~90 cycles at 2 GHz). The timing model uses
//! this latency to charge fetch-stall cycles. Server instruction working
//! sets are multi-megabyte but largely L2-resident (paper §5.4 cites
//! ReactiveNUCA's working-set analysis), so with the paper's aggregate NUCA
//! capacity most instruction misses are L2 hits.

use pif_types::BlockAddr;

use crate::config::L2Config;

use super::replacement::Lru;
use super::set_assoc::SetAssocCache;

/// L2 model: a large set-associative presence tracker plus latencies.
///
/// # Example
///
/// ```
/// use pif_sim::cache::L2Model;
/// use pif_sim::L2Config;
/// use pif_types::BlockAddr;
///
/// let mut l2 = L2Model::new(L2Config::paper_default()).unwrap();
/// let b = BlockAddr::from_number(1);
/// let first = l2.access(b);   // cold: memory latency
/// let second = l2.access(b);  // now resident: L2 hit latency
/// assert!(first > second);
/// ```
#[derive(Debug, Clone)]
pub struct L2Model {
    cache: SetAssocCache<Lru, ()>,
    config: L2Config,
    hits: u64,
    misses: u64,
}

impl L2Model {
    /// Creates the L2 model.
    ///
    /// # Errors
    ///
    /// Returns [`pif_types::ConfigError`] on invalid geometry.
    pub fn new(config: L2Config) -> Result<Self, pif_types::ConfigError> {
        let blocks = config.capacity_bytes / pif_types::BLOCK_SIZE;
        if blocks == 0 || !blocks.is_multiple_of(config.ways) {
            return Err(pif_types::ConfigError::new("invalid L2 geometry"));
        }
        let sets = blocks / config.ways;
        Ok(L2Model {
            cache: SetAssocCache::new(sets, config.ways)?,
            config,
            hits: 0,
            misses: 0,
        })
    }

    /// Services an L1 miss (demand or prefetch) for `block`, returning the
    /// fill latency in cycles and installing the block in the L2.
    ///
    /// With [`L2Config::assume_warm`] the first touch of an unseen block
    /// is served at hit latency (checkpoint-warmed semantics for sampled
    /// simulation); it still installs, so capacity behaviour is
    /// unchanged thereafter.
    #[inline]
    pub fn access(&mut self, block: BlockAddr) -> u64 {
        if self.cache.access(block).is_some() {
            self.hits += 1;
            self.config.hit_latency_cycles
        } else if self.config.assume_warm {
            self.hits += 1;
            self.cache.insert(block, ());
            self.config.hit_latency_cycles
        } else {
            self.misses += 1;
            self.cache.insert(block, ());
            self.config.memory_latency_cycles
        }
    }

    /// L2 hit count so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// L2 miss count so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The configuration.
    pub fn config(&self) -> &L2Config {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit_latencies() {
        let cfg = L2Config::paper_default();
        let mut l2 = L2Model::new(cfg).unwrap();
        let b = BlockAddr::from_number(9);
        assert_eq!(l2.access(b), cfg.memory_latency_cycles);
        assert_eq!(l2.access(b), cfg.hit_latency_cycles);
        assert_eq!(l2.hits(), 1);
        assert_eq!(l2.misses(), 1);
    }

    #[test]
    fn capacity_pressure_causes_memory_accesses() {
        let cfg = L2Config {
            capacity_bytes: 4 * 64,
            ways: 2,
            hit_latency_cycles: 15,
            memory_latency_cycles: 90,
            assume_warm: false,
        };
        let mut l2 = L2Model::new(cfg).unwrap();
        // Touch 8 distinct blocks twice: second round still misses some
        // because only 4 fit.
        for round in 0..2 {
            for n in 0..8 {
                l2.access(BlockAddr::from_number(n));
            }
            if round == 0 {
                assert_eq!(l2.misses(), 8);
            }
        }
        assert!(l2.misses() > 8, "second round must re-miss evicted blocks");
    }

    #[test]
    fn assume_warm_serves_first_touch_at_hit_latency() {
        let cfg = L2Config::paper_default().with_assume_warm(true);
        let mut l2 = L2Model::new(cfg).unwrap();
        let b = BlockAddr::from_number(9);
        assert_eq!(l2.access(b), cfg.hit_latency_cycles, "warm first touch");
        assert_eq!(l2.access(b), cfg.hit_latency_cycles);
        assert_eq!(l2.misses(), 0, "checkpoint-warmed L2 never misses");
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(L2Model::new(L2Config {
            capacity_bytes: 0,
            ways: 16,
            hit_latency_cycles: 15,
            memory_latency_cycles: 90,
            assume_warm: false,
        })
        .is_err());
    }
}
