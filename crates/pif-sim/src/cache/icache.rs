//! The L1 instruction cache wrapper: a set-associative cache whose lines
//! carry provenance (demand-filled vs. prefetched), plus the access
//! bookkeeping the engine and prefetchers need.

use pif_types::BlockAddr;

use crate::config::ICacheConfig;

use super::replacement::Lru;
use super::set_assoc::SetAssocCache;

/// How a resident line got into the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineProvenance {
    /// Filled by a demand miss.
    Demand,
    /// Installed by a prefetch and not yet demanded.
    Prefetched,
    /// Installed by a prefetch and since demanded at least once.
    PrefetchedUsed,
}

#[derive(Debug, Clone, Copy)]
struct LineMeta {
    provenance: LineProvenance,
}

/// Result of a demand access to the instruction cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Hit on a demand-filled line (or an already-used prefetched line).
    Hit,
    /// First demand hit on a line installed by a prefetch: this is a miss
    /// that the prefetcher *covered*.
    HitFirstUseOfPrefetch,
    /// Miss; the engine fills the line with demand provenance.
    Miss,
}

impl AccessOutcome {
    /// True for either kind of hit.
    pub const fn is_hit(self) -> bool {
        !matches!(self, AccessOutcome::Miss)
    }
}

/// The L1 instruction cache (Table I: 64 KB, 2-way, 64 B blocks, LRU).
///
/// # Example
///
/// ```
/// use pif_sim::cache::{AccessOutcome, InstructionCache};
/// use pif_sim::ICacheConfig;
/// use pif_types::BlockAddr;
///
/// let mut ic = InstructionCache::new(ICacheConfig::paper_default()).unwrap();
/// let b = BlockAddr::from_number(7);
/// assert_eq!(ic.demand_access(b), AccessOutcome::Miss);
/// ic.fill_prefetch(BlockAddr::from_number(8));
/// assert_eq!(
///     ic.demand_access(BlockAddr::from_number(8)),
///     AccessOutcome::HitFirstUseOfPrefetch
/// );
/// ```
#[derive(Debug, Clone)]
pub struct InstructionCache {
    cache: SetAssocCache<Lru, LineMeta>,
    config: ICacheConfig,
}

impl InstructionCache {
    /// Creates an instruction cache with the given geometry.
    ///
    /// # Errors
    ///
    /// Returns [`pif_types::ConfigError`] if the geometry is invalid.
    pub fn new(config: ICacheConfig) -> Result<Self, pif_types::ConfigError> {
        config.validate()?;
        Ok(InstructionCache {
            cache: SetAssocCache::new(config.sets(), config.ways)?,
            config,
        })
    }

    /// The cache geometry.
    pub fn config(&self) -> &ICacheConfig {
        &self.config
    }

    /// Performs a demand access to `block`, filling on miss.
    ///
    /// Distinguishes the first demand use of a prefetched line so the
    /// engine can account prefetch coverage: that access would have been a
    /// miss without the prefetcher.
    #[inline]
    pub fn demand_access(&mut self, block: BlockAddr) -> AccessOutcome {
        if let Some(meta) = self.cache.access(block) {
            match meta.provenance {
                LineProvenance::Prefetched => {
                    meta.provenance = LineProvenance::PrefetchedUsed;
                    AccessOutcome::HitFirstUseOfPrefetch
                }
                _ => AccessOutcome::Hit,
            }
        } else {
            self.cache.insert(
                block,
                LineMeta {
                    provenance: LineProvenance::Demand,
                },
            );
            AccessOutcome::Miss
        }
    }

    /// Installs `block` as a prefetched line. Returns `false` if the block
    /// was already resident (the paper's prefetch path probes the tags and
    /// drops such requests; calling this anyway is harmless).
    #[inline]
    pub fn fill_prefetch(&mut self, block: BlockAddr) -> bool {
        if self.cache.contains(block) {
            return false;
        }
        self.cache.insert(
            block,
            LineMeta {
                provenance: LineProvenance::Prefetched,
            },
        );
        true
    }

    /// Non-perturbing presence probe (used by prefetchers before queuing
    /// requests, §4.3).
    #[inline]
    pub fn probe(&self, block: BlockAddr) -> bool {
        self.cache.contains(block)
    }

    /// Provenance of a resident line, if present (non-perturbing).
    #[inline]
    pub fn provenance(&self, block: BlockAddr) -> Option<LineProvenance> {
        self.cache.probe(block).map(|m| m.provenance)
    }

    /// Number of resident lines.
    pub fn resident_blocks(&self) -> usize {
        self.cache.len()
    }

    /// Number of resident lines that were prefetched but never demanded
    /// (pollution candidates).
    pub fn unused_prefetched_blocks(&self) -> usize {
        self.cache
            .blocks()
            .filter(|&b| self.provenance(b) == Some(LineProvenance::Prefetched))
            .count()
    }

    /// Empties the cache.
    pub fn clear(&mut self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> InstructionCache {
        InstructionCache::new(ICacheConfig {
            capacity_bytes: 4 * 64,
            ways: 2,
            latency_cycles: 2,
        })
        .unwrap()
    }

    fn b(n: u64) -> BlockAddr {
        BlockAddr::from_number(n)
    }

    #[test]
    fn miss_then_hit() {
        let mut ic = small();
        assert_eq!(ic.demand_access(b(1)), AccessOutcome::Miss);
        assert_eq!(ic.demand_access(b(1)), AccessOutcome::Hit);
    }

    #[test]
    fn prefetch_first_use_is_distinguished() {
        let mut ic = small();
        assert!(ic.fill_prefetch(b(3)));
        assert_eq!(ic.demand_access(b(3)), AccessOutcome::HitFirstUseOfPrefetch);
        assert_eq!(ic.demand_access(b(3)), AccessOutcome::Hit);
    }

    #[test]
    fn prefetch_of_resident_block_is_dropped() {
        let mut ic = small();
        ic.demand_access(b(1));
        assert!(!ic.fill_prefetch(b(1)));
        // Still a plain hit: provenance untouched.
        assert_eq!(ic.demand_access(b(1)), AccessOutcome::Hit);
    }

    #[test]
    fn provenance_transitions() {
        let mut ic = small();
        ic.fill_prefetch(b(2));
        assert_eq!(ic.provenance(b(2)), Some(LineProvenance::Prefetched));
        ic.demand_access(b(2));
        assert_eq!(ic.provenance(b(2)), Some(LineProvenance::PrefetchedUsed));
        ic.demand_access(b(4));
        assert_eq!(ic.provenance(b(4)), Some(LineProvenance::Demand));
    }

    #[test]
    fn unused_prefetch_accounting() {
        let mut ic = small();
        ic.fill_prefetch(b(1));
        ic.fill_prefetch(b(2));
        assert_eq!(ic.unused_prefetched_blocks(), 2);
        ic.demand_access(b(1));
        assert_eq!(ic.unused_prefetched_blocks(), 1);
    }

    #[test]
    fn probe_is_nonperturbing_for_lru() {
        // 1 set x 2 ways.
        let mut ic = InstructionCache::new(ICacheConfig {
            capacity_bytes: 2 * 64,
            ways: 2,
            latency_cycles: 2,
        })
        .unwrap();
        ic.demand_access(b(0));
        ic.demand_access(b(2));
        assert!(ic.probe(b(0)));
        // Insert third conflicting block: block 0 must be the victim even
        // though it was probed after block 2's fill.
        ic.demand_access(b(4));
        assert!(!ic.probe(b(0)));
        assert!(ic.probe(b(2)));
    }

    #[test]
    fn rejects_invalid_geometry() {
        assert!(InstructionCache::new(ICacheConfig {
            capacity_bytes: 3 * 64,
            ways: 2,
            latency_cycles: 2,
        })
        .is_err());
    }
}
