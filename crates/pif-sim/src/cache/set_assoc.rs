//! Generic set-associative cache keyed by cache-block address.
//!
//! The cache uses a structure-of-arrays layout: a flat `tags` array of
//! block numbers (with an invalid-slot sentinel), a parallel `meta` array,
//! and one inline packed replacement-state word per set (see
//! [`ReplacementPolicy`]). A lookup therefore scans `ways` consecutive
//! `u64` tags in one or two cache lines and never chases a pointer — this
//! is the hottest structure in the simulator, probed on every fetch,
//! retirement, and prefetch request.

use pif_types::{BlockAddr, ConfigError};

use super::replacement::ReplacementPolicy;

/// Sentinel tag marking an empty way. Block numbers are block *addresses*
/// shifted right by the block-offset bits, so `u64::MAX` can never name a
/// real block.
const INVALID_TAG: u64 = u64::MAX;

/// A set-associative cache mapping [`BlockAddr`]s to per-line metadata `T`.
///
/// The cache tracks presence only (this is a trace-driven simulator; the
/// actual instruction bytes are irrelevant). Per-line metadata carries
/// provenance flags such as "installed by prefetch".
///
/// # Example
///
/// ```
/// use pif_sim::cache::{Lru, SetAssocCache};
/// use pif_types::BlockAddr;
///
/// let mut cache: SetAssocCache<Lru, ()> = SetAssocCache::new(4, 2).unwrap();
/// let b = BlockAddr::from_number(42);
/// assert!(cache.access(b).is_none());
/// cache.insert(b, ());
/// assert!(cache.access(b).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache<P: ReplacementPolicy, T = ()> {
    sets: usize,
    ways: usize,
    set_mask: u64,
    /// Flat `sets * ways` array of full block numbers ([`INVALID_TAG`] =
    /// empty way). We store the whole number rather than a truncated tag so
    /// debugging output stays legible.
    tags: Vec<u64>,
    /// Parallel per-line metadata; `Some` exactly where the tag is valid.
    meta: Vec<Option<T>>,
    /// One packed replacement-state word per set, stored inline.
    repl: Vec<P::SetState>,
    resident: usize,
}

impl<P: ReplacementPolicy, T> SetAssocCache<P, T> {
    /// Creates a cache with `sets` sets of `ways` ways.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `sets` is not a power of two or either
    /// dimension is zero.
    pub fn new(sets: usize, ways: usize) -> Result<Self, ConfigError> {
        if sets == 0 || ways == 0 {
            return Err(ConfigError::new("cache sets and ways must be non-zero"));
        }
        if !sets.is_power_of_two() {
            return Err(ConfigError::new(format!(
                "set count {sets} is not a power of two"
            )));
        }
        if ways > P::MAX_WAYS {
            return Err(ConfigError::new(format!(
                "{ways} ways exceeds the replacement policy's limit of {} (use a wider policy such as ArrayLru)",
                P::MAX_WAYS
            )));
        }
        let mut meta = Vec::with_capacity(sets * ways);
        meta.resize_with(sets * ways, || None);
        Ok(SetAssocCache {
            sets,
            ways,
            set_mask: sets as u64 - 1,
            tags: vec![INVALID_TAG; sets * ways],
            meta,
            repl: vec![P::init(ways); sets],
            resident: 0,
        })
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Number of ways per set.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total line capacity.
    pub fn capacity_blocks(&self) -> usize {
        self.sets * self.ways
    }

    /// Number of currently resident lines.
    pub fn len(&self) -> usize {
        self.resident
    }

    /// True if no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.resident == 0
    }

    #[inline]
    fn set_index(&self, block: BlockAddr) -> usize {
        (block.number() & self.set_mask) as usize
    }

    /// Scans one set's tags for `tag`, returning the matching way. The
    /// sentinel never matches: a lookup for block `u64::MAX` (reachable
    /// via wrapping block arithmetic) must not hit empty ways.
    #[inline]
    fn find_way(&self, set: usize, tag: u64) -> Option<usize> {
        if tag == INVALID_TAG {
            return None;
        }
        let base = set * self.ways;
        self.tags[base..base + self.ways]
            .iter()
            .position(|&t| t == tag)
    }

    /// Looks up `block` without perturbing replacement state (a *probe*,
    /// as issued by prefetchers before enqueueing requests, §4.3).
    #[inline]
    pub fn probe(&self, block: BlockAddr) -> Option<&T> {
        let set = self.set_index(block);
        let way = self.find_way(set, block.number())?;
        self.meta[set * self.ways + way].as_ref()
    }

    /// True if `block` is resident (non-perturbing).
    #[inline]
    pub fn contains(&self, block: BlockAddr) -> bool {
        let set = self.set_index(block);
        self.find_way(set, block.number()).is_some()
    }

    /// Demand access: on hit, touches the line for replacement and returns
    /// its metadata; on miss returns `None` (the caller decides whether to
    /// fill via [`SetAssocCache::insert`]).
    #[inline]
    pub fn access(&mut self, block: BlockAddr) -> Option<&mut T> {
        let set = self.set_index(block);
        let way = self.find_way(set, block.number())?;
        P::touch(&mut self.repl[set], self.ways, way);
        self.meta[set * self.ways + way].as_mut()
    }

    /// Inserts `block`, evicting a victim if the set is full. Returns the
    /// evicted block and its metadata, if any. If the block is already
    /// resident its metadata is replaced (and the line touched) without an
    /// eviction.
    pub fn insert(&mut self, block: BlockAddr, meta: T) -> Option<(BlockAddr, T)> {
        let tag = block.number();
        if tag == INVALID_TAG {
            // Block u64::MAX collides with the empty-way sentinel and is
            // not representable in this layout; it is reachable only via
            // wrapping block arithmetic below address 0. Dropping the
            // insert keeps every invariant (the block simply stays
            // non-resident, as all lookups already report).
            return None;
        }
        let set = self.set_index(block);
        let base = set * self.ways;
        if let Some(way) = self.find_way(set, tag) {
            P::touch(&mut self.repl[set], self.ways, way);
            self.meta[base + way] = Some(meta);
            return None;
        }
        // Prefer an empty way.
        let empty = self.tags[base..base + self.ways]
            .iter()
            .position(|&t| t == INVALID_TAG);
        let (way, evicted) = match empty {
            Some(way) => (way, None),
            None => {
                let way = P::victim(&mut self.repl[set], self.ways);
                let old_tag = self.tags[base + way];
                let old_meta = self.meta[base + way]
                    .take()
                    .expect("resident line has meta");
                (way, Some((BlockAddr::from_number(old_tag), old_meta)))
            }
        };
        self.tags[base + way] = tag;
        self.meta[base + way] = Some(meta);
        P::touch(&mut self.repl[set], self.ways, way);
        if evicted.is_none() {
            self.resident += 1;
        }
        evicted
    }

    /// Removes `block` from the cache, returning its metadata if resident.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<T> {
        let set = self.set_index(block);
        let way = self.find_way(set, block.number())?;
        self.resident -= 1;
        self.tags[set * self.ways + way] = INVALID_TAG;
        self.meta[set * self.ways + way].take()
    }

    /// Iterates over resident blocks (arbitrary order).
    pub fn blocks(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        self.tags
            .iter()
            .filter(|&&t| t != INVALID_TAG)
            .map(|&t| BlockAddr::from_number(t))
    }

    /// Clears all lines and resets replacement state.
    pub fn clear(&mut self) {
        self.tags.fill(INVALID_TAG);
        for slot in &mut self.meta {
            *slot = None;
        }
        for state in &mut self.repl {
            *state = P::init(self.ways);
        }
        self.resident = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::super::replacement::{Fifo, Lru};
    use super::*;

    fn b(n: u64) -> BlockAddr {
        BlockAddr::from_number(n)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c: SetAssocCache<Lru, u32> = SetAssocCache::new(2, 2).unwrap();
        assert!(c.access(b(5)).is_none());
        assert!(c.insert(b(5), 7).is_none());
        assert_eq!(c.access(b(5)), Some(&mut 7));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn conflicting_blocks_evict_lru_order() {
        // 1 set, 2 ways: blocks all conflict.
        let mut c: SetAssocCache<Lru, ()> = SetAssocCache::new(1, 2).unwrap();
        c.insert(b(1), ());
        c.insert(b(2), ());
        // Touch 1 so 2 is LRU.
        c.access(b(1));
        let evicted = c.insert(b(3), ()).unwrap();
        assert_eq!(evicted.0, b(2));
        assert!(c.contains(b(1)) && c.contains(b(3)) && !c.contains(b(2)));
    }

    #[test]
    fn probe_does_not_perturb_replacement() {
        let mut c: SetAssocCache<Lru, ()> = SetAssocCache::new(1, 2).unwrap();
        c.insert(b(1), ());
        c.insert(b(2), ());
        // Probe (unlike access) must not promote block 1.
        assert!(c.probe(b(1)).is_some());
        let evicted = c.insert(b(3), ()).unwrap();
        assert_eq!(evicted.0, b(1), "probe must not refresh LRU state");
    }

    #[test]
    fn reinsert_updates_meta_without_eviction() {
        let mut c: SetAssocCache<Lru, u32> = SetAssocCache::new(1, 2).unwrap();
        c.insert(b(1), 10);
        assert!(c.insert(b(1), 20).is_none());
        assert_eq!(c.probe(b(1)), Some(&20));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn blocks_map_to_distinct_sets_by_low_bits() {
        let mut c: SetAssocCache<Lru, ()> = SetAssocCache::new(4, 1).unwrap();
        // Blocks 0..4 map to sets 0..4: no evictions.
        for n in 0..4 {
            assert!(c.insert(b(n), ()).is_none());
        }
        assert_eq!(c.len(), 4);
        // Block 4 conflicts with block 0 (set 0).
        let evicted = c.insert(b(4), ()).unwrap();
        assert_eq!(evicted.0, b(0));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c: SetAssocCache<Lru, u32> = SetAssocCache::new(2, 2).unwrap();
        c.insert(b(1), 5);
        assert_eq!(c.invalidate(b(1)), Some(5));
        assert_eq!(c.invalidate(b(1)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn invalidated_way_is_refilled_first() {
        let mut c: SetAssocCache<Lru, u32> = SetAssocCache::new(1, 2).unwrap();
        c.insert(b(1), 1);
        c.insert(b(2), 2);
        c.invalidate(b(1));
        // The freed way must be reused without evicting block 2.
        assert!(c.insert(b(3), 3).is_none());
        assert!(c.contains(b(2)) && c.contains(b(3)));
    }

    #[test]
    fn clear_resets_everything() {
        let mut c: SetAssocCache<Lru, ()> = SetAssocCache::new(2, 2).unwrap();
        for n in 0..4 {
            c.insert(b(n), ());
        }
        c.clear();
        assert!(c.is_empty());
        for n in 0..4 {
            assert!(!c.contains(b(n)));
        }
    }

    #[test]
    fn fifo_policy_composes() {
        let mut c: SetAssocCache<Fifo, ()> = SetAssocCache::new(1, 2).unwrap();
        c.insert(b(1), ());
        c.insert(b(2), ());
        c.access(b(1)); // FIFO ignores the hit
        let evicted = c.insert(b(3), ()).unwrap();
        assert_eq!(evicted.0, b(1), "FIFO evicts in fill order despite hit");
    }

    #[test]
    fn rejects_non_power_of_two_sets() {
        assert!(SetAssocCache::<Lru, ()>::new(3, 2).is_err());
        assert!(SetAssocCache::<Lru, ()>::new(0, 2).is_err());
        assert!(SetAssocCache::<Lru, ()>::new(4, 0).is_err());
    }

    #[test]
    fn sentinel_block_never_matches_empty_ways() {
        // Block u64::MAX is representable (wrapping block arithmetic);
        // it must not alias the empty-way sentinel on lookups.
        let mut c: SetAssocCache<Lru, ()> = SetAssocCache::new(2, 2).unwrap();
        let max = BlockAddr::from_number(u64::MAX);
        assert!(!c.contains(max));
        assert!(c.access(max).is_none());
        assert!(c.invalidate(max).is_none(), "must not underflow resident");
        assert!(c.insert(max, ()).is_none(), "sentinel insert is dropped");
        assert_eq!(c.len(), 0, "dropped insert must not count as resident");
        c.insert(b(1), ());
        assert!(!c.contains(max));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn rejects_ways_beyond_policy_limit_as_config_error() {
        use super::super::replacement::ArrayLru;
        // Packed LRU caps at 16 ways: a wider geometry must surface as a
        // ConfigError from new(), not a panic.
        assert!(SetAssocCache::<Lru, ()>::new(4, 17).is_err());
        assert!(SetAssocCache::<ArrayLru, ()>::new(4, 17).is_ok());
        assert!(SetAssocCache::<ArrayLru, ()>::new(4, 33).is_err());
    }

    #[test]
    fn sixteen_way_set_tracks_full_lru_order() {
        // The packed-LRU word must track all 16 ways (the L2 geometry).
        let mut c: SetAssocCache<Lru, u32> = SetAssocCache::new(1, 16).unwrap();
        for n in 0..16 {
            assert!(c.insert(b(n), n as u32).is_none());
        }
        // Touch everything except block 5; block 5 must be the victim.
        for n in 0..16 {
            if n != 5 {
                c.access(b(n));
            }
        }
        let evicted = c.insert(b(100), 0).unwrap();
        assert_eq!(evicted.0, b(5));
    }

    #[test]
    fn paper_fragmentation_example() {
        // Paper Figure 1 (left): 4-block direct-mapped cache, sequences
        // ABCD then RS (R conflicts with A, S conflicts with C), then ABCD
        // again misses only on A and C.
        let mut c: SetAssocCache<Lru, ()> = SetAssocCache::new(4, 1).unwrap();
        let (a, bb, cc, d) = (b(0), b(1), b(2), b(3));
        let (r, s) = (b(4), b(6)); // set 0 and set 2: conflict with A and C
        let mut miss_seq = Vec::new();
        for blk in [a, bb, cc, d, r, s, a, bb, cc, d] {
            if c.access(blk).is_none() {
                miss_seq.push(blk);
                c.insert(blk, ());
            }
        }
        assert_eq!(miss_seq, vec![a, bb, cc, d, r, s, a, cc]);
    }
}

#[cfg(test)]
mod proptests {
    use super::super::replacement::Lru;
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any block inserted is immediately resident; capacity is bounded.
        #[test]
        fn inserted_blocks_resident_and_bounded(
            ops in proptest::collection::vec(0u64..64, 1..200),
        ) {
            let mut c: SetAssocCache<Lru, ()> = SetAssocCache::new(4, 2).unwrap();
            for n in ops {
                c.insert(BlockAddr::from_number(n), ());
                prop_assert!(c.contains(BlockAddr::from_number(n)));
                prop_assert!(c.len() <= c.capacity_blocks());
            }
        }

        /// In a fully-associative LRU cache of W ways, the last W *distinct*
        /// blocks accessed are always resident.
        #[test]
        fn lru_keeps_most_recent_distinct_blocks(
            ops in proptest::collection::vec(0u64..16, 1..300),
        ) {
            const WAYS: usize = 4;
            let mut c: SetAssocCache<Lru, ()> = SetAssocCache::new(1, WAYS).unwrap();
            let mut recent: Vec<u64> = Vec::new();
            for n in ops {
                if c.access(BlockAddr::from_number(n)).is_none() {
                    c.insert(BlockAddr::from_number(n), ());
                }
                recent.retain(|&x| x != n);
                recent.push(n);
                for &m in recent.iter().rev().take(WAYS) {
                    prop_assert!(
                        c.contains(BlockAddr::from_number(m)),
                        "block {m} within LRU window must be resident"
                    );
                }
            }
        }

        /// Eviction count is consistent: resident = inserts - evictions - invalidations.
        #[test]
        fn resident_count_is_consistent(
            ops in proptest::collection::vec((0u64..32, proptest::bool::ANY), 1..200),
        ) {
            let mut c: SetAssocCache<Lru, ()> = SetAssocCache::new(2, 2).unwrap();
            let mut resident = 0i64;
            for (n, invalidate) in ops {
                let blk = BlockAddr::from_number(n);
                if invalidate {
                    if c.invalidate(blk).is_some() {
                        resident -= 1;
                    }
                } else if !c.contains(blk) {
                    if c.insert(blk, ()).is_none() {
                        resident += 1;
                    }
                } else {
                    c.insert(blk, ());
                }
                prop_assert_eq!(c.len() as i64, resident);
            }
        }
    }
}
