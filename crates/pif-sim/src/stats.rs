//! Statistics: fetch/miss counters, prefetch accounting, and the log2
//! histogram used by the paper's distance/length figures.

use serde::{Deserialize, Serialize};

/// Instruction-fetch statistics collected by the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FetchStats {
    /// Correct-path demand fetch accesses (block granularity).
    pub demand_accesses: u64,
    /// Wrong-path fetch accesses injected by mispredictions.
    pub wrong_path_accesses: u64,
    /// Correct-path demand misses (block absent and not in flight).
    pub demand_misses: u64,
    /// Wrong-path misses (fill the cache but stall nothing).
    pub wrong_path_misses: u64,
    /// Correct-path demand accesses whose block was found only because a
    /// prefetch installed it (first use of a prefetched line).
    pub covered_by_prefetch: u64,
    /// Correct-path demand accesses that hit a block still in flight from a
    /// prefetch (late prefetch: partial stall).
    pub partial_covered: u64,
}

impl FetchStats {
    /// Misses the baseline (no-prefetch) configuration would have seen:
    /// remaining misses plus everything a prefetch absorbed.
    pub fn baseline_equivalent_misses(&self) -> u64 {
        self.demand_misses + self.covered_by_prefetch + self.partial_covered
    }

    /// Fraction of would-be misses eliminated or partially hidden by
    /// prefetching (the paper's Fig. 10 "L1 miss coverage").
    pub fn miss_coverage(&self) -> f64 {
        let base = self.baseline_equivalent_misses();
        if base == 0 {
            return 0.0;
        }
        (self.covered_by_prefetch + self.partial_covered) as f64 / base as f64
    }

    /// L1-I hit rate over correct-path demand accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.demand_accesses == 0 {
            return 1.0;
        }
        1.0 - self.demand_misses as f64 / self.demand_accesses as f64
    }
}

/// Prefetch-side statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchStats {
    /// Prefetch requests issued by the prefetcher (after the cache probe).
    pub issued: u64,
    /// Requests dropped because the block was already resident or already
    /// in flight.
    pub dropped_resident: u64,
    /// Prefetched blocks that were demanded before eviction (useful).
    pub useful: u64,
    /// Prefetched blocks evicted without ever being demanded (pollution).
    pub unused_evicted: u64,
}

impl PrefetchStats {
    /// Fraction of issued prefetches that proved useful.
    pub fn accuracy(&self) -> f64 {
        if self.issued == 0 {
            return 0.0;
        }
        self.useful as f64 / self.issued as f64
    }
}

/// Branch/front-end statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrontendStats {
    /// Retired instructions processed.
    pub instructions: u64,
    /// Retired branch instructions.
    pub branches: u64,
    /// Mispredicted branches (direction or target).
    pub mispredicts: u64,
    /// Wrong-path fetch accesses injected.
    pub wrong_path_accesses: u64,
}

impl FrontendStats {
    /// Branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            return 0.0;
        }
        self.mispredicts as f64 / self.branches as f64
    }
}

/// A histogram over log2-spaced buckets, as used by the paper's jump
/// distance (Fig. 7) and stream length (Fig. 9 left) plots.
///
/// Bucket `i` counts samples whose value `v` satisfies
/// `floor(log2(max(v,1))) == i`.
///
/// # Example
///
/// ```
/// use pif_sim::Log2Histogram;
///
/// let mut h = Log2Histogram::new(8);
/// h.record(1);   // bucket 0
/// h.record(5);   // bucket 2
/// h.record_weighted(1024, 10); // bucket 7 (clamped to the last bucket)
/// assert_eq!(h.bucket_count(0), 1);
/// assert_eq!(h.bucket_count(2), 1);
/// assert_eq!(h.bucket_count(7), 10);
/// assert_eq!(h.total(), 12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Log2Histogram {
    buckets: Vec<u64>,
}

impl Log2Histogram {
    /// Creates a histogram with `buckets` log2 buckets; values past the
    /// last bucket are clamped into it.
    pub fn new(buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        Log2Histogram {
            buckets: vec![0; buckets],
        }
    }

    fn bucket_for(&self, value: u64) -> usize {
        let b = 63 - value.max(1).leading_zeros() as usize;
        b.min(self.buckets.len() - 1)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_weighted(value, 1);
    }

    /// Records a sample with a weight (e.g. "jumps weighted by coverage").
    pub fn record_weighted(&mut self, value: u64, weight: u64) {
        let b = self.bucket_for(value);
        self.buckets[b] += weight;
    }

    /// Count in bucket `i`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Total weight recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Cumulative distribution: fraction of weight in buckets `0..=i`,
    /// as plotted in Figures 7 and 9 (left).
    pub fn cdf(&self) -> Vec<f64> {
        let total = self.total().max(1) as f64;
        let mut acc = 0u64;
        self.buckets
            .iter()
            .map(|&c| {
                acc += c;
                acc as f64 / total
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_stats_coverage() {
        let s = FetchStats {
            demand_accesses: 100,
            demand_misses: 5,
            covered_by_prefetch: 90,
            partial_covered: 5,
            ..Default::default()
        };
        assert_eq!(s.baseline_equivalent_misses(), 100);
        assert!((s.miss_coverage() - 0.95).abs() < 1e-9);
        assert!((s.hit_rate() - 0.95).abs() < 1e-9);
    }

    #[test]
    fn coverage_zero_without_misses() {
        assert_eq!(FetchStats::default().miss_coverage(), 0.0);
        assert_eq!(FetchStats::default().hit_rate(), 1.0);
    }

    #[test]
    fn prefetch_accuracy() {
        let p = PrefetchStats {
            issued: 10,
            useful: 7,
            ..Default::default()
        };
        assert!((p.accuracy() - 0.7).abs() < 1e-9);
        assert_eq!(PrefetchStats::default().accuracy(), 0.0);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Log2Histogram::new(6);
        for v in [1, 2, 3, 4, 7, 8, 15, 16, 31, 32] {
            h.record(v);
        }
        assert_eq!(h.bucket_count(0), 1); // 1
        assert_eq!(h.bucket_count(1), 2); // 2,3
        assert_eq!(h.bucket_count(2), 2); // 4,7
        assert_eq!(h.bucket_count(3), 2); // 8,15
        assert_eq!(h.bucket_count(4), 2); // 16,31
        assert_eq!(h.bucket_count(5), 1); // 32
    }

    #[test]
    fn histogram_clamps_to_last_bucket() {
        let mut h = Log2Histogram::new(3);
        h.record(1_000_000);
        assert_eq!(h.bucket_count(2), 1);
    }

    #[test]
    fn histogram_zero_treated_as_one() {
        let mut h = Log2Histogram::new(3);
        h.record(0);
        assert_eq!(h.bucket_count(0), 1);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut h = Log2Histogram::new(5);
        for v in [1, 2, 4, 8, 16, 16, 2] {
            h.record(v);
        }
        let cdf = h.cdf();
        for w in cdf.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mispredict_rate() {
        let f = FrontendStats {
            branches: 200,
            mispredicts: 10,
            ..Default::default()
        };
        assert!((f.mispredict_rate() - 0.05).abs() < 1e-9);
    }
}
