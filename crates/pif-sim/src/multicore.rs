//! Multi-core CMP driver.
//!
//! The paper simulates a 16-core CMP and reports results averaged across
//! cores, with 95% confidence intervals from SimFlex-style sampling
//! (§5). Cores run independent server contexts (each core executes its
//! own thread of the server workload); instruction-side interference
//! between cores is negligible for the paper's private-L1 / large-NUCA
//! configuration, so the driver runs one engine per core in parallel and
//! aggregates.

use parking_lot::Mutex;

use pif_types::{InstrSource, RetiredInstr};

use crate::config::EngineConfig;
use crate::engine::{Engine, RunOptions, RunReport};
use crate::prefetch::Prefetcher;

/// Mean, standard error, and 95% confidence half-width of a per-core
/// metric (the paper reports UIPC "at a 95% confidence level with less
/// than ±5% error").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Standard error of the mean.
    pub stderr: f64,
    /// 95% confidence half-width (normal approximation).
    pub ci95: f64,
}

impl Summary {
    /// Computes the summary of a sample. An empty sample yields all
    /// zeros (not a 0/0 NaN), and a singleton or constant sample has zero
    /// error.
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary {
                mean: 0.0,
                stderr: 0.0,
                ci95: 0.0,
            };
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = if samples.len() > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        let stderr = (var / n).sqrt();
        Summary {
            mean,
            stderr,
            ci95: 1.96 * stderr,
        }
    }

    /// Relative 95% error (the paper targets < ±5%).
    pub fn relative_error(&self) -> f64 {
        if self.mean == 0.0 {
            return 0.0;
        }
        self.ci95 / self.mean.abs()
    }
}

/// Aggregated results of a CMP run.
#[derive(Debug)]
pub struct CmpReport {
    /// Per-core reports, indexed by core id.
    pub per_core: Vec<RunReport>,
}

impl CmpReport {
    /// UIPC across cores.
    pub fn uipc(&self) -> Summary {
        Summary::of(
            &self
                .per_core
                .iter()
                .map(|r| r.timing.uipc())
                .collect::<Vec<_>>(),
        )
    }

    /// L1-I miss coverage across cores.
    pub fn miss_coverage(&self) -> Summary {
        Summary::of(
            &self
                .per_core
                .iter()
                .map(|r| r.miss_coverage())
                .collect::<Vec<_>>(),
        )
    }

    /// L1-I hit rate across cores.
    pub fn hit_rate(&self) -> Summary {
        Summary::of(
            &self
                .per_core
                .iter()
                .map(|r| r.fetch.hit_rate())
                .collect::<Vec<_>>(),
        )
    }

    /// Mean UIPC speedup over a baseline CMP run (per-core pairing).
    pub fn speedup_over(&self, baseline: &CmpReport) -> Summary {
        let speedups: Vec<f64> = self
            .per_core
            .iter()
            .zip(&baseline.per_core)
            .map(|(a, b)| a.speedup_over(b))
            .collect();
        Summary::of(&speedups)
    }
}

/// Runs `cores` independent engines in parallel, one per core.
///
/// `trace_for(core)` supplies each core's retire-order trace and
/// `prefetcher_for(core)` its (private) prefetcher instance, mirroring
/// the paper's dedicated per-core predictor hardware (§4).
///
/// # Example
///
/// ```
/// use pif_sim::multicore::run_cmp;
/// use pif_sim::{EngineConfig, NoPrefetcher};
/// use pif_types::{Address, RetiredInstr, TrapLevel};
///
/// let report = run_cmp(
///     &EngineConfig::paper_default(),
///     4,
///     0,
///     |core| {
///         (0..5_000u64)
///             .map(|i| RetiredInstr::simple(
///                 Address::new(((i + core as u64 * 7) % 512) * 64),
///                 TrapLevel::Tl0,
///             ))
///             .collect()
///     },
///     |_| NoPrefetcher,
/// );
/// assert_eq!(report.per_core.len(), 4);
/// assert!(report.uipc().mean > 0.0);
/// ```
pub fn run_cmp<P, T, F>(
    config: &EngineConfig,
    cores: usize,
    warmup_instrs: usize,
    trace_for: T,
    prefetcher_for: F,
) -> CmpReport
where
    P: Prefetcher + Send,
    T: Fn(usize) -> Vec<RetiredInstr> + Sync,
    F: Fn(usize) -> P + Sync,
{
    run_cmp_sources(
        config,
        cores,
        warmup_instrs,
        |core| trace_for(core).into_iter(),
        prefetcher_for,
    )
}

/// As [`run_cmp`], but each core pulls from a streaming [`InstrSource`]
/// instead of a materialized trace vector, so total memory stays bounded
/// no matter how long the per-core traces are — e.g. each core decoding
/// its own compressed trace file, or generating lazily on a side thread.
///
/// Pairs naturally with `pif_workloads::WorkloadProfile::stream` (lazy
/// per-core generation) or `pif_trace::TraceReader::instrs` (per-core
/// compressed trace files).
///
/// # Example
///
/// ```
/// use pif_sim::multicore::run_cmp_sources;
/// use pif_sim::{EngineConfig, NoPrefetcher};
/// use pif_types::{Address, RetiredInstr, TrapLevel};
///
/// // 4 cores, each pulling from a lazy per-core source; no Vec anywhere.
/// let report = run_cmp_sources(
///     &EngineConfig::paper_default(),
///     4,
///     0,
///     |core| {
///         (0..5_000u64).map(move |i| {
///             let pc = ((i + core as u64 * 7) % 512) * 64;
///             RetiredInstr::simple(Address::new(pc), TrapLevel::Tl0)
///         })
///     },
///     |_| NoPrefetcher,
/// );
/// assert_eq!(report.per_core.len(), 4);
/// ```
pub fn run_cmp_sources<P, S, T, F>(
    config: &EngineConfig,
    cores: usize,
    warmup_instrs: usize,
    source_for: T,
    prefetcher_for: F,
) -> CmpReport
where
    P: Prefetcher + Send,
    S: InstrSource + Send,
    T: Fn(usize) -> S + Sync,
    F: Fn(usize) -> P + Sync,
{
    assert!(cores > 0, "CMP needs at least one core");
    let engine = Engine::new(*config);
    let results: Mutex<Vec<Option<RunReport>>> = Mutex::new(vec![None; cores]);
    std::thread::scope(|s| {
        for core in 0..cores {
            let engine = &engine;
            let results = &results;
            let source_for = &source_for;
            let prefetcher_for = &prefetcher_for;
            s.spawn(move || {
                let source = source_for(core);
                let report = engine.run(
                    source,
                    prefetcher_for(core),
                    RunOptions::new().warmup(warmup_instrs),
                );
                results.lock()[core] = Some(report);
            });
        }
    });
    CmpReport {
        per_core: results
            .into_inner()
            .into_iter()
            .map(|r| r.expect("core completed"))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefetch::NoPrefetcher;
    use pif_types::{Address, TrapLevel};

    fn core_trace(core: usize, len: u64, blocks: u64) -> Vec<RetiredInstr> {
        (0..len)
            .map(|i| {
                RetiredInstr::simple(
                    Address::new(((i + core as u64 * 13) % blocks) * 64),
                    TrapLevel::Tl0,
                )
            })
            .collect()
    }

    #[test]
    fn summary_statistics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-9);
        assert!(s.stderr > 0.0);
        assert!((s.ci95 - 1.96 * s.stderr).abs() < 1e-12);
        assert!(s.relative_error() > 0.0);
    }

    #[test]
    fn summary_of_singleton_has_zero_error() {
        let s = Summary::of(&[5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stderr, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.relative_error(), 0.0);
    }

    #[test]
    fn summary_of_empty_sample_is_all_zeros() {
        let s = Summary::of(&[]);
        assert_eq!(s.mean, 0.0, "no 0/0 NaN on the empty sample");
        assert_eq!(s.stderr, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.relative_error(), 0.0);
        assert!(s.mean.is_finite() && s.stderr.is_finite());
    }

    #[test]
    fn summary_of_constant_sample_has_zero_variance() {
        let s = Summary::of(&[2.5; 17]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.stderr, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.relative_error(), 0.0);
    }

    #[test]
    fn cmp_runs_all_cores() {
        let report = run_cmp(
            &EngineConfig::paper_default(),
            8,
            0,
            |core| core_trace(core, 20_000, 2048),
            |_| NoPrefetcher,
        );
        assert_eq!(report.per_core.len(), 8);
        for r in &report.per_core {
            assert_eq!(r.frontend.instructions, 20_000);
        }
        let uipc = report.uipc();
        assert!(uipc.mean > 0.0);
    }

    #[test]
    fn identical_cores_have_zero_variance() {
        let report = run_cmp(
            &EngineConfig::paper_default(),
            4,
            0,
            |_| core_trace(0, 10_000, 512),
            |_| NoPrefetcher,
        );
        assert!(report.uipc().ci95 < 1e-9, "identical traces must agree");
    }

    #[test]
    fn sources_match_materialized_traces() {
        let vecs = run_cmp(
            &EngineConfig::paper_default(),
            4,
            100,
            |core| core_trace(core, 15_000, 1024),
            |_| NoPrefetcher,
        );
        let sources = run_cmp_sources(
            &EngineConfig::paper_default(),
            4,
            100,
            |core| {
                (0..15_000u64).map(move |i| {
                    RetiredInstr::simple(
                        Address::new(((i + core as u64 * 13) % 1024) * 64),
                        TrapLevel::Tl0,
                    )
                })
            },
            |_| NoPrefetcher,
        );
        for (a, b) in vecs.per_core.iter().zip(&sources.per_core) {
            assert_eq!(a.fetch, b.fetch);
            assert_eq!(a.timing, b.timing);
        }
    }

    #[test]
    fn speedup_pairs_cores() {
        let base = run_cmp(
            &EngineConfig::paper_default(),
            4,
            0,
            |core| core_trace(core, 30_000, 4096),
            |_| NoPrefetcher,
        );
        struct NextOne;
        impl Prefetcher for NextOne {
            fn name(&self) -> &'static str {
                "NextOne"
            }
            fn on_access_outcome(
                &mut self,
                _a: &pif_types::FetchAccess,
                block: pif_types::BlockAddr,
                outcome: crate::cache::AccessOutcome,
                ctx: &mut crate::prefetch::PrefetchContext<'_>,
            ) {
                if outcome == crate::cache::AccessOutcome::Miss {
                    for i in 1..=4 {
                        ctx.prefetch(block.offset(i));
                    }
                }
            }
        }
        let pf = run_cmp(
            &EngineConfig::paper_default(),
            4,
            0,
            |core| core_trace(core, 30_000, 4096),
            |_| NextOne,
        );
        let s = pf.speedup_over(&base);
        assert!(
            s.mean > 1.0,
            "sequential prefetch must speed up sweeps: {s:?}"
        );
    }
}
