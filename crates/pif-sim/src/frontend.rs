//! Front-end model: derives the speculative fetch-access stream from the
//! correct-path retire-order trace.
//!
//! This is the component that reproduces the paper's §2.2 observation. The
//! retire-order trace is ground truth; the front end replays it with a
//! *live* branch predictor and, whenever the predictor would have gone the
//! wrong way, injects a burst of wrong-path fetch accesses — of
//! data-dependent (here: pseudo-random, bounded) depth — before resuming on
//! the correct path. The resulting access stream is what the L1-I and any
//! access/miss-stream prefetcher observe.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use pif_types::{Address, BlockAddr, BranchKind, FetchAccess, RetiredInstr, TrapLevel};

use crate::bpred::{BranchTargetBuffer, DirectionPredictor, HybridPredictor, ReturnAddressStack};
use crate::config::FrontendConfig;
use crate::stats::FrontendStats;

/// An event produced by the front end, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontendEvent {
    /// A fetch access at block granularity (correct- or wrong-path).
    Fetch(FetchAccess),
    /// An instruction leaving the ROB. The flag records whether the
    /// instruction was a mispredicted branch (for the timing model).
    Retire(RetiredInstr, bool),
}

/// The front-end model. Feed it retired instructions in order via
/// [`FrontEnd::step`]; it emits [`FrontendEvent`]s through a callback.
///
/// # Example
///
/// ```
/// use pif_sim::frontend::{FrontEnd, FrontendEvent};
/// use pif_sim::FrontendConfig;
/// use pif_types::{Address, RetiredInstr, TrapLevel};
///
/// let mut fe = FrontEnd::new(FrontendConfig::paper_default());
/// let mut events = Vec::new();
/// for i in 0..32u64 {
///     let instr = RetiredInstr::simple(Address::new(i * 4), TrapLevel::Tl0);
///     fe.step(instr, |e| events.push(e));
/// }
/// fe.flush(|e| events.push(e));
/// // 32 instructions in 2 blocks: 2 fetch events + 32 retires.
/// let fetches = events.iter().filter(|e| matches!(e, FrontendEvent::Fetch(_))).count();
/// assert_eq!(fetches, 2);
/// ```
#[derive(Debug)]
pub struct FrontEnd {
    config: FrontendConfig,
    direction: HybridPredictor,
    btb: BranchTargetBuffer,
    ras: ReturnAddressStack,
    rng: SmallRng,
    current_block: Option<BlockAddr>,
    current_tl: TrapLevel,
    /// ROB model: retires are emitted `retire_delay_instrs` behind fetch.
    rob: VecDeque<(RetiredInstr, bool)>,
    stats: FrontendStats,
}

impl FrontEnd {
    /// Creates a front end with the given configuration.
    pub fn new(config: FrontendConfig) -> Self {
        FrontEnd {
            direction: HybridPredictor::new(
                config.gshare_entries,
                config.bimodal_entries,
                config.chooser_entries,
            ),
            btb: BranchTargetBuffer::new(config.btb_entries, 4),
            ras: ReturnAddressStack::new(config.ras_depth),
            rng: SmallRng::seed_from_u64(config.seed),
            current_block: None,
            current_tl: TrapLevel::Tl0,
            rob: VecDeque::with_capacity(config.retire_delay_instrs + 1),
            stats: FrontendStats::default(),
            config,
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> &FrontendStats {
        &self.stats
    }

    /// Clears the statistics while keeping all predictor state (tables,
    /// BTB, RAS, wrong-path RNG). Sampled simulation uses this to reuse
    /// one continuously warmed front end across measurement windows while
    /// reporting per-window counters.
    pub fn reset_stats(&mut self) {
        self.stats = FrontendStats::default();
    }

    /// Processes one retired instruction, emitting fetch events for it (and
    /// any wrong-path noise following it) plus delayed retire events.
    pub fn step(&mut self, instr: RetiredInstr, mut emit: impl FnMut(FrontendEvent)) {
        self.stats.instructions += 1;

        // Trap-level change is an asynchronous redirect: fetch restarts.
        if instr.trap_level != self.current_tl {
            self.current_block = None;
            self.current_tl = instr.trap_level;
        }

        // Correct-path fetch at block granularity.
        let block = instr.pc.block();
        if self.current_block != Some(block) {
            emit(FrontendEvent::Fetch(FetchAccess::correct(
                instr.pc,
                instr.trap_level,
            )));
            self.current_block = Some(block);
        }

        // Branch handling: predict, compare, inject wrong path.
        let mut mispredicted = false;
        if let Some(info) = instr.branch {
            self.stats.branches += 1;
            let actual = info.actual_target();
            let wrong_start: Option<Address> = match info.kind {
                BranchKind::Conditional => {
                    let pred_taken = self.direction.predict(instr.pc);
                    self.direction.update(instr.pc, info.taken);
                    if pred_taken != info.taken {
                        mispredicted = true;
                        Some(if pred_taken {
                            info.taken_target
                        } else {
                            info.fall_through
                        })
                    } else {
                        None
                    }
                }
                BranchKind::Direct | BranchKind::Call => {
                    // Target known at decode: no wrong path.
                    None
                }
                BranchKind::IndirectCall => {
                    let predicted = self.btb.predict(instr.pc).unwrap_or(info.fall_through);
                    self.btb.update(instr.pc, info.taken_target);
                    (predicted != actual).then(|| {
                        mispredicted = true;
                        predicted
                    })
                }
                BranchKind::Return => {
                    let predicted = self.ras.pop().unwrap_or(info.fall_through);
                    (predicted != actual).then(|| {
                        mispredicted = true;
                        predicted
                    })
                }
            };
            if info.kind.pushes_return() {
                self.ras.push(info.fall_through);
            }
            if mispredicted {
                self.stats.mispredicts += 1;
                if let Some(start) = wrong_start {
                    self.inject_wrong_path(start, instr.trap_level, &mut emit);
                }
                // After the squash, fetch redirects to the correct target:
                // the next correct-path instruction re-accesses its block.
                self.current_block = None;
            } else if info.taken && actual.block() != block {
                // Correctly-predicted taken branch to another block: the
                // next instruction will trigger a fetch via block change
                // (handled naturally at the next step).
            }
        }

        // ROB: delay retirement behind fetch.
        self.rob.push_back((instr, mispredicted));
        while self.rob.len() > self.config.retire_delay_instrs {
            let (retired, misp) = self.rob.pop_front().unwrap();
            emit(FrontendEvent::Retire(retired, misp));
        }
    }

    /// Drains the ROB at end of trace.
    pub fn flush(&mut self, mut emit: impl FnMut(FrontendEvent)) {
        while let Some((retired, misp)) = self.rob.pop_front() {
            emit(FrontendEvent::Retire(retired, misp));
        }
    }

    fn inject_wrong_path(
        &mut self,
        start: Address,
        tl: TrapLevel,
        emit: &mut impl FnMut(FrontendEvent),
    ) {
        // Data-dependent resolve latency: an arbitrary, bounded number of
        // sequential blocks fetched down the wrong path (§2.2).
        let depth = self.rng.gen_range(1..=self.config.wrong_path_max_blocks);
        let mut block = start.block();
        for i in 0..depth {
            let pc = if i == 0 { start } else { block.base() };
            emit(FrontendEvent::Fetch(FetchAccess::wrong(pc, tl)));
            self.stats.wrong_path_accesses += 1;
            block = block.next();
        }
    }

    /// Convenience: runs a whole trace, collecting all events.
    pub fn run_trace(
        config: FrontendConfig,
        trace: &[RetiredInstr],
    ) -> (Vec<FrontendEvent>, FrontendStats) {
        let mut fe = FrontEnd::new(config);
        let mut events = Vec::with_capacity(trace.len() * 2);
        for &instr in trace {
            fe.step(instr, |e| events.push(e));
        }
        fe.flush(|e| events.push(e));
        let stats = *fe.stats();
        (events, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pif_types::BranchInfo;

    fn cfg() -> FrontendConfig {
        FrontendConfig {
            retire_delay_instrs: 4,
            ..FrontendConfig::paper_default()
        }
    }

    fn straight_line(n: u64) -> Vec<RetiredInstr> {
        (0..n)
            .map(|i| RetiredInstr::simple(Address::new(i * 4), TrapLevel::Tl0))
            .collect()
    }

    #[test]
    fn straight_line_code_fetches_once_per_block() {
        let trace = straight_line(64); // 4 instrs/block? 64B block / 4B instr = 16
        let (events, stats) = FrontEnd::run_trace(cfg(), &trace);
        let fetches: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                FrontendEvent::Fetch(a) => Some(*a),
                _ => None,
            })
            .collect();
        assert_eq!(fetches.len(), 4, "64 instrs x 4B = 4 blocks");
        assert!(fetches.iter().all(|a| a.is_correct_path()));
        assert_eq!(stats.instructions, 64);
        assert_eq!(stats.mispredicts, 0);
    }

    #[test]
    fn retires_preserve_order_and_count() {
        let trace = straight_line(20);
        let (events, _) = FrontEnd::run_trace(cfg(), &trace);
        let retired: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                FrontendEvent::Retire(i, _) => Some(i.pc.raw()),
                _ => None,
            })
            .collect();
        assert_eq!(retired.len(), 20);
        assert!(retired.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn retire_lags_fetch_by_rob_depth() {
        let trace = straight_line(20);
        let mut fe = FrontEnd::new(cfg());
        let mut retired_before_step5 = 0;
        for (i, &instr) in trace.iter().enumerate() {
            fe.step(instr, |e| {
                if matches!(e, FrontendEvent::Retire(..)) && i < 5 {
                    retired_before_step5 += 1;
                }
            });
        }
        // With a 4-deep ROB, the first retire appears at step 4 (0-based).
        assert_eq!(retired_before_step5, 1);
    }

    #[test]
    fn untaken_then_taken_branch_mispredicts_and_injects_noise() {
        // Train a branch as not-taken, then flip it: the hybrid predictor
        // mispredicts and wrong-path accesses appear.
        let pc = Address::new(0x1000);
        let taken_target = Address::new(0x8000);
        let fall = Address::new(0x1004);
        let mk = |taken: bool| {
            RetiredInstr::branch(
                pc,
                TrapLevel::Tl0,
                BranchInfo {
                    kind: BranchKind::Conditional,
                    taken,
                    taken_target,
                    fall_through: fall,
                },
            )
        };
        let mut trace = Vec::new();
        for _ in 0..50 {
            trace.push(mk(false));
            trace.push(RetiredInstr::simple(fall, TrapLevel::Tl0));
        }
        // Now the branch is taken: predictor says not-taken -> wrong path
        // fetches from the fall-through.
        trace.push(mk(true));
        trace.push(RetiredInstr::simple(taken_target, TrapLevel::Tl0));

        let (events, stats) = FrontEnd::run_trace(cfg(), &trace);
        assert!(stats.mispredicts >= 1);
        let wrong: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                FrontendEvent::Fetch(a) if !a.is_correct_path() => Some(a.pc),
                _ => None,
            })
            .collect();
        assert!(
            !wrong.is_empty(),
            "misprediction must inject wrong-path fetches"
        );
        assert_eq!(
            wrong[0].block(),
            fall.block(),
            "wrong path starts at the mispredicted direction's target"
        );
        assert!(stats.wrong_path_accesses as usize >= wrong.len());
    }

    #[test]
    fn returns_predicted_by_ras_do_not_mispredict() {
        let call_pc = Address::new(0x100);
        let func = Address::new(0x2000);
        let ret_pc = Address::new(0x2004);
        let fall = Address::new(0x104);
        let mut trace = Vec::new();
        for _ in 0..10 {
            trace.push(RetiredInstr::branch(
                call_pc,
                TrapLevel::Tl0,
                BranchInfo {
                    kind: BranchKind::Call,
                    taken: true,
                    taken_target: func,
                    fall_through: fall,
                },
            ));
            trace.push(RetiredInstr::simple(func, TrapLevel::Tl0));
            trace.push(RetiredInstr::branch(
                ret_pc,
                TrapLevel::Tl0,
                BranchInfo {
                    kind: BranchKind::Return,
                    taken: true,
                    taken_target: fall,
                    fall_through: ret_pc.offset(4),
                },
            ));
            trace.push(RetiredInstr::simple(fall, TrapLevel::Tl0));
        }
        let (_, stats) = FrontEnd::run_trace(cfg(), &trace);
        assert_eq!(stats.mispredicts, 0, "RAS must predict matched call/return");
    }

    #[test]
    fn indirect_call_learns_target_via_btb() {
        let pc = Address::new(0x100);
        let target = Address::new(0x9000);
        let mk = || {
            RetiredInstr::branch(
                pc,
                TrapLevel::Tl0,
                BranchInfo {
                    kind: BranchKind::IndirectCall,
                    taken: true,
                    taken_target: target,
                    fall_through: pc.offset(4),
                },
            )
        };
        let mut trace = Vec::new();
        for _ in 0..5 {
            trace.push(mk());
            trace.push(RetiredInstr::simple(target, TrapLevel::Tl0));
            // Return to keep RAS balanced is omitted; we only check BTB.
        }
        let (_, stats) = FrontEnd::run_trace(cfg(), &trace);
        // First encounter mispredicts (BTB cold), later ones hit.
        assert_eq!(stats.mispredicts, 1);
    }

    #[test]
    fn trap_level_change_restarts_fetch_block() {
        let mut trace = straight_line(4);
        // Interrupt handler at a far address, same block each time.
        trace.push(RetiredInstr::simple(
            Address::new(0x400_0000),
            TrapLevel::Tl1,
        ));
        trace.push(RetiredInstr::simple(
            Address::new(0x400_0004),
            TrapLevel::Tl1,
        ));
        // Return to the same application block.
        trace.push(RetiredInstr::simple(Address::new(16), TrapLevel::Tl0));
        let (events, _) = FrontEnd::run_trace(cfg(), &trace);
        let fetch_blocks: Vec<(u64, TrapLevel)> = events
            .iter()
            .filter_map(|e| match e {
                FrontendEvent::Fetch(a) => Some((a.pc.block().number(), a.trap_level)),
                _ => None,
            })
            .collect();
        // Application block 0, handler block, application block 0 again.
        assert_eq!(fetch_blocks.len(), 3);
        assert_eq!(fetch_blocks[0].1, TrapLevel::Tl0);
        assert_eq!(fetch_blocks[1].1, TrapLevel::Tl1);
        assert_eq!(fetch_blocks[2], fetch_blocks[0]);
    }

    #[test]
    fn wrong_path_depth_is_bounded_by_config() {
        let mut config = cfg();
        config.wrong_path_max_blocks = 2;
        // Build a trace with one guaranteed mispredict (cold indirect).
        let pc = Address::new(0x100);
        let trace = vec![
            RetiredInstr::branch(
                pc,
                TrapLevel::Tl0,
                BranchInfo {
                    kind: BranchKind::IndirectCall,
                    taken: true,
                    taken_target: Address::new(0x9000),
                    fall_through: pc.offset(4),
                },
            ),
            RetiredInstr::simple(Address::new(0x9000), TrapLevel::Tl0),
        ];
        let (_, stats) = FrontEnd::run_trace(config, &trace);
        assert!(stats.wrong_path_accesses <= 2);
        assert!(stats.wrong_path_accesses >= 1);
    }
}
