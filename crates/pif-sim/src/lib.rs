//! Trace-driven microarchitecture substrate for the Proactive Instruction
//! Fetch reproduction.
//!
//! The paper evaluates PIF on Flexus, a cycle-accurate full-system SPARC
//! simulator. This crate rebuilds the parts of that substrate that the
//! paper's phenomena actually depend on:
//!
//! * a **set-associative cache model** ([`cache`]) with pluggable
//!   replacement, used for the 64 KB 2-way L1-I and the L2 slice — the
//!   component that *filters and fragments* the miss stream (paper §2.1);
//! * a **branch predictor** ([`bpred`]: 16K gshare + 16K bimodal hybrid,
//!   BTB, return address stack) driving the **front-end model**
//!   ([`frontend`]) that injects *wrong-path noise* into the fetch-access
//!   stream (paper §2.2);
//! * **prefetcher plumbing** ([`prefetch`]): the [`Prefetcher`] trait every
//!   prefetcher (PIF and baselines) implements, plus an in-flight prefetch
//!   queue with latency. The request path is *sink-style*: hooks write
//!   prefetch requests into an engine-owned reusable buffer via
//!   [`PrefetchContext::prefetch`], and the queue drains through a
//!   callback — the steady-state loop performs no per-event heap
//!   allocation (`PrefetcherHarness::drive` accordingly returns a borrow
//!   of the reused buffer rather than a fresh `Vec`);
//! * the **engine** ([`engine`]) that drives a retire-order trace through
//!   front end → L1-I → prefetcher and collects statistics, with an
//!   opt-in instrumentation layer ([`probe`]): a [`Probe`] observes
//!   fetch-stall breakdowns, queue occupancy, and prefetcher gauges,
//!   while the [`NoProbe`] default monomorphizes to nothing;
//! * a **fetch-stall timing model** ([`timing`]) turning miss/stall counts
//!   into cycles and UIPC, the paper's throughput metric;
//! * the **temporal-stream predictor evaluation harness**
//!   ([`predictor_eval`]) used for the paper's trace-based coverage studies
//!   (Figures 2, 7, 8, 9);
//! * **sampled simulation** ([`sampling`]): SimFlex/SMARTS-style plans
//!   (per-sample functional warmup + detailed measurement windows) with
//!   random access into compressed traces via `pif_trace`'s chunk index,
//!   reporting per-sample UIPC/MPKI at a 95% confidence level (§5's
//!   measurement methodology).
//!
//! # Example
//!
//! ```
//! use pif_sim::{Engine, EngineConfig, NoPrefetcher, RunOptions};
//! use pif_types::{Address, RetiredInstr, TrapLevel};
//!
//! // A tiny synthetic trace: a loop over 4 blocks.
//! let mut trace = Vec::new();
//! for _ in 0..100 {
//!     for blk in 0..4u64 {
//!         trace.push(RetiredInstr::simple(Address::new(blk * 64), TrapLevel::Tl0));
//!     }
//! }
//! let report = Engine::new(EngineConfig::paper_default()).run(trace.iter().copied(), NoPrefetcher, RunOptions::new());
//! assert!(report.fetch.demand_misses <= 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bpred;
pub mod cache;
mod config;
pub mod engine;
pub mod frontend;
pub mod multicore;
pub mod predictor_eval;
pub mod prefetch;
pub mod probe;
pub mod sampling;
pub mod stats;
pub mod streams;
pub mod timing;

pub use config::{EngineConfig, FrontendConfig, ICacheConfig, L2Config, TimingConfig};
pub use engine::{Engine, RunOptions, RunReport};
pub use prefetch::{NoPrefetcher, PrefetchContext, Prefetcher, PrefetcherHarness};
pub use probe::{EngineProbe, NoProbe, Probe, StallKind};
pub use stats::{FetchStats, FrontendStats, Log2Histogram, PrefetchStats};
