//! SimFlex/SMARTS-style sampled simulation.
//!
//! The paper reports UIPC "at a 95% confidence level with less than ±5%
//! error" (§5) using sampled simulation: instead of simulating a trace
//! exhaustively, many short **measurement windows** are simulated at
//! detail, each preceded by a **functional warmup window** that warms
//! caches, predictor tables, and prefetcher state; per-window metrics are
//! then aggregated with the standard error machinery of
//! [`Summary`].
//!
//! The pieces:
//!
//! * [`SamplingPlan`] — how many samples, how they are placed
//!   ([`SampleSelection::Systematic`] or seeded
//!   [`SampleSelection::Random`]), and the per-sample warmup/measurement
//!   lengths. [`SamplingPlan::windows`] resolves the plan against a
//!   trace's total record count into concrete [`SampleWindow`]s —
//!   deterministically: the same `(plan, total)` always yields the same
//!   windows, so sampled results are reproducible bit for bit.
//! * [`run_sampled`] — the generic driver: one engine run per window over
//!   any [`InstrSource`] positioned at the window's warmup start.
//! * [`sample_trace_file`] — the out-of-core entry point: seeks each
//!   window via `pif_trace::TraceReader::seek_to_record`, so a
//!   multi-hundred-million-instruction file is sampled while decoding
//!   only the sampled windows (skipped chunks are never decompressed).
//! * [`SampledRunReport`] — per-sample UIPC/MPKI/coverage with
//!   mean/stderr/ci95 summaries.

use std::path::Path;

use pif_types::{InstrSource, RetiredInstr};

use crate::config::EngineConfig;
use crate::engine::{Engine, RunOptions, RunReport};
use crate::frontend::FrontEnd;
use crate::multicore::Summary;
use crate::prefetch::Prefetcher;

/// How measurement-window start positions are placed over the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleSelection {
    /// Evenly spaced windows (SMARTS-style systematic sampling).
    Systematic,
    /// Uniformly random positions from a seeded deterministic stream;
    /// the same seed always selects the same windows.
    Random {
        /// Seed of the position stream.
        seed: u64,
    },
}

/// How prefetcher/predictor tables are warmed across samples — and,
/// consequently, whether the plan's windows are independent units of
/// work that a parallel driver may fan out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmStrategy {
    /// One prefetcher instance **and one front end** (direction tables,
    /// BTB, RAS) trained continuously across the file-ordered samples —
    /// SMARTS-style functional warming of predictor tables: by mid-run
    /// the predictors have accumulated the recurring streams and branch
    /// behaviour the exhaustive run would know, without decoding the
    /// skipped regions. Inherently serial (each window consumes state
    /// the previous windows produced). This is the default.
    Continuous,
    /// Fresh predictor state per window, warmed by the window's own
    /// functional-warmup prefix plus `extra_warmup_instrs` of additional
    /// burn-in prepended to it (clamped at the trace head like ordinary
    /// warmup). Windows share no state, so they can run in any order —
    /// or concurrently — and still produce byte-identical reports; the
    /// extra burn-in buys back part of the deep-history coverage that
    /// [`WarmStrategy::Continuous`] accumulates from earlier samples.
    PerWindow {
        /// Additional warmup instructions prepended to every window's
        /// functional-warmup prefix (0 = warm from the plan's
        /// `warmup_instrs` alone).
        extra_warmup_instrs: u64,
    },
}

impl WarmStrategy {
    /// Per-window warming with no extra burn-in (the fully independent
    /// minimum-work strategy).
    pub fn per_window() -> Self {
        WarmStrategy::PerWindow {
            extra_warmup_instrs: 0,
        }
    }
}

/// A sampled-simulation plan: sample count, placement, and the per-sample
/// functional-warmup and detailed-measurement window lengths (in
/// instructions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingPlan {
    /// Number of measurement windows.
    pub samples: usize,
    /// Window placement policy.
    pub selection: SampleSelection,
    /// Functional-warmup instructions simulated (but not measured) before
    /// each measurement window; clamped at the trace head.
    pub warmup_instrs: u64,
    /// Detailed-measurement instructions per window; clamped at the trace
    /// tail.
    pub measure_instrs: u64,
    /// Run samples with a checkpoint-warmed L2
    /// ([`crate::L2Config::assume_warm`]); on by default. The paper's
    /// SimFlex checkpoints store warmed cache state because an 8 MB NUCA
    /// cannot be re-warmed inside a sample's warmup window, while the
    /// small, fast-warming structures (L1-I, branch predictors,
    /// prefetcher streaming state) are rebuilt by the warmup window
    /// itself.
    pub assume_warm_l2: bool,
    /// How predictor tables warm across samples (default
    /// [`WarmStrategy::Continuous`]).
    pub warm_strategy: WarmStrategy,
    /// Leading samples excluded from the summaries (still simulated —
    /// they train the continuously warmed predictors). Under
    /// [`WarmStrategy::Continuous`] the first few windows run with
    /// the coldest predictor state; burning them in removes that
    /// transient from the estimate, exactly like burn-in in any stateful
    /// Monte-Carlo estimator. Default 0.
    pub burn_in: usize,
}

impl SamplingPlan {
    /// A systematic (evenly spaced) plan.
    pub fn systematic(samples: usize, warmup_instrs: u64, measure_instrs: u64) -> Self {
        SamplingPlan {
            samples,
            selection: SampleSelection::Systematic,
            warmup_instrs,
            measure_instrs,
            assume_warm_l2: true,
            warm_strategy: WarmStrategy::Continuous,
            burn_in: 0,
        }
    }

    /// A seeded-random plan.
    pub fn random(samples: usize, seed: u64, warmup_instrs: u64, measure_instrs: u64) -> Self {
        SamplingPlan {
            samples,
            selection: SampleSelection::Random { seed },
            warmup_instrs,
            measure_instrs,
            assume_warm_l2: true,
            warm_strategy: WarmStrategy::Continuous,
            burn_in: 0,
        }
    }

    /// Returns the plan with the first `burn_in` samples excluded from
    /// summaries (see [`SamplingPlan::burn_in`]).
    #[must_use]
    pub fn with_burn_in(mut self, burn_in: usize) -> Self {
        self.burn_in = burn_in;
        self
    }

    /// Returns the plan with per-sample (fully independent) prefetcher
    /// state instead of continuous predictor warming — shorthand for
    /// [`SamplingPlan::with_warm_strategy`] of
    /// [`WarmStrategy::per_window`].
    #[must_use]
    pub fn with_per_sample_predictors(self) -> Self {
        self.with_warm_strategy(WarmStrategy::per_window())
    }

    /// Returns the plan with the given [`WarmStrategy`].
    #[must_use]
    pub fn with_warm_strategy(mut self, strategy: WarmStrategy) -> Self {
        self.warm_strategy = strategy;
        self
    }

    /// Whether this plan's windows are fully independent units of work
    /// (no predictor state crosses window boundaries) — the precondition
    /// for fanning them out on a thread pool while keeping the merged
    /// report byte-identical to the serial run.
    pub fn windows_independent(&self) -> bool {
        matches!(self.warm_strategy, WarmStrategy::PerWindow { .. })
    }

    /// The functional-warmup length each window actually targets: the
    /// plan's `warmup_instrs` plus any per-window burn-in the
    /// [`WarmStrategy`] adds (clamping at the trace head still applies).
    pub fn effective_warmup_instrs(&self) -> u64 {
        match self.warm_strategy {
            WarmStrategy::Continuous => self.warmup_instrs,
            WarmStrategy::PerWindow {
                extra_warmup_instrs,
            } => self.warmup_instrs + extra_warmup_instrs,
        }
    }

    /// Returns the plan with cold-structure semantics (no warm-L2
    /// assumption) — for bias studies against the checkpoint-warmed
    /// default.
    #[must_use]
    pub fn with_cold_l2(mut self) -> Self {
        self.assume_warm_l2 = false;
        self
    }

    /// The engine configuration a sampled run actually uses: `config`
    /// plus this plan's warm-L2 assumption.
    pub fn engine_config(&self, config: &EngineConfig) -> EngineConfig {
        let mut cfg = *config;
        if self.assume_warm_l2 {
            cfg.l2 = cfg.l2.with_assume_warm(true);
        }
        cfg
    }

    /// Instructions simulated per sample (warmup + measurement,
    /// including any per-window burn-in), before end-of-trace clamping.
    pub fn instrs_per_sample(&self) -> u64 {
        self.effective_warmup_instrs() + self.measure_instrs
    }

    /// Resolves the plan against a trace of `total_records` instructions
    /// into concrete, file-order windows.
    ///
    /// Deterministic: depends only on `(self, total_records)`. Windows
    /// are sorted by position (so seeking walks the file mostly forward)
    /// and indexed in that order; measurement starts fall in
    /// `[0, total - measure]` and the warmup window is clamped at the
    /// trace head (a sample near record 0 simply warms up for less).
    pub fn windows(&self, total_records: u64) -> Vec<SampleWindow> {
        if total_records == 0 || self.samples == 0 {
            return Vec::new();
        }
        let measure = self.measure_instrs.max(1).min(total_records);
        let usable = total_records - measure;
        let mut starts: Vec<u64> = match self.selection {
            SampleSelection::Systematic => {
                // Midpoint-of-stride placement: window i starts at the
                // middle of the i-th of `samples` equal strides, so
                // samples never pile onto the trace head or tail.
                let n = self.samples as u64;
                (0..n).map(|i| usable * (2 * i + 1) / (2 * n)).collect()
            }
            SampleSelection::Random { seed } => {
                let mut state = seed ^ 0x5DEE_CE66_D1CE_4E5B;
                (0..self.samples)
                    .map(|_| splitmix64(&mut state) % (usable + 1))
                    .collect()
            }
        };
        starts.sort_unstable();
        starts
            .into_iter()
            .enumerate()
            .map(|(index, measure_start)| {
                let warmup_start = measure_start.saturating_sub(self.effective_warmup_instrs());
                SampleWindow {
                    index,
                    warmup_start,
                    warmup_instrs: measure_start - warmup_start,
                    measure_start,
                    measure_instrs: measure.min(total_records - measure_start),
                }
            })
            .collect()
    }
}

/// SplitMix64: a tiny, high-quality deterministic stream for window
/// placement (no dependency on the `rand` shim, so plans are stable even
/// if the workspace RNG changes).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One resolved sample window, in record indices of the underlying trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleWindow {
    /// Sample index in file order.
    pub index: usize,
    /// Record index where functional warmup begins.
    pub warmup_start: u64,
    /// Warmup length actually available (clamped at the trace head).
    pub warmup_instrs: u64,
    /// Record index where detailed measurement begins.
    pub measure_start: u64,
    /// Measurement length actually available (clamped at the trace tail).
    pub measure_instrs: u64,
}

impl SampleWindow {
    /// Total instructions this window simulates (warmup + measurement).
    pub fn len(&self) -> u64 {
        self.warmup_instrs + self.measure_instrs
    }

    /// Whether the window is empty (zero-length trace edge case).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One sample's engine run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleResult {
    /// The window this sample covered.
    pub window: SampleWindow,
    /// The post-warmup engine report for the window.
    pub report: RunReport,
}

/// Aggregated results of a sampled run: per-sample reports plus
/// [`Summary`] statistics over the per-sample metrics — the shape the
/// paper's "UIPC at 95% confidence" methodology reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampledRunReport {
    /// Name of the prefetcher measured (empty if the plan produced no
    /// windows, e.g. over an empty trace).
    pub prefetcher: &'static str,
    /// Record count of the sampled trace.
    pub total_records: u64,
    /// Leading samples excluded from summaries (from the plan's
    /// [`SamplingPlan::burn_in`], clamped to the sample count).
    pub burn_in: usize,
    /// Per-sample results, in window order; the first
    /// [`SampledRunReport::burn_in`] are training-only.
    pub samples: Vec<SampleResult>,
}

impl SampledRunReport {
    /// The samples that contribute to summaries (burn-in excluded).
    pub fn measured_samples(&self) -> &[SampleResult] {
        &self.samples[self.burn_in.min(self.samples.len())..]
    }

    /// Summary over a per-sample metric (burn-in samples excluded).
    pub fn summary_of(&self, metric: impl Fn(&RunReport) -> f64) -> Summary {
        Summary::of(
            &self
                .measured_samples()
                .iter()
                .map(|s| metric(&s.report))
                .collect::<Vec<_>>(),
        )
    }

    /// Per-sample UIPC summary (the paper's throughput metric).
    pub fn uipc(&self) -> Summary {
        self.summary_of(|r| r.timing.uipc())
    }

    /// Per-sample L1-I misses per kilo-instruction.
    pub fn mpki(&self) -> Summary {
        self.summary_of(|r| r.fetch.demand_misses as f64 / (r.timing.instructions as f64 / 1000.0))
    }

    /// Per-sample miss-coverage summary.
    pub fn miss_coverage(&self) -> Summary {
        self.summary_of(|r| r.fetch.miss_coverage())
    }

    /// Instructions measured at detail across the summarized samples.
    pub fn measured_instructions(&self) -> u64 {
        self.measured_samples()
            .iter()
            .map(|s| s.report.timing.instructions)
            .sum()
    }

    /// Instructions simulated at all (warmup + measurement).
    pub fn simulated_instructions(&self) -> u64 {
        self.samples.iter().map(|s| s.window.len()).sum()
    }

    /// Simulated-to-total work ratio — the sampling speedup lever: the
    /// run decoded and simulated this multiple of the trace length.
    /// Overlapping windows are counted once per window, so on traces
    /// short relative to `samples × window` the ratio **exceeds 1**
    /// (sampling such a trace costs more than an exhaustive run; the
    /// payoff is at long-trace scale, where windows are disjoint and the
    /// ratio is ≪ 1).
    pub fn sampled_fraction(&self) -> f64 {
        if self.total_records == 0 {
            return 0.0;
        }
        self.simulated_instructions() as f64 / self.total_records as f64
    }
}

/// Bounds a source to a window's length so the engine stops at the
/// window's end rather than draining the trace.
struct Bounded<S> {
    inner: S,
    left: u64,
}

impl<S: InstrSource> Iterator for Bounded<S> {
    type Item = RetiredInstr;

    fn next(&mut self) -> Option<RetiredInstr> {
        if self.left == 0 {
            return None;
        }
        self.left -= 1;
        self.inner.next_instr()
    }
}

/// Runs a sampled simulation: one engine run per window of
/// `plan.windows(total_records)`.
///
/// `open_at(window)` must return a source positioned at
/// `window.warmup_start`; it will be pulled for at most `window.len()`
/// instructions. How `prefetcher_for` is used depends on the plan's
/// [`WarmStrategy`]: under the default [`WarmStrategy::Continuous`],
/// `prefetcher_for(0)` is called **once** and that instance (plus one
/// front end) deliberately carries its trained state across all windows;
/// only under [`WarmStrategy::PerWindow`] does `prefetcher_for(index)`
/// build a fresh, fully independent prefetcher per sample. Engine-side
/// state (caches, queues, timing) is always fresh per window.
///
/// With independent windows ([`SamplingPlan::windows_independent`]) this
/// serial loop and a pool-parallel fan-out over
/// [`run_one_window`]/[`assemble_report`] (see
/// `pif_lab::sampled::run_sampled_parallel`) produce byte-identical
/// reports.
///
/// # Example
///
/// ```
/// use pif_sim::sampling::{run_sampled, SamplingPlan};
/// use pif_sim::{EngineConfig, NoPrefetcher};
/// use pif_types::{Address, RetiredInstr, TrapLevel};
///
/// let trace: Vec<_> = (0..100_000u64)
///     .map(|i| RetiredInstr::simple(Address::new((i % 4096) * 4), TrapLevel::Tl0))
///     .collect();
/// let plan = SamplingPlan::systematic(8, 2_000, 1_000);
/// let report = run_sampled(
///     &EngineConfig::paper_default(),
///     &plan,
///     trace.len() as u64,
///     |w| trace[w.warmup_start as usize..].iter().copied(),
///     |_| NoPrefetcher,
/// );
/// assert_eq!(report.samples.len(), 8);
/// assert!(report.uipc().mean > 0.0);
/// assert!(report.sampled_fraction() < 0.3);
/// ```
pub fn run_sampled<P, S, O, F>(
    config: &EngineConfig,
    plan: &SamplingPlan,
    total_records: u64,
    mut open_at: O,
    mut prefetcher_for: F,
) -> SampledRunReport
where
    P: Prefetcher,
    S: InstrSource,
    O: FnMut(&SampleWindow) -> S,
    F: FnMut(usize) -> P,
{
    let windows = plan.windows(total_records);
    let mut driver = SampledDriver::new(config, plan, &windows, &mut prefetcher_for);
    for window in windows {
        let source = Bounded {
            inner: open_at(&window),
            left: window.len(),
        };
        driver.run_window(window, source, || prefetcher_for(window.index));
    }
    driver.finish(plan, total_records)
}

/// The per-window execution core shared by [`run_sampled`] and
/// [`sample_trace_file`]: owns the (plan-adjusted) engine, the
/// continuously-warmed prefetcher/front-end pair when the plan asks for
/// one, and the accumulating sample list — so warming and report
/// assembly cannot diverge between the in-memory and out-of-core paths.
struct SampledDriver<P> {
    engine: Engine,
    shared: Option<(P, FrontEnd)>,
    prefetcher_name: &'static str,
    samples: Vec<SampleResult>,
}

impl<P: Prefetcher> SampledDriver<P> {
    fn new(
        config: &EngineConfig,
        plan: &SamplingPlan,
        windows: &[SampleWindow],
        prefetcher_for: &mut impl FnMut(usize) -> P,
    ) -> Self {
        let engine = Engine::new(plan.engine_config(config));
        let shared = match plan.warm_strategy {
            WarmStrategy::Continuous if !windows.is_empty() => {
                Some((prefetcher_for(0), FrontEnd::new(engine.config().frontend)))
            }
            _ => None,
        };
        SampledDriver {
            engine,
            shared,
            prefetcher_name: "",
            samples: Vec::with_capacity(windows.len()),
        }
    }

    /// Runs one window over `source` (positioned at the window's warmup
    /// start and bounded to `window.len()` pulls by the caller). `mk` is
    /// only invoked in per-window mode.
    fn run_window<S: InstrSource>(
        &mut self,
        window: SampleWindow,
        source: S,
        mk: impl FnOnce() -> P,
    ) {
        let warmup = window.warmup_instrs as usize;
        let report = match self.shared.as_mut() {
            Some((p, fe)) => self.engine.run(
                source,
                &mut *p,
                RunOptions::new().warmup(warmup).frontend(fe),
            ),
            None => self
                .engine
                .run(source, mk(), RunOptions::new().warmup(warmup)),
        };
        self.prefetcher_name = report.prefetcher;
        self.samples.push(SampleResult { window, report });
    }

    fn finish(self, plan: &SamplingPlan, total_records: u64) -> SampledRunReport {
        SampledRunReport {
            prefetcher: self.prefetcher_name,
            total_records,
            burn_in: plan.burn_in.min(self.samples.len()),
            samples: self.samples,
        }
    }
}

/// Samples a trace **file** out of core: windows are reached via
/// `TraceReader::seek_to_record`, so everything between samples is
/// skipped at chunk granularity without decompression — this is what
/// makes a sampled run of a 10M+ instruction trace several times faster
/// than the exhaustive run while reporting its own confidence interval.
///
/// # Errors
///
/// I/O and decode errors from opening, indexing, seeking, or reading the
/// sampled windows.
pub fn sample_trace_file<P, F>(
    config: &EngineConfig,
    plan: &SamplingPlan,
    path: &Path,
    mut prefetcher_for: F,
) -> Result<SampledRunReport, pif_trace::TraceDecodeError>
where
    P: Prefetcher,
    F: FnMut(usize) -> P,
{
    let file = std::fs::File::open(path)?;
    let mut reader = pif_trace::TraceReader::open_indexed(std::io::BufReader::new(file))?;
    let total = reader
        .declared_count()
        .expect("indexed v2 and v1 readers both know their record count");
    let windows = plan.windows(total);
    let mut driver = SampledDriver::new(config, plan, &windows, &mut prefetcher_for);
    for window in windows {
        reader.seek_to_record(window.warmup_start)?;
        let mut source = reader.instrs_mut();
        driver.run_window(window, source.by_ref().take(window.len() as usize), || {
            prefetcher_for(window.index)
        });
        if let Some(e) = source.take_error() {
            return Err(e);
        }
    }
    Ok(driver.finish(plan, total))
}

/// Runs exactly one sample window in isolation and returns its
/// [`SampleResult`].
///
/// This is the unit of work a parallel sampled driver fans out: a fresh
/// [`Engine`] and a fresh `prefetcher`, fed `window.len()` instructions
/// from `source` (which must already be positioned at
/// `window.warmup_start`). Because the engine holds no state across
/// `run` calls, the result is byte-identical to what the serial
/// [`run_sampled`] loop produces for the same window under
/// [`WarmStrategy::PerWindow`] — that equivalence is what lets
/// [`assemble_report`] splice independently-computed windows back into a
/// report indistinguishable from a serial run.
///
/// Plans using [`WarmStrategy::Continuous`] thread predictor state
/// through windows in file order and therefore cannot be decomposed this
/// way; callers should check [`SamplingPlan::windows_independent`] and
/// fall back to [`run_sampled`].
pub fn run_one_window<P: Prefetcher, S: InstrSource>(
    config: &EngineConfig,
    plan: &SamplingPlan,
    window: SampleWindow,
    source: S,
    prefetcher: P,
) -> SampleResult {
    let engine = Engine::new(plan.engine_config(config));
    let bounded = Bounded {
        inner: source,
        left: window.len(),
    };
    let report = engine.run(
        bounded,
        prefetcher,
        RunOptions::new().warmup(window.warmup_instrs as usize),
    );
    SampleResult { window, report }
}

/// Merges per-window [`SampleResult`]s — typically produced concurrently
/// by [`run_one_window`] — into the [`SampledRunReport`] the serial
/// driver would have built.
///
/// Samples are ordered by window index, so the report is independent of
/// the completion (or submission) order of the windows: any thread count
/// yields the same bytes. Burn-in is re-clamped against the actual
/// sample count exactly as the serial driver's `finish` does.
pub fn assemble_report(
    plan: &SamplingPlan,
    total_records: u64,
    mut samples: Vec<SampleResult>,
) -> SampledRunReport {
    samples.sort_by_key(|s| s.window.index);
    SampledRunReport {
        prefetcher: samples.first().map_or("", |s| s.report.prefetcher),
        total_records,
        burn_in: plan.burn_in.min(samples.len()),
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefetch::NoPrefetcher;
    use pif_types::{Address, TrapLevel};

    fn looped_trace(n: u64, blocks: u64) -> Vec<RetiredInstr> {
        (0..n)
            .map(|i| RetiredInstr::simple(Address::new((i % blocks) * 64), TrapLevel::Tl0))
            .collect()
    }

    #[test]
    fn systematic_windows_are_spread_and_clamped() {
        let plan = SamplingPlan::systematic(10, 5_000, 2_000);
        let windows = plan.windows(100_000);
        assert_eq!(windows.len(), 10);
        for (i, w) in windows.iter().enumerate() {
            assert_eq!(w.index, i);
            assert!(w.measure_start + w.measure_instrs <= 100_000);
            assert_eq!(w.measure_start - w.warmup_start, w.warmup_instrs);
            assert!(w.warmup_instrs <= 5_000);
            assert_eq!(w.measure_instrs, 2_000);
        }
        // Spread: first and last windows far apart.
        assert!(windows[9].measure_start - windows[0].measure_start > 50_000);
    }

    #[test]
    fn random_windows_are_seed_deterministic() {
        let a = SamplingPlan::random(16, 42, 1_000, 500).windows(1_000_000);
        let b = SamplingPlan::random(16, 42, 1_000, 500).windows(1_000_000);
        let c = SamplingPlan::random(16, 43, 1_000, 500).windows(1_000_000);
        assert_eq!(a, b, "same seed, same windows");
        assert_ne!(a, c, "different seed, different windows");
        assert!(
            a.windows(2)
                .all(|p| p[0].measure_start <= p[1].measure_start),
            "windows sorted in file order"
        );
    }

    #[test]
    fn degenerate_plans_resolve_sanely() {
        assert!(SamplingPlan::systematic(4, 10, 10).windows(0).is_empty());
        assert!(SamplingPlan::systematic(0, 10, 10).windows(100).is_empty());
        // Trace shorter than one measurement window: one full-trace window
        // per sample.
        let w = SamplingPlan::systematic(3, 0, 1_000).windows(100);
        assert_eq!(w.len(), 3);
        for w in &w {
            assert_eq!((w.measure_start, w.measure_instrs), (0, 100));
        }
    }

    #[test]
    fn sampled_uipc_tracks_exhaustive_on_steady_state() {
        // A steady-state loop: every window sees the same behaviour, so
        // the sampled estimate must be near-exact with tiny variance.
        let trace = looped_trace(200_000, 2048);
        let engine = Engine::new(EngineConfig::paper_default());
        let exhaustive = engine.run(
            trace.iter().copied(),
            NoPrefetcher,
            RunOptions::new().warmup(50_000),
        );
        let plan = SamplingPlan::random(10, 7, 5_000, 2_000);
        let sampled = run_sampled(
            &EngineConfig::paper_default(),
            &plan,
            trace.len() as u64,
            |w| trace[w.warmup_start as usize..].iter().copied(),
            |_| NoPrefetcher,
        );
        assert_eq!(sampled.samples.len(), 10);
        assert_eq!(sampled.prefetcher, "None");
        let est = sampled.uipc();
        let truth = exhaustive.timing.uipc();
        assert!(
            (est.mean - truth).abs() <= (0.05 * truth).max(est.ci95),
            "sampled {est:?} vs exhaustive {truth}"
        );
        assert!(sampled.sampled_fraction() < 0.4);
        // The front end retires a pipeline's worth of pre-mark
        // instructions after the warmup boundary; allow that skid.
        assert!(sampled.measured_instructions() <= 10 * (2_000 + 256));
    }

    #[test]
    fn each_sample_measures_its_window_only() {
        let trace = looped_trace(50_000, 512);
        let plan = SamplingPlan::systematic(5, 3_000, 1_500);
        let sampled = run_sampled(
            &EngineConfig::paper_default(),
            &plan,
            trace.len() as u64,
            |w| trace[w.warmup_start as usize..].iter().copied(),
            |_| NoPrefetcher,
        );
        for s in &sampled.samples {
            // Exactly the window is fed; measured retires cover the
            // measurement window plus at most the front end's pipeline
            // skid across the warmup mark.
            assert_eq!(s.report.frontend.instructions, s.window.len());
            let measured = s.report.timing.instructions;
            assert!(
                measured >= s.window.measure_instrs && measured <= s.window.measure_instrs + 256,
                "measured {measured} vs window {}",
                s.window.measure_instrs
            );
        }
    }

    #[test]
    fn burn_in_samples_are_simulated_but_not_summarized() {
        let trace = looped_trace(80_000, 1024);
        let plan = SamplingPlan::systematic(8, 2_000, 1_000).with_burn_in(3);
        let sampled = run_sampled(
            &EngineConfig::paper_default(),
            &plan,
            trace.len() as u64,
            |w| trace[w.warmup_start as usize..].iter().copied(),
            |_| NoPrefetcher,
        );
        assert_eq!(sampled.samples.len(), 8, "burn-in windows still run");
        assert_eq!(sampled.burn_in, 3);
        assert_eq!(sampled.measured_samples().len(), 5);
        // The summary over measured samples matches a hand computation.
        let tail: Vec<f64> = sampled.samples[3..]
            .iter()
            .map(|s| s.report.timing.uipc())
            .collect();
        assert_eq!(sampled.uipc(), Summary::of(&tail));
        // Absurd burn-in clamps instead of panicking.
        let all_burn = SamplingPlan::systematic(4, 1_000, 500).with_burn_in(99);
        let r = run_sampled(
            &EngineConfig::paper_default(),
            &all_burn,
            trace.len() as u64,
            |w| trace[w.warmup_start as usize..].iter().copied(),
            |_| NoPrefetcher,
        );
        assert_eq!(r.measured_samples().len(), 0);
        assert_eq!(r.uipc().mean, 0.0, "empty summary is zeros, not NaN");
    }

    #[test]
    fn sample_trace_file_matches_in_memory_sampling() {
        let trace = looped_trace(60_000, 4096);
        let path = std::env::temp_dir().join(format!("pif-sampling-{}.pift", std::process::id()));
        let file = std::fs::File::create(&path).unwrap();
        let mut writer =
            pif_trace::TraceWriter::with_chunk_records(std::io::BufWriter::new(file), "t", 1024)
                .unwrap();
        writer.extend(trace.iter().copied()).unwrap();
        writer.finish().unwrap();

        let plan = SamplingPlan::random(6, 99, 2_000, 1_000);
        let config = EngineConfig::paper_default();
        let from_file = sample_trace_file(&config, &plan, &path, |_| NoPrefetcher).unwrap();
        let in_memory = run_sampled(
            &config,
            &plan,
            trace.len() as u64,
            |w| trace[w.warmup_start as usize..].iter().copied(),
            |_| NoPrefetcher,
        );
        assert_eq!(from_file.total_records, trace.len() as u64);
        assert_eq!(from_file.samples.len(), in_memory.samples.len());
        for (a, b) in from_file.samples.iter().zip(&in_memory.samples) {
            assert_eq!(a.window, b.window);
            assert_eq!(a.report.fetch, b.report.fetch);
            assert_eq!(a.report.timing, b.report.timing);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn per_window_burn_in_extends_the_warmup_window() {
        let base = SamplingPlan::systematic(4, 2_000, 1_000);
        let extra = base.with_warm_strategy(WarmStrategy::PerWindow {
            extra_warmup_instrs: 1_500,
        });
        assert!(!base.windows_independent());
        assert!(extra.windows_independent());
        assert_eq!(base.effective_warmup_instrs(), 2_000);
        assert_eq!(extra.effective_warmup_instrs(), 3_500);
        assert_eq!(extra.instrs_per_sample(), 3_500 + 1_000);
        let (a, b) = (base.windows(100_000), extra.windows(100_000));
        for (wa, wb) in a.iter().zip(&b) {
            // Same measurement windows, longer warm-up prefix (clamped at
            // the trace head).
            assert_eq!(wa.measure_start, wb.measure_start);
            assert_eq!(wa.measure_instrs, wb.measure_instrs);
            assert_eq!(
                wb.warmup_start,
                wb.measure_start.saturating_sub(3_500),
                "extra burn-in is prepended to the warmup window"
            );
            assert!(wb.warmup_start <= wa.warmup_start);
        }
    }

    #[test]
    fn run_one_window_matches_the_serial_per_window_driver() {
        let trace = looped_trace(60_000, 1024);
        let plan =
            SamplingPlan::random(6, 11, 2_000, 1_000).with_warm_strategy(WarmStrategy::PerWindow {
                extra_warmup_instrs: 500,
            });
        let config = EngineConfig::paper_default();
        let serial = run_sampled(
            &config,
            &plan,
            trace.len() as u64,
            |w| trace[w.warmup_start as usize..].iter().copied(),
            |_| NoPrefetcher,
        );
        for (window, expect) in plan
            .windows(trace.len() as u64)
            .into_iter()
            .zip(&serial.samples)
        {
            let got = run_one_window(
                &config,
                &plan,
                window,
                trace[window.warmup_start as usize..].iter().copied(),
                NoPrefetcher,
            );
            assert_eq!(got.window, expect.window);
            assert_eq!(got.report, expect.report);
        }
    }

    #[test]
    fn assemble_report_is_order_independent() {
        let trace = looped_trace(40_000, 512);
        let plan = SamplingPlan::systematic(5, 1_000, 800)
            .with_warm_strategy(WarmStrategy::per_window())
            .with_burn_in(2);
        let config = EngineConfig::paper_default();
        let serial = run_sampled(
            &config,
            &plan,
            trace.len() as u64,
            |w| trace[w.warmup_start as usize..].iter().copied(),
            |_| NoPrefetcher,
        );
        let mut samples: Vec<SampleResult> = plan
            .windows(trace.len() as u64)
            .into_iter()
            .map(|w| {
                run_one_window(
                    &config,
                    &plan,
                    w,
                    trace[w.warmup_start as usize..].iter().copied(),
                    NoPrefetcher,
                )
            })
            .collect();
        // Scramble completion order; the report must not notice.
        samples.reverse();
        samples.swap(0, 2);
        let merged = assemble_report(&plan, trace.len() as u64, samples);
        assert_eq!(merged, serial);
        assert_eq!(merged.burn_in, 2);
        // Empty fan-out degenerates like an empty serial run.
        let empty = assemble_report(&plan, 0, Vec::new());
        assert_eq!(empty.prefetcher, "");
        assert_eq!(empty.burn_in, 0);
    }
}
