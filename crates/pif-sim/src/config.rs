//! Simulator configuration, defaulting to the paper's Table I parameters.

use serde::{Deserialize, Serialize};

use pif_types::ConfigError;

/// L1 instruction cache geometry and latency (Table I: 64 KB, 2-way, 64 B
/// blocks, 2-cycle load-to-use).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ICacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Load-to-use latency in cycles.
    pub latency_cycles: u64,
}

impl ICacheConfig {
    /// Table I configuration: 64 KB, 2-way, 2-cycle.
    pub const fn paper_default() -> Self {
        ICacheConfig {
            capacity_bytes: 64 * 1024,
            ways: 2,
            latency_cycles: 2,
        }
    }

    /// Returns the configuration with a new total capacity — a
    /// config-sweep setter for cache-geometry axes.
    #[must_use]
    pub const fn with_capacity_bytes(mut self, capacity_bytes: usize) -> Self {
        self.capacity_bytes = capacity_bytes;
        self
    }

    /// Returns the configuration with a new associativity.
    #[must_use]
    pub const fn with_ways(mut self, ways: usize) -> Self {
        self.ways = ways;
        self
    }

    /// Number of blocks the cache holds.
    pub const fn blocks(&self) -> usize {
        self.capacity_bytes / pif_types::BLOCK_SIZE
    }

    /// Number of sets.
    pub const fn sets(&self) -> usize {
        self.blocks() / self.ways
    }

    /// Validates that the geometry is a power-of-two set count.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if capacity/ways are zero or the set count is
    /// not a power of two.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.ways == 0 || self.capacity_bytes == 0 {
            return Err(ConfigError::new("cache capacity and ways must be non-zero"));
        }
        if !self.blocks().is_multiple_of(self.ways) {
            return Err(ConfigError::new(
                "cache blocks must divide evenly into ways",
            ));
        }
        if !self.sets().is_power_of_two() {
            return Err(ConfigError::new(format!(
                "cache set count {} is not a power of two",
                self.sets()
            )));
        }
        Ok(())
    }
}

impl Default for ICacheConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Unified L2 model for instruction blocks (Table I: 512 KB per core × 16
/// cores NUCA, 16-way, 15-cycle hit). We model the aggregate NUCA capacity
/// reachable by one core's instruction blocks, since the server workloads'
/// multi-megabyte code working sets largely reside on-chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct L2Config {
    /// Capacity in bytes devoted to instruction blocks.
    pub capacity_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Hit latency in cycles (load-to-use from L1 miss).
    pub hit_latency_cycles: u64,
    /// Main-memory latency in cycles for L2 misses (45 ns at 2 GHz = 90).
    pub memory_latency_cycles: u64,
    /// Treat the L2 as checkpoint-warmed: the first touch of a block not
    /// yet seen in this run installs it at **hit** latency instead of
    /// memory latency. This emulates the paper's SimFlex methodology
    /// (§5), where measurement resumes from checkpoints that store warmed
    /// cache state — an 8 MB NUCA cannot be re-warmed inside a sample's
    /// warmup window, while the steady-state exhaustive L2 instruction
    /// miss ratio is a few percent, so the assumption is near-exact.
    /// Used by `sampling`; exhaustive runs keep the cold default.
    pub assume_warm: bool,
}

impl L2Config {
    /// Table I-derived configuration: 8 MB aggregate NUCA, 16-way, 15-cycle
    /// hit, 90-cycle memory.
    pub const fn paper_default() -> Self {
        L2Config {
            capacity_bytes: 8 * 1024 * 1024,
            ways: 16,
            hit_latency_cycles: 15,
            memory_latency_cycles: 90,
            assume_warm: false,
        }
    }

    /// Returns the configuration with checkpoint-warmed semantics (see
    /// [`L2Config::assume_warm`]).
    #[must_use]
    pub const fn with_assume_warm(mut self, assume_warm: bool) -> Self {
        self.assume_warm = assume_warm;
        self
    }
}

impl Default for L2Config {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Front-end (fetch + branch prediction) model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrontendConfig {
    /// gshare table entries (Table I: 16K).
    pub gshare_entries: usize,
    /// bimodal table entries (Table I: 16K).
    pub bimodal_entries: usize,
    /// chooser table entries.
    pub chooser_entries: usize,
    /// BTB entries for indirect-branch target prediction.
    pub btb_entries: usize,
    /// Return address stack depth.
    pub ras_depth: usize,
    /// Maximum number of *blocks* fetched down a wrong path before the
    /// misprediction resolves and the pipeline squashes (paper §2.2: the
    /// wrong-path depth is data-dependent and effectively arbitrary; we
    /// draw uniformly from `1..=wrong_path_max_blocks`).
    pub wrong_path_max_blocks: usize,
    /// Number of instructions between an instruction's fetch and its
    /// retirement as seen by the stream observation points (ROB depth,
    /// Table I: 96 entries).
    pub retire_delay_instrs: usize,
    /// Seed for the deterministic wrong-path depth generator.
    pub seed: u64,
}

impl FrontendConfig {
    /// Table I-derived configuration.
    pub const fn paper_default() -> Self {
        FrontendConfig {
            gshare_entries: 16 * 1024,
            bimodal_entries: 16 * 1024,
            chooser_entries: 16 * 1024,
            btb_entries: 4 * 1024,
            ras_depth: 32,
            wrong_path_max_blocks: 6,
            retire_delay_instrs: 96,
            seed: 0x5eed_f00d,
        }
    }
}

impl Default for FrontendConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Fetch-stall timing model parameters (see [`crate::timing`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingConfig {
    /// Dispatch/retire width (Table I: 3-wide).
    pub dispatch_width: u64,
    /// Fraction of an instruction-fetch miss's latency that is exposed as a
    /// stall (the ROB hides a little of it; front-end stalls are mostly
    /// exposed for server workloads — paper §1 reports >40% of time).
    pub fetch_stall_exposure: f64,
    /// Branch misprediction pipeline-refill penalty in cycles.
    pub mispredict_penalty_cycles: u64,
    /// Base CPI contribution per instruction from back-end (data) stalls,
    /// identical across prefetcher configurations.
    pub backend_cpi: f64,
}

impl TimingConfig {
    /// Defaults calibrated so that, on the synthetic server workloads, the
    /// no-prefetch baseline spends roughly 40% of its cycles on
    /// instruction-fetch stalls, matching the server-workload
    /// characterizations the paper cites.
    pub const fn paper_default() -> Self {
        TimingConfig {
            dispatch_width: 3,
            fetch_stall_exposure: 0.9,
            mispredict_penalty_cycles: 12,
            backend_cpi: 0.45,
        }
    }
}

impl Default for TimingConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Complete engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct EngineConfig {
    /// L1 instruction cache.
    pub icache: ICacheConfig,
    /// L2/memory backing model.
    pub l2: L2Config,
    /// Front-end model.
    pub frontend: FrontendConfig,
    /// Timing model.
    pub timing: TimingConfig,
    /// Latency, in fetch-block events, for an issued prefetch to land in the
    /// L1-I (models L2 round-trip while the core keeps fetching).
    pub prefetch_latency_events: u64,
}

impl EngineConfig {
    /// The paper's Table I configuration.
    pub fn paper_default() -> Self {
        EngineConfig {
            icache: ICacheConfig::paper_default(),
            l2: L2Config::paper_default(),
            frontend: FrontendConfig::paper_default(),
            timing: TimingConfig::paper_default(),
            prefetch_latency_events: 8,
        }
    }

    /// Returns the configuration with a new L1-I geometry — a config-sweep
    /// setter used by parameter-sweep axes.
    #[must_use]
    pub const fn with_icache(mut self, icache: ICacheConfig) -> Self {
        self.icache = icache;
        self
    }

    /// Validates the composite configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any component is invalid.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.icache.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_icache_geometry() {
        let c = ICacheConfig::paper_default();
        assert_eq!(c.blocks(), 1024);
        assert_eq!(c.sets(), 512);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn bad_geometry_rejected() {
        let c = ICacheConfig {
            capacity_bytes: 0,
            ways: 2,
            latency_cycles: 2,
        };
        assert!(c.validate().is_err());
        let c = ICacheConfig {
            capacity_bytes: 48 * 1024,
            ways: 2,
            latency_cycles: 2,
        };
        assert!(c.validate().is_err(), "384 sets is not a power of two");
    }

    #[test]
    fn engine_default_is_paper_default() {
        assert_eq!(
            EngineConfig::default().icache,
            ICacheConfig::paper_default()
        );
        assert!(EngineConfig::paper_default().validate().is_ok());
    }

    #[test]
    fn timing_defaults_sane() {
        let t = TimingConfig::paper_default();
        assert!(t.fetch_stall_exposure > 0.0 && t.fetch_stall_exposure <= 1.0);
        assert!(t.dispatch_width >= 1);
    }
}
