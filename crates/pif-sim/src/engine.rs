//! The simulation engine: drives a retire-order trace through the front
//! end, L1-I cache, and an attached prefetcher, charging the timing model.

use pif_types::{BlockAddr, FetchAccess, InstrSource, RetiredInstr};

use crate::cache::{AccessOutcome, InstructionCache, L2Model, LineProvenance};
use crate::config::EngineConfig;
use crate::frontend::{FrontEnd, FrontendEvent};
use crate::prefetch::{PrefetchContext, PrefetchQueue, Prefetcher};
use crate::probe::{NoProbe, Probe, StallKind, GAUGE_SAMPLE_PERIOD};
use crate::stats::{FetchStats, FrontendStats, PrefetchStats};
use crate::timing::{TimingModel, TimingReport};

/// Everything measured during one engine run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Name of the prefetcher that produced this report.
    pub prefetcher: &'static str,
    /// Fetch/miss counters.
    pub fetch: FetchStats,
    /// Prefetch counters.
    pub prefetch: PrefetchStats,
    /// Front-end/branch counters.
    pub frontend: FrontendStats,
    /// Cycle breakdown and UIPC.
    pub timing: TimingReport,
    /// L2 hits observed (instruction blocks).
    pub l2_hits: u64,
    /// L2 misses (served from memory).
    pub l2_misses: u64,
}

impl RunReport {
    /// L1-I miss coverage relative to the no-prefetch baseline
    /// (Fig. 10 left).
    pub fn miss_coverage(&self) -> f64 {
        self.fetch.miss_coverage()
    }

    /// UIPC speedup over a baseline run of the same trace (Fig. 10 right).
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        self.timing.speedup_over(&baseline.timing)
    }
}

/// Options for one [`Engine::run`]: the warmup prefix and, optionally, a
/// caller-owned front end whose predictor state persists across runs.
///
/// The struct is `#[non_exhaustive]`; build it with [`RunOptions::new`]
/// and the `warmup`/`frontend` builders so future options (per-run
/// instrumentation, fetch throttling, …) can land without breaking
/// callers.
///
/// ```
/// use pif_sim::RunOptions;
///
/// let opts = RunOptions::new().warmup(10_000);
/// assert_eq!(opts.warmup_instrs, 10_000);
/// ```
#[derive(Debug, Default)]
#[non_exhaustive]
pub struct RunOptions<'a> {
    /// Retirements treated as warmup: simulated state (caches, predictor
    /// tables, prefetcher history) is exercised, but reported statistics
    /// cover only the post-warmup region — the paper's steady-state
    /// measurement methodology (§5: checkpoints with warmed caches and
    /// prefetcher tables).
    pub warmup_instrs: usize,
    /// An existing [`FrontEnd`] to drive instead of a fresh one:
    /// branch-predictor tables, BTB, and RAS state carry in (and
    /// accumulate for the caller), while the reported front-end
    /// statistics cover only this run. Sampled simulation
    /// (`crate::sampling`) uses this to keep predictor tables
    /// continuously warm across measurement windows.
    pub frontend: Option<&'a mut FrontEnd>,
}

impl RunOptions<'static> {
    /// Default options: no warmup, a fresh front end.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<'a> RunOptions<'a> {
    /// Sets the warmup prefix, in retired instructions.
    #[must_use]
    pub fn warmup(mut self, warmup_instrs: usize) -> Self {
        self.warmup_instrs = warmup_instrs;
        self
    }

    /// Drives `frontend` instead of a fresh front end.
    #[must_use]
    pub fn frontend(self, frontend: &mut FrontEnd) -> RunOptions<'_> {
        RunOptions {
            warmup_instrs: self.warmup_instrs,
            frontend: Some(frontend),
        }
    }
}

/// The trace-driven simulation engine.
///
/// # Example
///
/// ```
/// use pif_sim::{Engine, EngineConfig, NoPrefetcher, RunOptions};
/// use pif_types::{Address, RetiredInstr, TrapLevel};
///
/// let trace: Vec<_> = (0..1000u64)
///     .map(|i| RetiredInstr::simple(Address::new((i % 256) * 4), TrapLevel::Tl0))
///     .collect();
/// let report = Engine::new(EngineConfig::paper_default()).run(
///     trace.iter().copied(),
///     NoPrefetcher,
///     RunOptions::new(),
/// );
/// assert_eq!(report.frontend.instructions, 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    config: EngineConfig,
}

impl Engine {
    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`EngineConfig::validate`]); construct and validate the config first
    /// when handling untrusted input.
    pub fn new(config: EngineConfig) -> Self {
        config.validate().expect("invalid engine configuration");
        Engine { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Runs a streaming [`InstrSource`] with `prefetcher` attached.
    ///
    /// This is the engine's single entry point; everything else
    /// (`run_instrs*`, `run_source*`) is a thin deprecated wrapper over
    /// it. Because instructions are *pulled* one at a time, the trace
    /// never has to exist in memory: pass a `pif_trace::TraceReader`'s
    /// instruction iterator to simulate a multi-hundred-million-
    /// instruction file out of core, a `pif_workloads` stream to simulate
    /// while generating, or `slice.iter().copied()` for an in-memory
    /// trace. Pass `&mut source` to retain ownership (e.g. to check a
    /// trace decoder for deferred errors after the run).
    ///
    /// [`RunOptions`] carries the warmup prefix and, for sampled
    /// simulation, a caller-owned [`FrontEnd`] whose predictor state
    /// persists across runs.
    ///
    /// # Example
    ///
    /// ```
    /// use pif_sim::{Engine, EngineConfig, NoPrefetcher, RunOptions};
    /// use pif_types::{Address, RetiredInstr, TrapLevel};
    ///
    /// // A lazily generated source: no Vec<RetiredInstr> anywhere.
    /// let source = (0..1000u64)
    ///     .map(|i| RetiredInstr::simple(Address::new((i % 256) * 4), TrapLevel::Tl0));
    /// let report = Engine::new(EngineConfig::paper_default()).run(
    ///     source,
    ///     NoPrefetcher,
    ///     RunOptions::new().warmup(200),
    /// );
    /// assert_eq!(report.frontend.instructions, 1000);
    /// // Timed stats only cover the post-warmup suffix.
    /// assert!(report.timing.instructions < 1000);
    /// ```
    pub fn run<P: Prefetcher, S: InstrSource>(
        &self,
        source: S,
        prefetcher: P,
        options: RunOptions<'_>,
    ) -> RunReport {
        self.run_probed(source, prefetcher, options, &mut NoProbe)
    }

    /// [`Engine::run`] with an instrumentation [`Probe`] attached.
    ///
    /// The probe passively observes the run — fetch-stall breakdowns,
    /// prefetch-queue occupancy, sampled prefetcher gauges — without
    /// affecting it: for any trace, prefetcher, and options, the
    /// returned [`RunReport`] is identical to an unprobed
    /// [`Engine::run`] (see `tests/probe_equivalence.rs`). `run` itself
    /// forwards here with [`NoProbe`], whose `ENABLED = false` constant
    /// folds every instrumentation site out of the compiled loop.
    ///
    /// # Example
    ///
    /// ```
    /// use pif_sim::{Engine, EngineConfig, EngineProbe, NoPrefetcher, RunOptions};
    /// use pif_types::{Address, RetiredInstr, TrapLevel};
    ///
    /// let trace: Vec<_> = (0..4096u64)
    ///     .map(|i| RetiredInstr::simple(Address::new((i % 4096) * 4), TrapLevel::Tl0))
    ///     .collect();
    /// let mut probe = EngineProbe::new();
    /// let report = Engine::new(EngineConfig::paper_default()).run_probed(
    ///     trace.iter().copied(),
    ///     NoPrefetcher,
    ///     RunOptions::new(),
    ///     &mut probe,
    /// );
    /// assert_eq!(report.frontend.instructions, 4096);
    /// // The probe's registry now holds stall/queue-depth histograms.
    /// assert!(!probe.registry().snapshot().is_empty());
    /// ```
    pub fn run_probed<P: Prefetcher, S: InstrSource, Pr: Probe>(
        &self,
        source: S,
        prefetcher: P,
        options: RunOptions<'_>,
        probe: &mut Pr,
    ) -> RunReport {
        match options.frontend {
            Some(frontend) => {
                self.run_core(source, prefetcher, options.warmup_instrs, frontend, probe)
            }
            None => {
                let mut frontend = FrontEnd::new(self.config.frontend);
                self.run_core(
                    source,
                    prefetcher,
                    options.warmup_instrs,
                    &mut frontend,
                    probe,
                )
            }
        }
    }

    fn run_core<P: Prefetcher, S: InstrSource, Pr: Probe>(
        &self,
        mut source: S,
        prefetcher: P,
        warmup_instrs: usize,
        frontend: &mut FrontEnd,
        probe: &mut Pr,
    ) -> RunReport {
        frontend.reset_stats();
        let mut state = EngineState::new(&self.config, prefetcher, probe);
        let mut warm = warmup_instrs == 0;
        let mut retired: usize = 0;
        // Events are dispatched straight from the front end into
        // `state.process` — no intermediate buffer, no per-instruction
        // allocation.
        while let Some(instr) = source.next_instr() {
            if !warm && retired >= warmup_instrs {
                state.mark_warm();
                warm = true;
            }
            retired += 1;
            frontend.step(instr, |e| state.process(e));
        }
        frontend.flush(|e| state.process(e));
        state.finish(*frontend.stats())
    }

    /// Runs `trace` with `prefetcher` attached and returns the report.
    #[doc(hidden)]
    #[deprecated(
        since = "0.1.0",
        note = "use `run(source, prefetcher, RunOptions::new())`"
    )]
    pub fn run_instrs<P: Prefetcher>(&self, trace: &[RetiredInstr], prefetcher: P) -> RunReport {
        self.run(trace.iter().copied(), prefetcher, RunOptions::new())
    }

    /// Slice run with a warmup prefix.
    #[doc(hidden)]
    #[deprecated(
        since = "0.1.0",
        note = "use `run(source, prefetcher, RunOptions::new().warmup(n))`"
    )]
    pub fn run_instrs_warmup<P: Prefetcher>(
        &self,
        trace: &[RetiredInstr],
        prefetcher: P,
        warmup_instrs: usize,
    ) -> RunReport {
        self.run(
            trace.iter().copied(),
            prefetcher,
            RunOptions::new().warmup(warmup_instrs),
        )
    }

    /// Streaming run without warmup.
    #[doc(hidden)]
    #[deprecated(
        since = "0.1.0",
        note = "use `run(source, prefetcher, RunOptions::new())`"
    )]
    pub fn run_source<P: Prefetcher, S: InstrSource>(&self, source: S, prefetcher: P) -> RunReport {
        self.run(source, prefetcher, RunOptions::new())
    }

    /// Streaming run with a warmup prefix.
    #[doc(hidden)]
    #[deprecated(
        since = "0.1.0",
        note = "use `run(source, prefetcher, RunOptions::new().warmup(n))`"
    )]
    pub fn run_source_warmup<P: Prefetcher, S: InstrSource>(
        &self,
        source: S,
        prefetcher: P,
        warmup_instrs: usize,
    ) -> RunReport {
        self.run(source, prefetcher, RunOptions::new().warmup(warmup_instrs))
    }

    /// Streaming run driving an existing front end.
    #[doc(hidden)]
    #[deprecated(
        since = "0.1.0",
        note = "use `run(source, prefetcher, RunOptions::new().warmup(n).frontend(fe))`"
    )]
    pub fn run_source_with_frontend<P: Prefetcher, S: InstrSource>(
        &self,
        source: S,
        prefetcher: P,
        warmup_instrs: usize,
        frontend: &mut FrontEnd,
    ) -> RunReport {
        self.run(
            source,
            prefetcher,
            RunOptions::new().warmup(warmup_instrs).frontend(frontend),
        )
    }

    /// Slice-convenience run with a warmup prefix.
    #[doc(hidden)]
    #[deprecated(
        since = "0.1.0",
        note = "use `run(trace.as_ref().iter().copied(), prefetcher, RunOptions::new().warmup(n))`"
    )]
    pub fn run_warmup<P: Prefetcher, T: AsRef<[RetiredInstr]>>(
        &self,
        trace: &T,
        prefetcher: P,
        warmup_instrs: usize,
    ) -> RunReport {
        self.run(
            trace.as_ref().iter().copied(),
            prefetcher,
            RunOptions::new().warmup(warmup_instrs),
        )
    }
}

/// Mutable per-run state, separated from `Engine` so `run` stays reentrant.
struct EngineState<'p, P, Pr> {
    prefetcher: P,
    /// Instrumentation observer; every use is guarded by `Pr::ENABLED`
    /// so [`NoProbe`] monomorphizes the guards (and this field's
    /// updates) out of the loop.
    probe: &'p mut Pr,
    /// Retirements since run start, maintained only when the probe is
    /// enabled (drives periodic prefetcher-gauge sampling).
    gauge_tick: u64,
    icache: InstructionCache,
    l2: L2Model,
    queue: PrefetchQueue,
    timing: TimingModel,
    fetch: FetchStats,
    prefetch: PrefetchStats,
    perfect: bool,
    /// Reusable request buffer handed to every prefetcher hook; grows to a
    /// steady-state capacity during warmup, after which the per-event path
    /// performs no heap allocation.
    scratch_requests: Vec<BlockAddr>,
}

impl<'p, P: Prefetcher, Pr: Probe> EngineState<'p, P, Pr> {
    fn new(config: &EngineConfig, prefetcher: P, probe: &'p mut Pr) -> Self {
        let perfect = prefetcher.is_perfect();
        EngineState {
            prefetcher,
            probe,
            gauge_tick: 0,
            icache: InstructionCache::new(config.icache).expect("validated geometry"),
            l2: L2Model::new(config.l2).expect("validated geometry"),
            queue: PrefetchQueue::default(),
            timing: TimingModel::new(config.timing),
            fetch: FetchStats::default(),
            prefetch: PrefetchStats::default(),
            perfect,
            scratch_requests: Vec::with_capacity(64),
        }
    }

    #[inline]
    fn process(&mut self, event: FrontendEvent) {
        match event {
            FrontendEvent::Fetch(access) => self.process_fetch(access),
            FrontendEvent::Retire(instr, mispredicted) => self.process_retire(instr, mispredicted),
        }
    }

    /// Resets measured statistics at the warmup boundary; all simulated
    /// state (caches, history, queues) carries over.
    fn mark_warm(&mut self) {
        self.fetch = FetchStats::default();
        self.prefetch = PrefetchStats::default();
        self.timing.mark();
    }

    fn run_hook(&mut self, f: impl FnOnce(&mut P, &mut PrefetchContext<'_>)) {
        let mut ctx = PrefetchContext::new(
            &self.icache,
            &self.queue.view,
            &mut self.prefetch,
            &mut self.scratch_requests,
        );
        f(&mut self.prefetcher, &mut ctx);
        if self.scratch_requests.is_empty() {
            return;
        }
        let now = self.timing.now();
        for i in 0..self.scratch_requests.len() {
            let block = self.scratch_requests[i];
            let latency = self.l2.access(block);
            self.queue.push(block, now + latency);
        }
    }

    fn install_ready_prefetches(&mut self) {
        let now = self.timing.now();
        let icache = &mut self.icache;
        self.queue.drain_ready(now, |block| {
            icache.fill_prefetch(block);
        });
    }

    fn process_fetch(&mut self, access: FetchAccess) {
        self.install_ready_prefetches();
        if Pr::ENABLED {
            self.probe.queue_depth(self.queue.len());
        }
        let block = access.pc.block();

        self.run_hook(|p, ctx| p.on_fetch(&access, block, ctx));

        let outcome = if self.perfect {
            // Perfect-latency cache: every fetch returns at hit latency.
            AccessOutcome::Hit
        } else {
            self.icache.demand_access(block)
        };

        if access.is_correct_path() {
            self.fetch.demand_accesses += 1;
            match outcome {
                AccessOutcome::Hit => {}
                AccessOutcome::HitFirstUseOfPrefetch => {
                    self.fetch.covered_by_prefetch += 1;
                    self.prefetch.useful += 1;
                }
                AccessOutcome::Miss => {
                    let now = self.timing.now();
                    if let Some(ready_at) = self.queue.ready_time(block) {
                        // Late prefetch: the demand overtakes it; only the
                        // remaining latency is exposed.
                        self.queue.cancel(block);
                        self.fetch.partial_covered += 1;
                        self.prefetch.useful += 1;
                        let stall = ready_at.saturating_sub(now);
                        if Pr::ENABLED {
                            self.probe.fetch_stall(StallKind::LatePrefetch, stall);
                        }
                        self.timing.fetch_stall(stall);
                    } else {
                        self.fetch.demand_misses += 1;
                        let latency = self.l2.access(block);
                        if Pr::ENABLED {
                            self.probe.fetch_stall(StallKind::DemandMiss, latency);
                        }
                        self.timing.fetch_stall(latency);
                    }
                }
            }
        } else {
            self.fetch.wrong_path_accesses += 1;
            if outcome == AccessOutcome::Miss {
                // Wrong-path misses fill the cache (pollution and/or
                // accidental prefetch, §2.2 footnote 1) but stall nothing.
                self.fetch.wrong_path_misses += 1;
                self.l2.access(block);
            }
        }

        self.run_hook(|p, ctx| p.on_access_outcome(&access, block, outcome, ctx));
    }

    fn process_retire(&mut self, instr: RetiredInstr, mispredicted: bool) {
        self.timing.retire_instruction(mispredicted);
        if Pr::ENABLED {
            self.gauge_tick += 1;
            if self.gauge_tick.is_multiple_of(GAUGE_SAMPLE_PERIOD) {
                // Split borrows: the gauge closure writes to the probe
                // while reading the prefetcher.
                let EngineState {
                    prefetcher, probe, ..
                } = self;
                prefetcher.gauges(&mut |name, value| probe.prefetcher_gauge(name, value));
            }
        }
        // The provenance probe is a full cache lookup per retirement;
        // prefetchers that ignore the tag opt out of paying for it.
        let prefetched = self.prefetcher.uses_retire_provenance()
            && matches!(
                self.icache.provenance(instr.pc.block()),
                Some(LineProvenance::Prefetched | LineProvenance::PrefetchedUsed)
            );
        self.run_hook(|p, ctx| p.on_retire(&instr, prefetched, ctx));
    }

    fn finish(mut self, frontend: FrontendStats) -> RunReport {
        // Account prefetched-but-never-used blocks still resident or
        // evicted: useful + unused = issued - in-flight.
        let landed = self.prefetch.issued.saturating_sub(self.queue.len() as u64);
        self.prefetch.unused_evicted = landed.saturating_sub(self.prefetch.useful);
        RunReport {
            prefetcher: self.prefetcher.name(),
            fetch: self.fetch,
            prefetch: self.prefetch,
            frontend,
            timing: self.timing.report(),
            l2_hits: self.l2.hits(),
            l2_misses: self.l2.misses(),
        }
    }
}

impl std::fmt::Debug for EngineState<'_, (), NoProbe> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineState").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefetch::NoPrefetcher;
    use pif_types::{Address, BlockAddr, TrapLevel};

    fn loop_trace(blocks: u64, iterations: u64) -> Vec<RetiredInstr> {
        let mut v = Vec::new();
        for _ in 0..iterations {
            for b in 0..blocks {
                // 16 instructions per 64 B block.
                for i in 0..16 {
                    v.push(RetiredInstr::simple(
                        Address::new(b * 64 + i * 4),
                        TrapLevel::Tl0,
                    ));
                }
            }
        }
        v
    }

    #[test]
    fn small_loop_fits_in_cache() {
        let trace = loop_trace(8, 50);
        let report = Engine::new(EngineConfig::paper_default()).run(
            trace.iter().copied(),
            NoPrefetcher,
            RunOptions::new(),
        );
        assert_eq!(report.fetch.demand_misses, 8, "only cold misses");
        assert_eq!(report.frontend.instructions, 8 * 50 * 16);
        assert!(report.fetch.hit_rate() > 0.9);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        // 64KB cache = 1024 blocks; loop over 2048 blocks with LRU = every
        // access misses once warm.
        let trace = loop_trace(2048, 3);
        let report = Engine::new(EngineConfig::paper_default()).run(
            trace.iter().copied(),
            NoPrefetcher,
            RunOptions::new(),
        );
        assert!(
            report.fetch.demand_misses > 2048 * 2,
            "LRU thrashing expected, got {} misses",
            report.fetch.demand_misses
        );
        assert!(report.timing.fetch_stall_cycles > 0);
    }

    #[test]
    fn perfect_prefetcher_never_stalls() {
        struct Perfect;
        impl Prefetcher for Perfect {
            fn name(&self) -> &'static str {
                "Perfect"
            }
            fn is_perfect(&self) -> bool {
                true
            }
        }
        let trace = loop_trace(2048, 2);
        let report = Engine::new(EngineConfig::paper_default()).run(
            trace.iter().copied(),
            Perfect,
            RunOptions::new(),
        );
        assert_eq!(report.fetch.demand_misses, 0);
        assert_eq!(report.timing.fetch_stall_cycles, 0);
    }

    #[test]
    fn prefetching_covers_misses_and_speeds_up() {
        // A toy prefetcher that prefetches the next 4 blocks on every miss.
        struct NextFour;
        impl Prefetcher for NextFour {
            fn name(&self) -> &'static str {
                "NextFour"
            }
            fn on_access_outcome(
                &mut self,
                _access: &FetchAccess,
                block: BlockAddr,
                outcome: AccessOutcome,
                ctx: &mut PrefetchContext<'_>,
            ) {
                if outcome == AccessOutcome::Miss {
                    for i in 1..=4 {
                        ctx.prefetch(block.offset(i));
                    }
                }
            }
        }
        let trace = loop_trace(2048, 3);
        let engine = Engine::new(EngineConfig::paper_default());
        let base = engine.run(trace.iter().copied(), NoPrefetcher, RunOptions::new());
        let pf = engine.run(trace.iter().copied(), NextFour, RunOptions::new());
        assert!(
            pf.fetch.miss_coverage() > 0.5,
            "coverage {}",
            pf.fetch.miss_coverage()
        );
        assert!(
            pf.speedup_over(&base) > 1.05,
            "speedup {}",
            pf.speedup_over(&base)
        );
        assert!(pf.prefetch.issued > 0);
        assert!(pf.prefetch.accuracy() > 0.5);
    }

    #[test]
    fn baseline_equivalent_misses_consistent_across_prefetchers() {
        struct NextOne;
        impl Prefetcher for NextOne {
            fn name(&self) -> &'static str {
                "NextOne"
            }
            fn on_access_outcome(
                &mut self,
                _a: &FetchAccess,
                block: BlockAddr,
                outcome: AccessOutcome,
                ctx: &mut PrefetchContext<'_>,
            ) {
                if outcome == AccessOutcome::Miss {
                    ctx.prefetch(block.next());
                }
            }
        }
        let trace = loop_trace(1500, 2);
        let engine = Engine::new(EngineConfig::paper_default());
        let base = engine.run(trace.iter().copied(), NoPrefetcher, RunOptions::new());
        let pf = engine.run(trace.iter().copied(), NextOne, RunOptions::new());
        // The prefetched run's baseline-equivalent miss count should be in
        // the same ballpark as the true baseline's misses (prefetching can
        // shift which accesses miss, but not the scale).
        let b = base.fetch.demand_misses as f64;
        let e = pf.fetch.baseline_equivalent_misses() as f64;
        assert!((e / b - 1.0).abs() < 0.35, "baseline {b} vs equivalent {e}");
    }

    #[test]
    fn warmup_excludes_cold_misses_from_stats() {
        // A loop that fits in cache: all misses are cold, so a warmed run
        // reports (almost) none of them.
        let trace = loop_trace(64, 20);
        let engine = Engine::new(EngineConfig::paper_default());
        let cold = engine.run(trace.iter().copied(), NoPrefetcher, RunOptions::new());
        let warm = engine.run(
            trace.iter().copied(),
            NoPrefetcher,
            RunOptions::new().warmup(trace.len() / 2),
        );
        assert_eq!(cold.fetch.demand_misses, 64);
        assert_eq!(warm.fetch.demand_misses, 0, "cold misses fall in warmup");
        assert!(warm.timing.instructions < cold.timing.instructions);
        assert_eq!(warm.timing.fetch_stall_cycles, 0);
    }

    #[test]
    fn warmup_preserves_simulated_state() {
        // Warmup must not reset the cache: the post-warmup region sees a
        // warm cache, so UIPC is higher than a cold full run.
        let trace = loop_trace(512, 4);
        let engine = Engine::new(EngineConfig::paper_default());
        let cold = engine.run(trace.iter().copied(), NoPrefetcher, RunOptions::new());
        let warm = engine.run(
            trace.iter().copied(),
            NoPrefetcher,
            RunOptions::new().warmup(trace.len() / 2),
        );
        assert!(warm.timing.uipc() >= cold.timing.uipc());
    }

    #[test]
    fn zero_warmup_equals_plain_run() {
        let trace = loop_trace(256, 3);
        let engine = Engine::new(EngineConfig::paper_default());
        let a = engine.run(trace.iter().copied(), NoPrefetcher, RunOptions::new());
        let b = engine.run(
            trace.iter().copied(),
            NoPrefetcher,
            RunOptions::new().warmup(0),
        );
        assert_eq!(a.fetch, b.fetch);
        assert_eq!(a.timing, b.timing);
    }

    #[test]
    fn run_source_matches_slice_path() {
        let trace = loop_trace(512, 4);
        let engine = Engine::new(EngineConfig::paper_default());
        let sliced = engine.run(trace.iter().copied(), NoPrefetcher, RunOptions::new());
        // A lazily-evaluated source with no backing slice.
        let streamed = engine.run(
            (0..trace.len()).map(|i| trace[i]),
            NoPrefetcher,
            RunOptions::new(),
        );
        assert_eq!(sliced.fetch, streamed.fetch);
        assert_eq!(sliced.timing, streamed.timing);
        assert_eq!(sliced.frontend, streamed.frontend);
    }

    #[test]
    fn run_accepts_mut_reference() {
        let trace = loop_trace(64, 2);
        let engine = Engine::new(EngineConfig::paper_default());
        let mut source = trace.iter().copied();
        let report = engine.run(&mut source, NoPrefetcher, RunOptions::new());
        assert_eq!(report.frontend.instructions, trace.len() as u64);
        assert_eq!(source.next(), None, "source fully drained");
    }

    /// Every deprecated wrapper must stay bit-equivalent to the collapsed
    /// [`Engine::run`] entry point it forwards to.
    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_match_run() {
        let trace = loop_trace(256, 6);
        let engine = Engine::new(EngineConfig::paper_default());
        let warm = trace.len() / 3;
        let eq = |a: &RunReport, b: &RunReport| {
            assert_eq!(a.fetch, b.fetch);
            assert_eq!(a.timing, b.timing);
            assert_eq!(a.frontend, b.frontend);
            assert_eq!((a.l2_hits, a.l2_misses), (b.l2_hits, b.l2_misses));
        };
        let plain = engine.run(trace.iter().copied(), NoPrefetcher, RunOptions::new());
        eq(&plain, &engine.run_instrs(&trace, NoPrefetcher));
        eq(
            &plain,
            &engine.run_source(trace.iter().copied(), NoPrefetcher),
        );
        let warmed = engine.run(
            trace.iter().copied(),
            NoPrefetcher,
            RunOptions::new().warmup(warm),
        );
        eq(
            &warmed,
            &engine.run_instrs_warmup(&trace, NoPrefetcher, warm),
        );
        eq(
            &warmed,
            &engine.run_source_warmup(trace.iter().copied(), NoPrefetcher, warm),
        );
        eq(&warmed, &engine.run_warmup(&trace, NoPrefetcher, warm));
        let mut fe = FrontEnd::new(engine.config().frontend);
        let with_fe =
            engine.run_source_with_frontend(trace.iter().copied(), NoPrefetcher, warm, &mut fe);
        let mut fe2 = FrontEnd::new(engine.config().frontend);
        eq(
            &with_fe,
            &engine.run(
                trace.iter().copied(),
                NoPrefetcher,
                RunOptions::new().warmup(warm).frontend(&mut fe2),
            ),
        );
    }

    #[test]
    fn report_exposes_l2_traffic() {
        let trace = loop_trace(2048, 2);
        let report = Engine::new(EngineConfig::paper_default()).run(
            trace.iter().copied(),
            NoPrefetcher,
            RunOptions::new(),
        );
        assert!(report.l2_hits + report.l2_misses >= report.fetch.demand_misses);
    }
}
