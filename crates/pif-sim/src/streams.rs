//! Instruction-stream observation points.
//!
//! The paper's §2 compares the predictability of the instruction stream as
//! observed at different places in the processor. [`StreamPoint`]
//! enumerates the four observation points of Figure 2; the
//! [`crate::predictor_eval`] harness measures temporal-stream predictor
//! coverage at each one.

use std::fmt;

use serde::{Deserialize, Serialize};

use pif_types::BlockAddr;

/// Where in the pipeline an instruction stream is recorded (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamPoint {
    /// The L1-I *miss* stream: filtered and fragmented by the cache
    /// (§2.1), and polluted by wrong-path misses.
    Miss,
    /// The L1-I *access* stream: unfiltered but still carrying wrong-path
    /// noise from the branch predictor (§2.2).
    Access,
    /// The *retire-order* stream: correct-path only, but interleaved with
    /// interrupt handler code (§2.3).
    Retire,
    /// Retire-order streams *separated by trap level*: the stream PIF
    /// records; nearly perfectly repetitive.
    RetireSep,
}

impl StreamPoint {
    /// All observation points, in the order Figure 2 plots them.
    pub const ALL: [StreamPoint; 4] = [
        StreamPoint::Miss,
        StreamPoint::Access,
        StreamPoint::Retire,
        StreamPoint::RetireSep,
    ];
}

impl fmt::Display for StreamPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StreamPoint::Miss => "Miss",
            StreamPoint::Access => "Access",
            StreamPoint::Retire => "Retire",
            StreamPoint::RetireSep => "RetireSep",
        };
        f.write_str(s)
    }
}

/// Collapses consecutive observations of the same block into one record,
/// the way the paper's compactor collapses consecutively retired PCs in
/// the same block (§4.1) and temporal-stream recorders dedup repeated
/// accesses.
///
/// # Example
///
/// ```
/// use pif_sim::streams::BlockDedup;
/// use pif_types::BlockAddr;
///
/// let mut d = BlockDedup::new();
/// assert!(d.observe(BlockAddr::from_number(1)));
/// assert!(!d.observe(BlockAddr::from_number(1)), "consecutive repeat");
/// assert!(d.observe(BlockAddr::from_number(2)));
/// assert!(d.observe(BlockAddr::from_number(1)), "non-consecutive repeat passes");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockDedup {
    last: Option<BlockAddr>,
}

impl BlockDedup {
    /// Creates an empty deduplicator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` if `block` differs from the immediately preceding
    /// observation (and records it).
    pub fn observe(&mut self, block: BlockAddr) -> bool {
        if self.last == Some(block) {
            return false;
        }
        self.last = Some(block);
        true
    }

    /// Forgets the last observation (e.g. at a trap-level switch).
    pub fn reset(&mut self) {
        self.last = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_points_are_distinct_and_displayable() {
        let names: Vec<String> = StreamPoint::ALL.iter().map(|p| p.to_string()).collect();
        assert_eq!(names, vec!["Miss", "Access", "Retire", "RetireSep"]);
    }

    #[test]
    fn dedup_reset_forgets() {
        let mut d = BlockDedup::new();
        let b = BlockAddr::from_number(5);
        assert!(d.observe(b));
        d.reset();
        assert!(d.observe(b), "reset must clear the last-seen block");
    }
}
