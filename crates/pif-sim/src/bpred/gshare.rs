//! gshare direction predictor: PC xor global-history indexed counters.

use pif_types::Address;

use super::counter::SaturatingCounter;
use super::DirectionPredictor;

/// A gshare predictor: global branch history XORed with the PC selects a
/// 2-bit counter. Captures correlated branch behaviour that bimodal
/// cannot; mispredicts when data-dependent history patterns shift — the
/// instability the paper's §2.2 shows corrupting access streams.
///
/// # Example
///
/// ```
/// use pif_sim::bpred::{DirectionPredictor, Gshare};
/// use pif_types::Address;
///
/// let mut p = Gshare::new(1024);
/// let pc = Address::new(0x40);
/// // Train until the history register saturates and the steady-state
/// // counter is strongly taken.
/// for _ in 0..24 { p.update(pc, true); }
/// assert!(p.predict(pc));
/// ```
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<SaturatingCounter>,
    mask: u64,
    history: u64,
    history_bits: u32,
}

impl Gshare {
    /// Creates a gshare predictor with `entries` counters; history length is
    /// log2(entries).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a non-zero power of two.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two() && entries > 0,
            "gshare entries must be a power of two"
        );
        Gshare {
            table: vec![SaturatingCounter::weakly_not_taken(); entries],
            mask: entries as u64 - 1,
            history: 0,
            history_bits: entries.trailing_zeros(),
        }
    }

    fn index(&self, pc: Address) -> usize {
        (((pc.raw() >> 2) ^ self.history) & self.mask) as usize
    }

    /// Current global history register value (low `history_bits` bits).
    pub fn history(&self) -> u64 {
        self.history & self.mask
    }

    /// Number of table entries.
    pub fn entries(&self) -> usize {
        self.table.len()
    }
}

impl DirectionPredictor for Gshare {
    fn predict(&self, pc: Address) -> bool {
        self.table[self.index(pc)].predict_taken()
    }

    fn update(&mut self, pc: Address, taken: bool) {
        let idx = self.index(pc);
        self.table[idx].train(taken);
        self.history = ((self.history << 1) | u64::from(taken)) & ((1 << self.history_bits) - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_alternating_pattern_bimodal_cannot() {
        // A branch alternating T,N,T,N is 50% for bimodal but perfectly
        // predictable with 1 bit of history.
        let mut g = Gshare::new(64);
        let pc = Address::new(0x80);
        let mut taken = true;
        // Train.
        for _ in 0..200 {
            g.update(pc, taken);
            taken = !taken;
        }
        // Measure.
        let mut correct = 0;
        for _ in 0..100 {
            if g.predict(pc) == taken {
                correct += 1;
            }
            g.update(pc, taken);
            taken = !taken;
        }
        assert!(
            correct >= 95,
            "gshare should nail alternation, got {correct}/100"
        );
    }

    #[test]
    fn history_shifts_in_outcomes() {
        let mut g = Gshare::new(16);
        let pc = Address::new(0);
        g.update(pc, true);
        g.update(pc, false);
        g.update(pc, true);
        assert_eq!(g.history() & 0b111, 0b101);
    }

    #[test]
    fn history_is_masked_to_table_bits() {
        let mut g = Gshare::new(4); // 2 history bits
        for _ in 0..10 {
            g.update(Address::new(0), true);
        }
        assert_eq!(g.history(), 0b11);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_entries() {
        let _ = Gshare::new(0);
    }
}
