//! Bimodal (per-PC) direction predictor.

use pif_types::Address;

use super::counter::SaturatingCounter;
use super::DirectionPredictor;

/// A classic bimodal predictor: a table of 2-bit counters indexed by PC.
///
/// # Example
///
/// ```
/// use pif_sim::bpred::{Bimodal, DirectionPredictor};
/// use pif_types::Address;
///
/// let mut p = Bimodal::new(1024);
/// let pc = Address::new(0x40);
/// p.update(pc, true);
/// p.update(pc, true);
/// assert!(p.predict(pc));
/// ```
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<SaturatingCounter>,
    mask: u64,
}

impl Bimodal {
    /// Creates a bimodal predictor with `entries` counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a non-zero power of two.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two() && entries > 0,
            "bimodal entries must be a power of two"
        );
        Bimodal {
            table: vec![SaturatingCounter::weakly_not_taken(); entries],
            mask: entries as u64 - 1,
        }
    }

    fn index(&self, pc: Address) -> usize {
        // Instructions are word-aligned; drop the low 2 bits.
        ((pc.raw() >> 2) & self.mask) as usize
    }

    /// Number of table entries.
    pub fn entries(&self) -> usize {
        self.table.len()
    }
}

impl DirectionPredictor for Bimodal {
    fn predict(&self, pc: Address) -> bool {
        self.table[self.index(pc)].predict_taken()
    }

    fn update(&mut self, pc: Address, taken: bool) {
        let idx = self.index(pc);
        self.table[idx].train(taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_stable_branch() {
        let mut p = Bimodal::new(16);
        let pc = Address::new(0x100);
        for _ in 0..4 {
            p.update(pc, true);
        }
        assert!(p.predict(pc));
        for _ in 0..4 {
            p.update(pc, false);
        }
        assert!(!p.predict(pc));
    }

    #[test]
    fn distinct_pcs_use_distinct_counters() {
        let mut p = Bimodal::new(16);
        let a = Address::new(0x4);
        let b = Address::new(0x8);
        p.update(a, true);
        p.update(a, true);
        assert!(p.predict(a));
        assert!(!p.predict(b), "untrained counter defaults to not-taken");
    }

    #[test]
    fn aliasing_wraps_by_mask() {
        let p = Bimodal::new(4);
        // Entries 4 apart in word-index space alias.
        assert_eq!(p.index(Address::new(0x0)), p.index(Address::new(0x40)));
    }

    #[test]
    #[should_panic]
    fn rejects_non_power_of_two() {
        let _ = Bimodal::new(3);
    }
}
