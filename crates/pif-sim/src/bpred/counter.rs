//! Two-bit saturating counters, the building block of every table-based
//! direction predictor here.

/// A 2-bit saturating counter: 0-1 predict not-taken, 2-3 predict taken.
///
/// # Example
///
/// ```
/// use pif_sim::bpred::SaturatingCounter;
///
/// let mut c = SaturatingCounter::weakly_not_taken();
/// assert!(!c.predict_taken());
/// c.train(true);
/// assert!(c.predict_taken());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaturatingCounter(u8);

impl SaturatingCounter {
    /// Strongly not-taken (0).
    pub const fn strongly_not_taken() -> Self {
        SaturatingCounter(0)
    }

    /// Weakly not-taken (1), the conventional initialization.
    pub const fn weakly_not_taken() -> Self {
        SaturatingCounter(1)
    }

    /// Weakly taken (2).
    pub const fn weakly_taken() -> Self {
        SaturatingCounter(2)
    }

    /// Current prediction.
    pub const fn predict_taken(self) -> bool {
        self.0 >= 2
    }

    /// True if the counter is in a strong (saturated) state.
    pub const fn is_strong(self) -> bool {
        self.0 == 0 || self.0 == 3
    }

    /// Trains toward the outcome.
    pub fn train(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }

    /// Raw state in `0..=3`.
    pub const fn raw(self) -> u8 {
        self.0
    }
}

impl Default for SaturatingCounter {
    fn default() -> Self {
        Self::weakly_not_taken()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_at_both_ends() {
        let mut c = SaturatingCounter::strongly_not_taken();
        c.train(false);
        assert_eq!(c.raw(), 0);
        for _ in 0..5 {
            c.train(true);
        }
        assert_eq!(c.raw(), 3);
    }

    #[test]
    fn hysteresis_requires_two_flips() {
        let mut c = SaturatingCounter::strongly_not_taken();
        c.train(true);
        assert!(!c.predict_taken(), "one taken must not flip a strong state");
        c.train(true);
        assert!(c.predict_taken());
    }

    #[test]
    fn strength_classification() {
        assert!(SaturatingCounter::strongly_not_taken().is_strong());
        assert!(!SaturatingCounter::weakly_not_taken().is_strong());
        assert!(!SaturatingCounter::weakly_taken().is_strong());
    }
}
