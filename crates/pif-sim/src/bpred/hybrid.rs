//! Hybrid (tournament) predictor combining gshare and bimodal with a
//! per-PC chooser, per Table I ("Hybrid branch predictor: 16K gShare & 16K
//! bimodal").

use pif_types::Address;

use super::bimodal::Bimodal;
use super::counter::SaturatingCounter;
use super::gshare::Gshare;
use super::DirectionPredictor;

/// Tournament predictor: a chooser table of 2-bit counters picks, per PC,
/// between the gshare and bimodal components; both components always train.
///
/// # Example
///
/// ```
/// use pif_sim::bpred::{DirectionPredictor, HybridPredictor};
/// use pif_types::Address;
///
/// let mut p = HybridPredictor::paper_default();
/// let pc = Address::new(0x40);
/// for _ in 0..4 { p.update(pc, true); }
/// assert!(p.predict(pc));
/// ```
#[derive(Debug, Clone)]
pub struct HybridPredictor {
    gshare: Gshare,
    bimodal: Bimodal,
    chooser: Vec<SaturatingCounter>,
    chooser_mask: u64,
}

impl HybridPredictor {
    /// Creates a hybrid predictor with the given component sizes.
    ///
    /// # Panics
    ///
    /// Panics if any size is not a non-zero power of two.
    pub fn new(gshare_entries: usize, bimodal_entries: usize, chooser_entries: usize) -> Self {
        assert!(
            chooser_entries.is_power_of_two() && chooser_entries > 0,
            "chooser entries must be a power of two"
        );
        HybridPredictor {
            gshare: Gshare::new(gshare_entries),
            bimodal: Bimodal::new(bimodal_entries),
            // Weakly-taken start: mildly prefer gshare (counter >= 2 picks
            // gshare), matching common tournament initialization.
            chooser: vec![SaturatingCounter::weakly_taken(); chooser_entries],
            chooser_mask: chooser_entries as u64 - 1,
        }
    }

    /// The paper's Table I sizing: 16K gshare, 16K bimodal (16K chooser).
    pub fn paper_default() -> Self {
        Self::new(16 * 1024, 16 * 1024, 16 * 1024)
    }

    fn chooser_index(&self, pc: Address) -> usize {
        ((pc.raw() >> 2) & self.chooser_mask) as usize
    }

    /// Fraction-free access to component predictions (useful in tests and
    /// diagnostics).
    pub fn component_predictions(&self, pc: Address) -> (bool, bool) {
        (self.gshare.predict(pc), self.bimodal.predict(pc))
    }
}

impl DirectionPredictor for HybridPredictor {
    fn predict(&self, pc: Address) -> bool {
        if self.chooser[self.chooser_index(pc)].predict_taken() {
            self.gshare.predict(pc)
        } else {
            self.bimodal.predict(pc)
        }
    }

    fn update(&mut self, pc: Address, taken: bool) {
        let g = self.gshare.predict(pc);
        let b = self.bimodal.predict(pc);
        // Train the chooser toward whichever component was right (only when
        // they disagree).
        if g != b {
            let idx = self.chooser_index(pc);
            self.chooser[idx].train(g == taken);
        }
        self.gshare.update(pc, taken);
        self.bimodal.update(pc, taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_branch_predicted_by_both() {
        let mut p = HybridPredictor::new(64, 64, 64);
        let pc = Address::new(0x10);
        for _ in 0..8 {
            p.update(pc, true);
        }
        assert!(p.predict(pc));
    }

    #[test]
    fn chooser_migrates_to_better_component() {
        let mut p = HybridPredictor::new(256, 256, 256);
        let pc = Address::new(0x20);
        // Alternating pattern: gshare learns it, bimodal oscillates.
        let mut taken = true;
        for _ in 0..400 {
            p.update(pc, taken);
            taken = !taken;
        }
        let mut correct = 0;
        for _ in 0..100 {
            if p.predict(pc) == taken {
                correct += 1;
            }
            p.update(pc, taken);
            taken = !taken;
        }
        assert!(
            correct >= 90,
            "hybrid should track gshare on alternating branch, got {correct}/100"
        );
    }

    #[test]
    fn mostly_taken_branch_high_accuracy() {
        let mut p = HybridPredictor::paper_default();
        let pc = Address::new(0x30);
        let mut correct = 0;
        let total = 1000;
        for i in 0..total {
            let taken = i % 10 != 0; // 90% taken
            if p.predict(pc) == taken {
                correct += 1;
            }
            p.update(pc, taken);
        }
        assert!(
            correct as f64 / total as f64 > 0.85,
            "expected ~90% accuracy, got {correct}/{total}"
        );
    }
}
