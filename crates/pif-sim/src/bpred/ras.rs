//! Return address stack.

use pif_types::Address;

/// A bounded return-address stack. Calls push their return address; returns
/// pop the predicted target. Overflow wraps (oldest entry lost), underflow
/// predicts nothing — both cause return mispredictions, another §2.2 noise
/// source.
///
/// # Example
///
/// ```
/// use pif_sim::bpred::ReturnAddressStack;
/// use pif_types::Address;
///
/// let mut ras = ReturnAddressStack::new(8);
/// ras.push(Address::new(0x44));
/// assert_eq!(ras.pop(), Some(Address::new(0x44)));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    stack: Vec<Address>,
    depth: usize,
}

impl ReturnAddressStack {
    /// Creates a RAS holding at most `depth` return addresses.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "RAS depth must be non-zero");
        ReturnAddressStack {
            stack: Vec::with_capacity(depth),
            depth,
        }
    }

    /// Pushes a return address, discarding the oldest on overflow.
    pub fn push(&mut self, ret: Address) {
        if self.stack.len() == self.depth {
            self.stack.remove(0);
        }
        self.stack.push(ret);
    }

    /// Pops the predicted return target.
    pub fn pop(&mut self) -> Option<Address> {
        self.stack.pop()
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.stack.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut ras = ReturnAddressStack::new(4);
        ras.push(Address::new(1));
        ras.push(Address::new(2));
        assert_eq!(ras.pop(), Some(Address::new(2)));
        assert_eq!(ras.pop(), Some(Address::new(1)));
        assert!(ras.is_empty());
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(Address::new(1));
        ras.push(Address::new(2));
        ras.push(Address::new(3));
        assert_eq!(ras.len(), 2);
        assert_eq!(ras.pop(), Some(Address::new(3)));
        assert_eq!(ras.pop(), Some(Address::new(2)));
        assert_eq!(ras.pop(), None, "address 1 was lost to overflow");
    }

    #[test]
    #[should_panic]
    fn zero_depth_rejected() {
        let _ = ReturnAddressStack::new(0);
    }
}
