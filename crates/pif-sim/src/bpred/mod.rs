//! Branch prediction: the paper's Table I front end uses a hybrid
//! 16K-entry gshare + 16K-entry bimodal predictor. We add the BTB and
//! return-address stack needed to synthesize wrong-path fetch sequences for
//! indirect branches and returns.
//!
//! The predictors exist to reproduce §2.2's phenomenon: data-dependent
//! branches mispredict, and every misprediction injects a burst of
//! wrong-path instruction-cache accesses into the front-end access stream.

mod bimodal;
mod btb;
mod counter;
mod gshare;
mod hybrid;
mod ras;

pub use bimodal::Bimodal;
pub use btb::BranchTargetBuffer;
pub use counter::SaturatingCounter;
pub use gshare::Gshare;
pub use hybrid::HybridPredictor;
pub use ras::ReturnAddressStack;

use pif_types::Address;

/// A direction predictor for conditional branches.
pub trait DirectionPredictor {
    /// Predicts whether the branch at `pc` is taken.
    fn predict(&self, pc: Address) -> bool;

    /// Trains the predictor with the actual outcome.
    fn update(&mut self, pc: Address, taken: bool);
}
