//! Branch target buffer: predicts indirect-branch targets.

use pif_types::Address;

use crate::cache::{Lru, SetAssocCache};

/// A BTB mapping branch PCs to their last-seen targets. Used for indirect
/// calls/jumps, whose targets cannot be computed at fetch; a stale entry
/// yields a wrong-path fetch burst from the *old* target (paper §2.2's
/// arbitrary noise injection).
///
/// # Example
///
/// ```
/// use pif_sim::bpred::BranchTargetBuffer;
/// use pif_types::Address;
///
/// let mut btb = BranchTargetBuffer::new(256, 4);
/// let pc = Address::new(0x40);
/// assert_eq!(btb.predict(pc), None);
/// btb.update(pc, Address::new(0x4000));
/// assert_eq!(btb.predict(pc), Some(Address::new(0x4000)));
/// ```
#[derive(Debug, Clone)]
pub struct BranchTargetBuffer {
    table: SetAssocCache<Lru, Address>,
}

impl BranchTargetBuffer {
    /// Creates a BTB with `entries` total entries of `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid: sets not a power of two, or
    /// more than 16 ways (the packed-LRU replacement limit).
    pub fn new(entries: usize, ways: usize) -> Self {
        let sets = entries / ways;
        BranchTargetBuffer {
            table: SetAssocCache::new(sets, ways).expect("valid BTB geometry"),
        }
    }

    fn key(pc: Address) -> pif_types::BlockAddr {
        // Index by word-aligned PC, reusing the block-keyed cache.
        pif_types::BlockAddr::from_number(pc.raw() >> 2)
    }

    /// Predicted target for the branch at `pc`, if known.
    pub fn predict(&self, pc: Address) -> Option<Address> {
        self.table.probe(Self::key(pc)).copied()
    }

    /// Records the actual target of the branch at `pc`.
    pub fn update(&mut self, pc: Address, target: Address) {
        self.table.insert(Self::key(pc), target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remembers_last_target() {
        let mut btb = BranchTargetBuffer::new(64, 2);
        let pc = Address::new(0x100);
        btb.update(pc, Address::new(0xa000));
        btb.update(pc, Address::new(0xb000));
        assert_eq!(btb.predict(pc), Some(Address::new(0xb000)));
    }

    #[test]
    fn capacity_evicts_old_entries() {
        let mut btb = BranchTargetBuffer::new(4, 1); // 4 sets x 1 way
                                                     // Fill set 0 (word indices multiple of 4): PCs 0x0, 0x40 alias? word
                                                     // index = pc>>2; set = idx & 3. 0x0 -> 0, 0x10 -> 0 (idx 4).
        btb.update(Address::new(0x0), Address::new(0x1));
        btb.update(Address::new(0x10), Address::new(0x2));
        assert_eq!(btb.predict(Address::new(0x0)), None, "conflict evicted");
        assert_eq!(btb.predict(Address::new(0x10)), Some(Address::new(0x2)));
    }

    #[test]
    fn distinct_branches_coexist() {
        let mut btb = BranchTargetBuffer::new(64, 2);
        btb.update(Address::new(0x4), Address::new(0x111));
        btb.update(Address::new(0x8), Address::new(0x222));
        assert_eq!(btb.predict(Address::new(0x4)), Some(Address::new(0x111)));
        assert_eq!(btb.predict(Address::new(0x8)), Some(Address::new(0x222)));
    }
}
