//! Temporal-stream predictor evaluation harness (paper §2, Figure 2).
//!
//! Measures how well "record the stream, replay it when its head recurs"
//! predicts the correct-path L1-I miss stream, when the recorded stream is
//! taken from each of the four observation points in
//! [`crate::streams::StreamPoint`]. As in the paper, *the processor is
//! undisturbed*: predictions are tracked but nothing is prefetched.

use std::collections::{HashMap, VecDeque};

use serde::{Deserialize, Serialize};

use pif_types::{BlockAddr, RetiredInstr, TrapLevel};

use crate::cache::{AccessOutcome, InstructionCache};
use crate::config::EngineConfig;
use crate::frontend::{FrontEnd, FrontendEvent};
use crate::streams::{BlockDedup, StreamPoint};

/// Tuning of the idealized temporal-stream predictor used in the §2 study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemporalPredictorConfig {
    /// Lookahead window for access/retire-order streams: how many upcoming
    /// recorded blocks an active stream exposes for matching. These
    /// streams advance on every fetch, so the window must absorb loop
    /// repetitions in the raw (uncompacted) recording.
    pub window: usize,
    /// Lookahead window for the *miss* stream. A miss record spans far
    /// more execution time than an access/retire record, so an equal
    /// execution-time horizon corresponds to a much smaller record count.
    pub miss_window: usize,
    /// Number of concurrently active streams (LRU-replaced).
    pub pool: usize,
    /// History capacity in records; `None` = unbounded (the paper's §2
    /// study and Fig. 10's "without history storage limitations").
    pub history_capacity: Option<usize>,
}

impl Default for TemporalPredictorConfig {
    fn default() -> Self {
        TemporalPredictorConfig {
            // The §2 study is an idealized limit ("replaying the recorded
            // sequence"): a deep window tolerates loop repetitions in the
            // raw streams, which the real PIF design instead removes via
            // region compaction (§3.2). The miss window matches the same
            // execution-time horizon at miss-record granularity.
            window: 512,
            miss_window: 24,
            pool: 16,
            history_capacity: None,
        }
    }
}

/// Per-context (e.g. per-trap-level) recorded history with an index of the
/// most recent occurrence of each block.
#[derive(Debug, Default)]
struct ContextHistory {
    /// Recorded blocks; `history[i]` is global position `base + i`.
    history: VecDeque<BlockAddr>,
    base: u64,
    /// Block -> most recent global position.
    index: HashMap<u64, u64>,
    dedup: BlockDedup,
    capacity: Option<usize>,
}

impl ContextHistory {
    fn new(capacity: Option<usize>) -> Self {
        ContextHistory {
            capacity,
            ..Default::default()
        }
    }

    fn end(&self) -> u64 {
        self.base + self.history.len() as u64
    }

    fn get(&self, pos: u64) -> Option<BlockAddr> {
        if pos < self.base {
            return None;
        }
        self.history.get((pos - self.base) as usize).copied()
    }

    /// Records one observation; consecutive duplicates are collapsed.
    fn observe(&mut self, block: BlockAddr) {
        if !self.dedup.observe(block) {
            return;
        }
        let pos = self.end();
        self.history.push_back(block);
        self.index.insert(block.number(), pos);
        if let Some(cap) = self.capacity {
            while self.history.len() > cap {
                self.history.pop_front();
                self.base += 1;
            }
        }
    }

    /// Most recent recorded position of `block`, if still in history.
    fn lookup(&self, block: BlockAddr) -> Option<u64> {
        let &pos = self.index.get(&block.number())?;
        (pos >= self.base).then_some(pos)
    }
}

#[derive(Debug)]
struct ReplayStream {
    context: usize,
    next_pos: u64,
    lookahead: VecDeque<BlockAddr>,
    last_use: u64,
}

/// An idealized temporal-stream predictor over one or more contexts
/// (contexts model the paper's per-trap-level stream separation).
///
/// # Example
///
/// ```
/// use pif_sim::predictor_eval::{TemporalPredictorConfig, TemporalStreamPredictor};
/// use pif_types::BlockAddr;
///
/// let mut p = TemporalStreamPredictor::new(TemporalPredictorConfig::default(), 1);
/// let b = |n| BlockAddr::from_number(n);
/// for n in [1, 2, 3, 4] { p.observe(0, b(n)); }
/// // Stream head 1 recurs: misses on 2, 3, 4 are now predicted.
/// assert!(!p.check_miss(0, b(1)), "head itself is not predicted");
/// assert!(p.check_miss(0, b(2)));
/// assert!(p.check_miss(0, b(3)));
/// ```
#[derive(Debug)]
pub struct TemporalStreamPredictor {
    config: TemporalPredictorConfig,
    contexts: Vec<ContextHistory>,
    streams: Vec<ReplayStream>,
    clock: u64,
    /// Unpredicted misses whose block had no recorded occurrence (cold).
    uncovered_cold: u64,
    /// Unpredicted misses whose block was recorded (stream break).
    uncovered_warm: u64,
}

impl TemporalStreamPredictor {
    /// Creates a predictor with `contexts` separate recording contexts.
    ///
    /// # Panics
    ///
    /// Panics if `contexts` is zero or the window/pool are zero.
    pub fn new(config: TemporalPredictorConfig, contexts: usize) -> Self {
        assert!(contexts > 0 && config.window > 0 && config.pool > 0);
        assert!(config.miss_window > 0, "miss window must be non-zero");
        TemporalStreamPredictor {
            config,
            contexts: (0..contexts)
                .map(|_| ContextHistory::new(config.history_capacity))
                .collect(),
            streams: Vec::new(),
            clock: 0,
            uncovered_cold: 0,
            uncovered_warm: 0,
        }
    }

    /// Unpredicted misses split into (cold, stream-break) counts.
    pub fn uncovered_breakdown(&self) -> (u64, u64) {
        (self.uncovered_cold, self.uncovered_warm)
    }

    /// Records one observation in `context`.
    pub fn observe(&mut self, context: usize, block: BlockAddr) {
        self.contexts[context].observe(block);
    }

    /// Advances any active stream containing `block` (the stream-buffer
    /// behaviour of monitoring *all* fetch requests, §4.3): the window
    /// slides past the match and refills. Returns `true` if a stream
    /// matched. Does **not** open new streams.
    pub fn advance(&mut self, context: usize, block: BlockAddr) -> bool {
        self.clock += 1;
        for si in 0..self.streams.len() {
            if self.streams[si].context != context {
                continue;
            }
            if let Some(i) = self.streams[si].lookahead.iter().position(|&b| b == block) {
                let s = &mut self.streams[si];
                // Keep the matched entry at the front: loops re-match it
                // without consuming the window.
                s.lookahead.drain(..i);
                s.last_use = self.clock;
                let (window, ctx) = (self.config.window, s.context);
                let next = &mut self.streams[si];
                Self::refill(&self.contexts[ctx], next, window + 1);
                return true;
            }
        }
        false
    }

    /// Checks whether a miss on `block` (in `context`) was predicted by an
    /// active stream (advancing it); on a failure the predictor tries to
    /// open a new stream at the block's most recent recorded position.
    /// Returns `true` iff the miss was predicted.
    pub fn check_miss(&mut self, context: usize, block: BlockAddr) -> bool {
        if self.advance(context, block) {
            return true;
        }
        self.try_open(context, block);
        false
    }

    /// Opens a new stream after the most recent recorded occurrence of
    /// `block`, if one exists (called when an unpredicted miss recurs —
    /// the "stream head" event).
    pub fn try_open(&mut self, context: usize, block: BlockAddr) {
        if self.contexts[context].lookup(block).is_none() {
            self.uncovered_cold += 1;
        } else {
            self.uncovered_warm += 1;
        }
        if let Some(pos) = self.contexts[context].lookup(block) {
            let mut stream = ReplayStream {
                context,
                next_pos: pos + 1,
                lookahead: VecDeque::new(),
                last_use: self.clock,
            };
            Self::refill(&self.contexts[context], &mut stream, self.config.window);
            if self.streams.len() < self.config.pool {
                self.streams.push(stream);
            } else if let Some(lru) = self.streams.iter_mut().min_by_key(|s| s.last_use) {
                *lru = stream;
            }
        }
    }

    fn refill(history: &ContextHistory, stream: &mut ReplayStream, window: usize) {
        while stream.lookahead.len() < window && stream.next_pos < history.end() {
            if let Some(b) = history.get(stream.next_pos) {
                stream.lookahead.push_back(b);
            }
            stream.next_pos += 1;
        }
    }
}

/// Coverage of correct-path L1-I misses at each observation point
/// (Figure 2's four bars), plus the denominators.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamCoverageReport {
    /// Coverage when predicting the miss stream.
    pub miss: f64,
    /// Coverage when predicting the access stream.
    pub access: f64,
    /// Coverage when predicting the unified retire stream.
    pub retire: f64,
    /// Coverage when predicting per-trap-level retire streams.
    pub retire_sep: f64,
    /// Number of correct-path L1-I misses measured against.
    pub correct_path_misses: u64,
}

impl StreamCoverageReport {
    /// Coverage for a given observation point.
    pub fn coverage(&self, point: StreamPoint) -> f64 {
        match point {
            StreamPoint::Miss => self.miss,
            StreamPoint::Access => self.access,
            StreamPoint::Retire => self.retire,
            StreamPoint::RetireSep => self.retire_sep,
        }
    }
}

/// Runs the Figure 2 study: simulates the L1-I (no prefetching) over the
/// front-end access stream derived from `trace`, recording temporal
/// streams at all four observation points and measuring how many
/// correct-path misses each would have predicted.
///
/// The paper measures workloads *at steady state* with warmed predictor
/// tables; `evaluate_stream_coverage` treats the first 25% of the trace as
/// warmup (recorded but not measured). Use
/// [`evaluate_stream_coverage_warmup`] to control the warmup length.
pub fn evaluate_stream_coverage(
    config: &EngineConfig,
    predictor_config: TemporalPredictorConfig,
    trace: &[RetiredInstr],
) -> StreamCoverageReport {
    evaluate_stream_coverage_warmup(config, predictor_config, trace, trace.len() / 4)
}

/// As [`evaluate_stream_coverage`], with an explicit warmup prefix (in
/// retired instructions) during which streams are recorded and the cache
/// simulated, but coverage is not measured.
pub fn evaluate_stream_coverage_warmup(
    config: &EngineConfig,
    predictor_config: TemporalPredictorConfig,
    trace: &[RetiredInstr],
    warmup_instrs: usize,
) -> StreamCoverageReport {
    let mut icache = InstructionCache::new(config.icache).expect("valid icache");
    let mut frontend = FrontEnd::new(config.frontend);

    let miss_config = TemporalPredictorConfig {
        window: predictor_config.miss_window,
        ..predictor_config
    };
    let mut miss_pred = TemporalStreamPredictor::new(miss_config, 1);
    let mut access_pred = TemporalStreamPredictor::new(predictor_config, 1);
    let mut retire_pred = TemporalStreamPredictor::new(predictor_config, 1);
    let mut sep_pred = TemporalStreamPredictor::new(predictor_config, TrapLevel::COUNT);

    let mut access_dedup = BlockDedup::new();
    let mut retire_dedup = BlockDedup::new();
    let mut sep_dedups = [BlockDedup::new(), BlockDedup::new()];

    let mut covered = [0u64; 4];
    let mut total_misses = 0u64;

    let mut events: Vec<FrontendEvent> = Vec::with_capacity(64);
    let mut handle = |e: FrontendEvent,
                      counting: bool,
                      icache: &mut InstructionCache,
                      covered: &mut [u64; 4],
                      total_misses: &mut u64| {
        match e {
            FrontendEvent::Fetch(access) => {
                let block = access.pc.block();
                let outcome = icache.demand_access(block);
                let missed = outcome == AccessOutcome::Miss;
                let correct = access.is_correct_path();
                let tl = access.trap_level.index();

                // Stream buffers monitor *every* fetch request (§4.3):
                // advance windows on hits and misses alike. The miss-stream
                // predictor's recorded stream consists of misses, so it
                // advances only on miss events; the access predictor sees
                // wrong-path fetches too; the retire predictors track
                // correct-path fetches.
                let a_miss = missed && miss_pred.advance(0, block);
                let a_access = access_pred.advance(0, block);
                let a_retire = correct && retire_pred.advance(0, block);
                let a_sep = correct && sep_pred.advance(tl, block);

                if missed {
                    // Unpredicted misses are stream-head events: try to
                    // open a replay stream at the recurrence.
                    if !a_miss {
                        miss_pred.try_open(0, block);
                    }
                    if !a_access {
                        access_pred.try_open(0, block);
                    }
                    if correct {
                        if !a_retire {
                            retire_pred.try_open(0, block);
                        }
                        if !a_sep {
                            sep_pred.try_open(tl, block);
                        }
                        if counting {
                            *total_misses += 1;
                            covered[0] += u64::from(a_miss);
                            covered[1] += u64::from(a_access);
                            covered[2] += u64::from(a_retire);
                            covered[3] += u64::from(a_sep);
                        }
                    }
                }

                // Record observations after checking (an event cannot
                // predict itself).
                if missed {
                    miss_pred.observe(0, block);
                }
                if access_dedup.observe(block) {
                    access_pred.observe(0, block);
                }
            }
            FrontendEvent::Retire(instr, _) => {
                let block = instr.pc.block();
                if retire_dedup.observe(block) {
                    retire_pred.observe(0, block);
                }
                let tl = instr.trap_level.index();
                if sep_dedups[tl].observe(block) {
                    sep_pred.observe(tl, block);
                }
            }
        }
    };

    for (i, &instr) in trace.iter().enumerate() {
        let counting = i >= warmup_instrs;
        frontend.step(instr, |e| events.push(e));
        for e in events.drain(..) {
            handle(e, counting, &mut icache, &mut covered, &mut total_misses);
        }
    }
    frontend.flush(|e| events.push(e));
    for e in events.drain(..) {
        handle(e, true, &mut icache, &mut covered, &mut total_misses);
    }

    let denom = total_misses.max(1) as f64;
    StreamCoverageReport {
        miss: covered[0] as f64 / denom,
        access: covered[1] as f64 / denom,
        retire: covered[2] as f64 / denom,
        retire_sep: covered[3] as f64 / denom,
        correct_path_misses: total_misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pif_types::Address;

    fn b(n: u64) -> BlockAddr {
        BlockAddr::from_number(n)
    }

    #[test]
    fn predictor_replays_recorded_stream() {
        let mut p = TemporalStreamPredictor::new(TemporalPredictorConfig::default(), 1);
        for n in 1..=10 {
            p.observe(0, b(n));
        }
        assert!(!p.check_miss(0, b(1)), "head miss opens the stream");
        for n in 2..=10 {
            assert!(p.check_miss(0, b(n)), "block {n} should be predicted");
        }
    }

    #[test]
    fn predictor_skips_blocks_that_hit() {
        let mut p = TemporalStreamPredictor::new(TemporalPredictorConfig::default(), 1);
        for n in 1..=10 {
            p.observe(0, b(n));
        }
        p.check_miss(0, b(1));
        // Blocks 2..4 hit in the cache; miss at 5 still matches the window.
        assert!(p.check_miss(0, b(5)));
        assert!(p.check_miss(0, b(6)));
    }

    #[test]
    fn unrecorded_block_is_never_predicted() {
        let mut p = TemporalStreamPredictor::new(TemporalPredictorConfig::default(), 1);
        for n in 1..=5 {
            p.observe(0, b(n));
        }
        assert!(!p.check_miss(0, b(42)));
        assert!(!p.check_miss(0, b(42)), "still unrecorded");
    }

    #[test]
    fn consecutive_duplicates_are_collapsed() {
        let mut p = TemporalStreamPredictor::new(TemporalPredictorConfig::default(), 1);
        for n in [1, 1, 1, 2, 2, 3] {
            p.observe(0, b(n));
        }
        p.check_miss(0, b(1));
        assert!(p.check_miss(0, b(2)));
        assert!(p.check_miss(0, b(3)));
    }

    #[test]
    fn contexts_are_isolated() {
        let mut p = TemporalStreamPredictor::new(TemporalPredictorConfig::default(), 2);
        for n in 1..=5 {
            p.observe(0, b(n));
        }
        p.check_miss(1, b(1));
        assert!(
            !p.check_miss(1, b(2)),
            "context 1 never recorded the stream from context 0"
        );
    }

    #[test]
    fn bounded_history_forgets_old_streams() {
        let cfg = TemporalPredictorConfig {
            history_capacity: Some(4),
            ..Default::default()
        };
        let mut p = TemporalStreamPredictor::new(cfg, 1);
        for n in 1..=10 {
            p.observe(0, b(n));
        }
        // Blocks 1..6 have been evicted from the 4-entry history.
        p.check_miss(0, b(1));
        assert!(!p.check_miss(0, b(2)), "evicted stream cannot replay");
        // The recent tail still replays.
        p.check_miss(0, b(7));
        assert!(p.check_miss(0, b(8)));
    }

    #[test]
    fn repeating_sequence_reaches_full_coverage_after_first_pass() {
        let mut p = TemporalStreamPredictor::new(TemporalPredictorConfig::default(), 1);
        let seq: Vec<u64> = (100..132).collect();
        // First pass: record.
        for &n in &seq {
            p.observe(0, b(n));
        }
        // Second pass: all but the head predicted.
        let mut covered = 0;
        for &n in &seq {
            if p.check_miss(0, b(n)) {
                covered += 1;
            }
            p.observe(0, b(n));
        }
        assert_eq!(covered, seq.len() - 1);
    }

    #[test]
    fn coverage_harness_orders_points_correctly() {
        // Build a trace with working set > L1-I so misses recur: repetitive
        // function-like sweeps over 2048 blocks with occasional branches.
        let mut trace = Vec::new();
        for _rep in 0..4 {
            for blk in 0..2048u64 {
                for i in 0..4 {
                    trace.push(RetiredInstr::simple(
                        Address::new(blk * 64 + i * 16),
                        TrapLevel::Tl0,
                    ));
                }
            }
        }
        let report = evaluate_stream_coverage(
            &EngineConfig::paper_default(),
            TemporalPredictorConfig::default(),
            &trace,
        );
        assert!(report.correct_path_misses > 2048);
        // A perfectly sequential repetitive trace is predictable from every
        // observation point once warmed up.
        assert!(report.retire > 0.9, "retire coverage {}", report.retire);
        assert!(report.retire_sep >= report.retire - 0.05);
        assert!(report.access > 0.9);
    }
}
