//! Engine instrumentation: the [`Probe`] trait, the free [`NoProbe`]
//! default, and the metrics-backed [`EngineProbe`].
//!
//! A probe is a *passive observer* threaded through
//! [`Engine::run_probed`](crate::Engine::run_probed): the engine calls
//! its hooks at fixed points on the hot path, and the probe records
//! whatever it likes — but it can never feed anything back. Probes see
//! only host-side diagnostics (stall magnitudes, queue depths,
//! prefetcher gauges); they hold no simulated state and receive no
//! mutable access to any, so a probed run and an unprobed run of the
//! same trace produce identical [`RunReport`](crate::RunReport)s. That
//! equivalence is enforced by `tests/probe_equivalence.rs`.
//!
//! # Cost contract
//!
//! Every hook call in the engine is guarded by `if Pr::ENABLED`, where
//! [`Probe::ENABLED`] is an associated *constant*. For [`NoProbe`]
//! (`ENABLED = false`) the branch folds away at monomorphization time:
//! the unprobed engine compiles to the same loop it had before probes
//! existed. `tests/zero_alloc.rs` proves the default path allocation-
//! free, and perfbench's `probe_overhead_pct` row tracks the measured
//! throughput delta.
//!
//! Implementations must uphold the other half of the contract: hooks
//! are called per fetch/stall on the hottest loop in the repository, so
//! they must not allocate, lock, or block in steady state.
//! [`EngineProbe`] records into preallocated `pif-obs` histograms
//! (relaxed atomics only, after the first sample of each prefetcher
//! gauge name).

use pif_obs::{Histogram, Registry};

/// Why the fetch stage stalled: the miss classification at the point
/// the timing model is charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// A demand miss with no prefetch in flight: the full L2/memory
    /// latency is exposed.
    DemandMiss,
    /// A demand access overtook an in-flight prefetch (a *late*
    /// prefetch): only the remaining latency is exposed.
    LatePrefetch,
}

/// How often (in retirements) the engine samples prefetcher gauges via
/// [`crate::Prefetcher::gauges`] when a probe is enabled.
pub const GAUGE_SAMPLE_PERIOD: u64 = 1024;

/// Observer hooks on the engine's run path.
///
/// # Contract
///
/// * Hooks observe; they must not affect simulation. The engine
///   guarantees probes identical inputs for identical traces, so any
///   probe-vs-[`NoProbe`] divergence in a `RunReport` is an engine bug.
/// * Hooks run per fetch event; implementations must be allocation-free
///   and lock-free in steady state (amortized growth on first use is
///   acceptable, as elsewhere in the engine).
/// * When [`Probe::ENABLED`] is `false` no hook is ever called, and the
///   engine's instrumentation compiles to nothing.
pub trait Probe {
    /// Whether the engine should call this probe's hooks at all. A
    /// `const` so the `if Pr::ENABLED` guards fold at compile time.
    const ENABLED: bool;

    /// A fetch stalled for `cycles` (the amount charged to the timing
    /// model), broken down by [`StallKind`].
    fn fetch_stall(&mut self, kind: StallKind, cycles: u64);

    /// Prefetch-queue occupancy, sampled once per fetch access (before
    /// the demand lookup).
    fn queue_depth(&mut self, depth: usize);

    /// A named prefetcher gauge (e.g. SAB residency), sampled every
    /// [`GAUGE_SAMPLE_PERIOD`] retirements from
    /// [`crate::Prefetcher::gauges`]. `name` is a static identifier
    /// (`[a-z0-9_]+`); one call may emit the same name several times
    /// (e.g. once per SAB), each an independent sample.
    fn prefetcher_gauge(&mut self, name: &'static str, value: u64);
}

/// The default probe: compiles to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProbe;

impl Probe for NoProbe {
    const ENABLED: bool = false;

    #[inline(always)]
    fn fetch_stall(&mut self, _kind: StallKind, _cycles: u64) {}

    #[inline(always)]
    fn queue_depth(&mut self, _depth: usize) {}

    #[inline(always)]
    fn prefetcher_gauge(&mut self, _name: &'static str, _value: u64) {}
}

/// A [`Probe`] recording into `pif-obs` histograms:
///
/// * `pif_engine_demand_stall_cycles` — full-latency demand-miss stalls
/// * `pif_engine_late_prefetch_stall_cycles` — residual stalls behind
///   late prefetches
/// * `pif_engine_prefetch_queue_depth` — queue occupancy per fetch
/// * `pif_engine_<gauge>` — one histogram per prefetcher gauge name
///   (e.g. `pif_engine_sab_active_streams`, `pif_engine_sab_window_regions`)
///
/// The registry is shared (cloneable), so a caller can hand in the
/// daemon's registry or read [`EngineProbe::registry`] after the run.
#[derive(Debug)]
pub struct EngineProbe {
    registry: Registry,
    demand_stall: Histogram,
    late_stall: Histogram,
    queue_depth: Histogram,
    /// Lazily-registered per-name gauge histograms. A short linear scan
    /// keyed on `&'static str` identity-or-equality — gauge name sets
    /// are tiny (a handful per prefetcher).
    gauges: Vec<(&'static str, Histogram)>,
}

impl EngineProbe {
    /// Creates a probe with a fresh registry.
    pub fn new() -> Self {
        Self::with_registry(Registry::new())
    }

    /// Creates a probe registering its metrics in `registry`.
    pub fn with_registry(registry: Registry) -> Self {
        let demand_stall = registry.histogram(
            "pif_engine_demand_stall_cycles",
            "Fetch stall cycles charged for demand misses (full latency).",
        );
        let late_stall = registry.histogram(
            "pif_engine_late_prefetch_stall_cycles",
            "Residual fetch stall cycles behind late (in-flight) prefetches.",
        );
        let queue_depth = registry.histogram(
            "pif_engine_prefetch_queue_depth",
            "Prefetch-queue occupancy sampled at each fetch access.",
        );
        EngineProbe {
            registry,
            demand_stall,
            late_stall,
            queue_depth,
            gauges: Vec::new(),
        }
    }

    /// The registry this probe records into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

impl Default for EngineProbe {
    fn default() -> Self {
        Self::new()
    }
}

impl Probe for EngineProbe {
    const ENABLED: bool = true;

    #[inline]
    fn fetch_stall(&mut self, kind: StallKind, cycles: u64) {
        match kind {
            StallKind::DemandMiss => self.demand_stall.record(cycles),
            StallKind::LatePrefetch => self.late_stall.record(cycles),
        }
    }

    #[inline]
    fn queue_depth(&mut self, depth: usize) {
        self.queue_depth.record(depth as u64);
    }

    fn prefetcher_gauge(&mut self, name: &'static str, value: u64) {
        if let Some((_, h)) = self.gauges.iter().find(|(n, _)| *n == name) {
            h.record(value);
            return;
        }
        let mut metric = String::with_capacity("pif_engine_".len() + name.len());
        metric.push_str("pif_engine_");
        metric.push_str(name);
        let h = self
            .registry
            .histogram(&metric, "Prefetcher gauge sampled during the run.");
        h.record(value);
        self.gauges.push((name, h));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_probe_is_disabled_at_compile_time() {
        const { assert!(!NoProbe::ENABLED) };
        const { assert!(EngineProbe::ENABLED) };
    }

    #[test]
    fn engine_probe_routes_stall_kinds() {
        let mut p = EngineProbe::new();
        p.fetch_stall(StallKind::DemandMiss, 20);
        p.fetch_stall(StallKind::DemandMiss, 20);
        p.fetch_stall(StallKind::LatePrefetch, 3);
        p.queue_depth(5);
        let snaps = p.registry().snapshot();
        let find = |name: &str| {
            snaps
                .iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("missing metric {name}"))
        };
        match &find("pif_engine_demand_stall_cycles").value {
            pif_obs::MetricValue::Histogram(h) => assert_eq!(h.count(), 2),
            other => panic!("unexpected {other:?}"),
        }
        match &find("pif_engine_late_prefetch_stall_cycles").value {
            pif_obs::MetricValue::Histogram(h) => {
                assert_eq!(h.count(), 1);
                assert_eq!(h.sum, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn prefetcher_gauges_register_lazily_and_reuse() {
        let mut p = EngineProbe::new();
        p.prefetcher_gauge("sab_active_streams", 4);
        p.prefetcher_gauge("sab_active_streams", 6);
        p.prefetcher_gauge("sab_window_regions", 1);
        let snaps = p.registry().snapshot();
        let names: Vec<_> = snaps.iter().map(|m| m.name.as_str()).collect();
        assert!(names.contains(&"pif_engine_sab_active_streams"));
        assert!(names.contains(&"pif_engine_sab_window_regions"));
        let active = snaps
            .iter()
            .find(|m| m.name == "pif_engine_sab_active_streams")
            .unwrap();
        match &active.value {
            pif_obs::MetricValue::Histogram(h) => {
                assert_eq!(h.count(), 2);
                assert_eq!(h.sum, 10);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
