//! Prefetcher plumbing: the [`Prefetcher`] trait implemented by PIF and
//! every baseline, the context through which prefetchers probe the cache
//! and enqueue requests, and the in-flight prefetch queue with latency.
//!
//! The request path is allocation-free: a [`PrefetchContext`] writes into
//! a caller-owned reusable buffer (the engine keeps one scratch `Vec` for
//! the whole run), and the crate-internal `PrefetchQueue::drain_ready`
//! hands ready blocks to a sink closure instead of materializing a `Vec`
//! per step.

use std::collections::VecDeque;

use pif_types::{BlockAddr, FetchAccess, RetiredInstr};

use crate::cache::{AccessOutcome, InstructionCache};
use crate::stats::PrefetchStats;

/// Context handed to prefetcher hooks: lets the prefetcher probe the L1-I
/// tags (non-perturbing, via the line buffer as in §4.3) and enqueue
/// prefetch requests.
///
/// Requests accumulate in a caller-owned buffer (cleared when the context
/// is created), so driving a hook performs no per-event heap allocation
/// once the buffer has grown to its steady-state capacity.
#[derive(Debug)]
pub struct PrefetchContext<'a> {
    icache: &'a InstructionCache,
    in_flight: &'a InFlightView,
    requests: &'a mut Vec<BlockAddr>,
    stats: &'a mut PrefetchStats,
}

/// Read-only view of in-flight prefetches, for dedup.
///
/// Block numbers are already well-mixed cache keys, so the set uses a
/// trivial multiplicative hasher instead of the DoS-resistant (but ~10×
/// slower) SipHash default — `contains` runs on every prefetch request
/// and every demand miss.
#[derive(Debug, Default)]
pub(crate) struct InFlightView {
    blocks: std::collections::HashSet<u64, BuildBlockHasher>,
}

/// Multiplicative (Fibonacci) hasher for block numbers.
#[derive(Debug, Default, Clone, Copy)]
struct BlockHasher(u64);

impl std::hash::Hasher for BlockHasher {
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type BuildBlockHasher = std::hash::BuildHasherDefault<BlockHasher>;

impl InFlightView {
    #[inline]
    pub(crate) fn contains(&self, block: BlockAddr) -> bool {
        self.blocks.contains(&block.number())
    }

    pub(crate) fn insert(&mut self, block: BlockAddr) {
        self.blocks.insert(block.number());
    }

    pub(crate) fn remove(&mut self, block: BlockAddr) {
        self.blocks.remove(&block.number());
    }
}

impl<'a> PrefetchContext<'a> {
    /// Creates a context writing requests into `requests`, which is
    /// cleared first (it holds exactly the requests issued through this
    /// context once the hook returns).
    pub(crate) fn new(
        icache: &'a InstructionCache,
        in_flight: &'a InFlightView,
        stats: &'a mut PrefetchStats,
        requests: &'a mut Vec<BlockAddr>,
    ) -> Self {
        requests.clear();
        PrefetchContext {
            icache,
            in_flight,
            requests,
            stats,
        }
    }

    /// Probes the L1-I for `block` without perturbing replacement state.
    #[inline]
    pub fn probe(&self, block: BlockAddr) -> bool {
        self.icache.probe(block)
    }

    /// True if `block` is resident *because a prefetch installed it* — the
    /// paper's fetch-stage "explicitly prefetched" tag (§4.2). Absent or
    /// demand-filled blocks report `false`.
    #[inline]
    pub fn was_prefetched(&self, block: BlockAddr) -> bool {
        matches!(
            self.icache.provenance(block),
            Some(
                crate::cache::LineProvenance::Prefetched
                    | crate::cache::LineProvenance::PrefetchedUsed
            )
        )
    }

    /// Enqueues a prefetch for `block`. The request is dropped (and
    /// accounted as such) if the block is already resident or in flight —
    /// matching the paper's probe-before-queue behaviour (§4.3).
    /// Returns `true` if the request was actually queued.
    #[inline]
    pub fn prefetch(&mut self, block: BlockAddr) -> bool {
        if self.icache.probe(block)
            || self.in_flight.contains(block)
            || self.requests.contains(&block)
        {
            self.stats.dropped_resident += 1;
            return false;
        }
        self.stats.issued += 1;
        self.requests.push(block);
        true
    }
}

/// An instruction prefetcher attached to the simulation engine.
///
/// The engine calls the hooks in pipeline order for each event:
/// `on_fetch` before the L1-I lookup, `on_access_outcome` after it, and
/// `on_retire` when the instruction drains from the (modeled) ROB. All
/// hooks default to no-ops so simple prefetchers implement only what they
/// observe.
pub trait Prefetcher {
    /// Short name for reports (e.g. `"PIF"`, `"Next-Line"`).
    fn name(&self) -> &'static str;

    /// Called for every front-end fetch access before the cache lookup.
    fn on_fetch(&mut self, access: &FetchAccess, block: BlockAddr, ctx: &mut PrefetchContext<'_>) {
        let _ = (access, block, ctx);
    }

    /// Called after the cache lookup with its outcome. Miss-triggered
    /// prefetchers (next-line on miss, TIFS) live here.
    fn on_access_outcome(
        &mut self,
        access: &FetchAccess,
        block: BlockAddr,
        outcome: AccessOutcome,
        ctx: &mut PrefetchContext<'_>,
    ) {
        let _ = (access, block, outcome, ctx);
    }

    /// Called when an instruction retires. `prefetched` is the paper's
    /// fetch-stage tag: whether the instruction's block was brought in by
    /// an explicit prefetch (§4.2 uses the *negation* to gate index-table
    /// insertion).
    fn on_retire(&mut self, instr: &RetiredInstr, prefetched: bool, ctx: &mut PrefetchContext<'_>) {
        let _ = (instr, prefetched, ctx);
    }

    /// Perfect-latency cache marker: when `true` the engine treats every
    /// demand access as a hit (Fig. 10's "Perfect" configuration).
    fn is_perfect(&self) -> bool {
        false
    }

    /// Whether this prefetcher reads the `prefetched` tag passed to
    /// [`Prefetcher::on_retire`]. Computing the tag costs a cache probe
    /// per retirement — the hottest lookup in the engine — so prefetchers
    /// with a no-op retire hook should return `false` to skip it. The tag
    /// is then passed as `false`; statistics are unaffected either way
    /// (the probe is non-perturbing).
    fn uses_retire_provenance(&self) -> bool {
        true
    }

    /// Reports instantaneous internal gauges (e.g. SAB residency) by
    /// calling `emit(name, value)` for each. Sampled periodically by the
    /// engine *only when an instrumentation probe is enabled* (see
    /// `pif_sim::probe`), so implementations may do modest read-only
    /// work but must not mutate prefetcher state — sampling frequency
    /// must never affect simulation results. `name` must be a static
    /// `[a-z0-9_]+` identifier; emitting the same name repeatedly
    /// records independent samples (e.g. one per stream buffer).
    fn gauges(&self, emit: &mut dyn FnMut(&'static str, u64)) {
        let _ = emit;
    }
}

impl<P: Prefetcher + ?Sized> Prefetcher for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn on_fetch(&mut self, access: &FetchAccess, block: BlockAddr, ctx: &mut PrefetchContext<'_>) {
        (**self).on_fetch(access, block, ctx)
    }

    fn on_access_outcome(
        &mut self,
        access: &FetchAccess,
        block: BlockAddr,
        outcome: AccessOutcome,
        ctx: &mut PrefetchContext<'_>,
    ) {
        (**self).on_access_outcome(access, block, outcome, ctx)
    }

    fn on_retire(&mut self, instr: &RetiredInstr, prefetched: bool, ctx: &mut PrefetchContext<'_>) {
        (**self).on_retire(instr, prefetched, ctx)
    }

    fn is_perfect(&self) -> bool {
        (**self).is_perfect()
    }

    fn uses_retire_provenance(&self) -> bool {
        (**self).uses_retire_provenance()
    }

    fn gauges(&self, emit: &mut dyn FnMut(&'static str, u64)) {
        (**self).gauges(emit)
    }
}

impl<P: Prefetcher + ?Sized> Prefetcher for &mut P {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn on_fetch(&mut self, access: &FetchAccess, block: BlockAddr, ctx: &mut PrefetchContext<'_>) {
        (**self).on_fetch(access, block, ctx)
    }

    fn on_access_outcome(
        &mut self,
        access: &FetchAccess,
        block: BlockAddr,
        outcome: AccessOutcome,
        ctx: &mut PrefetchContext<'_>,
    ) {
        (**self).on_access_outcome(access, block, outcome, ctx)
    }

    fn on_retire(&mut self, instr: &RetiredInstr, prefetched: bool, ctx: &mut PrefetchContext<'_>) {
        (**self).on_retire(instr, prefetched, ctx)
    }

    fn is_perfect(&self) -> bool {
        (**self).is_perfect()
    }

    fn uses_retire_provenance(&self) -> bool {
        (**self).uses_retire_provenance()
    }

    fn gauges(&self, emit: &mut dyn FnMut(&'static str, u64)) {
        (**self).gauges(emit)
    }
}

/// The null prefetcher: the paper's no-prefetch baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPrefetcher;

impl Prefetcher for NoPrefetcher {
    fn name(&self) -> &'static str {
        "None"
    }

    fn uses_retire_provenance(&self) -> bool {
        false
    }
}

/// A standalone harness for driving [`Prefetcher`] hooks outside the
/// engine — in unit tests and trace studies that need the real
/// probe/prefetch context without full simulation.
///
/// The harness owns the same reusable request buffer the engine uses, so
/// tests exercise the production (allocation-free) request path:
/// [`PrefetcherHarness::drive`] returns a borrow of that buffer, valid
/// until the next `drive` call.
///
/// # Example
///
/// ```
/// use pif_sim::{ICacheConfig, PrefetcherHarness};
/// use pif_types::BlockAddr;
///
/// let mut h = PrefetcherHarness::new(ICacheConfig::paper_default());
/// let requests = h.drive(|ctx| {
///     ctx.prefetch(BlockAddr::from_number(7));
/// });
/// assert_eq!(requests, [BlockAddr::from_number(7)]);
/// ```
#[derive(Debug)]
pub struct PrefetcherHarness {
    icache: crate::cache::InstructionCache,
    view: InFlightView,
    stats: PrefetchStats,
    requests: Vec<BlockAddr>,
}

impl PrefetcherHarness {
    /// Creates a harness with a fresh instruction cache.
    ///
    /// # Panics
    ///
    /// Panics if the cache geometry is invalid.
    pub fn new(config: crate::config::ICacheConfig) -> Self {
        PrefetcherHarness {
            icache: crate::cache::InstructionCache::new(config).expect("valid icache config"),
            view: InFlightView::default(),
            stats: PrefetchStats::default(),
            requests: Vec::new(),
        }
    }

    /// The harness's instruction cache (mutable, e.g. to pre-fill lines).
    pub fn icache_mut(&mut self) -> &mut crate::cache::InstructionCache {
        &mut self.icache
    }

    /// Runs `f` with a live [`PrefetchContext`] and returns the prefetch
    /// requests it issued (which are *not* installed into the cache —
    /// install them via [`PrefetcherHarness::icache_mut`] if desired).
    /// The returned slice borrows the harness's reusable buffer and is
    /// overwritten by the next `drive`.
    pub fn drive(&mut self, f: impl FnOnce(&mut PrefetchContext<'_>)) -> &[BlockAddr] {
        let mut ctx = PrefetchContext::new(
            &self.icache,
            &self.view,
            &mut self.stats,
            &mut self.requests,
        );
        f(&mut ctx);
        &self.requests
    }

    /// Prefetch statistics accumulated so far.
    pub fn stats(&self) -> &PrefetchStats {
        &self.stats
    }
}

/// An in-flight prefetch request.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InFlightPrefetch {
    pub block: BlockAddr,
    /// Engine cycle at which the fill completes.
    pub ready_at: u64,
}

/// Queue of issued-but-incomplete prefetches, drained by the engine as
/// simulated time advances.
#[derive(Debug, Default)]
pub(crate) struct PrefetchQueue {
    queue: VecDeque<InFlightPrefetch>,
    pub view: InFlightView,
}

impl PrefetchQueue {
    pub fn push(&mut self, block: BlockAddr, ready_at: u64) {
        self.view.insert(block);
        self.queue.push_back(InFlightPrefetch { block, ready_at });
    }

    /// Pops all requests ready at or before `now`, handing each block to
    /// `sink` in ready order (allocation-free).
    #[inline]
    pub fn drain_ready(&mut self, now: u64, mut sink: impl FnMut(BlockAddr)) {
        while let Some(front) = self.queue.front() {
            if front.ready_at > now {
                break;
            }
            let p = self.queue.pop_front().expect("front exists");
            self.view.remove(p.block);
            sink(p.block);
        }
    }

    /// If `block` is in flight, returns its completion time.
    pub fn ready_time(&self, block: BlockAddr) -> Option<u64> {
        if !self.view.contains(block) {
            return None;
        }
        self.queue
            .iter()
            .find(|p| p.block == block)
            .map(|p| p.ready_at)
    }

    /// Removes `block` from the queue (demand miss overtook the prefetch).
    pub fn cancel(&mut self, block: BlockAddr) {
        self.view.remove(block);
        self.queue.retain(|p| p.block != block);
    }

    pub fn len(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ICacheConfig;

    fn icache() -> InstructionCache {
        InstructionCache::new(ICacheConfig::paper_default()).unwrap()
    }

    fn b(n: u64) -> BlockAddr {
        BlockAddr::from_number(n)
    }

    #[test]
    fn context_dedups_resident_blocks() {
        let mut ic = icache();
        ic.demand_access(b(1));
        let fl = InFlightView::default();
        let mut stats = PrefetchStats::default();
        let mut buf = Vec::new();
        {
            let mut ctx = PrefetchContext::new(&ic, &fl, &mut stats, &mut buf);
            assert!(!ctx.prefetch(b(1)), "resident block must be dropped");
            assert!(ctx.prefetch(b(2)));
            assert!(!ctx.prefetch(b(2)), "duplicate request must be dropped");
        }
        assert_eq!(buf, vec![b(2)]);
        assert_eq!(stats.issued, 1);
        assert_eq!(stats.dropped_resident, 2);
    }

    #[test]
    fn context_clears_stale_requests_from_buffer() {
        let ic = icache();
        let fl = InFlightView::default();
        let mut stats = PrefetchStats::default();
        let mut buf = vec![b(99)]; // stale leftover from a previous hook
        {
            let mut ctx = PrefetchContext::new(&ic, &fl, &mut stats, &mut buf);
            assert!(ctx.prefetch(b(99)), "stale entries must not dedup requests");
        }
        assert_eq!(buf, vec![b(99)]);
    }

    #[test]
    fn context_dedups_in_flight_blocks() {
        let ic = icache();
        let mut fl = InFlightView::default();
        fl.insert(b(3));
        let mut stats = PrefetchStats::default();
        let mut buf = Vec::new();
        let mut ctx = PrefetchContext::new(&ic, &fl, &mut stats, &mut buf);
        assert!(!ctx.prefetch(b(3)));
        assert_eq!(stats.dropped_resident, 1);
    }

    fn drain_vec(q: &mut PrefetchQueue, now: u64) -> Vec<BlockAddr> {
        let mut out = Vec::new();
        q.drain_ready(now, |b| out.push(b));
        out
    }

    #[test]
    fn queue_drains_in_ready_order() {
        let mut q = PrefetchQueue::default();
        q.push(b(1), 10);
        q.push(b(2), 20);
        assert_eq!(drain_vec(&mut q, 5), vec![]);
        assert_eq!(drain_vec(&mut q, 15), vec![b(1)]);
        assert!(!q.view.contains(b(1)));
        assert!(q.view.contains(b(2)));
        assert_eq!(drain_vec(&mut q, 25), vec![b(2)]);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn queue_reports_ready_time_and_cancels() {
        let mut q = PrefetchQueue::default();
        q.push(b(7), 42);
        assert_eq!(q.ready_time(b(7)), Some(42));
        assert_eq!(q.ready_time(b(8)), None);
        q.cancel(b(7));
        assert_eq!(q.ready_time(b(7)), None);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn no_prefetcher_is_inert() {
        let p = NoPrefetcher;
        assert_eq!(p.name(), "None");
        assert!(!p.is_perfect());
    }

    #[test]
    fn harness_reuses_one_request_buffer() {
        let mut h = PrefetcherHarness::new(ICacheConfig::paper_default());
        let first = h.drive(|ctx| {
            ctx.prefetch(b(1));
            ctx.prefetch(b(2));
        });
        assert_eq!(first, [b(1), b(2)]);
        let cap = h.requests.capacity();
        // A second drive reuses the same backing storage.
        let second = h.drive(|ctx| {
            ctx.prefetch(b(3));
        });
        assert_eq!(second, [b(3)]);
        assert_eq!(h.requests.capacity(), cap);
    }
}
