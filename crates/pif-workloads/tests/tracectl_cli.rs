//! End-to-end tests of the `tracectl` binary: exit-code and printed-line
//! contracts a library unit test cannot see.
//!
//! Each test works in its own temp directory and spawns the compiled
//! binary via `CARGO_BIN_EXE_tracectl`.

use std::path::PathBuf;
use std::process::{Command, Output};

fn tracectl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tracectl"))
        .args(args)
        .output()
        .expect("tracectl spawns")
}

fn ok(args: &[&str]) -> String {
    let out = tracectl(args);
    assert!(
        out.status.success(),
        "tracectl {args:?} exited {:?}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr),
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tracectl-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn v1_info_chunks_says_no_index_and_exits_zero() {
    // `info --chunks` on a v1 file must not error out: v1 simply has no
    // random-access table, and the tool says so on a clear line.
    let dir = tmp_dir("v1-chunks");
    let trace = dir.join("t.pift");
    let trace = trace.to_str().unwrap();
    ok(&["record", "oltp-db2", trace, "-n", "400", "--v1"]);
    let stdout = ok(&["info", trace, "--chunks"]);
    assert!(stdout.contains("version:       1"), "{stdout}");
    assert!(
        stdout.contains("v1 files are unchunked; no random-access table"),
        "{stdout}"
    );
    // ...and no chunk-table header was printed after it.
    assert!(!stdout.contains("FIRST_REC"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_trace_info_and_head_exit_cleanly() {
    // A 0-record trace is a legal file (e.g. a recording truncated by
    // `-n 0`); inspection verbs must handle it without dividing by zero
    // or erroring.
    let dir = tmp_dir("empty");
    let trace = dir.join("empty.pift");
    let trace = trace.to_str().unwrap();
    ok(&["record", "oltp-db2", trace, "-n", "0"]);

    let stdout = ok(&["info", trace, "--chunks"]);
    assert!(stdout.contains("records:       0"), "{stdout}");
    assert!(stdout.contains("bytes/record:  0.00"), "{stdout}");

    let stdout = ok(&["head", trace]);
    assert!(stdout.contains("OLTP-DB2 (v2)"), "{stdout}");
    assert_eq!(stdout.lines().count(), 1, "no record lines: {stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn same_seed_record_elf_runs_are_byte_identical() {
    // The determinism contract `record-elf` advertises, checked at the
    // CLI boundary: same binary + same seed → identical files on disk.
    let dir = tmp_dir("diff");
    let elf = dir.join("demo.elf");
    let elf = elf.to_str().unwrap();
    ok(&["gen-elf", elf]);
    let a = dir.join("a.pift");
    let b = dir.join("b.pift");
    for out in [&a, &b] {
        ok(&[
            "record-elf",
            elf,
            out.to_str().unwrap(),
            "-n",
            "20000",
            "--seed",
            "7",
        ]);
    }
    let bytes_a = std::fs::read(&a).unwrap();
    assert!(!bytes_a.is_empty());
    assert_eq!(bytes_a, std::fs::read(&b).unwrap());
    let _ = std::fs::remove_dir_all(&dir);
}
