//! The six workload profiles of Table I, as parameterizations of the
//! synthetic generator.
//!
//! Each profile tunes the generator toward its class's published
//! behaviour:
//!
//! * **OLTP** (TPC-C on DB2/Oracle): multi-MB footprint, deep call chains,
//!   skewed transaction mix, moderate interrupts. Oracle gets more
//!   data-dependent branches and indirect dispatch — the paper observes
//!   its access stream loses ~10% coverage to wrong-path noise (Fig. 2).
//! * **DSS** (TPC-H Q2/Q17 on DB2): scan/join loops dominate; few
//!   transaction types (query plans); high repetitiveness; fewer
//!   interrupts per instruction.
//! * **Web** (SPECweb99 on Apache/Zeus): very large flat footprint of
//!   small handler functions, rich transaction mix, frequent network
//!   interrupts — the class whose *miss* stream fragments worst (>20%
//!   coverage loss, Fig. 2).

use serde::{Deserialize, Serialize};

use crate::executor::Executor;
use crate::params::GeneratorParams;
use crate::program::ProgramImage;
use crate::trace::Trace;

/// Workload class, as grouped in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Online transaction processing (TPC-C).
    Oltp,
    /// Decision support (TPC-H).
    Dss,
    /// Web serving (SPECweb99).
    Web,
}

impl std::fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadClass::Oltp => f.write_str("OLTP"),
            WorkloadClass::Dss => f.write_str("DSS"),
            WorkloadClass::Web => f.write_str("Web"),
        }
    }
}

/// A named, parameterized workload.
///
/// # Example
///
/// ```
/// use pif_workloads::{WorkloadClass, WorkloadProfile};
///
/// let apache = WorkloadProfile::web_apache();
/// assert_eq!(apache.class(), WorkloadClass::Web);
/// let trace = apache.scaled(0.05).generate(20_000);
/// assert_eq!(trace.len(), 20_000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    name: String,
    class: WorkloadClass,
    params: GeneratorParams,
}

impl WorkloadProfile {
    /// Creates a custom profile.
    pub fn new(name: impl Into<String>, class: WorkloadClass, params: GeneratorParams) -> Self {
        WorkloadProfile {
            name: name.into(),
            class,
            params,
        }
    }

    /// OLTP on IBM DB2 (TPC-C): Table I row 1.
    pub fn oltp_db2() -> Self {
        WorkloadProfile::new(
            "OLTP-DB2",
            WorkloadClass::Oltp,
            GeneratorParams {
                seed: 0x0db2_0001,
                num_functions: 5000,
                fn_min_instrs: 24,
                fn_max_instrs: 240,
                zipf_s: 0.60,
                call_density: 0.015,
                indirect_fraction: 0.05,
                max_call_depth: 4,
                skip_density: 0.030,
                skip_bias: 0.995,
                noisy_skip_fraction: 0.05,
                loop_density: 0.004,
                loop_trip_jitter: 0.08,
                indirect_alt_prob: 0.1,
                loop_mean_iters: 12.0,
                loop_max_body: 48,
                num_transaction_types: 12,
                transaction_length: 40,
                interrupt_mean_interval: 3_000,
                num_handlers: 6,
                handler_min_instrs: 32,
                handler_max_instrs: 160,
            },
        )
    }

    /// OLTP on Oracle (TPC-C): heavier data-dependent dispatch than DB2.
    pub fn oltp_oracle() -> Self {
        WorkloadProfile::new(
            "OLTP-Oracle",
            WorkloadClass::Oltp,
            GeneratorParams {
                seed: 0x04ac_1e00,
                num_functions: 5600,
                fn_min_instrs: 24,
                fn_max_instrs: 220,
                zipf_s: 0.55,
                call_density: 0.016,
                indirect_fraction: 0.11,
                max_call_depth: 4,
                skip_density: 0.034,
                skip_bias: 0.993,
                noisy_skip_fraction: 0.12,
                loop_density: 0.004,
                loop_trip_jitter: 0.1,
                indirect_alt_prob: 0.15,
                loop_mean_iters: 10.0,
                loop_max_body: 40,
                num_transaction_types: 14,
                transaction_length: 40,
                interrupt_mean_interval: 3_000,
                num_handlers: 6,
                handler_min_instrs: 32,
                handler_max_instrs: 160,
            },
        )
    }

    /// DSS TPC-H Query 2 on DB2: scan-dominated, highly repetitive.
    pub fn dss_qry2() -> Self {
        WorkloadProfile::new(
            "DSS-Qry2",
            WorkloadClass::Dss,
            GeneratorParams {
                seed: 0xd55_0002,
                num_functions: 2400,
                fn_min_instrs: 40,
                fn_max_instrs: 480,
                zipf_s: 0.70,
                call_density: 0.0070,
                indirect_fraction: 0.02,
                max_call_depth: 4,
                skip_density: 0.018,
                skip_bias: 0.997,
                noisy_skip_fraction: 0.02,
                loop_density: 0.006,
                loop_trip_jitter: 0.01,
                indirect_alt_prob: 0.04,
                loop_mean_iters: 14.0,
                loop_max_body: 64,
                num_transaction_types: 2,
                transaction_length: 300,
                interrupt_mean_interval: 8_000,
                num_handlers: 4,
                handler_min_instrs: 24,
                handler_max_instrs: 120,
            },
        )
    }

    /// DSS TPC-H Query 17 on DB2: join-heavy variant of Q2.
    pub fn dss_qry17() -> Self {
        WorkloadProfile::new(
            "DSS-Qry17",
            WorkloadClass::Dss,
            GeneratorParams {
                seed: 0xd55_0017,
                num_functions: 3200,
                fn_min_instrs: 32,
                fn_max_instrs: 360,
                zipf_s: 0.68,
                call_density: 0.010,
                indirect_fraction: 0.025,
                max_call_depth: 3,
                skip_density: 0.018,
                skip_bias: 0.996,
                noisy_skip_fraction: 0.03,
                loop_density: 0.006,
                loop_trip_jitter: 0.015,
                indirect_alt_prob: 0.05,
                loop_mean_iters: 10.0,
                loop_max_body: 56,
                num_transaction_types: 3,
                transaction_length: 250,
                interrupt_mean_interval: 8_000,
                num_handlers: 4,
                handler_min_instrs: 24,
                handler_max_instrs: 120,
            },
        )
    }

    /// Apache HTTP Server (SPECweb99): Table I row 3.
    pub fn web_apache() -> Self {
        WorkloadProfile::new(
            "Web-Apache",
            WorkloadClass::Web,
            GeneratorParams {
                seed: 0xa9ac_4e00,
                num_functions: 6500,
                fn_min_instrs: 16,
                fn_max_instrs: 200,
                zipf_s: 0.50,
                call_density: 0.018,
                indirect_fraction: 0.07,
                max_call_depth: 5,
                skip_density: 0.034,
                skip_bias: 0.994,
                noisy_skip_fraction: 0.06,
                loop_density: 0.003,
                loop_trip_jitter: 0.08,
                indirect_alt_prob: 0.1,
                loop_mean_iters: 8.0,
                loop_max_body: 32,
                num_transaction_types: 20,
                transaction_length: 36,
                interrupt_mean_interval: 1_500,
                num_handlers: 8,
                handler_min_instrs: 32,
                handler_max_instrs: 200,
            },
        )
    }

    /// Zeus Web Server (SPECweb99): event-driven variant of Apache.
    pub fn web_zeus() -> Self {
        WorkloadProfile::new(
            "Web-Zeus",
            WorkloadClass::Web,
            GeneratorParams {
                seed: 0x2e05_0001,
                num_functions: 6000,
                fn_min_instrs: 16,
                fn_max_instrs: 190,
                zipf_s: 0.52,
                call_density: 0.019,
                indirect_fraction: 0.08,
                max_call_depth: 5,
                skip_density: 0.032,
                skip_bias: 0.994,
                noisy_skip_fraction: 0.05,
                loop_density: 0.003,
                loop_trip_jitter: 0.07,
                indirect_alt_prob: 0.1,
                loop_mean_iters: 8.0,
                loop_max_body: 32,
                num_transaction_types: 18,
                transaction_length: 36,
                interrupt_mean_interval: 1_500,
                num_handlers: 8,
                handler_min_instrs: 32,
                handler_max_instrs: 200,
            },
        )
    }

    /// All six workloads in the order the paper's figures plot them.
    pub fn all() -> Vec<WorkloadProfile> {
        vec![
            Self::oltp_db2(),
            Self::oltp_oracle(),
            Self::dss_qry2(),
            Self::dss_qry17(),
            Self::web_apache(),
            Self::web_zeus(),
        ]
    }

    /// Workload name as shown in the paper's figures.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Workload class.
    pub fn class(&self) -> WorkloadClass {
        self.class
    }

    /// Generator parameters.
    pub fn params(&self) -> &GeneratorParams {
        &self.params
    }

    /// Returns a copy whose generator seed is offset by `offset` — the
    /// same binary and behaviour, a different execution (used for
    /// per-core trace variation in CMP runs and for confidence-interval
    /// replication).
    ///
    /// Note: the seed also feeds code layout, so different offsets model
    /// different server processes rather than threads of one image.
    #[must_use]
    pub fn with_seed_offset(&self, offset: u64) -> Self {
        let mut params = self.params.clone();
        params.seed = params.seed.wrapping_add(offset.wrapping_mul(0x9e37_79b9));
        WorkloadProfile {
            name: self.name.clone(),
            class: self.class,
            params,
        }
    }

    /// Returns a copy with the code footprint scaled by `factor` (see
    /// [`GeneratorParams::scaled`]); behaviour knobs are unchanged.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        WorkloadProfile {
            name: self.name.clone(),
            class: self.class,
            params: self.params.clone().scaled(factor),
        }
    }

    /// Generates a trace of exactly `instructions` records.
    ///
    /// # Panics
    ///
    /// Panics if the profile's parameters are invalid (the built-in
    /// profiles never are).
    pub fn generate(&self, instructions: usize) -> Trace {
        self.generate_with_execution_seed(instructions, 0)
    }

    /// Generates a trace from the *same code image* but a different
    /// execution interleaving — another thread of the same server binary
    /// (transaction mix, branch outcomes, and interrupt arrivals differ).
    ///
    /// # Panics
    ///
    /// Panics if the profile's parameters are invalid.
    pub fn generate_with_execution_seed(&self, instructions: usize, offset: u64) -> Trace {
        let image = ProgramImage::generate(&self.params).expect("profile parameters are valid");
        let instrs = Executor::with_execution_seed(&image, &self.params, offset).run(instructions);
        Trace::new(self.name.clone(), instrs)
    }

    /// Streams exactly `instructions` records into `sink` as they are
    /// generated, never materializing the trace — e.g. directly into a
    /// `pif_trace::TraceWriter`. Produces the identical record sequence
    /// to [`WorkloadProfile::generate`].
    ///
    /// # Panics
    ///
    /// Panics if the profile's parameters are invalid.
    pub fn generate_into(&self, instructions: usize, sink: impl FnMut(pif_types::RetiredInstr)) {
        self.generate_with_execution_seed_into(instructions, 0, sink);
    }

    /// As [`WorkloadProfile::generate_into`] with an execution-seed
    /// offset (see [`WorkloadProfile::generate_with_execution_seed`]).
    ///
    /// # Panics
    ///
    /// Panics if the profile's parameters are invalid.
    pub fn generate_with_execution_seed_into(
        &self,
        instructions: usize,
        offset: u64,
        sink: impl FnMut(pif_types::RetiredInstr),
    ) {
        let image = ProgramImage::generate(&self.params).expect("profile parameters are valid");
        Executor::with_execution_seed(&image, &self.params, offset).run_into(instructions, sink);
    }

    /// Returns a lazily-generating instruction iterator: generation runs
    /// on a background thread feeding a bounded channel, so memory stays
    /// flat no matter how long the trace is. Being an
    /// `Iterator<Item = RetiredInstr>`, the stream is a
    /// `pif_types::InstrSource` and plugs straight into
    /// `Engine::run_source` and per-core `run_cmp_sources` closures.
    pub fn stream(&self, instructions: usize) -> crate::stream::TraceStream {
        crate::stream::TraceStream::spawn(self.clone(), instructions, 0)
    }

    /// As [`WorkloadProfile::stream`] with an execution-seed offset.
    pub fn stream_with_execution_seed(
        &self,
        instructions: usize,
        offset: u64,
    ) -> crate::stream::TraceStream {
        crate::stream::TraceStream::spawn(self.clone(), instructions, offset)
    }

    /// Generates the program image alone (for structural studies).
    pub fn image(&self) -> ProgramImage {
        ProgramImage::generate(&self.params).expect("profile parameters are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pif_types::TrapLevel;

    #[test]
    fn all_profiles_validate_and_are_ordered() {
        let all = WorkloadProfile::all();
        assert_eq!(all.len(), 6);
        let names: Vec<&str> = all.iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            vec![
                "OLTP-DB2",
                "OLTP-Oracle",
                "DSS-Qry2",
                "DSS-Qry17",
                "Web-Apache",
                "Web-Zeus"
            ]
        );
        for w in &all {
            assert!(w.params().validate().is_ok(), "{} invalid", w.name());
        }
    }

    #[test]
    fn footprints_are_multi_megabyte() {
        for w in WorkloadProfile::all() {
            let bytes = w.params().approx_footprint_bytes();
            assert!(
                bytes > 1_000_000,
                "{} footprint {} too small",
                w.name(),
                bytes
            );
        }
    }

    #[test]
    fn classes_match_names() {
        assert_eq!(WorkloadProfile::oltp_db2().class(), WorkloadClass::Oltp);
        assert_eq!(WorkloadProfile::dss_qry17().class(), WorkloadClass::Dss);
        assert_eq!(WorkloadProfile::web_zeus().class(), WorkloadClass::Web);
        assert_eq!(WorkloadClass::Oltp.to_string(), "OLTP");
    }

    #[test]
    fn scaled_profile_generates_smaller_footprint() {
        let full = WorkloadProfile::oltp_db2();
        let small = full.scaled(0.1);
        assert!(small.params().num_functions < full.params().num_functions);
        let trace = small.generate(30_000);
        assert_eq!(trace.len(), 30_000);
    }

    #[test]
    fn generated_traces_have_interrupts_and_branches() {
        let trace = WorkloadProfile::web_apache().scaled(0.05).generate(60_000);
        let stats = trace.stats();
        assert!(stats.branches > 0);
        assert!(
            stats.tl1_instructions > 0,
            "web workload must see interrupts"
        );
        assert!(
            trace
                .instrs()
                .iter()
                .any(|i| i.trap_level == TrapLevel::Tl1),
            "TL1 records present"
        );
    }

    #[test]
    fn distinct_workloads_generate_distinct_traces() {
        let a = WorkloadProfile::oltp_db2().scaled(0.05).generate(5_000);
        let b = WorkloadProfile::oltp_oracle().scaled(0.05).generate(5_000);
        assert_ne!(a.instrs(), b.instrs());
    }
}
