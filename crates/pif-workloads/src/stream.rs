//! Lazily-generated instruction streams.
//!
//! [`TraceStream`] decouples trace generation from consumption: the
//! executor runs on a background thread pushing fixed-size batches into a
//! bounded channel, and the consumer pulls instructions one at a time.
//! Peak memory is a few batches regardless of trace length, which is what
//! lets a 16-core CMP run over hundreds of millions of instructions per
//! core stay CPU-bound instead of RAM-bound.

use std::sync::mpsc::{sync_channel, Receiver};

use pif_types::RetiredInstr;

use crate::profiles::WorkloadProfile;

/// Records per channel message; large enough to amortize channel
/// synchronization, small enough to keep memory bounded.
const BATCH: usize = 4096;

/// Bounded channel depth in batches; with [`BATCH`] this caps the
/// in-flight window at a few hundred kilobytes.
const CHANNEL_BATCHES: usize = 4;

/// A lazily-generated retire-order instruction stream.
///
/// Created by [`WorkloadProfile::stream`]. Yields exactly the instruction
/// sequence `generate` would collect, without ever holding more than a
/// few batches in memory. If the stream is dropped before exhaustion the
/// generator thread finishes its current trace in the background and
/// exits once its channel sends start failing.
///
/// # Example
///
/// ```
/// use pif_workloads::WorkloadProfile;
///
/// let profile = WorkloadProfile::oltp_db2().scaled(0.02);
/// let eager = profile.generate(20_000);
/// let lazy: Vec<_> = profile.stream(20_000).collect();
/// assert_eq!(eager.instrs(), lazy.as_slice());
/// ```
#[derive(Debug)]
pub struct TraceStream {
    rx: Receiver<Vec<RetiredInstr>>,
    current: std::vec::IntoIter<RetiredInstr>,
    remaining: usize,
}

impl TraceStream {
    pub(crate) fn spawn(profile: WorkloadProfile, instructions: usize, offset: u64) -> Self {
        let (tx, rx) = sync_channel::<Vec<RetiredInstr>>(CHANNEL_BATCHES);
        std::thread::Builder::new()
            .name(format!("pif-gen-{}", profile.name()))
            .spawn(move || {
                let mut batch = Vec::with_capacity(BATCH);
                let mut disconnected = false;
                profile.generate_with_execution_seed_into(instructions, offset, |instr| {
                    if disconnected {
                        return;
                    }
                    batch.push(instr);
                    if batch.len() == BATCH {
                        let full = std::mem::replace(&mut batch, Vec::with_capacity(BATCH));
                        disconnected = tx.send(full).is_err();
                    }
                });
                if !disconnected && !batch.is_empty() {
                    let _ = tx.send(batch);
                }
            })
            .expect("spawn trace generator thread");
        TraceStream {
            rx,
            current: Vec::new().into_iter(),
            remaining: instructions,
        }
    }
}

impl Iterator for TraceStream {
    type Item = RetiredInstr;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(instr) = self.current.next() {
                self.remaining -= 1;
                return Some(instr);
            }
            match self.rx.recv() {
                Ok(batch) => self.current = batch.into_iter(),
                // The generator produces exactly the requested length, so
                // a disconnect with records outstanding means the thread
                // panicked (e.g. invalid profile parameters). Surface
                // that as loudly as the eager path would, instead of
                // silently ending a short stream.
                Err(_) => {
                    assert!(
                        self.remaining == 0,
                        "trace generator thread died with {} instructions outstanding",
                        self.remaining
                    );
                    return None;
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // The executor produces exactly the requested length.
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for TraceStream {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_matches_generate() {
        let profile = WorkloadProfile::web_zeus().scaled(0.02);
        let eager = profile.generate(30_000);
        let lazy: Vec<_> = profile.stream(30_000).collect();
        assert_eq!(eager.instrs(), lazy.as_slice());
    }

    #[test]
    fn stream_respects_execution_seed() {
        let profile = WorkloadProfile::oltp_db2().scaled(0.02);
        let a: Vec<_> = profile.stream_with_execution_seed(5_000, 7).collect();
        let b = profile.generate_with_execution_seed(5_000, 7);
        assert_eq!(a.as_slice(), b.instrs());
        let c: Vec<_> = profile.stream(5_000).collect();
        assert_ne!(a, c, "different execution seeds diverge");
    }

    #[test]
    fn size_hint_counts_down_exactly() {
        let mut s = WorkloadProfile::dss_qry2().scaled(0.02).stream(10_000);
        assert_eq!(s.len(), 10_000);
        s.next().unwrap();
        assert_eq!(s.len(), 9_999);
        assert_eq!(s.count(), 9_999);
    }

    #[test]
    #[should_panic(expected = "trace generator thread died")]
    fn generator_panic_is_not_swallowed() {
        use crate::{GeneratorParams, WorkloadClass};
        // Zero functions is invalid: the eager path panics in
        // ProgramImage::generate; the streaming path must not turn that
        // into a silent empty iterator.
        let bad = WorkloadProfile::new(
            "bad",
            WorkloadClass::Oltp,
            GeneratorParams {
                num_functions: 0,
                ..GeneratorParams::default()
            },
        );
        let _ = bad.stream(1_000).count();
    }

    #[test]
    fn early_drop_does_not_hang() {
        let mut s = WorkloadProfile::oltp_db2().scaled(0.02).stream(500_000);
        let _ = s.next();
        drop(s); // generator thread must not block the test from exiting
    }
}
