//! Compact binary trace serialization (legacy v1 format).
//!
//! Traces are deterministic and cheap to regenerate, but saving them lets
//! experiment pipelines share one trace across many prefetcher runs and
//! lets users archive the exact inputs behind a result. This module owns
//! the legacy **v1** format, a simple little-endian record stream:
//!
//! ```text
//! magic  "PIFT"            4 bytes
//! version u32              currently 1
//! name    u32 length + UTF-8 bytes
//! count   u64              number of records
//! records ...              10 or 28 bytes each (non-branch / branch)
//! ```
//!
//! The streaming, chunked, compressed **v2** format — and streaming
//! decode of these v1 files — lives in the `pif-trace` crate, whose
//! [`TraceDecodeError`] this module shares. Prefer
//! `pif_trace::TraceWriter`/`TraceReader` for traces that should not be
//! materialized in memory; the `tracectl convert` subcommand upgrades v1
//! files in place.

use std::io::{self, Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

pub use pif_trace::{TraceDecodeError, TraceErrorKind};

use pif_types::{Address, BranchInfo, BranchKind, RetiredInstr, TrapLevel};

use crate::trace::Trace;

const MAGIC: &[u8; 4] = b"PIFT";
const VERSION: u32 = 1;

/// Minimum encoded size of one v1 record (non-branch).
const MIN_RECORD_BYTES: usize = 10;

fn kind_to_byte(kind: BranchKind) -> u8 {
    match kind {
        BranchKind::Conditional => 0,
        BranchKind::Direct => 1,
        BranchKind::Call => 2,
        BranchKind::IndirectCall => 3,
        BranchKind::Return => 4,
    }
}

fn kind_from_byte(b: u8) -> Result<BranchKind, TraceDecodeError> {
    Ok(match b {
        0 => BranchKind::Conditional,
        1 => BranchKind::Direct,
        2 => BranchKind::Call,
        3 => BranchKind::IndirectCall,
        4 => BranchKind::Return,
        _ => return Err(TraceDecodeError::Corrupt("unknown branch kind")),
    })
}

/// Serializes a trace into an in-memory buffer.
///
/// # Example
///
/// ```
/// use pif_workloads::{io::{decode_trace, encode_trace}, WorkloadProfile};
///
/// let trace = WorkloadProfile::oltp_db2().scaled(0.05).generate(5_000);
/// let bytes = encode_trace(&trace);
/// let back = decode_trace(&bytes).unwrap();
/// assert_eq!(trace, back);
/// ```
pub fn encode_trace(trace: &Trace) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + trace.name().len() + trace.len() * 16);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(trace.name().len() as u32);
    buf.put_slice(trace.name().as_bytes());
    buf.put_u64_le(trace.len() as u64);
    for instr in trace.instrs() {
        buf.put_u64_le(instr.pc.raw());
        buf.put_u8(instr.trap_level.index() as u8);
        match instr.branch {
            None => buf.put_u8(0),
            Some(info) => {
                buf.put_u8(1);
                buf.put_u8(kind_to_byte(info.kind));
                buf.put_u8(u8::from(info.taken));
                buf.put_u64_le(info.taken_target.raw());
                buf.put_u64_le(info.fall_through.raw());
            }
        }
    }
    buf.freeze()
}

/// Deserializes a trace previously produced by [`encode_trace`].
///
/// # Errors
///
/// Returns [`TraceDecodeError`] on bad magic, unsupported version, or a
/// truncated/corrupt payload.
pub fn decode_trace(mut data: &[u8]) -> Result<Trace, TraceDecodeError> {
    fn need(data: &[u8], n: usize) -> Result<(), TraceDecodeError> {
        if data.remaining() < n {
            return Err(TraceDecodeError::Corrupt("truncated"));
        }
        Ok(())
    }
    need(data, 8)?;
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(TraceDecodeError::BadMagic);
    }
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(TraceDecodeError::BadVersion(version));
    }
    need(data, 4)?;
    let name_len = data.get_u32_le() as usize;
    need(data, name_len)?;
    let mut name_bytes = vec![0u8; name_len];
    data.copy_to_slice(&mut name_bytes);
    let name = String::from_utf8(name_bytes)
        .map_err(|_| TraceDecodeError::Corrupt("name is not UTF-8"))?;
    need(data, 8)?;
    let count = data.get_u64_le() as usize;
    // Every record is at least 10 bytes, so a declared count the
    // remaining payload cannot possibly hold is corrupt on its face —
    // fail fast instead of looping toward a truncation error millions of
    // records later. This also bounds the allocation below by the input
    // size, making the defensive clamp a backstop rather than the only
    // line of defense.
    if count
        .checked_mul(MIN_RECORD_BYTES)
        .is_none_or(|needed| needed > data.remaining())
    {
        return Err(TraceDecodeError::Corrupt("record count exceeds payload"));
    }
    let mut instrs = Vec::with_capacity(count.min(1 << 24));
    for _ in 0..count {
        need(data, 10)?;
        let pc = Address::new(data.get_u64_le());
        let tl_byte = data.get_u8();
        if tl_byte as usize >= TrapLevel::COUNT {
            return Err(TraceDecodeError::Corrupt("invalid trap level"));
        }
        let trap_level = TrapLevel::from_index(tl_byte as usize);
        let has_branch = data.get_u8();
        let branch = match has_branch {
            0 => None,
            1 => {
                need(data, 18)?;
                let kind = kind_from_byte(data.get_u8())?;
                let taken = data.get_u8() != 0;
                let taken_target = Address::new(data.get_u64_le());
                let fall_through = Address::new(data.get_u64_le());
                Some(BranchInfo {
                    kind,
                    taken,
                    taken_target,
                    fall_through,
                })
            }
            _ => return Err(TraceDecodeError::Corrupt("invalid branch flag")),
        };
        instrs.push(RetiredInstr {
            pc,
            trap_level,
            branch,
        });
    }
    Ok(Trace::new(name, instrs))
}

/// Writes a trace to any [`Write`] sink (e.g. a file). A `&mut` reference
/// may be passed as the writer.
///
/// # Errors
///
/// Propagates I/O errors from the sink.
pub fn write_trace<W: Write>(mut writer: W, trace: &Trace) -> io::Result<()> {
    writer.write_all(&encode_trace(trace))
}

/// Reads a trace from any [`Read`] source. A `&mut` reference may be
/// passed as the reader.
///
/// # Errors
///
/// Returns [`TraceDecodeError`] on I/O failure or a malformed payload.
pub fn read_trace<R: Read>(mut reader: R) -> Result<Trace, TraceDecodeError> {
    let mut data = Vec::new();
    reader.read_to_end(&mut data)?;
    decode_trace(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadProfile;

    fn sample() -> Trace {
        WorkloadProfile::web_zeus().scaled(0.05).generate(3_000)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample();
        let bytes = encode_trace(&t);
        let back = decode_trace(&bytes).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn io_round_trip() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn rejects_bad_magic() {
        // TraceDecodeError compares structurally (shared with pif-trace),
        // so no `matches!` boilerplate.
        assert_eq!(
            decode_trace(b"NOPE\x01\x00\x00\x00").err(),
            Some(TraceDecodeError::BadMagic)
        );
    }

    #[test]
    fn rejects_bad_version() {
        let mut data = Vec::new();
        data.extend_from_slice(MAGIC);
        data.extend_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            decode_trace(&data).err(),
            Some(TraceDecodeError::BadVersion(99))
        );
    }

    #[test]
    fn absurd_record_count_fails_fast() {
        // A header declaring u64::MAX records over an empty payload must
        // be rejected before any decode loop or allocation.
        let t = Trace::new("x", vec![]);
        let mut bytes = encode_trace(&t).to_vec();
        let count_offset = bytes.len() - 8;
        bytes[count_offset..].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            decode_trace(&bytes).err(),
            Some(TraceDecodeError::Corrupt("record count exceeds payload"))
        );
        // Off-by-one: one declared record, zero payload bytes.
        bytes[count_offset..].copy_from_slice(&1u64.to_le_bytes());
        assert_eq!(
            decode_trace(&bytes).err(),
            Some(TraceDecodeError::Corrupt("record count exceeds payload"))
        );
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let bytes = encode_trace(&sample());
        // Chop the payload at several points: every prefix must fail
        // cleanly, never panic.
        for cut in [0, 3, 8, 11, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_trace(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn rejects_corrupt_trap_level() {
        let t = Trace::new(
            "x",
            vec![RetiredInstr::simple(Address::new(4), TrapLevel::Tl0)],
        );
        let mut bytes = encode_trace(&t).to_vec();
        // The trap-level byte of the first record sits after the header.
        let tl_offset = 4 + 4 + 4 + 1 + 8 + 8;
        bytes[tl_offset] = 9;
        assert!(decode_trace(&bytes).is_err());
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = Trace::new("empty", vec![]);
        assert_eq!(decode_trace(&encode_trace(&t)).unwrap(), t);
    }

    #[test]
    fn error_display_is_informative() {
        let e = TraceDecodeError::BadVersion(7);
        assert!(e.to_string().contains('7'));
        let e = TraceDecodeError::Corrupt("truncated");
        assert!(e.to_string().contains("truncated"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn instr_strategy() -> impl Strategy<Value = RetiredInstr> {
        (
            any::<u64>(),
            0usize..TrapLevel::COUNT,
            proptest::option::of((0u8..5, any::<bool>(), any::<u64>(), any::<u64>())),
        )
            .prop_map(|(pc, tl, branch)| RetiredInstr {
                pc: Address::new(pc),
                trap_level: TrapLevel::from_index(tl),
                branch: branch.map(|(k, taken, target, fall)| BranchInfo {
                    kind: kind_from_byte(k).unwrap(),
                    taken,
                    taken_target: Address::new(target),
                    fall_through: Address::new(fall),
                }),
            })
    }

    proptest! {
        #[test]
        fn arbitrary_traces_round_trip(
            name in "[a-zA-Z0-9_-]{0,24}",
            instrs in proptest::collection::vec(instr_strategy(), 0..200),
        ) {
            let t = Trace::new(name, instrs);
            let back = decode_trace(&encode_trace(&t)).unwrap();
            prop_assert_eq!(t, back);
        }

        #[test]
        fn random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode_trace(&data);
        }
    }
}
