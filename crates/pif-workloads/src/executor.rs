//! The trace executor: walks the program image transaction by transaction,
//! emitting the correct-path retire-order instruction stream — including
//! loop iterations, conditional skips, calls/returns, and spontaneous
//! trap-level-1 interrupt handler invocations.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use pif_types::{Address, BranchInfo, BranchKind, RetiredInstr, TrapLevel};

use crate::params::GeneratorParams;
use crate::program::{FunctionLayout, ProgramImage, Site};

/// Executes a [`ProgramImage`], producing a retire-order trace.
///
/// Execution is deterministic in the generator seed (a separate stream
/// from layout generation, so scaling the trace length never perturbs the
/// code image).
#[derive(Debug)]
pub struct Executor<'a> {
    program: &'a ProgramImage,
    params: &'a GeneratorParams,
    rng: SmallRng,
    /// Instructions until the next interrupt fires (0 = disabled).
    until_interrupt: u64,
}

impl<'a> Executor<'a> {
    /// Creates an executor for `program`.
    pub fn new(program: &'a ProgramImage, params: &'a GeneratorParams) -> Self {
        Self::with_execution_seed(program, params, 0)
    }

    /// Creates an executor whose *execution* randomness (transaction mix,
    /// data-dependent branches, interrupt arrivals) is offset by
    /// `offset`, while the code image stays identical — i.e. another
    /// thread/process of the same server binary. Used for multi-core runs
    /// sharing predictor storage.
    pub fn with_execution_seed(
        program: &'a ProgramImage,
        params: &'a GeneratorParams,
        offset: u64,
    ) -> Self {
        let mut rng = SmallRng::seed_from_u64(
            (params.seed ^ 0x9e37_79b9_7f4a_7c15).wrapping_add(offset.wrapping_mul(0x517c_c1b7)),
        );
        let until_interrupt = if params.interrupt_mean_interval > 0 {
            geometric(&mut rng, params.interrupt_mean_interval as f64)
        } else {
            0
        };
        Executor {
            program,
            params,
            rng,
            until_interrupt,
        }
    }

    /// Byte address of the dispatcher loop (the server's event loop, which
    /// indirect-calls each transaction root and loops).
    pub const DISPATCHER_PC: u64 = crate::program::APP_CODE_BASE - 0x1000;

    /// Runs transactions until exactly `instructions` records exist and
    /// collects them into a vector.
    ///
    /// Transactions are driven by a two-instruction dispatcher loop, so
    /// the emitted trace is fully control-flow coherent: every transfer is
    /// explained by a branch record.
    pub fn run(self, instructions: usize) -> Vec<RetiredInstr> {
        let mut out = Vec::with_capacity(instructions);
        self.run_into(instructions, |instr| out.push(instr));
        out
    }

    /// As [`Executor::run`], but pushes each record into `sink` as it is
    /// produced instead of materializing a vector — the streaming path
    /// behind `WorkloadProfile::generate_into` and `tracectl record`,
    /// whose memory use stays flat no matter how long the trace is. The
    /// record sequence is identical to [`Executor::run`]'s for the same
    /// seed and length.
    pub fn run_into<F: FnMut(RetiredInstr)>(self, instructions: usize, sink: F) {
        let mut walk = Walk {
            program: self.program,
            params: self.params,
            rng: self.rng,
            until_interrupt: self.until_interrupt,
            target: instructions,
            emitted: 0,
            sink,
        };
        walk.run();
    }
}

/// The executor's walking state, generic over the record sink so the hot
/// emission path is statically dispatched for both the vector and
/// streaming front doors.
struct Walk<'a, F: FnMut(RetiredInstr)> {
    program: &'a ProgramImage,
    params: &'a GeneratorParams,
    rng: SmallRng,
    sink: F,
    target: usize,
    emitted: usize,
    until_interrupt: u64,
}

impl<F: FnMut(RetiredInstr)> Walk<'_, F> {
    fn run(&mut self) {
        let d0 = Address::new(Executor::DISPATCHER_PC);
        let d1 = d0.offset(4);
        while !self.done() {
            let tx = self.program.sample_transaction(&mut self.rng);
            // Scripts are deterministic: the same transaction type always
            // calls the same roots in the same order — the repetition PIF
            // exploits.
            let script = &self.program.transactions()[tx];
            for &root in script {
                let entry = self.program.functions()[root].entry;
                // D0: indirect call to the transaction root.
                self.emit_branch(
                    d0,
                    TrapLevel::Tl0,
                    BranchInfo {
                        kind: BranchKind::IndirectCall,
                        taken: true,
                        taken_target: entry,
                        fall_through: d1,
                    },
                );
                if self.done() {
                    break;
                }
                self.exec_function(&self.program.functions()[root], TrapLevel::Tl0, 0, Some(d1));
                if self.done() {
                    break;
                }
                // D1: loop back to D0 for the next root.
                self.emit_branch(
                    d1,
                    TrapLevel::Tl0,
                    BranchInfo {
                        kind: BranchKind::Conditional,
                        taken: true,
                        taken_target: d0,
                        fall_through: d1.offset(4),
                    },
                );
            }
        }
    }

    fn done(&self) -> bool {
        self.emitted >= self.target
    }

    /// Forwards a record to the sink unless the target is already met
    /// (the vector path used to truncate the overshoot instead; dropping
    /// at the source is equivalent and works for streaming sinks).
    fn push(&mut self, instr: RetiredInstr) {
        if self.emitted < self.target {
            (self.sink)(instr);
            self.emitted += 1;
        }
    }

    fn emit_simple(&mut self, pc: Address, tl: TrapLevel) {
        self.push(RetiredInstr::simple(pc, tl));
        self.after_emit(tl);
    }

    fn emit_branch(&mut self, pc: Address, tl: TrapLevel, info: BranchInfo) {
        self.push(RetiredInstr::branch(pc, tl, info));
        self.after_emit(tl);
    }

    /// Interrupts fire between application instructions (never nested
    /// inside a handler).
    fn after_emit(&mut self, tl: TrapLevel) {
        if tl != TrapLevel::Tl0 || self.params.interrupt_mean_interval == 0 || self.done() {
            return;
        }
        if self.until_interrupt > 1 {
            self.until_interrupt -= 1;
            return;
        }
        self.until_interrupt = geometric(&mut self.rng, self.params.interrupt_mean_interval as f64);
        let handlers = self.program.handlers();
        if handlers.is_empty() {
            return;
        }
        let h = self.rng.gen_range(0..handlers.len());
        let handler = &handlers[h];
        self.exec_function(handler, TrapLevel::Tl1, 0, None);
    }

    /// Walks one function body. `return_to` is the caller's resume address
    /// (None for roots and handlers, whose return transfers are implicit
    /// trap/dispatch transitions).
    fn exec_function(
        &mut self,
        f: &FunctionLayout,
        tl: TrapLevel,
        depth: usize,
        return_to: Option<Address>,
    ) {
        let mut idx: u32 = 0;
        // Per-invocation loop trip counters: (site index, remaining).
        let mut loops: Vec<(u32, u64)> = Vec::new();
        while idx < f.instrs {
            if self.done() {
                return;
            }
            let pc = f.pc_at(idx);
            // Final slot: return (or plain end for roots/handlers).
            if idx == f.instrs - 1 {
                if let Some(ret) = return_to {
                    self.emit_branch(
                        pc,
                        tl,
                        BranchInfo {
                            kind: BranchKind::Return,
                            taken: true,
                            taken_target: ret,
                            fall_through: pc.offset(4),
                        },
                    );
                } else {
                    self.emit_simple(pc, tl);
                }
                return;
            }
            match f.sites.get(&idx) {
                None => {
                    self.emit_simple(pc, tl);
                    idx += 1;
                }
                Some(Site::Call { callees, indirect }) => {
                    // The layered call graph guarantees termination; the
                    // depth counter is a safety backstop only.
                    debug_assert!(depth < 64, "call depth runaway");
                    let callee_id = if *indirect {
                        // Data-dependent dispatch, skewed toward the first
                        // target (e.g. the common vtable entry).
                        if self.rng.gen_bool(1.0 - self.params.indirect_alt_prob) {
                            callees[0]
                        } else {
                            callees[self.rng.gen_range(0..callees.len())]
                        }
                    } else {
                        callees[0]
                    };
                    let callee = &self.program.functions()[callee_id];
                    let fall_through = pc.offset(4);
                    self.emit_branch(
                        pc,
                        tl,
                        BranchInfo {
                            kind: if *indirect {
                                BranchKind::IndirectCall
                            } else {
                                BranchKind::Call
                            },
                            taken: true,
                            taken_target: callee.entry,
                            fall_through,
                        },
                    );
                    self.exec_function(callee, tl, depth + 1, Some(fall_through));
                    idx += 1;
                }
                Some(Site::Skip { target, taken_prob }) => {
                    let taken = self.rng.gen_bool(*taken_prob);
                    self.emit_branch(
                        pc,
                        tl,
                        BranchInfo {
                            kind: BranchKind::Conditional,
                            taken,
                            taken_target: f.pc_at(*target),
                            fall_through: pc.offset(4),
                        },
                    );
                    idx = if taken { *target } else { idx + 1 };
                }
                Some(Site::LoopBack {
                    body_start,
                    base_trips,
                }) => {
                    let pos = match loops.iter().position(|(i, _)| *i == idx) {
                        Some(p) => p,
                        None => {
                            // Trip counts are mostly stable across
                            // invocations, with occasional data-dependent
                            // jitter (±1-2 iterations).
                            let trips = if self.rng.gen_bool(1.0 - self.params.loop_trip_jitter) {
                                *base_trips
                            } else {
                                let jitter = self.rng.gen_range(0..=4) as i64 - 2;
                                base_trips.saturating_add_signed(jitter).max(1)
                            };
                            loops.push((idx, trips));
                            loops.len() - 1
                        }
                    };
                    let remaining = &mut loops[pos].1;
                    let iterate = *remaining > 1;
                    if iterate {
                        *remaining -= 1;
                    } else {
                        loops.retain(|(i, _)| *i != idx);
                    }
                    self.emit_branch(
                        pc,
                        tl,
                        BranchInfo {
                            kind: BranchKind::Conditional,
                            taken: iterate,
                            taken_target: f.pc_at(*body_start),
                            fall_through: pc.offset(4),
                        },
                    );
                    idx = if iterate { *body_start } else { idx + 1 };
                }
            }
        }
    }
}

/// Geometric sample with the given mean (always >= 1).
fn geometric(rng: &mut SmallRng, mean: f64) -> u64 {
    if mean <= 1.0 {
        return 1;
    }
    let p = 1.0 / mean;
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    (1.0 + u.ln() / (1.0 - p).ln()).floor().max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::HANDLER_CODE_BASE;

    fn params() -> GeneratorParams {
        GeneratorParams {
            num_functions: 64,
            seed: 123,
            ..GeneratorParams::default()
        }
    }

    fn make_trace(p: &GeneratorParams, n: usize) -> Vec<RetiredInstr> {
        let img = ProgramImage::generate(p).unwrap();
        Executor::new(&img, p).run(n)
    }

    #[test]
    fn produces_exact_length() {
        let p = params();
        assert_eq!(make_trace(&p, 10_000).len(), 10_000);
        assert_eq!(make_trace(&p, 1).len(), 1);
    }

    #[test]
    fn run_into_matches_run_exactly() {
        let p = params();
        let img = ProgramImage::generate(&p).unwrap();
        let collected = Executor::new(&img, &p).run(30_000);
        let mut streamed = Vec::new();
        Executor::new(&img, &p).run_into(30_000, |i| streamed.push(i));
        assert_eq!(collected, streamed);
        assert_eq!(streamed.len(), 30_000);
    }

    #[test]
    fn execution_is_deterministic() {
        let p = params();
        assert_eq!(make_trace(&p, 20_000), make_trace(&p, 20_000));
    }

    #[test]
    fn prefix_stability_under_longer_runs() {
        // Generating a longer trace must not change the prefix: executor
        // RNG consumption is independent of the target length.
        let p = params();
        let short = make_trace(&p, 5_000);
        let long = make_trace(&p, 10_000);
        assert_eq!(short[..], long[..5_000]);
    }

    #[test]
    fn control_flow_is_coherent() {
        // Every branch's actual target must equal the next retired PC
        // (within the same trap level); non-branch instructions fall
        // through, except across trap-level transitions.
        let p = params();
        let trace = make_trace(&p, 50_000);
        let mut violations = 0;
        for w in trace.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if a.trap_level != b.trap_level {
                continue; // interrupt entry/exit: asynchronous transfer
            }
            match a.branch {
                Some(info) => {
                    if info.actual_target() != b.pc {
                        violations += 1;
                    }
                }
                None => {
                    if a.pc.offset(4) != b.pc {
                        violations += 1;
                    }
                }
            }
        }
        assert_eq!(violations, 0, "control-flow discontinuities in trace");
    }

    #[test]
    fn interrupts_appear_at_expected_rate() {
        let mut p = params();
        p.interrupt_mean_interval = 500;
        let trace = make_trace(&p, 100_000);
        let tl1 = trace
            .iter()
            .filter(|i| i.trap_level == TrapLevel::Tl1)
            .count();
        assert!(tl1 > 0, "interrupts must fire");
        // Handler bodies are 24-160 instrs arriving every ~500 app instrs:
        // expect roughly 5-25% TL1.
        let frac = tl1 as f64 / trace.len() as f64;
        assert!((0.02..0.5).contains(&frac), "TL1 fraction {frac}");
        // Handler PCs live in the handler region.
        for i in &trace {
            if i.trap_level == TrapLevel::Tl1 {
                assert!(i.pc.raw() >= HANDLER_CODE_BASE);
            }
        }
    }

    #[test]
    fn interrupts_disabled_yields_pure_tl0() {
        let mut p = params();
        p.interrupt_mean_interval = 0;
        let trace = make_trace(&p, 50_000);
        assert!(trace.iter().all(|i| i.trap_level == TrapLevel::Tl0));
    }

    #[test]
    fn branches_present_at_realistic_density() {
        let p = params();
        let trace = make_trace(&p, 100_000);
        let branches = trace.iter().filter(|i| i.is_branch()).count();
        let frac = branches as f64 / trace.len() as f64;
        assert!(
            (0.02..0.40).contains(&frac),
            "branch fraction {frac} out of server-code range"
        );
    }

    #[test]
    fn returns_match_calls() {
        let p = params();
        let trace = make_trace(&p, 100_000);
        let calls = trace
            .iter()
            .filter(|i| {
                matches!(
                    i.branch,
                    Some(BranchInfo {
                        kind: BranchKind::Call | BranchKind::IndirectCall,
                        ..
                    })
                )
            })
            .count();
        let returns = trace
            .iter()
            .filter(|i| {
                matches!(
                    i.branch,
                    Some(BranchInfo {
                        kind: BranchKind::Return,
                        ..
                    })
                )
            })
            .count();
        assert!(calls > 0 && returns > 0);
        // Returns can't exceed calls by more than truncation effects.
        let diff = (calls as i64 - returns as i64).unsigned_abs() as f64;
        let ratio = diff / calls as f64;
        assert!(ratio < 0.2, "calls {calls} vs returns {returns}");
    }

    #[test]
    fn footprint_exceeds_l1_capacity() {
        let p = GeneratorParams::default();
        let trace = make_trace(&p, 200_000);
        let mut blocks: Vec<u64> = trace.iter().map(|i| i.pc.block().number()).collect();
        blocks.sort_unstable();
        blocks.dedup();
        assert!(
            blocks.len() > 1024,
            "touched {} blocks; need > 64KB worth",
            blocks.len()
        );
    }

    #[test]
    fn geometric_mean_is_close() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| geometric(&mut rng, 6.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 6.0).abs() < 0.5, "geometric mean {mean}");
    }

    #[test]
    fn geometric_degenerate_mean_is_one() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(geometric(&mut rng, 1.0), 1);
        assert_eq!(geometric(&mut rng, 0.5), 1);
    }
}
