//! The first real-binary corpus: the repository's own release
//! binaries.
//!
//! ROADMAP item 2 calls for trace scenarios derived from actual
//! compiled code rather than the synthetic generators. The natural
//! first corpus is the code this repository already builds: `piflab`,
//! `tracectl`, and `perfbench` are megabyte-scale Rust release
//! binaries with real compiler/linker layout, deep call graphs, and
//! LLVM's block placement — exactly the properties the synthetic
//! profiles approximate. [`record_corpus`] records each one into a v2
//! trace via `pif-bintrace`'s CFG walker.
//!
//! Corpus traces are **host-toolchain-dependent**: two different rustc
//! versions lay code out differently, so corpus traces are reproducible
//! on one machine (same binary + same seed ⇒ byte-identical trace) but
//! are not golden-comparable across machines. CI gates goldens on the
//! hand-assembled `pif_bintrace::fixture` demo ELF instead, and uses
//! corpus traces only for self-consistency checks (thread-count
//! byte-equality, sampled-vs-exhaustive agreement).

use std::path::{Path, PathBuf};

use pif_bintrace::walk::WalkConfig;
use pif_trace::AtomicTraceWriter;

/// Names of the release binaries that make up the corpus.
pub const CORPUS_BINARIES: &[&str] = &["piflab", "tracectl", "perfbench"];

/// One recorded corpus trace.
#[derive(Debug, Clone)]
pub struct RecordedTrace {
    /// Corpus entry name (binary file stem).
    pub name: String,
    /// Path of the written `.pift` file.
    pub path: PathBuf,
    /// Records written.
    pub records: u64,
    /// Recovered CFG size, for reporting.
    pub blocks: usize,
    /// Total statically decoded instructions.
    pub static_insns: usize,
}

/// Returns the corpus binaries present under `bin_dir`
/// (`target/release` in a built checkout), with missing ones skipped.
pub fn find_binaries(bin_dir: impl AsRef<Path>) -> Vec<(String, PathBuf)> {
    CORPUS_BINARIES
        .iter()
        .map(|name| (name.to_string(), bin_dir.as_ref().join(name)))
        .filter(|(_, p)| p.is_file())
        .collect()
}

/// Records `instrs` instructions from the ELF binary at `binary` into
/// a v2 trace at `out`, using `pif-bintrace`'s seeded CFG walker.
///
/// The write is atomic (temp file + fsync + rename). Returns the
/// recorded stats.
pub fn record_elf_trace(
    binary: impl AsRef<Path>,
    out: impl AsRef<Path>,
    name: &str,
    instrs: usize,
    conf: WalkConfig,
) -> Result<RecordedTrace, pif_bintrace::BintraceError> {
    use pif_bintrace::BintraceError;
    let (cfg, walker) = pif_bintrace::walk_file(binary, conf)?;
    let out = out.as_ref();
    let mut writer = AtomicTraceWriter::create_default(out, name).map_err(BintraceError::Io)?;
    let mut io_err = None;
    for instr in walker.take(instrs) {
        if let Err(e) = writer.push(&instr) {
            io_err = Some(e);
            break;
        }
    }
    if let Some(e) = io_err {
        return Err(BintraceError::Io(e));
    }
    let records = writer.records_written();
    writer.finish().map_err(BintraceError::Io)?;
    Ok(RecordedTrace {
        name: name.to_string(),
        path: out.to_path_buf(),
        records,
        blocks: cfg.block_count(),
        static_insns: cfg.insn_count(),
    })
}

/// Records every corpus binary found under `bin_dir` into
/// `<out_dir>/<name>.pift`. Returns the recorded traces (possibly
/// empty when no binaries are built).
pub fn record_corpus(
    bin_dir: impl AsRef<Path>,
    out_dir: impl AsRef<Path>,
    instrs: usize,
    conf: WalkConfig,
) -> Result<Vec<RecordedTrace>, pif_bintrace::BintraceError> {
    let out_dir = out_dir.as_ref();
    std::fs::create_dir_all(out_dir).map_err(pif_bintrace::BintraceError::Io)?;
    let mut recorded = Vec::new();
    for (name, path) in find_binaries(bin_dir) {
        let out = out_dir.join(format!("{name}.pift"));
        recorded.push(record_elf_trace(&path, &out, &name, instrs, conf)?);
    }
    Ok(recorded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pif_bintrace::fixture;

    #[test]
    fn records_the_demo_elf_deterministically() {
        let dir = std::env::temp_dir().join(format!("pif-corpus-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let elf = dir.join("demo.elf");
        std::fs::write(&elf, fixture::demo_elf()).unwrap();

        let conf = WalkConfig::default().with_seed(42);
        let a = record_elf_trace(&elf, dir.join("a.pift"), "demo", 5_000, conf).unwrap();
        let b = record_elf_trace(&elf, dir.join("b.pift"), "demo", 5_000, conf).unwrap();
        assert_eq!(a.records, 5_000);
        assert_eq!(b.records, 5_000);
        assert_eq!(
            std::fs::read(dir.join("a.pift")).unwrap(),
            std::fs::read(dir.join("b.pift")).unwrap(),
            "same seed must be byte-identical"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_binaries_are_skipped() {
        let found = find_binaries("/nonexistent-dir");
        assert!(found.is_empty());
    }
}
