//! Synthetic server workloads for the Proactive Instruction Fetch
//! reproduction.
//!
//! The paper evaluates on commercial server stacks — IBM DB2 and Oracle
//! running TPC-C, DB2 running TPC-H queries 2 and 17, and Apache/Zeus
//! running SPECweb99 — traced under Solaris on a simulated SPARC CMP. None
//! of those traces are obtainable here, so this crate synthesizes
//! retire-order instruction traces with the *statistical properties that
//! drive every figure in the paper*:
//!
//! * **multi-megabyte instruction footprints** that dwarf a 64 KB L1-I;
//! * **deep, repetitive call graphs**: transactions execute long
//!   deterministic sequences of function calls (temporal streams thousands
//!   of blocks long, §5.3);
//! * **spatial locality within functions**: code is laid out contiguously,
//!   with conditional skips creating the discontinuities of Fig. 3;
//! * **data-dependent branches** that mispredict and (via `pif-sim`'s
//!   front end) inject wrong-path noise (§2.2);
//! * **hardware interrupt handlers** at trap level 1 arriving spontaneously
//!   and fragmenting the application stream (§2.3).
//!
//! Six [`WorkloadProfile`]s mirror the paper's workload classes: two OLTP
//! (DB2, Oracle), two DSS (TPC-H Q2, Q17), two Web (Apache, Zeus), each
//! with parameters tuned to the class's published behaviour.
//!
//! # Example
//!
//! ```
//! use pif_workloads::WorkloadProfile;
//!
//! // A laptop-scale slice of the OLTP-DB2 workload.
//! let trace = WorkloadProfile::oltp_db2().scaled(0.05).generate(100_000);
//! assert_eq!(trace.len(), 100_000);
//! let stats = trace.stats();
//! assert!(stats.footprint_blocks > 200, "multi-block footprint");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod corpus;
mod executor;
pub mod io;
mod params;
mod profiles;
mod program;
mod stream;
mod trace;

pub use executor::Executor;
pub use params::GeneratorParams;
pub use profiles::{WorkloadClass, WorkloadProfile};
pub use program::{CallGraphStats, FunctionLayout, ProgramImage, Site};
pub use stream::TraceStream;
pub use trace::{Trace, TraceStats};
