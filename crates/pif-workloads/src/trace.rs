//! Trace container and summary statistics.

use serde::{Deserialize, Serialize};

use pif_types::{RetiredInstr, TrapLevel};

/// A named retire-order instruction trace.
///
/// Implements `AsRef<[RetiredInstr]>`, so it plugs directly into
/// `pif_sim::Engine::run`.
///
/// # Example
///
/// ```
/// use pif_workloads::WorkloadProfile;
///
/// let trace = WorkloadProfile::dss_qry2().scaled(0.05).generate(10_000);
/// assert_eq!(trace.name(), "DSS-Qry2");
/// assert_eq!(trace.len(), 10_000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    name: String,
    instrs: Vec<RetiredInstr>,
}

impl Trace {
    /// Wraps a record vector as a named trace.
    pub fn new(name: impl Into<String>, instrs: Vec<RetiredInstr>) -> Self {
        Trace {
            name: name.into(),
            instrs,
        }
    }

    /// Workload name (e.g. `"OLTP-DB2"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The retired instructions.
    pub fn instrs(&self) -> &[RetiredInstr] {
        &self.instrs
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the trace contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Computes summary statistics (O(n), allocates a block set).
    pub fn stats(&self) -> TraceStats {
        let mut blocks: Vec<u64> = self.instrs.iter().map(|i| i.pc.block().number()).collect();
        blocks.sort_unstable();
        blocks.dedup();
        let branches = self.instrs.iter().filter(|i| i.is_branch()).count() as u64;
        let tl1 = self
            .instrs
            .iter()
            .filter(|i| i.trap_level == TrapLevel::Tl1)
            .count() as u64;
        TraceStats {
            instructions: self.instrs.len() as u64,
            branches,
            tl1_instructions: tl1,
            footprint_blocks: blocks.len() as u64,
        }
    }
}

impl AsRef<[RetiredInstr]> for Trace {
    fn as_ref(&self) -> &[RetiredInstr] {
        &self.instrs
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a RetiredInstr;
    type IntoIter = std::slice::Iter<'a, RetiredInstr>;

    fn into_iter(self) -> Self::IntoIter {
        self.instrs.iter()
    }
}

/// Summary statistics of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total retired instructions.
    pub instructions: u64,
    /// Retired branch instructions.
    pub branches: u64,
    /// Instructions retired at trap level 1 (interrupt handlers).
    pub tl1_instructions: u64,
    /// Distinct 64 B instruction blocks touched.
    pub footprint_blocks: u64,
}

impl TraceStats {
    /// Code footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint_blocks * pif_types::BLOCK_SIZE as u64
    }

    /// Fraction of instructions executed in interrupt handlers.
    pub fn tl1_fraction(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.tl1_instructions as f64 / self.instructions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pif_types::Address;

    #[test]
    fn stats_count_blocks_and_branches() {
        let instrs = vec![
            RetiredInstr::simple(Address::new(0), TrapLevel::Tl0),
            RetiredInstr::simple(Address::new(4), TrapLevel::Tl0),
            RetiredInstr::simple(Address::new(64), TrapLevel::Tl1),
        ];
        let t = Trace::new("test", instrs);
        let s = t.stats();
        assert_eq!(s.instructions, 3);
        assert_eq!(s.footprint_blocks, 2);
        assert_eq!(s.tl1_instructions, 1);
        assert!((s.tl1_fraction() - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.footprint_bytes(), 128);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new("empty", vec![]);
        assert!(t.is_empty());
        assert_eq!(t.stats().tl1_fraction(), 0.0);
    }

    #[test]
    fn as_ref_and_iter() {
        let instrs = vec![RetiredInstr::simple(Address::new(0), TrapLevel::Tl0)];
        let t = Trace::new("x", instrs.clone());
        assert_eq!(t.as_ref(), &instrs[..]);
        assert_eq!((&t).into_iter().count(), 1);
    }
}
