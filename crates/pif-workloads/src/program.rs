//! Synthetic program image: function layouts, control-flow sites, call
//! graph, and transaction scripts.

use std::collections::BTreeMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use pif_types::{Address, ConfigError};

use crate::params::GeneratorParams;

/// Base address of application code.
pub const APP_CODE_BASE: u64 = 0x0010_0000;
/// Base address of interrupt-handler code (a separate region, like kernel
/// trap vectors).
pub const HANDLER_CODE_BASE: u64 = 0x7000_0000;

/// A control-flow site within a function body, keyed by instruction index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Site {
    /// A call site. `callees` holds one function id for direct calls, or a
    /// small set of data-dependent targets for indirect calls.
    Call {
        /// Candidate callee function ids.
        callees: Vec<usize>,
        /// True if the callee is chosen dynamically (indirect call).
        indirect: bool,
    },
    /// A conditional forward branch skipping to `target` (an instruction
    /// index in the same function) with probability `taken_prob`.
    Skip {
        /// Destination instruction index (> site index).
        target: u32,
        /// Probability the skip is taken on a given execution.
        taken_prob: f64,
    },
    /// A loop back-edge: a conditional branch back to `body_start` taken
    /// until the trip count expires. Trip counts are mostly stable across
    /// invocations (`base_trips`, fixed at layout time, like a scan over a
    /// fixed-size structure) with occasional data-dependent jitter.
    LoopBack {
        /// Loop body start index (< site index).
        body_start: u32,
        /// Typical trip count for this site.
        base_trips: u64,
    },
}

/// The static layout of one function: entry address, body length, and its
/// control-flow sites.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionLayout {
    /// Function id (index into the image's function table).
    pub id: usize,
    /// Entry byte address.
    pub entry: Address,
    /// Body length in instructions (4 bytes each). The final instruction
    /// slot is reserved for the return.
    pub instrs: u32,
    /// Control-flow sites by instruction index. Indices `0` and
    /// `instrs - 1` never carry sites.
    pub sites: BTreeMap<u32, Site>,
}

impl FunctionLayout {
    /// Byte address of the instruction at `index`.
    pub fn pc_at(&self, index: u32) -> Address {
        self.entry.offset(u64::from(index) * 4)
    }

    /// Address of the first byte past the function.
    pub fn end(&self) -> Address {
        self.pc_at(self.instrs)
    }

    /// Code size in 64 B blocks (rounded up, entry-relative).
    pub fn size_blocks(&self) -> u64 {
        let start = self.entry.block().number();
        let last = self.pc_at(self.instrs.saturating_sub(1)).block().number();
        last - start + 1
    }
}

/// A complete synthetic binary: application functions, interrupt handlers,
/// the callee-popularity distribution, and transaction scripts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramImage {
    functions: Vec<FunctionLayout>,
    handlers: Vec<FunctionLayout>,
    /// Call-graph layer per function id.
    layer_of: Vec<usize>,
    /// Transaction scripts: deterministic sequences of root function ids.
    transactions: Vec<Vec<usize>>,
    /// Cumulative distribution over transaction types (Zipf-skewed).
    tx_cdf: Vec<f64>,
}

impl ProgramImage {
    /// Generates the program image described by `params`.
    ///
    /// Generation is deterministic in `params.seed`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the parameters fail validation.
    pub fn generate(params: &GeneratorParams) -> Result<Self, ConfigError> {
        params.validate()?;
        let mut rng = SmallRng::seed_from_u64(params.seed);

        // Popularity ranks: a random permutation so hot functions are
        // scattered across the address space (like a real linker map).
        let n = params.num_functions;
        let mut rank_of: Vec<usize> = (0..n).collect();
        shuffle(&mut rank_of, &mut rng);
        let zipf = ZipfCdf::new(n, params.zipf_s);

        // Layered call graph: calls only go to strictly deeper layers, so
        // the call graph is a DAG and every call site always executes —
        // the expansion of a function never depends on how it was reached.
        // Popular functions (shared utilities) live in deep layers;
        // unpopular ones (transaction roots, top-level logic) in shallow
        // layers. `rank_of[r]` is the id with popularity rank `r`.
        let layers = params.max_call_depth.max(2);
        let mut layer_of = vec![0usize; n];
        for (r, &id) in rank_of.iter().enumerate() {
            layer_of[id] = (n - 1 - r) * layers / n;
        }

        // Lay out application functions sequentially with small random
        // inter-function padding.
        let mut functions = Vec::with_capacity(n);
        let mut cursor = APP_CODE_BASE;
        for id in 0..n {
            let instrs = rng.gen_range(params.fn_min_instrs..=params.fn_max_instrs);
            let entry = Address::new(cursor);
            cursor += u64::from(instrs) * 4 + u64::from(rng.gen_range(0..8u32)) * 4;
            let sites = gen_sites(
                params, instrs, id, &rank_of, &layer_of, layers, &zipf, &mut rng,
            );
            functions.push(FunctionLayout {
                id,
                entry,
                instrs,
                sites,
            });
        }

        // Interrupt handlers: straight-line-ish code in a separate region.
        let mut handlers = Vec::with_capacity(params.num_handlers);
        let mut hcursor = HANDLER_CODE_BASE;
        for id in 0..params.num_handlers {
            let instrs = rng.gen_range(params.handler_min_instrs..=params.handler_max_instrs);
            let entry = Address::new(hcursor);
            hcursor += u64::from(instrs) * 4 + 64;
            // Handlers get at most one small loop and no calls.
            let mut sites = BTreeMap::new();
            if instrs > 16 && rng.gen_bool(0.5) {
                let end = rng.gen_range(8..instrs - 2);
                let start = end.saturating_sub(rng.gen_range(2..=6)).max(1);
                sites.insert(
                    end,
                    Site::LoopBack {
                        body_start: start,
                        base_trips: 3,
                    },
                );
            }
            handlers.push(FunctionLayout {
                id,
                entry,
                instrs,
                sites,
            });
        }

        // Transaction scripts: deterministic root sequences. Roots are
        // sampled uniformly — transaction entry points span the whole
        // binary (different modules), while *callees* follow the Zipf
        // popularity of shared utility code.
        let mut transactions = Vec::with_capacity(params.num_transaction_types);
        for _ in 0..params.num_transaction_types {
            let script: Vec<usize> = (0..params.transaction_length)
                .map(|_| rng.gen_range(0..n))
                .collect();
            transactions.push(script);
        }
        // Transaction-type popularity is itself Zipf-skewed (some queries /
        // pages dominate).
        let tx_zipf = ZipfCdf::new(params.num_transaction_types, 0.7);
        let tx_cdf = tx_zipf.cdf.clone();

        Ok(ProgramImage {
            functions,
            handlers,
            layer_of,
            transactions,
            tx_cdf,
        })
    }

    /// Application functions.
    pub fn functions(&self) -> &[FunctionLayout] {
        &self.functions
    }

    /// Interrupt handler routines.
    pub fn handlers(&self) -> &[FunctionLayout] {
        &self.handlers
    }

    /// Transaction scripts (sequences of root function ids).
    pub fn transactions(&self) -> &[Vec<usize>] {
        &self.transactions
    }

    /// Samples a transaction type according to the skewed popularity
    /// distribution.
    pub fn sample_transaction(&self, rng: &mut SmallRng) -> usize {
        sample_cdf(&self.tx_cdf, rng)
    }

    /// Call-graph layer of each function (calls go strictly deeper).
    pub fn layer_of(&self, id: usize) -> usize {
        self.layer_of[id]
    }

    /// Structural statistics of the call graph (for documentation and
    /// sanity checks of the generated binary).
    pub fn call_graph_stats(&self) -> CallGraphStats {
        let layers = self.layer_of.iter().copied().max().unwrap_or(0) + 1;
        let mut per_layer = vec![0usize; layers];
        for &l in &self.layer_of {
            per_layer[l] += 1;
        }
        let mut call_sites = 0usize;
        let mut indirect_sites = 0usize;
        let mut skip_sites = 0usize;
        let mut loop_sites = 0usize;
        for f in &self.functions {
            for site in f.sites.values() {
                match site {
                    Site::Call { indirect, .. } => {
                        call_sites += 1;
                        if *indirect {
                            indirect_sites += 1;
                        }
                    }
                    Site::Skip { .. } => skip_sites += 1,
                    Site::LoopBack { .. } => loop_sites += 1,
                }
            }
        }
        CallGraphStats {
            functions: self.functions.len(),
            layers,
            functions_per_layer: per_layer,
            call_sites,
            indirect_sites,
            skip_sites,
            loop_sites,
        }
    }

    /// Total application code footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.functions.iter().map(|f| u64::from(f.instrs) * 4).sum()
    }
}

/// Structural statistics of a generated program image.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallGraphStats {
    /// Number of application functions.
    pub functions: usize,
    /// Call-graph depth (layer count).
    pub layers: usize,
    /// Function count per layer (shallow roots first).
    pub functions_per_layer: Vec<usize>,
    /// Total call sites.
    pub call_sites: usize,
    /// Call sites with data-dependent targets.
    pub indirect_sites: usize,
    /// Conditional forward-skip sites.
    pub skip_sites: usize,
    /// Loop back-edge sites.
    pub loop_sites: usize,
}

/// Precomputed Zipf cumulative distribution over `n` ranks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ZipfCdf {
    cdf: Vec<f64>,
}

impl ZipfCdf {
    fn new(n: usize, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfCdf { cdf }
    }

    fn sample(&self, rng: &mut SmallRng) -> usize {
        sample_cdf(&self.cdf, rng)
    }
}

fn sample_cdf(cdf: &[f64], rng: &mut SmallRng) -> usize {
    let u: f64 = rng.gen();
    match cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
        Ok(i) => i,
        Err(i) => i.min(cdf.len() - 1),
    }
}

/// Geometric sample with the given mean (always >= 1), for layout-time
/// trip-count draws.
fn gen_geometric(rng: &mut SmallRng, mean: f64) -> u64 {
    if mean <= 1.0 {
        return 1;
    }
    let p = 1.0 / mean;
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    (1.0 + u.ln() / (1.0 - p).ln()).floor().max(1.0) as u64
}

fn shuffle<T>(v: &mut [T], rng: &mut SmallRng) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
}

/// Generates control-flow sites for one function body.
#[allow(clippy::too_many_arguments)]
fn gen_sites(
    params: &GeneratorParams,
    instrs: u32,
    self_id: usize,
    rank_of: &[usize],
    layer_of: &[usize],
    layers: usize,
    zipf: &ZipfCdf,
    rng: &mut SmallRng,
) -> BTreeMap<u32, Site> {
    let mut sites = BTreeMap::new();
    if instrs < 8 {
        return sites;
    }
    let mut idx = 2u32;
    // Loops must not nest or overlap: a back-edge whose body contains
    // another back-edge would multiply trip counts combinatorially.
    let mut loop_frontier = 1u32;
    // Reserve the last slot for the return and one before it for slack.
    while idx < instrs - 2 {
        let r: f64 = rng.gen();
        let self_layer = layer_of[self_id];
        if r < params.call_density && self_layer + 1 < layers {
            // Callees must live in strictly deeper layers; Zipf sampling
            // with rejection (popular utilities are deep, so rejection is
            // rare).
            let pick = |rng: &mut SmallRng| -> Option<usize> {
                for _ in 0..48 {
                    let callee = rank_of[zipf.sample(rng)];
                    if layer_of[callee] > self_layer && callee != self_id {
                        return Some(callee);
                    }
                }
                None
            };
            let indirect = rng.gen_bool(params.indirect_fraction);
            let count = if indirect { rng.gen_range(2..=4) } else { 1 };
            let mut callees = Vec::new();
            for _ in 0..count {
                if let Some(c) = pick(rng) {
                    callees.push(c);
                }
            }
            if !callees.is_empty() {
                sites.insert(idx, Site::Call { callees, indirect });
            }
            idx += rng.gen_range(2u32..8);
        } else if r < params.call_density + params.skip_density {
            let max_jump = (instrs - 2 - idx).min(24);
            if max_jump >= 2 {
                let noisy = rng.gen_bool(params.noisy_skip_fraction);
                // Data-dependent (noisy) skips jump short distances —
                // they defeat the branch predictor (wrong-path noise,
                // §2.2) while barely perturbing the block-level stream,
                // mirroring real data-dependent branches whose arms share
                // cache blocks. Stable skips may jump further.
                let target = if noisy {
                    idx + rng.gen_range(2..=max_jump.min(6))
                } else {
                    idx + rng.gen_range(2..=max_jump)
                };
                let taken_prob = if noisy {
                    rng.gen_range(0.35..0.65)
                } else if rng.gen_bool(0.5) {
                    // Error-handling skip: essentially never taken.
                    0.002
                } else {
                    params.skip_bias
                };
                sites.insert(idx, Site::Skip { target, taken_prob });
                // No further sites inside the skipped gap: a call subtree
                // hidden behind a rarely-flipping branch would otherwise
                // inject huge cold bursts on the rare path, which real
                // error paths (straight-line cleanup code) do not.
                idx = target + 1;
            } else {
                idx += 1;
            }
        } else if r < params.call_density + params.skip_density + params.loop_density {
            let max_body = params.loop_max_body.min(idx.saturating_sub(loop_frontier));
            if max_body >= 2 {
                let body = rng.gen_range(2..=max_body);
                // Per-site stable trip count drawn once at layout time
                // (real inner loops scan fixed-size structures); capped to
                // keep trace progress bounded.
                let base = gen_geometric(rng, params.loop_mean_iters)
                    .min(params.loop_mean_iters as u64 * 4)
                    .max(2);
                sites.insert(
                    idx,
                    Site::LoopBack {
                        body_start: idx - body,
                        base_trips: base,
                    },
                );
                loop_frontier = idx + 1;
                idx += 2;
            } else {
                idx += 1;
            }
        } else {
            idx += 1;
        }
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> GeneratorParams {
        GeneratorParams {
            num_functions: 64,
            seed: 42,
            ..GeneratorParams::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = small_params();
        let a = ProgramImage::generate(&p).unwrap();
        let b = ProgramImage::generate(&p).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = ProgramImage::generate(&small_params()).unwrap();
        let b = ProgramImage::generate(&GeneratorParams {
            seed: 43,
            ..small_params()
        })
        .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn functions_do_not_overlap() {
        let img = ProgramImage::generate(&small_params()).unwrap();
        for w in img.functions().windows(2) {
            assert!(
                w[0].end().raw() <= w[1].entry.raw(),
                "function {} overlaps {}",
                w[0].id,
                w[1].id
            );
        }
    }

    #[test]
    fn handlers_live_in_separate_region() {
        let img = ProgramImage::generate(&small_params()).unwrap();
        for h in img.handlers() {
            assert!(h.entry.raw() >= HANDLER_CODE_BASE);
        }
        for f in img.functions() {
            assert!(f.entry.raw() < HANDLER_CODE_BASE);
        }
    }

    #[test]
    fn sites_respect_body_bounds() {
        let img = ProgramImage::generate(&small_params()).unwrap();
        for f in img.functions() {
            for (&idx, site) in &f.sites {
                assert!(idx > 0 && idx < f.instrs - 1, "site at body edge");
                match site {
                    Site::Skip { target, taken_prob } => {
                        assert!(*target > idx && *target < f.instrs);
                        assert!((0.0..=1.0).contains(taken_prob));
                    }
                    Site::LoopBack { body_start, .. } => {
                        assert!(*body_start < idx && *body_start >= 1);
                    }
                    Site::Call { callees, indirect } => {
                        assert!(!callees.is_empty());
                        if !indirect {
                            assert_eq!(callees.len(), 1);
                        }
                        for &c in callees {
                            assert!(c < img.functions().len());
                            assert_ne!(c, f.id, "self-recursion not generated");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn footprint_tracks_parameters() {
        let img = ProgramImage::generate(&small_params()).unwrap();
        let approx = small_params().approx_footprint_bytes();
        let actual = img.footprint_bytes();
        assert!(
            (actual as f64 / approx as f64 - 1.0).abs() < 0.3,
            "approx {approx} vs actual {actual}"
        );
    }

    #[test]
    fn transaction_scripts_reference_valid_functions() {
        let img = ProgramImage::generate(&small_params()).unwrap();
        assert!(!img.transactions().is_empty());
        for script in img.transactions() {
            assert!(!script.is_empty());
            for &f in script {
                assert!(f < img.functions().len());
            }
        }
    }

    #[test]
    fn transaction_sampling_is_skewed() {
        let img = ProgramImage::generate(&small_params()).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = vec![0usize; img.transactions().len()];
        for _ in 0..10_000 {
            counts[img.sample_transaction(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[counts.len() - 1],
            "Zipf skew: type 0 should dominate"
        );
    }

    #[test]
    fn zipf_cdf_is_normalized_and_monotone() {
        let z = ZipfCdf::new(100, 0.9);
        assert!((z.cdf.last().unwrap() - 1.0).abs() < 1e-9);
        for w in z.cdf.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn call_graph_is_a_layered_dag() {
        let img = ProgramImage::generate(&small_params()).unwrap();
        let stats = img.call_graph_stats();
        assert!(stats.layers >= 2);
        assert_eq!(
            stats.functions_per_layer.iter().sum::<usize>(),
            stats.functions
        );
        assert!(stats.indirect_sites <= stats.call_sites);
        // Every call goes to a strictly deeper layer: the DAG property the
        // executor's termination relies on.
        for f in img.functions() {
            for site in f.sites.values() {
                if let Site::Call { callees, .. } = site {
                    for &c in callees {
                        assert!(
                            img.layer_of(c) > img.layer_of(f.id),
                            "call from layer {} to layer {}",
                            img.layer_of(f.id),
                            img.layer_of(c)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn loops_do_not_nest() {
        let img = ProgramImage::generate(&small_params()).unwrap();
        for f in img.functions() {
            let mut loop_spans: Vec<(u32, u32)> = Vec::new();
            for (&idx, site) in &f.sites {
                if let Site::LoopBack { body_start, .. } = site {
                    loop_spans.push((*body_start, idx));
                }
            }
            for w in loop_spans.windows(2) {
                assert!(
                    w[1].0 > w[0].1,
                    "{}: loop [{},{}] overlaps [{},{}]",
                    f.id,
                    w[1].0,
                    w[1].1,
                    w[0].0,
                    w[0].1
                );
            }
        }
    }

    #[test]
    fn function_layout_geometry_helpers() {
        let f = FunctionLayout {
            id: 0,
            entry: Address::new(0x1000),
            instrs: 32,
            sites: BTreeMap::new(),
        };
        assert_eq!(f.pc_at(0), Address::new(0x1000));
        assert_eq!(f.pc_at(16), Address::new(0x1040));
        assert_eq!(f.end(), Address::new(0x1080));
        assert_eq!(f.size_blocks(), 2);
    }
}
