//! Generator parameters: the statistical knobs behind a workload profile.

use serde::{Deserialize, Serialize};

use pif_types::ConfigError;

/// Parameters for synthesizing a server-workload instruction trace.
///
/// The defaults describe a generic mid-sized server workload; the
/// [`crate::WorkloadProfile`]s override them per workload class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorParams {
    /// Deterministic seed: the same parameters always yield the same trace.
    pub seed: u64,

    // --- Code image -----------------------------------------------------
    /// Number of application functions in the binary.
    pub num_functions: usize,
    /// Minimum function body size in instructions.
    pub fn_min_instrs: u32,
    /// Maximum function body size in instructions.
    pub fn_max_instrs: u32,
    /// Zipf skew for callee popularity (higher = hotter hot set).
    pub zipf_s: f64,

    // --- Control flow ---------------------------------------------------
    /// Probability per instruction slot of a call site.
    pub call_density: f64,
    /// Fraction of call sites that are indirect (data-dependent callee).
    pub indirect_fraction: f64,
    /// Maximum dynamic call depth.
    pub max_call_depth: usize,
    /// Probability per instruction slot of a conditional forward skip.
    pub skip_density: f64,
    /// Probability that a conditional skip is taken on a given execution
    /// (the *bias*; rare-path probability is `1 - skip_bias` when biased
    /// toward taken).
    pub skip_bias: f64,
    /// Fraction of skips that are *data-dependent* (outcome near 50/50,
    /// defeating the branch predictor — the paper's §2.2 noise source).
    pub noisy_skip_fraction: f64,
    /// Probability per instruction slot of a loop back-edge.
    pub loop_density: f64,
    /// Probability that a loop invocation's trip count deviates from the
    /// site's stable base count (data-dependent scans).
    pub loop_trip_jitter: f64,
    /// Probability that an indirect call takes an alternate (non-primary)
    /// target on a given execution.
    pub indirect_alt_prob: f64,
    /// Mean loop trip count (geometric distribution).
    pub loop_mean_iters: f64,
    /// Maximum loop body length in instructions.
    pub loop_max_body: u32,

    // --- Transactions ---------------------------------------------------
    /// Number of distinct transaction types (deterministic call scripts).
    pub num_transaction_types: usize,
    /// Root function calls per transaction script.
    pub transaction_length: usize,

    // --- Interrupts (trap level 1) ---------------------------------------
    /// Mean instructions between spontaneous hardware interrupts
    /// (0 disables interrupts).
    pub interrupt_mean_interval: u64,
    /// Number of distinct interrupt handler routines.
    pub num_handlers: usize,
    /// Handler body size range in instructions.
    pub handler_min_instrs: u32,
    /// Maximum handler body size.
    pub handler_max_instrs: u32,
}

impl Default for GeneratorParams {
    fn default() -> Self {
        GeneratorParams {
            seed: 0xc0ffee,
            num_functions: 1200,
            fn_min_instrs: 24,
            fn_max_instrs: 640,
            zipf_s: 0.9,
            call_density: 0.02,
            indirect_fraction: 0.08,
            max_call_depth: 8,
            skip_density: 0.03,
            skip_bias: 0.9,
            noisy_skip_fraction: 0.08,
            loop_density: 0.008,
            loop_trip_jitter: 0.10,
            indirect_alt_prob: 0.10,
            loop_mean_iters: 6.0,
            loop_max_body: 48,
            num_transaction_types: 8,
            transaction_length: 24,
            interrupt_mean_interval: 4_000,
            num_handlers: 6,
            handler_min_instrs: 24,
            handler_max_instrs: 160,
        }
    }
}

impl GeneratorParams {
    /// Approximate code footprint in bytes (4-byte instructions).
    pub fn approx_footprint_bytes(&self) -> u64 {
        let avg = u64::from(self.fn_min_instrs + self.fn_max_instrs) / 2;
        self.num_functions as u64 * avg * 4
    }

    /// Scales the footprint (function count) by `factor`, keeping all
    /// behavioural knobs. Used to produce laptop-scale test traces with
    /// the same character as the full profile.
    #[must_use]
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        self.num_functions = ((self.num_functions as f64 * factor) as usize).max(16);
        self.num_transaction_types = self.num_transaction_types.clamp(1, self.num_functions);
        self
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any parameter is out of range.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_functions == 0 {
            return Err(ConfigError::new("num_functions must be non-zero"));
        }
        if self.fn_min_instrs == 0 || self.fn_min_instrs > self.fn_max_instrs {
            return Err(ConfigError::new("invalid function size range"));
        }
        for (name, p) in [
            ("call_density", self.call_density),
            ("indirect_fraction", self.indirect_fraction),
            ("skip_density", self.skip_density),
            ("skip_bias", self.skip_bias),
            ("noisy_skip_fraction", self.noisy_skip_fraction),
            ("loop_density", self.loop_density),
            ("loop_trip_jitter", self.loop_trip_jitter),
            ("indirect_alt_prob", self.indirect_alt_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(ConfigError::new(format!(
                    "{name} must be in [0,1], got {p}"
                )));
            }
        }
        if self.num_transaction_types == 0 || self.transaction_length == 0 {
            return Err(ConfigError::new("transactions must be non-empty"));
        }
        if self.loop_mean_iters < 1.0 {
            return Err(ConfigError::new("loop_mean_iters must be >= 1"));
        }
        if self.num_handlers == 0 && self.interrupt_mean_interval > 0 {
            return Err(ConfigError::new("interrupts enabled but no handlers"));
        }
        if self.handler_min_instrs == 0 || self.handler_min_instrs > self.handler_max_instrs {
            return Err(ConfigError::new("invalid handler size range"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(GeneratorParams::default().validate().is_ok());
    }

    #[test]
    fn footprint_is_multi_megabyte_by_default() {
        let p = GeneratorParams::default();
        assert!(p.approx_footprint_bytes() > 1024 * 1024);
    }

    #[test]
    fn scaled_shrinks_function_count() {
        let p = GeneratorParams::default().scaled(0.1);
        assert_eq!(p.num_functions, 120);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn scaled_never_underflows() {
        let p = GeneratorParams::default().scaled(0.000_001);
        assert!(p.num_functions >= 16);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn invalid_ranges_rejected() {
        let p = GeneratorParams {
            skip_bias: 1.5,
            ..Default::default()
        };
        assert!(p.validate().is_err());

        let p = GeneratorParams {
            fn_min_instrs: 100,
            fn_max_instrs: 10,
            ..Default::default()
        };
        assert!(p.validate().is_err());

        let p = GeneratorParams {
            num_functions: 0,
            ..Default::default()
        };
        assert!(p.validate().is_err());

        let p = GeneratorParams {
            loop_mean_iters: 0.5,
            ..Default::default()
        };
        assert!(p.validate().is_err());
    }
}
