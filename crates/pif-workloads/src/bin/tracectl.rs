//! `tracectl` — record, inspect, convert, and preview PIF trace files.
//!
//! ```text
//! tracectl record <workload> <out.pift> [-n N] [--scale F] [--seed-offset K] [--chunk N] [--v1]
//! tracectl record-elf <binary> <out.pift> [-n N] [--seed S] [--interrupts MEAN]
//! tracectl record-corpus <bin-dir> <out-dir> [-n N] [--seed S]
//! tracectl gen-elf <out>
//! tracectl info <file.pift> [--chunks]
//! tracectl convert <in.pift> <out.pift> [--chunk N]
//! tracectl head <file.pift> [-n N]
//! tracectl hash <file.pift>
//! ```
//!
//! `record-elf` loads a real ELF64 x86-64 binary, recovers its CFG with
//! `pif-bintrace`, and records a seeded walk over the *actual compiled
//! code layout* as a v2 trace; same binary + same seed is byte-identical.
//! `record-corpus` does that for every repo release binary found under
//! `<bin-dir>` (see `pif_workloads::corpus`), and `gen-elf` writes the
//! deterministic hand-assembled demo ELF that CI goldens are gated on.
//!
//! `record` streams a synthetic workload straight into a compressed v2
//! trace (bounded memory, any length); `--v1` writes the legacy format
//! instead (materializes the trace — for fixtures and compatibility
//! testing). Both `record` and `convert` write through a temp file that
//! is fsynced and atomically renamed over the destination, so a killed
//! run leaves either no output file or a fully valid trace — never a
//! torn one. `info` reads only headers and chunk frames; `--chunks`
//! additionally prints the per-chunk random-access table (the index
//! sampled simulation seeks with). `convert` upgrades v1 files to v2 (or
//! re-chunks v2 files) as a stream. `head` prints the first records. `hash`
//! prints the container-independent content hash (`pif-trace`'s FNV-1a 64
//! canonical record digest) — the trace half of `pif-lab`'s result-cache
//! key; a v1 file and its v2 conversion print the same digest.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use pif_trace::{scan_info, AtomicTraceWriter, TraceReader, DEFAULT_CHUNK_RECORDS};
use pif_workloads::{io::write_trace, WorkloadProfile};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         tracectl record <workload> <out.pift> [-n N] [--scale F] [--seed-offset K] [--chunk N] [--v1]\n  \
         tracectl record-elf <binary> <out.pift> [-n N] [--seed S] [--interrupts MEAN]\n  \
         tracectl record-corpus <bin-dir> <out-dir> [-n N] [--seed S]\n  \
         tracectl gen-elf <out>\n  \
         tracectl info <file.pift> [--chunks]\n  \
         tracectl convert <in.pift> <out.pift> [--chunk N]\n  \
         tracectl head <file.pift> [-n N]\n  \
         tracectl hash <file.pift>\n\n\
         workloads: {}",
        WorkloadProfile::all()
            .iter()
            .map(|w| w.name().to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    ExitCode::FAILURE
}

fn fail(context: &str, err: impl std::fmt::Display) -> ExitCode {
    eprintln!("tracectl: {context}: {err}");
    ExitCode::FAILURE
}

/// Parses `--flag value` / `-f value` style options out of `args`,
/// returning the positional remainder.
struct Opts {
    positional: Vec<String>,
    /// `-n` value when given; subcommands apply their own default
    /// (record: 1M instructions, head: 10 records).
    instructions: Option<usize>,
    scale: f64,
    seed_offset: u64,
    /// Walker seed for the `record-elf` / `record-corpus` verbs.
    seed: u64,
    /// Mean TL1 interrupt interval for `record-elf` (0 = off).
    interrupts: u64,
    chunk: u32,
    v1: bool,
    chunks: bool,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        positional: Vec::new(),
        instructions: None,
        scale: 1.0,
        seed_offset: 0,
        seed: 0,
        interrupts: 0,
        chunk: DEFAULT_CHUNK_RECORDS,
        v1: false,
        chunks: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "-n" | "--instructions" => {
                opts.instructions = Some(value(arg)?.parse().map_err(|e| format!("-n: {e}"))?);
            }
            "--scale" => opts.scale = value(arg)?.parse().map_err(|e| format!("--scale: {e}"))?,
            "--seed-offset" => {
                opts.seed_offset = value(arg)?
                    .parse()
                    .map_err(|e| format!("--seed-offset: {e}"))?;
            }
            "--seed" => opts.seed = value(arg)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--interrupts" => {
                opts.interrupts = value(arg)?
                    .parse()
                    .map_err(|e| format!("--interrupts: {e}"))?;
            }
            "--chunk" => opts.chunk = value(arg)?.parse().map_err(|e| format!("--chunk: {e}"))?,
            "--v1" => opts.v1 = true,
            "--chunks" => opts.chunks = true,
            other if other.starts_with('-') => return Err(format!("unknown option {other}")),
            other => opts.positional.push(other.to_string()),
        }
    }
    Ok(opts)
}

fn find_workload(name: &str) -> Option<WorkloadProfile> {
    let canonical = name.to_lowercase().replace('_', "-");
    WorkloadProfile::all()
        .into_iter()
        .find(|w| w.name().to_lowercase() == canonical)
}

/// Writes a materialized v1 trace through a temp file, fsyncs, and
/// renames it over `out`: a kill mid-write leaves no torn destination.
fn write_v1_atomically(out: &str, trace: &pif_workloads::Trace) -> std::io::Result<()> {
    let tmp = format!("{out}.tmp.{}", std::process::id());
    let publish = (|| {
        let file = File::create(&tmp)?;
        let mut writer = BufWriter::new(file);
        write_trace(&mut writer, trace)?;
        use std::io::Write as _;
        writer.flush()?;
        writer.get_ref().sync_all()?;
        std::fs::rename(&tmp, out)
    })();
    if publish.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    publish
}

fn record(opts: &Opts) -> ExitCode {
    let [name, out] = opts.positional.as_slice() else {
        return usage();
    };
    let Some(profile) = find_workload(name) else {
        return fail("record", format!("unknown workload {name:?}"));
    };
    let profile = if (opts.scale - 1.0).abs() > f64::EPSILON {
        profile.scaled(opts.scale)
    } else {
        profile
    };
    let records;
    if opts.v1 {
        // Legacy format: no streaming writer exists, materialize — then
        // publish with the same fsync + rename dance the v2 path gets
        // from AtomicTraceWriter.
        let trace = profile
            .generate_with_execution_seed(opts.instructions.unwrap_or(1_000_000), opts.seed_offset);
        records = trace.len() as u64;
        if let Err(e) = write_v1_atomically(out, &trace) {
            return fail(out, e);
        }
    } else {
        let mut writer = match AtomicTraceWriter::create(out, profile.name(), opts.chunk) {
            Ok(w) => w,
            Err(e) => return fail(out, e),
        };
        let mut io_err = None;
        let n = opts.instructions.unwrap_or(1_000_000);
        profile.generate_with_execution_seed_into(n, opts.seed_offset, |instr| {
            if io_err.is_none() {
                if let Err(e) = writer.push(&instr) {
                    io_err = Some(e);
                }
            }
        });
        if let Some(e) = io_err {
            return fail(out, e);
        }
        records = writer.records_written();
        if let Err(e) = writer.finish() {
            return fail(out, e);
        }
    }
    let bytes = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    println!(
        "recorded {} v{} · {} records · {} bytes · {:.2} bytes/record → {}",
        profile.name(),
        if opts.v1 { 1 } else { 2 },
        records,
        bytes,
        bytes as f64 / records.max(1) as f64,
        out,
    );
    ExitCode::SUCCESS
}

/// Walker config shared by the ELF-recording verbs.
fn walk_config(opts: &Opts) -> pif_bintrace::walk::WalkConfig {
    pif_bintrace::walk::WalkConfig::default()
        .with_seed(opts.seed)
        .with_interrupts(opts.interrupts)
}

fn record_elf(opts: &Opts) -> ExitCode {
    let [binary, out] = opts.positional.as_slice() else {
        return usage();
    };
    let name = std::path::Path::new(binary)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "elf".to_string());
    let n = opts.instructions.unwrap_or(1_000_000);
    let recorded =
        match pif_workloads::corpus::record_elf_trace(binary, out, &name, n, walk_config(opts)) {
            Ok(r) => r,
            Err(e) => return fail(binary, e),
        };
    let bytes = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    println!(
        "recorded {} (elf, seed {}) · {} blocks / {} static instrs · {} records · {} bytes → {}",
        recorded.name,
        opts.seed,
        recorded.blocks,
        recorded.static_insns,
        recorded.records,
        bytes,
        out,
    );
    ExitCode::SUCCESS
}

fn record_corpus(opts: &Opts) -> ExitCode {
    let [bin_dir, out_dir] = opts.positional.as_slice() else {
        return usage();
    };
    let n = opts.instructions.unwrap_or(1_000_000);
    let recorded =
        match pif_workloads::corpus::record_corpus(bin_dir, out_dir, n, walk_config(opts)) {
            Ok(r) => r,
            Err(e) => return fail(bin_dir, e),
        };
    if recorded.is_empty() {
        eprintln!(
            "tracectl: no corpus binaries ({}) under {bin_dir}; build with `cargo build --release` first",
            pif_workloads::corpus::CORPUS_BINARIES.join(", ")
        );
        return ExitCode::FAILURE;
    }
    for r in &recorded {
        println!(
            "recorded {} · {} blocks / {} static instrs · {} records → {}",
            r.name,
            r.blocks,
            r.static_insns,
            r.records,
            r.path.display()
        );
    }
    ExitCode::SUCCESS
}

fn gen_elf(opts: &Opts) -> ExitCode {
    let [out] = opts.positional.as_slice() else {
        return usage();
    };
    let bytes = pif_bintrace::fixture::demo_elf();
    if let Err(e) = std::fs::write(out, &bytes) {
        return fail(out, e);
    }
    println!("wrote demo ELF ({} bytes) → {out}", bytes.len());
    ExitCode::SUCCESS
}

fn info(opts: &Opts) -> ExitCode {
    let [path] = opts.positional.as_slice() else {
        return usage();
    };
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) => return fail(path, e),
    };
    let info = match scan_info(BufReader::new(file)) {
        Ok(info) => info,
        Err(e) => return fail(path, e),
    };
    println!("file:          {path}");
    println!("name:          {}", info.name);
    println!("version:       {}", info.version);
    println!("records:       {}", info.records);
    println!("chunks:        {}", info.chunks);
    println!("bytes:         {}", info.bytes);
    println!("bytes/record:  {:.2}", info.bytes_per_record());
    if opts.chunks {
        if info.version == 1 {
            println!("\nv1 files are unchunked; no random-access table.");
            return ExitCode::SUCCESS;
        }
        // Re-open with the indexing reader: only the 8-byte chunk
        // headers are read, payloads are seeked over.
        let file = match File::open(path) {
            Ok(f) => f,
            Err(e) => return fail(path, e),
        };
        let reader = match TraceReader::open_indexed(BufReader::new(file)) {
            Ok(r) => r,
            Err(e) => return fail(path, e),
        };
        let index = reader.chunk_index().expect("v2 index");
        println!(
            "\n{:>6}  {:>12}  {:>8}  {:>12}  {:>10}  {:>8}",
            "CHUNK", "FIRST_REC", "RECORDS", "OFFSET", "PAYLOAD_B", "B/REC"
        );
        for (i, e) in index.entries().iter().enumerate() {
            println!(
                "{:>6}  {:>12}  {:>8}  {:>12}  {:>10}  {:>8.2}",
                i,
                e.first_record,
                e.records,
                e.payload_offset,
                e.payload_len,
                e.payload_len as f64 / e.records.max(1) as f64,
            );
        }
    }
    ExitCode::SUCCESS
}

fn convert(opts: &Opts) -> ExitCode {
    let [input, output] = opts.positional.as_slice() else {
        return usage();
    };
    let in_file = match File::open(input) {
        Ok(f) => f,
        Err(e) => return fail(input, e),
    };
    let mut reader = match TraceReader::open(BufReader::new(in_file)) {
        Ok(r) => r,
        Err(e) => return fail(input, e),
    };
    let name = reader.name().to_string();
    let mut writer = match AtomicTraceWriter::create(output, &name, opts.chunk) {
        Ok(w) => w,
        Err(e) => return fail(output, e),
    };
    for result in reader.by_ref() {
        let instr = match result {
            Ok(i) => i,
            Err(e) => return fail(input, e),
        };
        if let Err(e) = writer.push(&instr) {
            return fail(output, e);
        }
    }
    let records = writer.records_written();
    if let Err(e) = writer.finish() {
        return fail(output, e);
    }
    let in_bytes = std::fs::metadata(input).map(|m| m.len()).unwrap_or(0);
    let out_bytes = std::fs::metadata(output).map(|m| m.len()).unwrap_or(0);
    println!(
        "converted {name} v{} → v2 · {records} records · {in_bytes} → {out_bytes} bytes ({:.2}x smaller)",
        reader.version(),
        in_bytes as f64 / out_bytes.max(1) as f64,
    );
    ExitCode::SUCCESS
}

fn head(opts: &Opts) -> ExitCode {
    let [path] = opts.positional.as_slice() else {
        return usage();
    };
    let n = opts.instructions.unwrap_or(10);
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) => return fail(path, e),
    };
    let mut reader = match TraceReader::open(BufReader::new(file)) {
        Ok(r) => r,
        Err(e) => return fail(path, e),
    };
    println!("{} (v{})", reader.name(), reader.version());
    for (idx, result) in reader.by_ref().take(n).enumerate() {
        match result {
            Ok(instr) => {
                let branch = match instr.branch {
                    None => String::new(),
                    Some(b) => format!(
                        "  {:?} {} → {:#x} (fall {:#x})",
                        b.kind,
                        if b.taken { "taken" } else { "not-taken" },
                        b.taken_target.raw(),
                        b.fall_through.raw(),
                    ),
                };
                println!(
                    "{idx:>6}  pc={:#010x}  {}{branch}",
                    instr.pc.raw(),
                    instr.trap_level,
                );
            }
            Err(e) => return fail(path, e),
        }
    }
    ExitCode::SUCCESS
}

fn hash(opts: &Opts) -> ExitCode {
    let [path] = opts.positional.as_slice() else {
        return usage();
    };
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) => return fail(path, e),
    };
    let reader = match TraceReader::open(BufReader::new(file)) {
        Ok(r) => r,
        Err(e) => return fail(path, e),
    };
    match reader.content_hash() {
        Ok(h) => {
            println!("{h:016x}  {path}");
            ExitCode::SUCCESS
        }
        Err(e) => fail(path, e),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => return fail("arguments", e),
    };
    match cmd.as_str() {
        "record" => record(&opts),
        "record-elf" => record_elf(&opts),
        "record-corpus" => record_corpus(&opts),
        "gen-elf" => gen_elf(&opts),
        "info" => info(&opts),
        "convert" => convert(&opts),
        "head" => head(&opts),
        "hash" => hash(&opts),
        _ => usage(),
    }
}
