//! `piflab` — the sweep-orchestration CLI.
//!
//! ```text
//! piflab list
//! piflab run <spec>... [--all] [--smoke] [--scale tiny|quick|paper]
//!            [--threads N] [--out PATH] [--out-dir DIR] [--quiet]
//!            [--cache] [--cache-dir DIR] [--profile]
//! piflab check <report.json> <baseline.json> [--tol X]
//! piflab diff <a.json> <b.json>
//! piflab serve [--addr HOST:PORT] [--threads N] [--workers N]
//!              [--queue-depth N] [--deadline-ms N]
//!              [--cache-dir DIR] [--no-cache]
//! piflab submit <spec>... [--addr HOST:PORT] [--smoke]
//!               [--scale tiny|quick|paper] [--out PATH] [--out-dir DIR]
//!               [--deadline-ms N] [--retries N] [--retry-base-ms N]
//!               [--quiet]
//! piflab stats [--addr HOST:PORT]
//! piflab metrics [--addr HOST:PORT] [--format prometheus|json]
//! piflab cache stats|clear [--cache-dir DIR]
//! ```
//!
//! `run` executes committed figure specs (see `piflab list`) and writes
//! one `pif-lab-sweep/v1` JSON report per spec. `check` compares a fresh
//! report against a committed golden baseline with per-metric tolerances
//! and exits non-zero on any violation — this is the CI gate that turns
//! every figure into a regression test. `--smoke` is the CI profile:
//! tiny scale, deterministic, seconds per spec.
//!
//! `serve` runs `pifd`, the long-lived sweep daemon: a bounded job queue
//! over the same `run_spec` path, fronted by the line-delimited JSON
//! protocol of `pif_lab::protocol`, with a persistent content-addressed
//! result cache. `submit` is its client: reports come back byte-identical
//! to a local `run` of the same spec and scale. Transient failures —
//! refused connections, sockets dying mid-exchange, retryable daemon
//! error frames — are retried with exponential backoff and jitter
//! (`--retries`, `--retry-base-ms`); every terminal failure prints one
//! structured `piflab submit: <category>: ...` line. `stats` and `metrics`
//! query a running daemon's counters and its full `pif_obs` exposition.
//! `cache` inspects or clears the on-disk store.
//!
//! `run --profile` writes one `pif-lab-profile/v1` timing sidecar per
//! report at `<report>.profile.json` — next to the report, never inside
//! it, so report bytes stay identical with profiling on or off.
//!
//! Exit codes are uniform across subcommands: `0` success, `1` runtime
//! failure (I/O, check violations, daemon errors), `2` usage errors —
//! including naming a spec the registry does not know.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use pif_lab::json::Json;
use pif_lab::protocol::{Request, Response};
use pif_lab::service::{LatencySummary, MetricsFormat, Service, ServiceConfig};
use pif_lab::{
    protocol, registry, report, run_spec_profiled, run_spec_stats, ResultCache, RunOptions, Scale,
    SweepReport,
};

/// One dispatch-table row: verb, usage line, handler.
type Command = (&'static str, &'static str, fn(&[String]) -> ExitCode);

/// The dispatch table: one row per subcommand, shared by `main` and
/// `usage`, so a new verb cannot be added without a usage line.
const COMMANDS: &[Command] = &[
    ("list", "list the committed sweep specs", cmd_list),
    ("run", "run specs locally and write JSON reports", cmd_run),
    (
        "check",
        "compare a report against a golden baseline",
        cmd_check,
    ),
    ("diff", "diff two reports cell by cell", cmd_diff),
    ("serve", "run the pifd sweep daemon", cmd_serve),
    ("submit", "submit specs to a running daemon", cmd_submit),
    ("stats", "print a running daemon's counters", cmd_stats),
    ("metrics", "scrape a running daemon's metrics", cmd_metrics),
    ("cache", "inspect or clear the result cache", cmd_cache),
];

fn usage() -> ExitCode {
    eprintln!("usage: piflab <command> [args]\n\ncommands:");
    for (name, help, _) in COMMANDS {
        eprintln!("  {name:<8} {help}");
    }
    eprintln!(
        "\nrun/submit: <spec>... [--all] [--smoke] [--scale tiny|quick|paper] \
         [--out PATH] [--out-dir DIR] [--quiet]\n\
         run also: [--threads N] [--cache] [--cache-dir DIR] [--profile]\n\
         submit also: [--addr HOST:PORT] [--deadline-ms N] [--retries N] [--retry-base-ms N]\n\
         check: <report.json> <baseline.json> [--tol X]\n\
         serve: [--addr HOST:PORT] [--threads N] [--workers N] [--queue-depth N]\n\
                [--deadline-ms N] [--cache-dir DIR] [--no-cache]\n\
         stats: [--addr HOST:PORT]\n\
         metrics: [--addr HOST:PORT] [--format prometheus|json]\n\
         cache: stats|clear [--cache-dir DIR]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match COMMANDS.iter().find(|(name, _, _)| name == cmd) {
        Some((_, _, run)) => run(&args[1..]),
        None => usage(),
    }
}

fn cmd_list(_args: &[String]) -> ExitCode {
    println!("{:<14} {:>5} {:<22} TITLE", "SPEC", "CELLS", "AXIS");
    for spec in registry::all_specs() {
        println!(
            "{:<14} {:>5} {:<22} {}",
            spec.name,
            spec.grid_len(),
            format!("{} x{}", spec.axis.name(), spec.axis.len()),
            spec.title
        );
    }
    ExitCode::SUCCESS
}

/// Parses `tiny|quick|paper`.
fn parse_scale_name(name: &str) -> Option<Scale> {
    match name {
        "tiny" => Some(Scale::tiny()),
        "quick" => Some(Scale::quick()),
        "paper" => Some(Scale::paper()),
        _ => None,
    }
}

/// The scale a run/submit uses when `--scale` is absent: tiny under
/// `--smoke`, else the `PIF_SCALE` environment default.
fn effective_scale(explicit: Option<Scale>, smoke: bool) -> Scale {
    explicit.unwrap_or_else(|| {
        if smoke {
            Scale::tiny()
        } else {
            Scale::from_env()
        }
    })
}

/// Resolves a spec name, or produces the unknown-spec error message with
/// the registry's candidate list.
fn resolve_spec(name: &str) -> Result<pif_lab::SweepSpec, String> {
    registry::spec(name).ok_or_else(|| {
        let candidates: Vec<&str> = registry::all_specs().iter().map(|s| s.name).collect();
        format!(
            "unknown spec {name:?}; known specs: {}",
            candidates.join(", ")
        )
    })
}

#[derive(Debug, PartialEq)]
struct RunArgs {
    specs: Vec<String>,
    smoke: bool,
    scale: Option<Scale>,
    threads: usize,
    out: Option<PathBuf>,
    out_dir: PathBuf,
    quiet: bool,
    cache_dir: Option<PathBuf>,
    profile: bool,
}

/// Parses `piflab run` arguments. Errors are usage errors (exit 2).
fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut opts = RunArgs {
        specs: Vec::new(),
        smoke: false,
        scale: None,
        threads: pif_lab::default_threads(),
        out: None,
        out_dir: PathBuf::from("target/piflab"),
        quiet: false,
        cache_dir: None,
        profile: false,
    };
    let mut all = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => all = true,
            "--smoke" => opts.smoke = true,
            "--quiet" => opts.quiet = true,
            "--profile" => opts.profile = true,
            "--cache" => {
                opts.cache_dir.get_or_insert_with(ResultCache::default_dir);
            }
            "--cache-dir" => match it.next() {
                Some(p) => opts.cache_dir = Some(PathBuf::from(p)),
                None => return Err("--cache-dir needs a directory".into()),
            },
            "--scale" => match it.next().map(String::as_str).and_then(parse_scale_name) {
                Some(s) => opts.scale = Some(s),
                None => return Err("--scale needs tiny|quick|paper".into()),
            },
            "--threads" => match it.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => opts.threads = n,
                _ => return Err("--threads needs a positive integer".into()),
            },
            "--out" => match it.next() {
                Some(p) => opts.out = Some(PathBuf::from(p)),
                None => return Err("--out needs a path".into()),
            },
            "--out-dir" => match it.next() {
                Some(p) => opts.out_dir = PathBuf::from(p),
                None => return Err("--out-dir needs a directory".into()),
            },
            name if !name.starts_with('-') => opts.specs.push(name.to_string()),
            flag => return Err(format!("unknown flag {flag:?}")),
        }
    }
    if all {
        opts.specs = registry::all_specs()
            .iter()
            .map(|s| s.name.to_string())
            .collect();
    }
    if opts.specs.is_empty() {
        return Err("name at least one spec, or pass --all (see `piflab list`)".into());
    }
    if opts.out.is_some() && opts.specs.len() != 1 {
        return Err("--out only applies to a single spec; use --out-dir for several".into());
    }
    Ok(opts)
}

fn cmd_run(args: &[String]) -> ExitCode {
    let opts = match parse_run_args(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("piflab run: {e}");
            return ExitCode::from(2);
        }
    };
    let scale = effective_scale(opts.scale, opts.smoke);
    let cache = match &opts.cache_dir {
        Some(dir) => match ResultCache::open(dir) {
            Ok(c) => Some(c),
            Err(e) => {
                eprintln!("piflab run: cannot open cache at {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    for name in &opts.specs {
        let spec = match resolve_spec(name) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("piflab run: {e}");
                return ExitCode::from(2);
            }
        };
        if !opts.quiet {
            eprintln!(
                "piflab: {} — {} cells x {} instrs on {} threads",
                spec.name,
                spec.grid_len(),
                scale.instructions,
                opts.threads
            );
        }
        let mut run_opts = RunOptions::new()
            .scale(scale)
            .threads(opts.threads)
            .smoke(opts.smoke);
        if let Some(c) = &cache {
            run_opts = run_opts.cache(c);
        }
        let (report, stats, profile) = if opts.profile {
            let (report, stats, profile) = run_spec_profiled(&spec, &run_opts);
            (report, stats, Some(profile))
        } else {
            let (report, stats) = run_spec_stats(&spec, &run_opts);
            (report, stats, None)
        };
        if cache.is_some() && !opts.quiet {
            eprintln!(
                "piflab: {} — {} cells cached, {} executed",
                spec.name, stats.cached_cells, stats.executed_cells
            );
        }
        let path = out_path(&opts.out, &opts.out_dir, name);
        match write_validated_report(&report, &path) {
            Ok(()) => {}
            Err(e) => {
                eprintln!("piflab: {e}");
                return ExitCode::FAILURE;
            }
        }
        if let Some(profile) = profile {
            // The sidecar sits next to the report, never inside it: the
            // report bytes above are identical with or without --profile.
            let sidecar = path.with_extension("profile.json");
            if let Err(e) = write_report_bytes(&profile.to_json(), &sidecar) {
                eprintln!("piflab: {e}");
                return ExitCode::FAILURE;
            }
            if !opts.quiet {
                eprintln!(
                    "piflab: {} — {} us simulated across {} cells, profile at {}",
                    spec.name,
                    profile.total_exec_us(),
                    profile.cells.len(),
                    sidecar.display()
                );
            }
        }
        if !opts.quiet {
            print_summary(&report);
        }
        println!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

fn out_path(out: &Option<PathBuf>, out_dir: &Path, spec: &str) -> PathBuf {
    out.clone()
        .unwrap_or_else(|| out_dir.join(format!("{spec}.json")))
}

/// Serializes, re-parses, schema-validates, and only then writes: an
/// invalid report never lands on disk (shared by `run` and `submit`).
fn write_validated_report(report: &SweepReport, path: &Path) -> Result<(), String> {
    let json = report
        .to_json()
        .map_err(|e| format!("refusing to emit report for {}: {e}", report.spec))?;
    validate_report_bytes(&json, &report.spec)?;
    write_report_bytes(&json, path)
}

/// The validation half of the write path, on raw bytes (submit receives
/// bytes from the daemon and must not re-serialize them).
fn validate_report_bytes(json: &str, spec: &str) -> Result<(), String> {
    let reparsed =
        Json::parse(json).map_err(|e| format!("emitted invalid JSON for {spec}: {e}"))?;
    report::validate_report(&reparsed)
        .map_err(|e| format!("emitted schema-invalid report for {spec}: {e}"))
}

fn write_report_bytes(json: &str, path: &Path) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
    }
    std::fs::write(path, json).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// A compact per-cell stdout summary (the pretty per-figure tables live
/// in the `pif-experiments` binaries; this is the orchestrator's view).
fn print_summary(report: &SweepReport) {
    const HEADLINE: [&str; 6] = [
        "miss_coverage",
        "predictor_coverage",
        "uipc",
        "uipc_speedup_vs_none",
        "retire_sep",
        "footprint_mb",
    ];
    for cell in &report.cells {
        let mut line = format!(
            "  [{:>3}] {:<12} {:<14} {:<20}",
            cell.index,
            cell.workload,
            cell.prefetcher.unwrap_or("-"),
            cell.point
        );
        let mut shown = 0;
        for name in HEADLINE {
            if let Some(v) = cell.metric(name) {
                line.push_str(&format!(" {name}={v:.4}"));
                shown += 1;
            }
        }
        if shown == 0 {
            line.push_str(&format!(" metrics={}", cell.metrics.len()));
        }
        println!("{line}");
    }
}

fn load(path: &str) -> Result<Json, String> {
    let text =
        std::fs::read_to_string(Path::new(path)).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_check(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut tol = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tol" => match it.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => tol = Some(t),
                _ => {
                    eprintln!("--tol needs a non-negative number");
                    return ExitCode::from(2);
                }
            },
            p if !p.starts_with('-') => paths.push(p.to_string()),
            _ => return usage(),
        }
    }
    let [new_path, base_path] = paths.as_slice() else {
        return usage();
    };
    let (new, base) = match (load(new_path), load(base_path)) {
        (Ok(n), Ok(b)) => (n, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("piflab check: {e}");
            return ExitCode::FAILURE;
        }
    };
    match report::check_reports(&new, &base, tol) {
        Ok(summary) => {
            println!(
                "check passed: {} cells, {} metrics within tolerance (max rel delta {:.3e})",
                summary.cells, summary.metrics, summary.max_rel_delta
            );
            ExitCode::SUCCESS
        }
        Err(violations) => {
            eprintln!(
                "piflab check: {} violation(s) against {base_path}:",
                violations.len()
            );
            for v in &violations {
                eprintln!("  {v}");
            }
            ExitCode::FAILURE
        }
    }
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let [a_path, b_path] = args else {
        return usage();
    };
    let (a, b) = match (load(a_path), load(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("piflab diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report::diff_reports(&a, &b));
    ExitCode::SUCCESS
}

/// Default daemon address (loopback only: pifd has no authentication).
const DEFAULT_ADDR: &str = "127.0.0.1:7421";

/// Set by SIGTERM/SIGINT (and by a protocol `shutdown` request); the
/// serve loop polls it and drains gracefully.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    // Hand-rolled: no signal crate in-tree. An atomic store is
    // async-signal-safe; the serve loop does the actual teardown.
    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

#[derive(Debug, PartialEq)]
struct ServeArgs {
    addr: String,
    threads: usize,
    workers: usize,
    queue_depth: usize,
    deadline_ms: Option<u64>,
    cache_dir: Option<PathBuf>,
}

/// Parses `piflab serve` arguments. The daemon caches by default (that
/// is its reason to exist); `--no-cache` opts out.
fn parse_serve_args(args: &[String]) -> Result<ServeArgs, String> {
    let mut opts = ServeArgs {
        addr: DEFAULT_ADDR.to_string(),
        threads: pif_lab::default_threads(),
        workers: 1,
        queue_depth: 16,
        deadline_ms: None,
        cache_dir: Some(ResultCache::default_dir()),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => opts.addr = a.clone(),
                None => return Err("--addr needs HOST:PORT".into()),
            },
            "--threads" => match it.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => opts.threads = n,
                _ => return Err("--threads needs a positive integer".into()),
            },
            "--workers" => match it.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => opts.workers = n,
                _ => return Err("--workers needs a positive integer".into()),
            },
            "--queue-depth" => match it.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => opts.queue_depth = n,
                _ => return Err("--queue-depth needs a positive integer".into()),
            },
            "--deadline-ms" => match it.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(ms) if ms >= 1 => opts.deadline_ms = Some(ms),
                _ => return Err("--deadline-ms needs a positive integer".into()),
            },
            "--cache-dir" => match it.next() {
                Some(p) => opts.cache_dir = Some(PathBuf::from(p)),
                None => return Err("--cache-dir needs a directory".into()),
            },
            "--no-cache" => opts.cache_dir = None,
            flag => return Err(format!("unknown flag {flag:?}")),
        }
    }
    Ok(opts)
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let opts = match parse_serve_args(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("piflab serve: {e}");
            return ExitCode::from(2);
        }
    };
    let listener = match TcpListener::bind(&opts.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("piflab serve: cannot bind {}: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    let addr = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| opts.addr.clone());
    let cache_desc = opts
        .cache_dir
        .as_ref()
        .map(|d| d.display().to_string())
        .unwrap_or_else(|| "disabled".to_string());
    let service = Service::start(ServiceConfig {
        queue_depth: opts.queue_depth,
        threads: opts.threads,
        workers: opts.workers,
        default_deadline: opts.deadline_ms.map(Duration::from_millis),
        cache_dir: opts.cache_dir,
    });
    install_signal_handlers();
    // One parseable line on stdout so scripts (and CI) can wait for
    // readiness and discover an ephemeral --addr :0 port.
    println!(
        "pifd: listening on {addr} (workers {}, threads {}, queue {}, cache {cache_desc})",
        opts.workers, opts.threads, opts.queue_depth
    );
    let _ = std::io::stdout().flush();
    if let Err(e) = protocol::serve(listener, &service, &SHUTDOWN) {
        eprintln!("pifd: serve failed: {e}");
        service.shutdown();
        return ExitCode::FAILURE;
    }
    let stats = service.shutdown();
    println!(
        "pifd: drained, {} submitted / {} completed (max queue {}, exec {} us, \
         mean wait {:.1} us, {} stolen, {} deadline-exceeded, {} restarts, \
         {} quarantined)",
        stats.submitted,
        stats.completed,
        stats.max_queue_depth,
        stats.exec.total_us,
        stats.queue_wait.mean_us(),
        stats.stolen_jobs,
        stats.deadline_exceeded,
        stats.worker_restarts,
        stats.quarantined
    );
    ExitCode::SUCCESS
}

#[derive(Debug, PartialEq)]
struct SubmitArgs {
    specs: Vec<String>,
    addr: String,
    smoke: bool,
    scale: Option<Scale>,
    out: Option<PathBuf>,
    out_dir: PathBuf,
    quiet: bool,
    deadline_ms: Option<u64>,
    retries: u32,
    retry_base_ms: u64,
}

/// Parses `piflab submit` arguments.
fn parse_submit_args(args: &[String]) -> Result<SubmitArgs, String> {
    let mut opts = SubmitArgs {
        specs: Vec::new(),
        addr: DEFAULT_ADDR.to_string(),
        smoke: false,
        scale: None,
        out: None,
        out_dir: PathBuf::from("target/piflab"),
        quiet: false,
        deadline_ms: None,
        retries: 3,
        retry_base_ms: 200,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--quiet" => opts.quiet = true,
            "--addr" => match it.next() {
                Some(a) => opts.addr = a.clone(),
                None => return Err("--addr needs HOST:PORT".into()),
            },
            "--scale" => match it.next().map(String::as_str).and_then(parse_scale_name) {
                Some(s) => opts.scale = Some(s),
                None => return Err("--scale needs tiny|quick|paper".into()),
            },
            "--out" => match it.next() {
                Some(p) => opts.out = Some(PathBuf::from(p)),
                None => return Err("--out needs a path".into()),
            },
            "--out-dir" => match it.next() {
                Some(p) => opts.out_dir = PathBuf::from(p),
                None => return Err("--out-dir needs a directory".into()),
            },
            "--deadline-ms" => match it.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(ms) if ms >= 1 => opts.deadline_ms = Some(ms),
                _ => return Err("--deadline-ms needs a positive integer".into()),
            },
            "--retries" => match it.next().and_then(|s| s.parse::<u32>().ok()) {
                Some(n) => opts.retries = n,
                None => return Err("--retries needs a non-negative integer".into()),
            },
            "--retry-base-ms" => match it.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(ms) if ms >= 1 => opts.retry_base_ms = ms,
                _ => return Err("--retry-base-ms needs a positive integer".into()),
            },
            name if !name.starts_with('-') => opts.specs.push(name.to_string()),
            flag => return Err(format!("unknown flag {flag:?}")),
        }
    }
    if opts.specs.is_empty() {
        return Err("name at least one spec (see `piflab list`)".into());
    }
    if opts.out.is_some() && opts.specs.len() != 1 {
        return Err("--out only applies to a single spec; use --out-dir for several".into());
    }
    Ok(opts)
}

/// One terminal `piflab submit` failure: every way the exchange can
/// die, each with a stable category token (the first word of the
/// printed line) so scripts and tests can dispatch on it.
#[derive(Debug)]
enum SubmitFailure {
    /// TCP connect was refused/reset on every attempt.
    Connect { addr: String, error: String },
    /// The socket died mid-exchange on every attempt.
    Io { error: String },
    /// The daemon answered with bytes that are not a `piflab/1` frame.
    BadFrame { error: String },
    /// The daemon answered with a typed error frame (terminal, or still
    /// failing after the retry budget).
    Daemon {
        kind: String,
        message: String,
        candidates: Vec<String>,
    },
    /// The daemon's report failed client-side schema validation.
    BadReport { spec: String, error: String },
    /// Writing the validated report to disk failed.
    WriteOut { error: String },
}

impl SubmitFailure {
    /// Usage-class failures (the request itself can never succeed) exit
    /// 2, matching `piflab run`'s unknown-spec behavior; everything else
    /// is a runtime failure, exit 1.
    fn exit_code(&self) -> ExitCode {
        match self {
            SubmitFailure::Daemon { kind, .. }
                if kind == "unknown_spec" || kind == "bad_request" =>
            {
                ExitCode::from(2)
            }
            _ => ExitCode::FAILURE,
        }
    }
}

impl std::fmt::Display for SubmitFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitFailure::Connect { addr, error } => write!(
                f,
                "connect: cannot reach {addr} (is `piflab serve` running?): {error}"
            ),
            SubmitFailure::Io { error } => write!(f, "io: {error}"),
            SubmitFailure::BadFrame { error } => write!(f, "bad-frame: {error}"),
            SubmitFailure::Daemon { kind, message, .. } => write!(f, "daemon [{kind}]: {message}"),
            SubmitFailure::BadReport { spec, error } => {
                write!(f, "bad-report: daemon sent bad report for {spec}: {error}")
            }
            SubmitFailure::WriteOut { error } => write!(f, "write: {error}"),
        }
    }
}

/// Whether one attempt's failure is worth another connection. Connect
/// and mid-exchange I/O failures are transient by assumption; daemon
/// error frames say so themselves (`"retryable"`); a frame that does
/// not even parse suggests a version mismatch, which retrying cannot
/// fix.
fn attempt_is_retryable(failure: &SubmitFailure, frame_retryable: bool) -> bool {
    match failure {
        SubmitFailure::Connect { .. } | SubmitFailure::Io { .. } => true,
        SubmitFailure::Daemon { .. } => frame_retryable,
        _ => false,
    }
}

/// Exponential backoff with deterministic jitter: attempt `n` sleeps a
/// duration drawn from `[base·2ⁿ/2, base·2ⁿ]`, the draw seeded by
/// (seed, attempt) so tests are reproducible.
fn backoff_delay(base_ms: u64, attempt: u32, seed: u64) -> Duration {
    let exp = base_ms.saturating_mul(1u64 << attempt.min(10));
    let mut z = seed
        .wrapping_add(u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let half = exp / 2;
    Duration::from_millis(half + z % (half.max(1) + 1))
}

/// One connect + one request/response exchange, no retries.
fn exchange_once(addr: &str, request: &Request) -> Result<Response, SubmitFailure> {
    let stream = std::net::TcpStream::connect(addr).map_err(|e| SubmitFailure::Connect {
        addr: addr.to_string(),
        error: e.to_string(),
    })?;
    let io = |e: std::io::Error| SubmitFailure::Io {
        error: e.to_string(),
    };
    let mut writer = stream.try_clone().map_err(io)?;
    let mut reader = BufReader::new(stream);
    writer
        .write_all(request.to_line().as_bytes())
        .and_then(|()| writer.flush())
        .map_err(io)?;
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => Err(SubmitFailure::Io {
            error: "daemon closed the connection before replying".to_string(),
        }),
        Ok(_) => Response::parse(&line).map_err(|error| SubmitFailure::BadFrame { error }),
        Err(e) => Err(io(e)),
    }
}

/// Sends `request` with up to `retries` reconnect-and-resend attempts
/// after the first, backing off exponentially between attempts.
fn submit_with_retry(
    addr: &str,
    request: &Request,
    retries: u32,
    base_ms: u64,
    quiet: bool,
) -> Result<Response, SubmitFailure> {
    let seed = u64::from(std::process::id());
    let mut attempt = 0u32;
    loop {
        let (failure, frame_retryable) = match exchange_once(addr, request) {
            Ok(Response::Error {
                kind,
                retryable,
                message,
                candidates,
                ..
            }) => (
                SubmitFailure::Daemon {
                    kind,
                    message,
                    candidates,
                },
                retryable,
            ),
            Ok(response) => return Ok(response),
            Err(failure) => (failure, false),
        };
        if attempt >= retries || !attempt_is_retryable(&failure, frame_retryable) {
            return Err(failure);
        }
        let delay = backoff_delay(base_ms, attempt, seed);
        if !quiet {
            eprintln!(
                "piflab submit: attempt {} failed ({failure}); retrying in {} ms",
                attempt + 1,
                delay.as_millis()
            );
        }
        std::thread::sleep(delay);
        attempt += 1;
    }
}

/// Submits one spec and writes the validated report. Split from
/// `cmd_submit` so the error paths are unit-testable without a daemon.
fn submit_one(opts: &SubmitArgs, id: u64, name: &str, scale: Scale) -> Result<(), SubmitFailure> {
    let request = Request::Submit {
        id,
        spec: name.to_string(),
        scale,
        smoke: opts.smoke,
        deadline_ms: opts.deadline_ms,
    };
    let response = submit_with_retry(
        &opts.addr,
        &request,
        opts.retries,
        opts.retry_base_ms,
        opts.quiet,
    )?;
    match response {
        Response::Report {
            spec,
            cached_cells,
            executed_cells,
            json,
            ..
        } => {
            // Same gate as a local run: the daemon's bytes must parse
            // and validate before they land on disk — and they are
            // written verbatim, preserving byte identity with `run`.
            validate_report_bytes(&json, &spec).map_err(|error| SubmitFailure::BadReport {
                spec: spec.clone(),
                error,
            })?;
            let path = out_path(&opts.out, &opts.out_dir, name);
            write_report_bytes(&json, &path).map_err(|error| SubmitFailure::WriteOut { error })?;
            if !opts.quiet {
                eprintln!(
                    "piflab submit: {spec} — {cached_cells} cells cached, {executed_cells} executed"
                );
            }
            println!("wrote {}", path.display());
            Ok(())
        }
        other => Err(SubmitFailure::BadFrame {
            error: format!("unexpected response {other:?}"),
        }),
    }
}

fn cmd_submit(args: &[String]) -> ExitCode {
    let opts = match parse_submit_args(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("piflab submit: {e}");
            return ExitCode::from(2);
        }
    };
    let scale = effective_scale(opts.scale, opts.smoke);
    for (i, name) in opts.specs.iter().enumerate() {
        if let Err(failure) = submit_one(&opts, i as u64 + 1, name, scale) {
            eprintln!("piflab submit: {failure}");
            if let SubmitFailure::Daemon { candidates, .. } = &failure {
                if !candidates.is_empty() {
                    eprintln!("  known specs: {}", candidates.join(", "));
                }
            }
            return failure.exit_code();
        }
    }
    ExitCode::SUCCESS
}

/// Sends one request to a daemon and reads one response.
fn request_once(addr: &str, request: &Request) -> Result<Response, String> {
    let stream = std::net::TcpStream::connect(addr)
        .map_err(|e| format!("cannot connect to {addr} (is `piflab serve` running?): {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    writer
        .write_all(request.to_line().as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| e.to_string())?;
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => Err("daemon closed the connection".to_string()),
        Ok(_) => Response::parse(&line),
        Err(e) => Err(e.to_string()),
    }
}

/// Parses the `[--addr HOST:PORT]`-only argument form shared by `stats`
/// and `metrics` (the latter also takes `--format`).
fn parse_addr_args(cmd: &str, args: &[String]) -> Result<(String, Option<String>), String> {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut format = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => addr = a.clone(),
                None => return Err("--addr needs HOST:PORT".into()),
            },
            "--format" if cmd == "metrics" => match it.next() {
                Some(f) => format = Some(f.clone()),
                None => return Err("--format needs prometheus|json".into()),
            },
            flag => return Err(format!("unknown flag {flag:?}")),
        }
    }
    Ok((addr, format))
}

fn print_latency(label: &str, l: &LatencySummary) {
    println!(
        "  {label}: {} jobs, mean {:.1} us, max {} us",
        l.count,
        l.mean_us(),
        l.max_us
    );
}

fn cmd_stats(args: &[String]) -> ExitCode {
    let (addr, _) = match parse_addr_args("stats", args) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("piflab stats: {e}");
            return ExitCode::from(2);
        }
    };
    match request_once(&addr, &Request::Stats) {
        Ok(Response::Stats {
            submitted,
            completed,
            max_queue_depth,
            queue_wait,
            exec,
            stolen_jobs,
            deadline_exceeded,
            worker_restarts,
            quarantined,
            cache,
        }) => {
            println!(
                "pifd at {addr}: {submitted} submitted, {completed} completed \
                 (max queue {max_queue_depth})"
            );
            print_latency("queue wait", &queue_wait);
            print_latency("exec", &exec);
            println!("  stolen jobs: {stolen_jobs}");
            println!(
                "  failures: {deadline_exceeded} deadline-exceeded, \
                 {worker_restarts} worker restarts, {quarantined} quarantined"
            );
            match cache {
                Some(c) => println!(
                    "  cache: {} hits, {} misses ({} corrupt, {} quarantined)",
                    c.hits, c.misses, c.corrupt, c.quarantined
                ),
                None => println!("  cache: disabled"),
            }
            ExitCode::SUCCESS
        }
        Ok(other) => {
            eprintln!("piflab stats: unexpected response {other:?}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("piflab stats: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_metrics(args: &[String]) -> ExitCode {
    let (addr, format) = match parse_addr_args("metrics", args) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("piflab metrics: {e}");
            return ExitCode::from(2);
        }
    };
    let format = match format.as_deref() {
        None | Some("prometheus") => MetricsFormat::Prometheus,
        Some("json") => MetricsFormat::Json,
        Some(other) => {
            eprintln!("piflab metrics: unknown format {other:?} (want prometheus|json)");
            return ExitCode::from(2);
        }
    };
    match request_once(&addr, &Request::Metrics { format }) {
        Ok(Response::Metrics { format, body }) => {
            // Validate the exposition client-side before printing, the
            // same way `submit` validates report bytes.
            let valid = match format {
                MetricsFormat::Prometheus => pif_obs::validate_prometheus(&body),
                MetricsFormat::Json => Json::parse(&body).map(|_| ()),
            };
            if let Err(e) = valid {
                eprintln!("piflab metrics: daemon sent invalid exposition: {e}");
                return ExitCode::FAILURE;
            }
            print!("{body}");
            if !body.ends_with('\n') {
                println!();
            }
            ExitCode::SUCCESS
        }
        Ok(other) => {
            eprintln!("piflab metrics: unexpected response {other:?}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("piflab metrics: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_cache(args: &[String]) -> ExitCode {
    let mut verb = None;
    let mut dir = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cache-dir" => match it.next() {
                Some(p) => dir = Some(PathBuf::from(p)),
                None => {
                    eprintln!("piflab cache: --cache-dir needs a directory");
                    return ExitCode::from(2);
                }
            },
            v @ ("stats" | "clear") if verb.is_none() => verb = Some(v.to_string()),
            other => {
                eprintln!("piflab cache: expected stats|clear, got {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(verb) = verb else {
        eprintln!("piflab cache: expected stats|clear");
        return ExitCode::from(2);
    };
    let dir = dir.unwrap_or_else(ResultCache::default_dir);
    let cache = match ResultCache::open(&dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("piflab cache: cannot open {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    let result = match verb.as_str() {
        "stats" => cache.verify_entries().map(|(valid, corrupt)| {
            println!(
                "{} entries ({valid} valid, {corrupt} corrupt) under {}",
                valid + corrupt,
                cache.root().display()
            )
        }),
        _ => cache
            .clear()
            .map(|n| println!("removed {n} entries under {}", cache.root().display())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("piflab cache {verb}: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn run_args_parse_flags_and_specs() {
        let opts = parse_run_args(&s(&[
            "fig10",
            "--smoke",
            "--threads",
            "3",
            "--out",
            "r.json",
            "--cache-dir",
            "/tmp/c",
        ]))
        .unwrap();
        assert_eq!(opts.specs, vec!["fig10"]);
        assert!(opts.smoke);
        assert_eq!(opts.threads, 3);
        assert_eq!(opts.out, Some(PathBuf::from("r.json")));
        assert_eq!(opts.cache_dir, Some(PathBuf::from("/tmp/c")));
    }

    #[test]
    fn run_args_reject_bad_input() {
        assert!(parse_run_args(&s(&[])).is_err(), "no specs");
        assert!(parse_run_args(&s(&["fig10", "--threads", "0"])).is_err());
        assert!(parse_run_args(&s(&["fig10", "--scale", "huge"])).is_err());
        assert!(parse_run_args(&s(&["fig10", "--wat"])).is_err());
        assert!(
            parse_run_args(&s(&["fig2", "fig3", "--out", "one.json"])).is_err(),
            "--out with several specs"
        );
    }

    #[test]
    fn run_args_all_expands_registry() {
        let opts = parse_run_args(&s(&["--all", "--smoke"])).unwrap();
        assert_eq!(opts.specs.len(), registry::all_specs().len());
    }

    #[test]
    fn profile_flag_parses() {
        let opts = parse_run_args(&s(&["fig10", "--profile"])).unwrap();
        assert!(opts.profile);
        assert!(!parse_run_args(&s(&["fig10"])).unwrap().profile);
    }

    #[test]
    fn addr_args_parse_for_stats_and_metrics() {
        let (addr, format) = parse_addr_args("stats", &[]).unwrap();
        assert_eq!(addr, DEFAULT_ADDR);
        assert_eq!(format, None);
        let (addr, format) = parse_addr_args(
            "metrics",
            &s(&["--addr", "127.0.0.1:9", "--format", "json"]),
        )
        .unwrap();
        assert_eq!(addr, "127.0.0.1:9");
        assert_eq!(format.as_deref(), Some("json"));
        assert!(
            parse_addr_args("stats", &s(&["--format", "json"])).is_err(),
            "stats takes no --format"
        );
        assert!(parse_addr_args("metrics", &s(&["--wat"])).is_err());
    }

    #[test]
    fn cache_flag_defaults_the_directory() {
        let opts = parse_run_args(&s(&["fig10", "--cache"])).unwrap();
        assert_eq!(opts.cache_dir, Some(ResultCache::default_dir()));
        let no_cache = parse_run_args(&s(&["fig10"])).unwrap();
        assert_eq!(no_cache.cache_dir, None);
    }

    #[test]
    fn serve_args_defaults_and_overrides() {
        let d = parse_serve_args(&[]).unwrap();
        assert_eq!(d.addr, DEFAULT_ADDR);
        assert_eq!(d.queue_depth, 16);
        assert_eq!(d.cache_dir, Some(ResultCache::default_dir()));
        assert_eq!(d.workers, 1);
        assert_eq!(d.deadline_ms, None);
        let o = parse_serve_args(&s(&[
            "--addr",
            "127.0.0.1:0",
            "--queue-depth",
            "4",
            "--workers",
            "3",
            "--deadline-ms",
            "30000",
            "--no-cache",
        ]))
        .unwrap();
        assert_eq!(o.addr, "127.0.0.1:0");
        assert_eq!(o.queue_depth, 4);
        assert_eq!(o.workers, 3);
        assert_eq!(o.deadline_ms, Some(30_000));
        assert_eq!(o.cache_dir, None);
        assert!(parse_serve_args(&s(&["--queue-depth", "0"])).is_err());
        assert!(parse_serve_args(&s(&["--workers", "0"])).is_err());
        assert!(parse_serve_args(&s(&["--deadline-ms", "no"])).is_err());
    }

    #[test]
    fn submit_args_parse() {
        let o = parse_submit_args(&s(&["fig10", "--addr", "127.0.0.1:9", "--smoke"])).unwrap();
        assert_eq!(o.specs, vec!["fig10"]);
        assert_eq!(o.addr, "127.0.0.1:9");
        assert!(o.smoke);
        assert_eq!((o.retries, o.retry_base_ms, o.deadline_ms), (3, 200, None));
        let o = parse_submit_args(&s(&[
            "fig10",
            "--retries",
            "0",
            "--retry-base-ms",
            "5",
            "--deadline-ms",
            "1000",
        ]))
        .unwrap();
        assert_eq!(
            (o.retries, o.retry_base_ms, o.deadline_ms),
            (0, 5, Some(1000))
        );
        assert!(parse_submit_args(&s(&["--smoke"])).is_err(), "no specs");
        assert!(parse_submit_args(&s(&["fig10", "--retry-base-ms", "0"])).is_err());
    }

    fn tiny_submit() -> Request {
        Request::Submit {
            id: 1,
            spec: "fig10".to_string(),
            scale: Scale::tiny(),
            smoke: true,
            deadline_ms: None,
        }
    }

    #[test]
    fn refused_connection_is_a_structured_connect_failure() {
        // Bind a listener to reserve a port, then drop it: connecting to
        // the now-closed port is refused (or reset) deterministically.
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let addr = format!("127.0.0.1:{port}");
        let failure = submit_with_retry(&addr, &tiny_submit(), 1, 1, true).unwrap_err();
        match &failure {
            SubmitFailure::Connect { addr: a, .. } => assert_eq!(a, &addr),
            other => panic!("expected connect failure, got {other:?}"),
        }
        assert_eq!(failure.exit_code(), ExitCode::FAILURE);
        let printed = failure.to_string();
        assert!(printed.starts_with("connect: "), "{printed}");
        assert!(printed.contains(&addr), "{printed}");
    }

    #[test]
    fn daemon_closing_mid_exchange_is_a_structured_io_failure() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // Accept and immediately drop every connection: the client sees
        // EOF (or reset) mid-exchange on the first attempt and each of
        // its retries.
        let server = std::thread::spawn(move || {
            for stream in listener.incoming().take(3) {
                drop(stream);
            }
        });
        let failure = submit_with_retry(&addr, &tiny_submit(), 2, 1, true).unwrap_err();
        server.join().unwrap();
        assert!(
            matches!(failure, SubmitFailure::Io { .. }),
            "expected io failure, got {failure:?}"
        );
        assert_eq!(failure.exit_code(), ExitCode::FAILURE);
        assert!(failure.to_string().starts_with("io: "), "{failure}");
    }

    #[test]
    fn exit_codes_split_usage_failures_from_runtime_failures() {
        let usage = SubmitFailure::Daemon {
            kind: "unknown_spec".to_string(),
            message: "unknown spec \"nope\"".to_string(),
            candidates: vec!["fig10".to_string()],
        };
        assert_eq!(usage.exit_code(), ExitCode::from(2));
        let runtime = SubmitFailure::Daemon {
            kind: "failed".to_string(),
            message: "sweep died".to_string(),
            candidates: Vec::new(),
        };
        assert_eq!(runtime.exit_code(), ExitCode::FAILURE);
    }

    #[test]
    fn retry_policy_and_backoff_are_deterministic() {
        let io = SubmitFailure::Io {
            error: "reset".to_string(),
        };
        assert!(attempt_is_retryable(&io, false));
        let bad_frame = SubmitFailure::BadFrame {
            error: "not json".to_string(),
        };
        assert!(!attempt_is_retryable(&bad_frame, false));
        let daemon = SubmitFailure::Daemon {
            kind: "deadline_exceeded".to_string(),
            message: "m".to_string(),
            candidates: Vec::new(),
        };
        assert!(attempt_is_retryable(&daemon, true));
        assert!(!attempt_is_retryable(&daemon, false));
        for attempt in 0..4 {
            let d = backoff_delay(100, attempt, 7);
            assert_eq!(d, backoff_delay(100, attempt, 7), "same seed, same delay");
            let exp = 100u64 << attempt;
            let ms = d.as_millis() as u64;
            assert!(ms >= exp / 2 && ms <= exp, "attempt {attempt}: {ms} ms");
        }
    }

    #[test]
    fn unknown_spec_error_lists_candidates() {
        let err = resolve_spec("not-a-spec").unwrap_err();
        assert!(err.contains("unknown spec"), "{err}");
        for spec in registry::all_specs() {
            assert!(err.contains(spec.name), "missing candidate {}", spec.name);
        }
        assert!(resolve_spec("fig10").is_ok());
    }

    #[test]
    fn scale_names_resolve() {
        assert_eq!(parse_scale_name("tiny"), Some(Scale::tiny()));
        assert_eq!(parse_scale_name("paper"), Some(Scale::paper()));
        assert_eq!(parse_scale_name("big"), None);
        assert_eq!(effective_scale(None, true), Scale::tiny());
        assert_eq!(effective_scale(Some(Scale::quick()), true), Scale::quick());
    }
}
