//! `piflab` — the sweep-orchestration CLI.
//!
//! ```text
//! piflab list
//! piflab run <spec>... [--all] [--smoke] [--scale tiny|quick|paper]
//!            [--threads N] [--out PATH] [--out-dir DIR] [--quiet]
//! piflab check <report.json> <baseline.json> [--tol X]
//! piflab diff <a.json> <b.json>
//! ```
//!
//! `run` executes committed figure specs (see `piflab list`) and writes
//! one `pif-lab-sweep/v1` JSON report per spec. `check` compares a fresh
//! report against a committed golden baseline with per-metric tolerances
//! and exits non-zero on any violation — this is the CI gate that turns
//! every figure into a regression test. `--smoke` is the CI profile:
//! tiny scale, deterministic, seconds per spec.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use pif_lab::json::Json;
use pif_lab::{registry, report, run_spec, Scale, SweepReport};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  piflab list\n  piflab run <spec>... [--all] [--smoke] \
         [--scale tiny|quick|paper] [--threads N] [--out PATH] [--out-dir DIR] [--quiet]\n  \
         piflab check <report.json> <baseline.json> [--tol X]\n  piflab diff <a.json> <b.json>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        _ => usage(),
    }
}

fn cmd_list() -> ExitCode {
    println!("{:<14} {:>5} {:<22} TITLE", "SPEC", "CELLS", "AXIS");
    for spec in registry::all_specs() {
        println!(
            "{:<14} {:>5} {:<22} {}",
            spec.name,
            spec.grid_len(),
            format!("{} x{}", spec.axis.name(), spec.axis.len()),
            spec.title
        );
    }
    ExitCode::SUCCESS
}

struct RunOpts {
    specs: Vec<String>,
    all: bool,
    smoke: bool,
    scale: Option<Scale>,
    threads: usize,
    out: Option<PathBuf>,
    out_dir: PathBuf,
    quiet: bool,
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut opts = RunOpts {
        specs: Vec::new(),
        all: false,
        smoke: false,
        scale: None,
        threads: pif_lab::default_threads(),
        out: None,
        out_dir: PathBuf::from("target/piflab"),
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => opts.all = true,
            "--smoke" => opts.smoke = true,
            "--quiet" => opts.quiet = true,
            "--scale" => match it.next().map(String::as_str) {
                Some("tiny") => opts.scale = Some(Scale::tiny()),
                Some("quick") => opts.scale = Some(Scale::quick()),
                Some("paper") => opts.scale = Some(Scale::paper()),
                other => {
                    eprintln!("--scale needs tiny|quick|paper, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--threads" => match it.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => opts.threads = n,
                _ => {
                    eprintln!("--threads needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--out" => match it.next() {
                Some(p) => opts.out = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--out-dir" => match it.next() {
                Some(p) => opts.out_dir = PathBuf::from(p),
                None => return usage(),
            },
            name if !name.starts_with('-') => opts.specs.push(name.to_string()),
            _ => return usage(),
        }
    }
    if opts.all {
        opts.specs = registry::all_specs()
            .iter()
            .map(|s| s.name.to_string())
            .collect();
    }
    if opts.specs.is_empty() {
        eprintln!("piflab run: name at least one spec, or pass --all (see `piflab list`)");
        return ExitCode::from(2);
    }
    if opts.out.is_some() && opts.specs.len() != 1 {
        eprintln!("--out only applies to a single spec; use --out-dir for several");
        return ExitCode::from(2);
    }
    let scale = opts.scale.unwrap_or_else(|| {
        if opts.smoke {
            Scale::tiny()
        } else {
            Scale::from_env()
        }
    });

    for name in &opts.specs {
        let Some(spec) = registry::spec(name) else {
            eprintln!("piflab run: unknown spec {name:?} (see `piflab list`)");
            return ExitCode::FAILURE;
        };
        if !opts.quiet {
            eprintln!(
                "piflab: {} — {} cells x {} instrs on {} threads",
                spec.name,
                spec.grid_len(),
                scale.instructions,
                opts.threads
            );
        }
        let report = run_spec(&spec, &scale, opts.threads, opts.smoke);
        let json = match report.to_json() {
            Ok(j) => j,
            Err(e) => {
                eprintln!("piflab: refusing to emit report for {name}: {e}");
                return ExitCode::FAILURE;
            }
        };
        // Every emitted artifact must parse and validate before it lands
        // on disk — an invalid report never reaches CI artifacts.
        let reparsed = match Json::parse(&json) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("piflab: emitted invalid JSON for {name}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = report::validate_report(&reparsed) {
            eprintln!("piflab: emitted schema-invalid report for {name}: {e}");
            return ExitCode::FAILURE;
        }
        let path = opts
            .out
            .clone()
            .unwrap_or_else(|| opts.out_dir.join(format!("{name}.json")));
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("piflab: cannot create {}: {e}", dir.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("piflab: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        if !opts.quiet {
            print_summary(&report);
        }
        println!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

/// A compact per-cell stdout summary (the pretty per-figure tables live
/// in the `pif-experiments` binaries; this is the orchestrator's view).
fn print_summary(report: &SweepReport) {
    const HEADLINE: [&str; 6] = [
        "miss_coverage",
        "predictor_coverage",
        "uipc",
        "uipc_speedup_vs_none",
        "retire_sep",
        "footprint_mb",
    ];
    for cell in &report.cells {
        let mut line = format!(
            "  [{:>3}] {:<12} {:<14} {:<20}",
            cell.index,
            cell.workload,
            cell.prefetcher.unwrap_or("-"),
            cell.point
        );
        let mut shown = 0;
        for name in HEADLINE {
            if let Some(v) = cell.metric(name) {
                line.push_str(&format!(" {name}={v:.4}"));
                shown += 1;
            }
        }
        if shown == 0 {
            line.push_str(&format!(" metrics={}", cell.metrics.len()));
        }
        println!("{line}");
    }
}

fn load(path: &str) -> Result<Json, String> {
    let text =
        std::fs::read_to_string(Path::new(path)).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_check(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut tol = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tol" => match it.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => tol = Some(t),
                _ => {
                    eprintln!("--tol needs a non-negative number");
                    return ExitCode::from(2);
                }
            },
            p if !p.starts_with('-') => paths.push(p.to_string()),
            _ => return usage(),
        }
    }
    let [new_path, base_path] = paths.as_slice() else {
        return usage();
    };
    let (new, base) = match (load(new_path), load(base_path)) {
        (Ok(n), Ok(b)) => (n, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("piflab check: {e}");
            return ExitCode::FAILURE;
        }
    };
    match report::check_reports(&new, &base, tol) {
        Ok(summary) => {
            println!(
                "check passed: {} cells, {} metrics within tolerance (max rel delta {:.3e})",
                summary.cells, summary.metrics, summary.max_rel_delta
            );
            ExitCode::SUCCESS
        }
        Err(violations) => {
            eprintln!(
                "piflab check: {} violation(s) against {base_path}:",
                violations.len()
            );
            for v in &violations {
                eprintln!("  {v}");
            }
            ExitCode::FAILURE
        }
    }
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let [a_path, b_path] = args else {
        return usage();
    };
    let (a, b) = match (load(a_path), load(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("piflab diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report::diff_reports(&a, &b));
    ExitCode::SUCCESS
}
