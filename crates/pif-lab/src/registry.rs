//! The committed figure specs: every paper table/figure grid as a
//! [`SweepSpec`], named for `piflab run <name>` and for the golden
//! baselines under `crates/pif-lab/goldens/`.
//!
//! | Spec | Paper artifact |
//! |---|---|
//! | `table1` | Table I — application parameters (static) |
//! | `fig2` | Fig. 2 — stream-observation-point coverage |
//! | `fig3` | Fig. 3 — spatial region characterization |
//! | `fig7` | Fig. 7 — prediction-weighted jump distance CDF |
//! | `fig8-offsets` | Fig. 8 left — accesses around the trigger |
//! | `fig8-sizes` | Fig. 8 right — region-size sweep |
//! | `fig9-lengths` | Fig. 9 left — stream-length CDF |
//! | `fig9-history` | Fig. 9 right — history-capacity sweep |
//! | `fig10` | Fig. 10 — competitive coverage and speedup |
//! | `ablation` | (extension) design-element ablation grid |
//! | `fig-sampling` | (extension) §5 methodology — CI half-width vs sample count |
//! | `fig-bintrace` | (extension) prefetcher comparison on a recorded real-ELF trace |

use pif_core::PifConfig;
use pif_types::RegionGeometry;
use serde::{Deserialize, Serialize};

use crate::spec::{CdfKind, Measure, ParamAxis, PrefetcherKind, SweepSpec};

/// Jump-distance CDF buckets emitted by `fig7` (the paper's x-axis runs
/// to 25).
pub const JUMP_CDF_BUCKETS: usize = 26;

/// Stream-length CDF buckets emitted by `fig9-lengths` (the paper's
/// x-axis runs to 21).
pub const LENGTH_CDF_BUCKETS: usize = 22;

/// History sizes swept by `fig9-history`, in regions (2K..512K).
pub const FIG9_HISTORY_SIZES: [usize; 5] = [2 * 1024, 8 * 1024, 32 * 1024, 128 * 1024, 512 * 1024];

/// Region sizes swept by `fig8-sizes`, in total blocks.
pub const FIG8_REGION_SIZES: [u8; 5] = [1, 2, 4, 6, 8];

/// Trigger-relative offsets emitted by the region measures (the paper
/// plots -4..12; the trigger itself is implicit).
pub const REGION_OFFSETS: [i64; 16] = [-4, -3, -2, -1, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12];

/// Region-density buckets emitted by the region measures (Fig. 3 left).
pub const DENSITY_BUCKETS: [(u32, u32); 6] = [(1, 1), (2, 2), (3, 4), (5, 8), (9, 16), (17, 32)];

/// Discontinuous-run buckets emitted by the region measures (Fig. 3
/// right).
pub const RUN_BUCKETS: [(u32, u32); 5] = [(1, 1), (2, 2), (3, 4), (5, 8), (9, 16)];

/// One ablated PIF design variant (the `ablation` grid's parameter axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AblationVariant {
    /// The paper's full design point.
    Paper,
    /// Regions of a single block (no spatial compaction).
    NoSpatialRegions,
    /// Temporal compactor reduced to one entry (loop records repeat).
    NoTemporalCompactor,
    /// All trap levels recorded in one unified stream.
    NoTrapSeparation,
    /// History shrunk to 1K regions.
    TinyHistory,
    /// A single stream address buffer.
    OneSab,
    /// No preceding blocks in the region (0 preceding + 7 succeeding).
    NoPrecedingBlocks,
}

impl AblationVariant {
    /// All variants in presentation order.
    pub const ALL: [AblationVariant; 7] = [
        AblationVariant::Paper,
        AblationVariant::NoSpatialRegions,
        AblationVariant::NoTemporalCompactor,
        AblationVariant::NoTrapSeparation,
        AblationVariant::TinyHistory,
        AblationVariant::OneSab,
        AblationVariant::NoPrecedingBlocks,
    ];

    /// Human-readable label (also the axis point label in reports).
    pub fn label(self) -> &'static str {
        match self {
            AblationVariant::Paper => "paper design",
            AblationVariant::NoSpatialRegions => "- spatial regions",
            AblationVariant::NoTemporalCompactor => "- temporal compactor",
            AblationVariant::NoTrapSeparation => "- trap separation",
            AblationVariant::TinyHistory => "- deep history (1K)",
            AblationVariant::OneSab => "- SAB pool (1 SAB)",
            AblationVariant::NoPrecedingBlocks => "- preceding blocks",
        }
    }

    /// The PIF configuration implementing this variant.
    pub fn config(self) -> PifConfig {
        let base = PifConfig::paper_default();
        match self {
            AblationVariant::Paper => base,
            AblationVariant::NoSpatialRegions => {
                base.with_geometry(RegionGeometry::new(0, 0).expect("single block"))
            }
            AblationVariant::NoTemporalCompactor => PifConfig {
                temporal_entries: 1,
                ..base
            },
            AblationVariant::NoTrapSeparation => PifConfig {
                separate_trap_levels: false,
                ..base
            },
            AblationVariant::TinyHistory => base.with_history_capacity(1024),
            AblationVariant::OneSab => base.with_sab_count(1),
            AblationVariant::NoPrecedingBlocks => {
                base.with_geometry(RegionGeometry::new(0, 7).expect("forward-only region"))
            }
        }
    }
}

/// The §5.1/§5.5 "no storage limitations" PIF configuration used by the
/// fig7/fig9-lengths/fig10 grids.
fn unbounded_pif() -> PifConfig {
    PifConfig::paper_default()
        .with_history_capacity(8 * 1024 * 1024)
        .with_index_entries(64 * 1024)
}

/// Table I: static application parameters.
pub fn table1() -> SweepSpec {
    SweepSpec::new("table1", "Table I: application parameters", Measure::Static)
}

/// Fig. 2: stream-observation-point coverage.
pub fn fig2() -> SweepSpec {
    SweepSpec::new(
        "fig2",
        "Fig. 2: correctly predicted L1-I misses per stream point",
        Measure::StreamCoverage,
    )
}

/// Fig. 3: spatial region characterization (32-block probe regions).
pub fn fig3() -> SweepSpec {
    SweepSpec::new(
        "fig3",
        "Fig. 3: spatial region density and discontinuous runs",
        Measure::Regions {
            preceding: 8,
            succeeding: 23,
        },
    )
}

/// Fig. 7: prediction-weighted jump-distance CDF (unbounded history).
pub fn fig7() -> SweepSpec {
    SweepSpec::new(
        "fig7",
        "Fig. 7: jump distance weighted by predictions",
        Measure::PifAnalysis(CdfKind::JumpDistance),
    )
    .with_pif_base(unbounded_pif())
}

/// Fig. 8 left: access distribution around the trigger ((4, 12) probe).
pub fn fig8_offsets() -> SweepSpec {
    SweepSpec::new(
        "fig8-offsets",
        "Fig. 8 left: accesses around the trigger",
        Measure::Regions {
            preceding: 4,
            succeeding: 12,
        },
    )
}

/// Fig. 8 right: spatial region size sweep.
pub fn fig8_sizes() -> SweepSpec {
    SweepSpec::new(
        "fig8-sizes",
        "Fig. 8 right: region size sensitivity",
        Measure::PifAnalysis(CdfKind::None),
    )
    .with_axis(ParamAxis::RegionBlocks(FIG8_REGION_SIZES.to_vec()))
}

/// Fig. 9 left: stream-length CDF (unbounded history).
pub fn fig9_lengths() -> SweepSpec {
    SweepSpec::new(
        "fig9-lengths",
        "Fig. 9 left: prediction-weighted stream lengths",
        Measure::PifAnalysis(CdfKind::StreamLength),
    )
    .with_pif_base(unbounded_pif())
}

/// Fig. 9 right: history-capacity sweep.
pub fn fig9_history() -> SweepSpec {
    SweepSpec::new(
        "fig9-history",
        "Fig. 9 right: history size sensitivity",
        Measure::PifAnalysis(CdfKind::None),
    )
    .with_axis(ParamAxis::HistoryCapacity(FIG9_HISTORY_SIZES.to_vec()))
}

/// Fig. 10: competitive comparison (engine runs, unbounded predictors).
pub fn fig10() -> SweepSpec {
    SweepSpec::new(
        "fig10",
        "Fig. 10: competitive coverage and speedup",
        Measure::Engine,
    )
    .with_prefetchers(vec![
        PrefetcherKind::None,
        PrefetcherKind::NextLine,
        PrefetcherKind::TifsUnbounded,
        PrefetcherKind::Pif,
        PrefetcherKind::Perfect,
    ])
    .with_pif_base(unbounded_pif())
}

/// The design-element ablation grid.
pub fn ablation() -> SweepSpec {
    SweepSpec::new(
        "ablation",
        "Design ablations: coverage cost of removing each element",
        Measure::Engine,
    )
    .with_prefetchers(vec![PrefetcherKind::Pif])
    .with_axis(ParamAxis::PifPoints(
        AblationVariant::ALL
            .iter()
            .map(|v| (v.label().to_string(), v.config()))
            .collect(),
    ))
}

/// Sample counts swept by `fig-sampling`.
pub const FIG_SAMPLING_COUNTS: [u32; 5] = [2, 4, 8, 16, 32];

/// The sampled-simulation methodology grid: how the 95% confidence
/// half-width of sampled UIPC shrinks as the sample count grows (the
/// paper's "±5% at 95% confidence" SimFlex methodology, §5). Two
/// workloads × {None, PIF} keep the grid small enough for CI while
/// exercising both the baseline and the prefetched fast path.
pub fn fig_sampling() -> SweepSpec {
    SweepSpec::new(
        "fig-sampling",
        "Sampled simulation: CI half-width vs sample count",
        Measure::Sampled { samples: 8 },
    )
    .with_workloads(vec!["OLTP-DB2", "Web-Apache"])
    .with_prefetchers(vec![PrefetcherKind::None, PrefetcherKind::Pif])
    .with_axis(ParamAxis::SampleCount(FIG_SAMPLING_COUNTS.to_vec()))
}

/// The real-binary front-end grid: every prefetcher on one recorded ELF
/// trace ([`crate::recorded::DEMO_WORKLOAD`]). The workload resolves to
/// `target/bintrace/bintrace-demo.pift` when `tracectl record-elf` has
/// produced one, and otherwise synthesizes the identical stream from the
/// `pif-bintrace` demo fixture — so this spec (and its golden) gates the
/// whole record-elf pipeline without making the registry depend on
/// pre-recorded files.
pub fn fig_bintrace() -> SweepSpec {
    SweepSpec::new(
        "fig-bintrace",
        "Recorded ELF trace: prefetcher comparison on a real-binary walk",
        Measure::Engine,
    )
    .with_recorded_workloads()
    .with_workloads(vec![crate::recorded::DEMO_WORKLOAD])
    .with_prefetchers(vec![
        PrefetcherKind::None,
        PrefetcherKind::NextLine,
        PrefetcherKind::Tifs,
        PrefetcherKind::Discontinuity,
        PrefetcherKind::Pif,
        PrefetcherKind::Perfect,
    ])
}

/// Every committed figure spec, in paper order.
pub fn all_specs() -> Vec<SweepSpec> {
    vec![
        table1(),
        fig2(),
        fig3(),
        fig7(),
        fig8_offsets(),
        fig8_sizes(),
        fig9_lengths(),
        fig9_history(),
        fig10(),
        ablation(),
        fig_sampling(),
        fig_bintrace(),
    ]
}

/// Looks up a committed spec by name.
pub fn spec(name: &str) -> Option<SweepSpec> {
    all_specs().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let specs = all_specs();
        assert_eq!(specs.len(), 12);
        for s in &specs {
            assert_eq!(spec(s.name).map(|r| r.name), Some(s.name), "{}", s.name);
            assert!(s.grid_len() > 0);
        }
        let mut names: Vec<_> = specs.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), specs.len());
        assert!(spec("nope").is_none());
    }

    #[test]
    fn ablation_variants_produce_valid_configs() {
        for v in AblationVariant::ALL {
            assert!(v.config().validate().is_ok(), "{} invalid", v.label());
        }
        assert_eq!(AblationVariant::Paper.config(), PifConfig::paper_default());
        assert!(
            !AblationVariant::NoTrapSeparation
                .config()
                .separate_trap_levels
        );
        assert_eq!(
            AblationVariant::NoSpatialRegions
                .config()
                .geometry
                .total_blocks(),
            1
        );
    }

    #[test]
    fn acceptance_grids_have_expected_shapes() {
        assert_eq!(table1().grid_len(), 6);
        assert_eq!(fig7().grid_len(), 6);
        assert_eq!(fig9_history().grid_len(), 6 * FIG9_HISTORY_SIZES.len());
        assert_eq!(fig10().grid_len(), 6 * 5);
        assert_eq!(ablation().grid_len(), 6 * AblationVariant::ALL.len());
        assert_eq!(fig_sampling().grid_len(), 2 * 2 * FIG_SAMPLING_COUNTS.len());
        assert_eq!(fig_bintrace().grid_len(), 6);
    }

    #[test]
    fn fig_bintrace_is_recorded_and_explicit() {
        let spec = fig_bintrace();
        assert!(spec.recorded);
        assert_eq!(spec.workload_names(), vec!["bintrace-demo"]);
        assert_eq!(spec.prefetchers.len(), 6);
    }
}
