//! Wall-clock timing sidecars: the `pif-lab-profile/v1` document.
//!
//! Sweep reports are a byte-identity contract — the same `(spec, scale)`
//! must serialize to the same bytes across threads, schedules, and
//! cache states — so wall-clock data can **never** live inside a
//! [`crate::SweepReport`]. Profiling therefore rides in a separate
//! sidecar document: [`crate::run_spec_profiled`] collects per-cell
//! execution timings into a [`SweepProfile`], and `piflab run --profile`
//! writes it *next to* the report (`<report>.profile.json`), leaving the
//! report bytes untouched.

use crate::json::escape;

/// One cell's timing in a [`SweepProfile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellProfile {
    /// Grid index (matches the report cell of the same index).
    pub index: usize,
    /// Workload name.
    pub workload: String,
    /// Prefetcher label, when the spec sweeps prefetchers.
    pub prefetcher: Option<&'static str>,
    /// Axis point label.
    pub point: String,
    /// Whether the cell was replayed from the result cache.
    pub cached: bool,
    /// Wall-clock microseconds spent simulating the cell (0 when
    /// `cached` — replay cost is not simulation cost).
    pub exec_us: u64,
}

/// Per-cell wall-clock timings of one sweep run.
///
/// Schedule- and machine-dependent by nature: two runs of the same spec
/// produce identical reports but different profiles. Diagnostics only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepProfile {
    /// The spec that ran.
    pub spec: String,
    /// Pool worker count of the run.
    pub threads: usize,
    /// One entry per grid cell, ordered by cell index.
    pub cells: Vec<CellProfile>,
}

impl SweepProfile {
    /// Total simulation time across cells, saturating, in microseconds.
    pub fn total_exec_us(&self) -> u64 {
        self.cells
            .iter()
            .fold(0u64, |acc, c| acc.saturating_add(c.exec_us))
    }

    /// Serializes the `pif-lab-profile/v1` document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{{\"schema\": \"pif-lab-profile/v1\",\n  \"spec\": \"{}\",\n  \
             \"threads\": {},\n  \"total_exec_us\": {},\n  \"cells\": [",
            escape(&self.spec),
            self.threads,
            self.total_exec_us()
        ));
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"index\": {}, \"workload\": \"{}\", \"prefetcher\": {}, \
                 \"point\": \"{}\", \"cached\": {}, \"exec_us\": {}}}",
                c.index,
                escape(&c.workload),
                match c.prefetcher {
                    Some(p) => format!("\"{}\"", escape(p)),
                    None => "null".to_string(),
                },
                escape(&c.point),
                c.cached,
                c.exec_us
            ));
        }
        s.push_str("]}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::{registry, run_spec, run_spec_profiled, RunOptions, Scale};

    fn sample() -> SweepProfile {
        SweepProfile {
            spec: "fig10".to_string(),
            threads: 2,
            cells: vec![
                CellProfile {
                    index: 0,
                    workload: "OLTP-DB2".to_string(),
                    prefetcher: Some("PIF"),
                    point: "default".to_string(),
                    cached: false,
                    exec_us: 1234,
                },
                CellProfile {
                    index: 1,
                    workload: "Web-Apache".to_string(),
                    prefetcher: None,
                    point: "default".to_string(),
                    cached: true,
                    exec_us: 0,
                },
            ],
        }
    }

    #[test]
    fn profile_json_parses_and_carries_schema() {
        let p = sample();
        let j = Json::parse(&p.to_json()).expect("profile JSON parses");
        assert_eq!(
            j.get("schema").and_then(Json::as_str),
            Some("pif-lab-profile/v1")
        );
        assert_eq!(j.get("total_exec_us").and_then(Json::as_f64), Some(1234.0));
        let cells = j.get("cells").and_then(Json::as_arr).expect("cells array");
        assert_eq!(cells.len(), 2);
        assert_eq!(
            cells[0].get("prefetcher").and_then(Json::as_str),
            Some("PIF")
        );
        assert_eq!(cells[1].get("prefetcher"), Some(&Json::Null));
        assert_eq!(cells[1].get("cached").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn profiled_run_report_is_byte_identical_to_plain_run() {
        let spec = registry::table1();
        let opts = RunOptions::new()
            .scale(Scale::tiny())
            .threads(2)
            .smoke(true);
        let plain = run_spec(&spec, &opts);
        let (profiled, stats, profile) = run_spec_profiled(&spec, &opts);
        assert_eq!(
            plain.to_json().unwrap(),
            profiled.to_json().unwrap(),
            "profiling must not perturb report bytes"
        );
        assert_eq!(stats.executed_cells, spec.grid_len());
        assert_eq!(profile.cells.len(), spec.grid_len());
        assert_eq!(profile.threads, 2);
        for cell in &profile.cells {
            assert!(!cell.cached, "no cache attached");
            assert!(cell.exec_us > 0, "executed cell {} untimed", cell.index);
        }
    }
}
