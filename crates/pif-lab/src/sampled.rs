//! Pool-parallel sampled execution.
//!
//! [`pif_sim::sampling`] owns the serial drivers and the per-window
//! building blocks ([`run_one_window`], [`assemble_report`]); this module
//! fans independent windows out on a [`Pool`] and splices the results
//! back together. The contract is strict determinism: for any plan whose
//! windows are independent ([`SamplingPlan::windows_independent`]), the
//! merged [`SampledRunReport`] is **byte-identical** to the serial run's
//! — and therefore identical across thread counts — because
//!
//! 1. each window runs on a fresh engine + prefetcher (no shared mutable
//!    state to race on),
//! 2. results are merged by window index, not completion order, and
//! 3. plans using [`WarmStrategy::Continuous`](pif_sim::sampling::WarmStrategy)
//!    — whose windows consume predictor state produced by earlier windows
//!    — transparently fall back to the serial driver rather than
//!    approximate it.
//!
//! The aggregate throughput of a fan-out therefore scales with worker
//! count while the science stays fixed: `--threads` is a scheduling
//! knob, never a results knob.

use std::path::Path;

use pif_sim::prefetch::Prefetcher;
use pif_sim::sampling::{
    assemble_report, run_one_window, run_sampled, sample_trace_file, SampleResult, SampleWindow,
    SampledRunReport, SamplingPlan,
};
use pif_sim::EngineConfig;
use pif_trace::{TraceDecodeError, TraceReader};
use pif_types::InstrSource;

use crate::service::Pool;

/// Parallel counterpart of [`run_sampled`]: fans the plan's windows out
/// on `pool` and merges the per-window results by index.
///
/// `open_at` and `prefetcher_for` are called from worker threads (hence
/// `Fn + Sync` rather than the serial driver's `FnMut`); both must be
/// pure functions of the window for the determinism contract to hold —
/// which the workspace drivers guarantee by deriving everything from
/// `(plan, window)`.
///
/// Plans with [`WarmStrategy::Continuous`](pif_sim::sampling::WarmStrategy)
/// windows are inherently serial (predictor state threads through them in
/// file order); those run on the serial driver regardless of `pool`, so
/// callers never need to special-case the strategy themselves.
pub fn run_sampled_parallel<P, S, O, F>(
    config: &EngineConfig,
    plan: &SamplingPlan,
    total_records: u64,
    open_at: O,
    prefetcher_for: F,
    pool: &Pool,
) -> SampledRunReport
where
    P: Prefetcher,
    S: InstrSource,
    O: Fn(&SampleWindow) -> S + Sync,
    F: Fn(usize) -> P + Sync,
{
    if !plan.windows_independent() {
        return run_sampled(config, plan, total_records, &open_at, &prefetcher_for);
    }
    let windows = plan.windows(total_records);
    let samples = pool.run_indexed(windows.len(), |i| {
        let window = windows[i];
        run_one_window(
            config,
            plan,
            window,
            open_at(&window),
            prefetcher_for(window.index),
        )
    });
    assemble_report(plan, total_records, samples)
}

/// Parallel counterpart of [`sample_trace_file`]: samples a trace file
/// out of core with one reader **per window**, scheduled on `pool`.
///
/// The container is scanned once up front for the chunk index and record
/// count; each worker then clones the index into its own reader via
/// [`TraceReader::open_with_index`], so the per-window cost is one
/// `open` + one seek + the window's decode — no per-worker header
/// rescans, and no reader is ever shared between threads. v1 traces have
/// no chunk index; their per-window readers fall back to linear skips,
/// slower but identically correct.
///
/// # Errors
///
/// I/O and decode errors from opening, indexing, seeking, or reading the
/// sampled windows. When several windows fail, the error reported is the
/// lowest-indexed window's — the same one the serial driver, which walks
/// windows in index order, would have hit first.
pub fn sample_trace_file_parallel<P, F>(
    config: &EngineConfig,
    plan: &SamplingPlan,
    path: &Path,
    prefetcher_for: F,
    pool: &Pool,
) -> Result<SampledRunReport, TraceDecodeError>
where
    P: Prefetcher,
    F: Fn(usize) -> P + Sync,
{
    if !plan.windows_independent() {
        return sample_trace_file(config, plan, path, &prefetcher_for);
    }
    let file = std::fs::File::open(path)?;
    let reader = TraceReader::open_indexed(std::io::BufReader::new(file))?;
    let total = reader
        .declared_count()
        .expect("indexed v2 and v1 readers both know their record count");
    let index = reader.chunk_index().cloned();
    drop(reader);
    let windows = plan.windows(total);
    let results = pool.run_indexed(windows.len(), |i| {
        run_window_from_file(
            config,
            plan,
            windows[i],
            path,
            index.as_ref(),
            &prefetcher_for,
        )
    });
    let mut samples = Vec::with_capacity(results.len());
    for r in results {
        samples.push(r?);
    }
    Ok(assemble_report(plan, total, samples))
}

/// One worker's job: open a private reader over `path`, seek to the
/// window, and run it.
fn run_window_from_file<P: Prefetcher>(
    config: &EngineConfig,
    plan: &SamplingPlan,
    window: SampleWindow,
    path: &Path,
    index: Option<&pif_trace::ChunkIndex>,
    prefetcher_for: &(impl Fn(usize) -> P + Sync),
) -> Result<SampleResult, TraceDecodeError> {
    let file = std::fs::File::open(path)?;
    let buf = std::io::BufReader::new(file);
    let mut reader = match index {
        Some(ix) => TraceReader::open_with_index(buf, ix.clone())?,
        None => TraceReader::open(buf)?,
    };
    reader.seek_to_record(window.warmup_start)?;
    let mut source = reader.instrs_mut();
    let sample = run_one_window(
        config,
        plan,
        window,
        source.by_ref().take(window.len() as usize),
        prefetcher_for(window.index),
    );
    if let Some(e) = source.take_error() {
        return Err(e);
    }
    Ok(sample)
}
