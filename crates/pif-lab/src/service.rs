//! Reusable sweep execution: the work-stealing [`Pool`] and the
//! long-running [`Service`] job queue behind `piflab serve`.
//!
//! [`Pool`] is the thread-count policy extracted from the old
//! free-function façade (the former `pool` module, now removed):
//! construct one with the worker count and every indexed run or parallel
//! map goes through it, so thread plumbing lives in one place.
//! [`Pool::run_indexed_stats`] additionally reports a [`PoolRunStats`]
//! with a work-stealing interleave counter.
//!
//! [`Service`] turns [`crate::run_spec`] into simulation-as-a-service: a
//! bounded job queue fed by [`Service::submit`] (which **blocks when the
//! queue is full** — backpressure, not unbounded buffering), drained by a
//! worker thread that executes each sweep on the service's pool and
//! result cache, delivering each result through its [`SubmitHandle`].
//! [`Service::shutdown`] is graceful: already-queued jobs finish, new
//! submissions are refused, and the worker is joined before it returns.
//!
//! The service is instrumented with a `pif_obs` registry: per-job
//! queue-wait and execution-latency histograms, job/steal counters, and
//! cache hit/miss/corrupt gauges, rendered on demand by
//! [`Service::render_metrics`] (the daemon's `metrics` protocol verb).
//! The same latencies are folded into [`ServiceStats`] as
//! [`LatencySummary`] values for the `stats` verb. None of this feeds
//! back into sweep results — reports stay byte-identical.
//!
//! ```
//! use pif_lab::{registry, service::{Service, ServiceConfig, SweepJob}, Scale};
//!
//! let service = Service::start(ServiceConfig::default());
//! let handle = service
//!     .submit(SweepJob::new(registry::table1(), Scale::tiny()).smoke(true))
//!     .expect("queue open");
//! let outcome = handle.wait().expect("sweep ran");
//! assert_eq!(outcome.report.cells.len(), 6);
//! service.shutdown();
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::cache::{CacheStats, ResultCache};
use crate::report::SweepReport;
use crate::scale::Scale;
use crate::spec::SweepSpec;
use crate::{RunOptions, SweepRunStats};

/// Number of worker threads to use by default: one per available core.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A scoped, work-stealing job pool with deterministic result merge.
///
/// Workers pull job indices from a shared atomic counter (the idle
/// worker steals the next unclaimed job, so an expensive job never
/// serializes the grid behind it) and deposit each result into its
/// index's slot. The merged output is ordered by job index —
/// **independent of thread count and schedule** — which is what makes
/// sweep reports byte-identical across `--threads` settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    /// A pool with one worker per available core.
    fn default() -> Self {
        Pool::new(default_threads())
    }
}

impl Pool {
    /// A pool running jobs on `threads` workers (at least 1).
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `n_jobs` jobs on this pool's workers and returns the results
    /// ordered by job index.
    ///
    /// `f` is called with each job index exactly once. The assignment of
    /// jobs to workers is dynamic (first idle worker takes the next
    /// job), but the returned `Vec` is always
    /// `[f(0), f(1), …, f(n_jobs - 1)]`.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any worker.
    pub fn run_indexed<R, F>(&self, n_jobs: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.run_indexed_stats(n_jobs, f).0
    }

    /// [`Pool::run_indexed`], also reporting scheduling counters.
    ///
    /// The counters describe *how* the run was scheduled, never *what*
    /// it computed — results stay ordered by job index regardless.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any worker.
    pub fn run_indexed_stats<R, F>(&self, n_jobs: usize, f: F) -> (Vec<R>, PoolRunStats)
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let threads = self.threads.min(n_jobs.max(1));
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();
        // Which worker claimed each job index, for the steal counter.
        let claims: Vec<AtomicUsize> = (0..n_jobs).map(|_| AtomicUsize::new(usize::MAX)).collect();
        std::thread::scope(|s| {
            let (next, claims, slots, f) = (&next, &claims, &slots, &f);
            for worker in 0..threads {
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_jobs {
                        break;
                    }
                    claims[i].store(worker, Ordering::Relaxed);
                    let result = f(i);
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });
        let stolen_jobs = claims
            .windows(2)
            .filter(|w| w[0].load(Ordering::Relaxed) != w[1].load(Ordering::Relaxed))
            .count() as u64;
        let results = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("job completed")
            })
            .collect();
        (
            results,
            PoolRunStats {
                jobs: n_jobs as u64,
                stolen_jobs,
            },
        )
    }

    /// Maps `f` over `items` in parallel (one logical job per item),
    /// preserving input order in the output.
    pub fn parallel_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        self.run_indexed(n, |i| {
            let item = slots[i]
                .lock()
                .expect("item slot poisoned")
                .take()
                .expect("item taken once");
            f(item)
        })
    }
}

/// Scheduling counters of one [`Pool::run_indexed_stats`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolRunStats {
    /// Jobs executed.
    pub jobs: u64,
    /// Jobs whose worker differed from the worker that claimed the
    /// preceding job index — adjacent-index handoffs, a measure of
    /// work-stealing interleave. Always 0 on a single worker, and
    /// schedule-dependent otherwise: diagnostics only, never part of a
    /// report.
    pub stolen_jobs: u64,
}

/// Compact latency accounting: sample count, total, and maximum, in
/// microseconds.
///
/// Integer-only so it stays `Eq` and renders exactly in the `piflab/1`
/// protocol; the mean is derived on demand by [`LatencySummary::mean_us`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Recorded samples.
    pub count: u64,
    /// Sum of all samples, saturating, in microseconds.
    pub total_us: u64,
    /// Largest sample, in microseconds.
    pub max_us: u64,
}

impl LatencySummary {
    /// Folds one sample in.
    pub fn record(&mut self, us: u64) {
        self.count += 1;
        self.total_us = self.total_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Mean sample in microseconds (0.0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64
        }
    }
}

/// Saturating microseconds of a [`Duration`], for latency counters.
pub(crate) fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Wire format of [`Service::render_metrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Prometheus text exposition format.
    Prometheus,
    /// The `pif-obs/v1` JSON document.
    Json,
}

/// Configuration of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum queued (not yet running) jobs before
    /// [`Service::submit`] blocks.
    pub queue_depth: usize,
    /// Worker threads of the pool each sweep runs on.
    pub threads: usize,
    /// Directory of the persistent result cache, if any.
    pub cache_dir: Option<std::path::PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_depth: 16,
            threads: default_threads(),
            cache_dir: None,
        }
    }
}

/// One sweep submission: a spec plus its run parameters.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// The grid to run.
    pub spec: SweepSpec,
    /// The scale to run it at.
    pub scale: Scale,
    /// Whether the report is marked as a smoke run.
    pub smoke: bool,
}

impl SweepJob {
    /// A job for `spec` at `scale` (non-smoke).
    pub fn new(spec: SweepSpec, scale: Scale) -> Self {
        SweepJob {
            spec,
            scale,
            smoke: false,
        }
    }

    /// Sets the smoke flag.
    #[must_use]
    pub fn smoke(mut self, smoke: bool) -> Self {
        self.smoke = smoke;
        self
    }
}

/// A finished sweep: the report plus how much of it came from the cache.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The merged report (byte-identical to a direct [`crate::run_spec`]
    /// of the same job, whether or not cells came from the cache).
    pub report: SweepReport,
    /// Cells answered from the result cache.
    pub cached_cells: usize,
    /// Cells simulated fresh.
    pub executed_cells: usize,
    /// Adjacent-index worker handoffs in the pool run (see
    /// [`PoolRunStats::stolen_jobs`]).
    pub stolen_jobs: u64,
}

type ResultSlot = Arc<(Mutex<Option<Result<SweepOutcome, String>>>, Condvar)>;

/// The caller's side of one submission: blocks until the service worker
/// delivers the sweep's outcome.
#[derive(Debug, Clone)]
pub struct SubmitHandle {
    slot: ResultSlot,
}

impl SubmitHandle {
    fn new() -> Self {
        SubmitHandle {
            slot: Arc::new((Mutex::new(None), Condvar::new())),
        }
    }

    fn deliver(&self, result: Result<SweepOutcome, String>) {
        let (lock, cv) = &*self.slot;
        *lock.lock().expect("result slot poisoned") = Some(result);
        cv.notify_all();
    }

    /// Blocks until the job completes.
    ///
    /// # Errors
    ///
    /// Returns the job's failure message if the sweep panicked or the
    /// service shut down before running it.
    pub fn wait(&self) -> Result<SweepOutcome, String> {
        let (lock, cv) = &*self.slot;
        let mut guard = lock.lock().expect("result slot poisoned");
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            guard = cv.wait(guard).expect("result slot poisoned");
        }
    }
}

/// Point-in-time counters of a [`Service`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs accepted by [`Service::submit`].
    pub submitted: u64,
    /// Jobs completed (delivered, successfully or not).
    pub completed: u64,
    /// High-water mark of the queue depth (for backpressure asserts).
    pub max_queue_depth: usize,
    /// Time completed jobs spent queued before a worker picked them up.
    pub queue_wait: LatencySummary,
    /// Wall-clock execution time of completed jobs.
    pub exec: LatencySummary,
    /// Total adjacent-index worker handoffs across completed jobs'
    /// pool runs (see [`PoolRunStats::stolen_jobs`]).
    pub stolen_jobs: u64,
    /// Result-cache counters, when a cache is attached.
    pub cache: Option<CacheStats>,
}

#[derive(Debug)]
struct QueueState {
    queue: VecDeque<(SweepJob, SubmitHandle, Instant)>,
    closed: bool,
    submitted: u64,
    completed: u64,
    max_depth: usize,
    queue_wait: LatencySummary,
    exec: LatencySummary,
    stolen_jobs: u64,
}

/// The service's `pif_obs` instrumentation: one registry plus the
/// pre-registered handles the worker loop records into.
#[derive(Debug)]
struct ServiceMetrics {
    registry: pif_obs::Registry,
    queue_wait_us: pif_obs::Histogram,
    exec_us: pif_obs::Histogram,
    jobs_submitted: pif_obs::Counter,
    jobs_completed: pif_obs::Counter,
    jobs_failed: pif_obs::Counter,
    stolen_jobs: pif_obs::Counter,
    cache_hits: pif_obs::Gauge,
    cache_misses: pif_obs::Gauge,
    cache_corrupt: pif_obs::Gauge,
}

impl ServiceMetrics {
    fn new() -> Self {
        let registry = pif_obs::Registry::new();
        ServiceMetrics {
            queue_wait_us: registry.histogram(
                "pif_service_queue_wait_us",
                "Microseconds jobs spent queued before execution",
            ),
            exec_us: registry.histogram(
                "pif_service_exec_us",
                "Wall-clock microseconds per executed job",
            ),
            jobs_submitted: registry.counter(
                "pif_service_jobs_submitted",
                "Jobs accepted into the service queue",
            ),
            jobs_completed: registry.counter(
                "pif_service_jobs_completed",
                "Jobs delivered (successfully or not)",
            ),
            jobs_failed: registry
                .counter("pif_service_jobs_failed", "Jobs that panicked or errored"),
            stolen_jobs: registry.counter(
                "pif_service_stolen_jobs",
                "Adjacent-index worker handoffs across pool runs",
            ),
            cache_hits: registry.gauge("pif_service_cache_hits", "Result-cache lookup hits"),
            cache_misses: registry.gauge("pif_service_cache_misses", "Result-cache lookup misses"),
            cache_corrupt: registry.gauge(
                "pif_service_cache_corrupt",
                "Result-cache entries that existed but failed validation",
            ),
            registry,
        }
    }

    /// Copies the cache's external counters into the registry's gauges
    /// so a scrape sees current values.
    fn sync_cache(&self, cache: Option<&ResultCache>) {
        if let Some(stats) = cache.map(ResultCache::stats) {
            self.cache_hits.set(stats.hits);
            self.cache_misses.set(stats.misses);
            self.cache_corrupt.set(stats.corrupt);
        }
    }
}

#[derive(Debug)]
struct Inner {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    queue_depth: usize,
    pool_threads: usize,
    cache: Option<ResultCache>,
    metrics: ServiceMetrics,
}

/// A long-running sweep executor with a bounded job queue.
///
/// See the module docs for the lifecycle; `piflab serve` wraps one of
/// these in the line-delimited JSON protocol of [`crate::protocol`].
#[derive(Debug)]
pub struct Service {
    inner: Arc<Inner>,
    worker: Option<JoinHandle<()>>,
}

impl Service {
    /// Starts the service worker.
    ///
    /// # Panics
    ///
    /// Panics if `config.cache_dir` names a directory that cannot be
    /// created (a daemon that silently ran uncached would defeat the
    /// point of pointing it at a cache).
    pub fn start(config: ServiceConfig) -> Self {
        let cache = config.cache_dir.map(|dir| {
            ResultCache::open(&dir)
                .unwrap_or_else(|e| panic!("cannot open cache at {}: {e}", dir.display()))
        });
        let inner = Arc::new(Inner {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                closed: false,
                submitted: 0,
                completed: 0,
                max_depth: 0,
                queue_wait: LatencySummary::default(),
                exec: LatencySummary::default(),
                stolen_jobs: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            queue_depth: config.queue_depth.max(1),
            pool_threads: config.threads.max(1),
            cache,
            metrics: ServiceMetrics::new(),
        });
        let worker_inner = Arc::clone(&inner);
        let worker = std::thread::Builder::new()
            .name("pifd-worker".into())
            .spawn(move || worker_loop(&worker_inner))
            .expect("spawn service worker");
        Service {
            inner,
            worker: Some(worker),
        }
    }

    /// Enqueues a job, **blocking while the queue is at capacity**
    /// (backpressure: a flood of submissions throttles the submitters,
    /// it does not balloon daemon memory).
    ///
    /// # Errors
    ///
    /// Refuses the job if the service is shutting down.
    pub fn submit(&self, job: SweepJob) -> Result<SubmitHandle, String> {
        let mut state = self.inner.state.lock().expect("service state poisoned");
        while !state.closed && state.queue.len() >= self.inner.queue_depth {
            state = self
                .inner
                .not_full
                .wait(state)
                .expect("service state poisoned");
        }
        if state.closed {
            return Err("service is shut down".to_string());
        }
        let handle = SubmitHandle::new();
        pif_obs::log::debug(
            "pif_lab::service",
            "job submitted",
            &[("spec", &job.spec.name), ("queued", &state.queue.len())],
        );
        state.queue.push_back((job, handle.clone(), Instant::now()));
        state.submitted += 1;
        state.max_depth = state.max_depth.max(state.queue.len());
        self.inner.metrics.jobs_submitted.inc();
        self.inner.not_empty.notify_one();
        Ok(handle)
    }

    /// Current counters.
    pub fn stats(&self) -> ServiceStats {
        let state = self.inner.state.lock().expect("service state poisoned");
        ServiceStats {
            submitted: state.submitted,
            completed: state.completed,
            max_queue_depth: state.max_depth,
            queue_wait: state.queue_wait,
            exec: state.exec,
            stolen_jobs: state.stolen_jobs,
            cache: self.inner.cache.as_ref().map(ResultCache::stats),
        }
    }

    /// The attached result cache, if any.
    pub fn cache(&self) -> Option<&ResultCache> {
        self.inner.cache.as_ref()
    }

    /// Renders the service's metrics registry in `format`, syncing the
    /// cache gauges first so the scrape is current.
    pub fn render_metrics(&self, format: MetricsFormat) -> String {
        self.inner.metrics.sync_cache(self.inner.cache.as_ref());
        match format {
            MetricsFormat::Prometheus => pif_obs::render_prometheus(&self.inner.metrics.registry),
            MetricsFormat::Json => pif_obs::render_json(&self.inner.metrics.registry),
        }
    }

    /// Graceful shutdown: refuses new submissions, drains every queued
    /// job, joins the worker, and returns the final counters.
    pub fn shutdown(mut self) -> ServiceStats {
        self.close();
        if let Some(worker) = self.worker.take() {
            worker.join().expect("service worker panicked");
        }
        self.stats()
    }

    fn close(&self) {
        let mut state = self.inner.state.lock().expect("service state poisoned");
        state.closed = true;
        self.inner.not_empty.notify_all();
        self.inner.not_full.notify_all();
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.close();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let (job, handle, enqueued) = {
            let mut state = inner.state.lock().expect("service state poisoned");
            loop {
                if let Some(entry) = state.queue.pop_front() {
                    inner.not_full.notify_one();
                    break entry;
                }
                if state.closed {
                    return;
                }
                state = inner.not_empty.wait(state).expect("service state poisoned");
            }
        };
        let wait_us = duration_us(enqueued.elapsed());
        inner.metrics.queue_wait_us.record(wait_us);
        let started = Instant::now();
        let result = run_one(inner, &job);
        let exec_us = duration_us(started.elapsed());
        inner.metrics.exec_us.record(exec_us);
        inner.metrics.jobs_completed.inc();
        let stolen = match &result {
            Ok(outcome) => {
                pif_obs::log::info(
                    "pif_lab::service",
                    "job completed",
                    &[
                        ("spec", &job.spec.name),
                        ("queue_wait_us", &wait_us),
                        ("exec_us", &exec_us),
                        ("cached_cells", &outcome.cached_cells),
                        ("executed_cells", &outcome.executed_cells),
                    ],
                );
                outcome.stolen_jobs
            }
            Err(e) => {
                inner.metrics.jobs_failed.inc();
                pif_obs::log::error("pif_lab::service", "job failed", &[("error", e)]);
                0
            }
        };
        inner.metrics.stolen_jobs.add(stolen);
        // Counters update before delivery, so a client that waited on
        // the handle observes its own job in the stats.
        {
            let mut state = inner.state.lock().expect("service state poisoned");
            state.completed += 1;
            state.queue_wait.record(wait_us);
            state.exec.record(exec_us);
            state.stolen_jobs += stolen;
        }
        handle.deliver(result);
    }
}

fn run_one(inner: &Inner, job: &SweepJob) -> Result<SweepOutcome, String> {
    // A panicking sweep (e.g. a spec naming an unknown workload) fails
    // that submission, not the daemon.
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut opts = RunOptions::new()
            .scale(job.scale)
            .threads(inner.pool_threads)
            .smoke(job.smoke);
        if let Some(cache) = &inner.cache {
            opts = opts.cache(cache);
        }
        crate::run_spec_stats(&job.spec, &opts)
    }));
    match run {
        Ok((
            report,
            SweepRunStats {
                cached_cells,
                executed_cells,
                stolen_jobs,
            },
        )) => Ok(SweepOutcome {
            report,
            cached_cells,
            executed_cells,
            stolen_jobs,
        }),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("sweep panicked");
            Err(format!("sweep {} failed: {msg}", job.spec.name))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    #[test]
    fn pool_results_ordered_by_index_for_any_thread_count() {
        for threads in [1, 2, 3, 8, 64] {
            let out = Pool::new(threads).run_indexed(17, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pool_zero_jobs_is_fine() {
        let out: Vec<u32> = Pool::new(4).run_indexed(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn pool_parallel_map_preserves_order() {
        let out = Pool::new(4).parallel_map(vec![1, 2, 3, 4], |x| x * 10);
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn pool_steal_stats_zero_on_single_worker() {
        let (out, stats) = Pool::new(1).run_indexed_stats(9, |i| i);
        assert_eq!(out.len(), 9);
        assert_eq!(
            stats,
            PoolRunStats {
                jobs: 9,
                stolen_jobs: 0
            }
        );
    }

    #[test]
    fn latency_summary_folds_and_means() {
        let mut s = LatencySummary::default();
        assert_eq!(s.mean_us(), 0.0);
        s.record(10);
        s.record(30);
        assert_eq!(
            s,
            LatencySummary {
                count: 2,
                total_us: 40,
                max_us: 30
            }
        );
        assert_eq!(s.mean_us(), 20.0);
        s.record(u64::MAX);
        assert_eq!(s.total_us, u64::MAX, "total saturates");
    }

    #[test]
    fn service_latency_and_metrics_cover_completed_jobs() {
        let service = Service::start(ServiceConfig {
            queue_depth: 4,
            threads: 2,
            cache_dir: None,
        });
        for _ in 0..2 {
            service
                .submit(SweepJob::new(registry::table1(), Scale::tiny()).smoke(true))
                .expect("queue open")
                .wait()
                .expect("job ran");
        }
        let stats = service.stats();
        assert_eq!(stats.queue_wait.count, 2);
        assert_eq!(stats.exec.count, 2);
        assert!(stats.exec.max_us <= stats.exec.total_us);

        let text = service.render_metrics(MetricsFormat::Prometheus);
        pif_obs::validate_prometheus(&text).expect("service exposition must validate");
        assert!(text.contains("# TYPE pif_service_exec_us histogram"));
        assert!(text.contains("pif_service_jobs_completed 2"));

        let json = service.render_metrics(MetricsFormat::Json);
        let parsed = crate::json::Json::parse(&json).expect("metrics JSON parses");
        assert_eq!(
            parsed.get("schema").and_then(|s| s.as_str()),
            Some("pif-obs/v1")
        );
        service.shutdown();
    }

    #[test]
    fn service_runs_jobs_and_shuts_down() {
        let service = Service::start(ServiceConfig {
            queue_depth: 2,
            threads: 2,
            cache_dir: None,
        });
        let handles: Vec<_> = (0..3)
            .map(|_| {
                service
                    .submit(SweepJob::new(registry::table1(), Scale::tiny()).smoke(true))
                    .expect("queue open")
            })
            .collect();
        for h in &handles {
            let outcome = h.wait().expect("job ran");
            assert_eq!(outcome.report.cells.len(), 6);
            assert_eq!(outcome.cached_cells, 0, "no cache attached");
        }
        let stats = service.shutdown();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.completed, 3);
        assert!(stats.max_queue_depth <= 2);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let service = Service::start(ServiceConfig {
            queue_depth: 8,
            threads: 1,
            cache_dir: None,
        });
        let handles: Vec<_> = (0..4)
            .map(|_| {
                service
                    .submit(SweepJob::new(registry::table1(), Scale::tiny()).smoke(true))
                    .expect("queue open")
            })
            .collect();
        let stats = service.shutdown();
        assert_eq!(stats.completed, 4, "queued jobs drained before join");
        for h in handles {
            h.wait().expect("drained job delivered");
        }
    }

    #[test]
    fn submit_after_shutdown_is_refused() {
        let service = Service::start(ServiceConfig::default());
        service.close();
        let err = service
            .submit(SweepJob::new(registry::table1(), Scale::tiny()))
            .unwrap_err();
        assert!(err.contains("shut down"), "{err}");
    }

    #[test]
    fn failing_job_reports_error_without_killing_worker() {
        let service = Service::start(ServiceConfig {
            queue_depth: 4,
            threads: 1,
            cache_dir: None,
        });
        let bad = crate::SweepSpec::new("bad", "bad", crate::Measure::Static)
            .with_workloads(vec!["No-Such-Workload"]);
        let h_bad = service
            .submit(SweepJob::new(bad, Scale::tiny()).smoke(true))
            .unwrap();
        let h_ok = service
            .submit(SweepJob::new(registry::table1(), Scale::tiny()).smoke(true))
            .unwrap();
        assert!(h_bad.wait().is_err());
        h_ok.wait().expect("worker survived the panic");
        service.shutdown();
    }
}
