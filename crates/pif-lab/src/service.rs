//! Reusable sweep execution: the work-stealing [`Pool`] and the
//! long-running [`Service`] job queue behind `piflab serve`.
//!
//! [`Pool`] is the thread-count policy extracted from the old
//! free-function façade (the former `pool` module, now removed):
//! construct one with the worker count and every indexed run or parallel
//! map goes through it, so thread plumbing lives in one place.
//! [`Pool::run_indexed_stats`] additionally reports a [`PoolRunStats`]
//! with a work-stealing interleave counter.
//!
//! [`Service`] turns [`crate::run_spec`] into simulation-as-a-service: a
//! bounded job queue fed by [`Service::submit`] (which **blocks when the
//! queue is full** — backpressure, not unbounded buffering), drained by a
//! supervised pool of worker threads that execute each sweep on the
//! service's pool and result cache, delivering each result through its
//! [`SubmitHandle`]. [`Service::shutdown`] is graceful: already-queued
//! jobs finish, new submissions are refused (blocked submitters are
//! unblocked with a typed [`JobError::Rejected`]), and every thread is
//! joined before it returns.
//!
//! Failures are typed ([`JobError`]) and contained:
//!
//! * a sweep that panics fails **that job** ([`JobError::Failed`]);
//! * a job that outlives its deadline (per-job via [`SweepJob::deadline`]
//!   or service-wide via [`ServiceConfig::default_deadline`]) is failed
//!   with [`JobError::DeadlineExceeded`] by the supervisor's watchdog —
//!   it never blocks the queue, even while the worker is still stuck on
//!   it;
//! * a panic that escapes the job harness kills only one worker: the
//!   supervisor quarantines the poisoned job
//!   ([`JobError::WorkerPanicked`]) and restarts the worker.
//!
//! The service is instrumented with a `pif_obs` registry: per-job
//! queue-wait and execution-latency histograms, job/steal counters, and
//! cache hit/miss/corrupt gauges, rendered on demand by
//! [`Service::render_metrics`] (the daemon's `metrics` protocol verb).
//! The same latencies are folded into [`ServiceStats`] as
//! [`LatencySummary`] values for the `stats` verb. None of this feeds
//! back into sweep results — reports stay byte-identical.
//!
//! ```
//! use pif_lab::{registry, service::{Service, ServiceConfig, SweepJob}, Scale};
//!
//! let service = Service::start(ServiceConfig::default());
//! let handle = service
//!     .submit(SweepJob::new(registry::table1(), Scale::tiny()).smoke(true))
//!     .expect("queue open");
//! let outcome = handle.wait().expect("sweep ran");
//! assert_eq!(outcome.report.cells.len(), 6);
//! service.shutdown();
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::cache::{CacheStats, ResultCache};
use crate::report::SweepReport;
use crate::scale::Scale;
use crate::spec::SweepSpec;
use crate::{RunOptions, SweepRunStats};

/// Number of worker threads to use by default: one per available core.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A scoped, work-stealing job pool with deterministic result merge.
///
/// Workers pull job indices from a shared atomic counter (the idle
/// worker steals the next unclaimed job, so an expensive job never
/// serializes the grid behind it) and deposit each result into its
/// index's slot. The merged output is ordered by job index —
/// **independent of thread count and schedule** — which is what makes
/// sweep reports byte-identical across `--threads` settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    /// A pool with one worker per available core.
    fn default() -> Self {
        Pool::new(default_threads())
    }
}

impl Pool {
    /// A pool running jobs on `threads` workers (at least 1).
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `n_jobs` jobs on this pool's workers and returns the results
    /// ordered by job index.
    ///
    /// `f` is called with each job index exactly once. The assignment of
    /// jobs to workers is dynamic (first idle worker takes the next
    /// job), but the returned `Vec` is always
    /// `[f(0), f(1), …, f(n_jobs - 1)]`.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any worker.
    pub fn run_indexed<R, F>(&self, n_jobs: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.run_indexed_stats(n_jobs, f).0
    }

    /// [`Pool::run_indexed`], also reporting scheduling counters.
    ///
    /// The counters describe *how* the run was scheduled, never *what*
    /// it computed — results stay ordered by job index regardless.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any worker.
    pub fn run_indexed_stats<R, F>(&self, n_jobs: usize, f: F) -> (Vec<R>, PoolRunStats)
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let threads = self.threads.min(n_jobs.max(1));
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();
        // Which worker claimed each job index, for the steal counter.
        let claims: Vec<AtomicUsize> = (0..n_jobs).map(|_| AtomicUsize::new(usize::MAX)).collect();
        std::thread::scope(|s| {
            let (next, claims, slots, f) = (&next, &claims, &slots, &f);
            for worker in 0..threads {
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_jobs {
                        break;
                    }
                    claims[i].store(worker, Ordering::Relaxed);
                    let result = f(i);
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });
        let stolen_jobs = claims
            .windows(2)
            .filter(|w| w[0].load(Ordering::Relaxed) != w[1].load(Ordering::Relaxed))
            .count() as u64;
        let results = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("job completed")
            })
            .collect();
        (
            results,
            PoolRunStats {
                jobs: n_jobs as u64,
                stolen_jobs,
            },
        )
    }

    /// Maps `f` over `items` in parallel (one logical job per item),
    /// preserving input order in the output.
    pub fn parallel_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        self.run_indexed(n, |i| {
            let item = slots[i]
                .lock()
                .expect("item slot poisoned")
                .take()
                .expect("item taken once");
            f(item)
        })
    }
}

/// Scheduling counters of one [`Pool::run_indexed_stats`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolRunStats {
    /// Jobs executed.
    pub jobs: u64,
    /// Jobs whose worker differed from the worker that claimed the
    /// preceding job index — adjacent-index handoffs, a measure of
    /// work-stealing interleave. Always 0 on a single worker, and
    /// schedule-dependent otherwise: diagnostics only, never part of a
    /// report.
    pub stolen_jobs: u64,
}

/// Compact latency accounting: sample count, total, and maximum, in
/// microseconds.
///
/// Integer-only so it stays `Eq` and renders exactly in the `piflab/1`
/// protocol; the mean is derived on demand by [`LatencySummary::mean_us`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Recorded samples.
    pub count: u64,
    /// Sum of all samples, saturating, in microseconds.
    pub total_us: u64,
    /// Largest sample, in microseconds.
    pub max_us: u64,
}

impl LatencySummary {
    /// Folds one sample in.
    pub fn record(&mut self, us: u64) {
        self.count += 1;
        self.total_us = self.total_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Mean sample in microseconds (0.0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64
        }
    }
}

/// Saturating microseconds of a [`Duration`], for latency counters.
pub(crate) fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Wire format of [`Service::render_metrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Prometheus text exposition format.
    Prometheus,
    /// The `pif-obs/v1` JSON document.
    Json,
}

/// Configuration of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum queued (not yet running) jobs before
    /// [`Service::submit`] blocks.
    pub queue_depth: usize,
    /// Worker threads of the pool each sweep runs on.
    pub threads: usize,
    /// Service worker threads draining the queue concurrently. Each
    /// runs one job at a time on its own `threads`-wide pool; a panicked
    /// worker is restarted by the supervisor.
    pub workers: usize,
    /// Deadline applied to jobs that do not set their own (see
    /// [`SweepJob::deadline`]). Measured from submission; `None` means
    /// jobs may run indefinitely.
    pub default_deadline: Option<Duration>,
    /// Directory of the persistent result cache, if any.
    pub cache_dir: Option<std::path::PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_depth: 16,
            threads: default_threads(),
            workers: 1,
            default_deadline: None,
            cache_dir: None,
        }
    }
}

/// One sweep submission: a spec plus its run parameters.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// The grid to run.
    pub spec: SweepSpec,
    /// The scale to run it at.
    pub scale: Scale,
    /// Whether the report is marked as a smoke run.
    pub smoke: bool,
    /// Per-job deadline, measured from submission; overrides
    /// [`ServiceConfig::default_deadline`] when set.
    pub deadline: Option<Duration>,
}

impl SweepJob {
    /// A job for `spec` at `scale` (non-smoke).
    pub fn new(spec: SweepSpec, scale: Scale) -> Self {
        SweepJob {
            spec,
            scale,
            smoke: false,
            deadline: None,
        }
    }

    /// Sets the smoke flag.
    #[must_use]
    pub fn smoke(mut self, smoke: bool) -> Self {
        self.smoke = smoke;
        self
    }

    /// Sets a per-job deadline (from submission to delivery).
    #[must_use]
    pub fn deadline(mut self, deadline: Option<Duration>) -> Self {
        self.deadline = deadline;
        self
    }
}

/// Typed failure of one submission.
///
/// Every way a job can fail maps to exactly one variant, and each
/// variant declares whether retrying the same submission can help
/// ([`JobError::retryable`]) — the bit `piflab submit` uses to decide
/// between backing off and giving up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The service refused the submission (shutting down).
    Rejected {
        /// Why the submission was refused.
        reason: String,
    },
    /// The job did not complete within its deadline.
    DeadlineExceeded {
        /// The deadline that was exceeded, in milliseconds.
        deadline_ms: u64,
    },
    /// The worker thread running the job died; the job was quarantined
    /// and the worker restarted.
    WorkerPanicked {
        /// What the supervisor observed.
        message: String,
    },
    /// The sweep itself failed (panicked or errored deterministically).
    Failed {
        /// The failure message.
        message: String,
    },
}

impl JobError {
    /// Stable wire token for this failure class (the `piflab/1` error
    /// frame's `kind` field).
    pub fn kind(&self) -> &'static str {
        match self {
            JobError::Rejected { .. } => "rejected",
            JobError::DeadlineExceeded { .. } => "deadline_exceeded",
            JobError::WorkerPanicked { .. } => "worker_panicked",
            JobError::Failed { .. } => "failed",
        }
    }

    /// Whether resubmitting the same job can plausibly succeed.
    ///
    /// Deadline and worker-loss failures are load- or fault-dependent,
    /// so retrying (with backoff) is sound; a rejected submission or a
    /// deterministic sweep failure will fail the same way again.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            JobError::DeadlineExceeded { .. } | JobError::WorkerPanicked { .. }
        )
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Rejected { reason } => write!(f, "rejected: {reason}"),
            JobError::DeadlineExceeded { deadline_ms } => {
                write!(f, "deadline exceeded ({deadline_ms} ms)")
            }
            JobError::WorkerPanicked { message } => write!(f, "worker panicked: {message}"),
            JobError::Failed { message } => f.write_str(message),
        }
    }
}

impl std::error::Error for JobError {}

/// A finished sweep: the report plus how much of it came from the cache.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The merged report (byte-identical to a direct [`crate::run_spec`]
    /// of the same job, whether or not cells came from the cache).
    pub report: SweepReport,
    /// Cells answered from the result cache.
    pub cached_cells: usize,
    /// Cells simulated fresh.
    pub executed_cells: usize,
    /// Adjacent-index worker handoffs in the pool run (see
    /// [`PoolRunStats::stolen_jobs`]).
    pub stolen_jobs: u64,
}

#[derive(Debug, Default)]
struct SlotState {
    /// The delivered result, until `wait` consumes it.
    result: Option<Result<SweepOutcome, JobError>>,
    /// Set by the first (and only effective) delivery. Kept separate
    /// from `result` because `wait` takes the value out: a worker
    /// finishing a job the watchdog already timed out must still see
    /// "delivered" and stand down.
    delivered: bool,
}

type ResultSlot = Arc<(Mutex<SlotState>, Condvar)>;

/// The caller's side of one submission: blocks until the service worker
/// delivers the sweep's outcome.
#[derive(Debug, Clone)]
pub struct SubmitHandle {
    slot: ResultSlot,
}

impl SubmitHandle {
    fn new() -> Self {
        SubmitHandle {
            slot: Arc::new((Mutex::new(SlotState::default()), Condvar::new())),
        }
    }

    /// Claims the right to deliver this job's result; the first claimer
    /// wins and must follow up with [`SubmitHandle::fulfill`]. The
    /// split lets the deliverer update service counters *between* claim
    /// and fulfill, so a client unblocked by `wait` always observes its
    /// own job in the stats — while a late deliverer (a worker finishing
    /// a job the watchdog already timed out, say) gets `false` and must
    /// not double-count.
    fn try_claim(&self) -> bool {
        let (lock, _) = &*self.slot;
        let mut guard = lock.lock().expect("result slot poisoned");
        if guard.delivered {
            return false;
        }
        guard.delivered = true;
        true
    }

    /// Publishes the result of a claimed delivery and wakes waiters.
    fn fulfill(&self, result: Result<SweepOutcome, JobError>) {
        let (lock, cv) = &*self.slot;
        lock.lock().expect("result slot poisoned").result = Some(result);
        cv.notify_all();
    }

    /// Blocks until the job completes.
    ///
    /// # Errors
    ///
    /// The typed [`JobError`]: sweep failure, deadline overrun, worker
    /// loss, or shutdown rejection.
    pub fn wait(&self) -> Result<SweepOutcome, JobError> {
        let (lock, cv) = &*self.slot;
        let mut guard = lock.lock().expect("result slot poisoned");
        loop {
            if let Some(result) = guard.result.take() {
                return result;
            }
            guard = cv.wait(guard).expect("result slot poisoned");
        }
    }
}

/// Point-in-time counters of a [`Service`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs accepted by [`Service::submit`].
    pub submitted: u64,
    /// Jobs completed (delivered, successfully or not).
    pub completed: u64,
    /// High-water mark of the queue depth (for backpressure asserts).
    pub max_queue_depth: usize,
    /// Time completed jobs spent queued before a worker picked them up.
    pub queue_wait: LatencySummary,
    /// Wall-clock execution time of completed jobs.
    pub exec: LatencySummary,
    /// Total adjacent-index worker handoffs across completed jobs'
    /// pool runs (see [`PoolRunStats::stolen_jobs`]).
    pub stolen_jobs: u64,
    /// Jobs failed with [`JobError::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// Worker threads the supervisor restarted after a panic.
    pub worker_restarts: u64,
    /// Jobs quarantined because their worker died mid-run
    /// ([`JobError::WorkerPanicked`]).
    pub quarantined: u64,
    /// Result-cache counters, when a cache is attached.
    pub cache: Option<CacheStats>,
}

#[derive(Debug)]
struct QueuedJob {
    job: SweepJob,
    handle: SubmitHandle,
    enqueued: Instant,
}

/// What a worker is currently executing, visible to the supervisor's
/// deadline watchdog and worker-loss quarantine.
#[derive(Debug)]
struct RunningJob {
    handle: SubmitHandle,
    spec: String,
    enqueued: Instant,
    deadline: Option<Duration>,
}

#[derive(Debug)]
struct QueueState {
    queue: VecDeque<QueuedJob>,
    closed: bool,
    submitted: u64,
    completed: u64,
    max_depth: usize,
    queue_wait: LatencySummary,
    exec: LatencySummary,
    stolen_jobs: u64,
    deadline_exceeded: u64,
    worker_restarts: u64,
    quarantined: u64,
}

/// The service's `pif_obs` instrumentation: one registry plus the
/// pre-registered handles the worker loop records into.
#[derive(Debug)]
struct ServiceMetrics {
    registry: pif_obs::Registry,
    queue_wait_us: pif_obs::Histogram,
    exec_us: pif_obs::Histogram,
    jobs_submitted: pif_obs::Counter,
    jobs_completed: pif_obs::Counter,
    jobs_failed: pif_obs::Counter,
    stolen_jobs: pif_obs::Counter,
    deadline_exceeded: pif_obs::Counter,
    worker_restarts: pif_obs::Counter,
    jobs_quarantined: pif_obs::Counter,
    cache_hits: pif_obs::Gauge,
    cache_misses: pif_obs::Gauge,
    cache_corrupt: pif_obs::Gauge,
    cache_quarantined: pif_obs::Gauge,
}

impl ServiceMetrics {
    fn new() -> Self {
        let registry = pif_obs::Registry::new();
        ServiceMetrics {
            queue_wait_us: registry.histogram(
                "pif_service_queue_wait_us",
                "Microseconds jobs spent queued before execution",
            ),
            exec_us: registry.histogram(
                "pif_service_exec_us",
                "Wall-clock microseconds per executed job",
            ),
            jobs_submitted: registry.counter(
                "pif_service_jobs_submitted",
                "Jobs accepted into the service queue",
            ),
            jobs_completed: registry.counter(
                "pif_service_jobs_completed",
                "Jobs delivered (successfully or not)",
            ),
            jobs_failed: registry
                .counter("pif_service_jobs_failed", "Jobs that panicked or errored"),
            stolen_jobs: registry.counter(
                "pif_service_stolen_jobs",
                "Adjacent-index worker handoffs across pool runs",
            ),
            deadline_exceeded: registry.counter(
                "pif_service_deadline_exceeded",
                "Jobs failed for outliving their deadline",
            ),
            worker_restarts: registry.counter(
                "pif_service_worker_restarts",
                "Worker threads restarted after a panic",
            ),
            jobs_quarantined: registry.counter(
                "pif_service_jobs_quarantined",
                "Jobs quarantined because their worker died mid-run",
            ),
            cache_hits: registry.gauge("pif_service_cache_hits", "Result-cache lookup hits"),
            cache_misses: registry.gauge("pif_service_cache_misses", "Result-cache lookup misses"),
            cache_corrupt: registry.gauge(
                "pif_service_cache_corrupt",
                "Result-cache entries that existed but failed validation",
            ),
            cache_quarantined: registry.gauge(
                "pif_service_cache_quarantined",
                "Corrupt result-cache entries moved to the quarantine directory",
            ),
            registry,
        }
    }

    /// Copies the cache's external counters into the registry's gauges
    /// so a scrape sees current values.
    fn sync_cache(&self, cache: Option<&ResultCache>) {
        if let Some(stats) = cache.map(ResultCache::stats) {
            self.cache_hits.set(stats.hits);
            self.cache_misses.set(stats.misses);
            self.cache_corrupt.set(stats.corrupt);
            self.cache_quarantined.set(stats.quarantined);
        }
    }
}

#[derive(Debug)]
struct Inner {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    queue_depth: usize,
    pool_threads: usize,
    default_deadline: Option<Duration>,
    /// Per-worker slot holding the job that worker is executing right
    /// now; the supervisor reads these for deadline enforcement and
    /// quarantine.
    running: Vec<Mutex<Option<RunningJob>>>,
    cache: Option<ResultCache>,
    metrics: ServiceMetrics,
}

impl Inner {
    fn lock_state(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state.lock().expect("service state poisoned")
    }

    fn lock_running(&self, w: usize) -> std::sync::MutexGuard<'_, Option<RunningJob>> {
        // A worker killed by an injected panic can die while its slot
        // guard is live; the supervisor must still be able to read the
        // slot to quarantine the job.
        match self.running[w].lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A long-running sweep executor with a bounded job queue.
///
/// See the module docs for the lifecycle; `piflab serve` wraps one of
/// these in the line-delimited JSON protocol of [`crate::protocol`].
#[derive(Debug)]
pub struct Service {
    inner: Arc<Inner>,
    supervisor: Option<JoinHandle<()>>,
}

impl Service {
    /// Starts the worker pool and its supervisor.
    ///
    /// # Panics
    ///
    /// Panics if `config.cache_dir` names a directory that cannot be
    /// created (a daemon that silently ran uncached would defeat the
    /// point of pointing it at a cache).
    pub fn start(config: ServiceConfig) -> Self {
        let cache = config.cache_dir.map(|dir| {
            ResultCache::open(&dir)
                .unwrap_or_else(|e| panic!("cannot open cache at {}: {e}", dir.display()))
        });
        let workers = config.workers.max(1);
        let inner = Arc::new(Inner {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                closed: false,
                submitted: 0,
                completed: 0,
                max_depth: 0,
                queue_wait: LatencySummary::default(),
                exec: LatencySummary::default(),
                stolen_jobs: 0,
                deadline_exceeded: 0,
                worker_restarts: 0,
                quarantined: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            queue_depth: config.queue_depth.max(1),
            pool_threads: config.threads.max(1),
            default_deadline: config.default_deadline,
            running: (0..workers).map(|_| Mutex::new(None)).collect(),
            cache,
            metrics: ServiceMetrics::new(),
        });
        let supervisor_inner = Arc::clone(&inner);
        let supervisor = std::thread::Builder::new()
            .name("pifd-supervisor".into())
            .spawn(move || supervisor_loop(&supervisor_inner, workers))
            .expect("spawn service supervisor");
        Service {
            inner,
            supervisor: Some(supervisor),
        }
    }

    /// Enqueues a job, **blocking while the queue is at capacity**
    /// (backpressure: a flood of submissions throttles the submitters,
    /// it does not balloon daemon memory).
    ///
    /// # Errors
    ///
    /// [`JobError::Rejected`] if the service is shutting down — including
    /// a submitter that was *blocked on backpressure* when shutdown
    /// began: `close` wakes it and it is refused, never deadlocked.
    pub fn submit(&self, job: SweepJob) -> Result<SubmitHandle, JobError> {
        let mut state = self.inner.lock_state();
        while !state.closed && state.queue.len() >= self.inner.queue_depth {
            state = self
                .inner
                .not_full
                .wait(state)
                .expect("service state poisoned");
        }
        if state.closed {
            return Err(JobError::Rejected {
                reason: "service is shut down".to_string(),
            });
        }
        let handle = SubmitHandle::new();
        pif_obs::log::debug(
            "pif_lab::service",
            "job submitted",
            &[("spec", &job.spec.name), ("queued", &state.queue.len())],
        );
        state.queue.push_back(QueuedJob {
            job,
            handle: handle.clone(),
            enqueued: Instant::now(),
        });
        state.submitted += 1;
        state.max_depth = state.max_depth.max(state.queue.len());
        self.inner.metrics.jobs_submitted.inc();
        self.inner.not_empty.notify_one();
        Ok(handle)
    }

    /// Current counters.
    pub fn stats(&self) -> ServiceStats {
        let state = self.inner.lock_state();
        ServiceStats {
            submitted: state.submitted,
            completed: state.completed,
            max_queue_depth: state.max_depth,
            queue_wait: state.queue_wait,
            exec: state.exec,
            stolen_jobs: state.stolen_jobs,
            deadline_exceeded: state.deadline_exceeded,
            worker_restarts: state.worker_restarts,
            quarantined: state.quarantined,
            cache: self.inner.cache.as_ref().map(ResultCache::stats),
        }
    }

    /// The attached result cache, if any.
    pub fn cache(&self) -> Option<&ResultCache> {
        self.inner.cache.as_ref()
    }

    /// Renders the service's metrics registry in `format`, syncing the
    /// cache gauges first so the scrape is current.
    pub fn render_metrics(&self, format: MetricsFormat) -> String {
        self.inner.metrics.sync_cache(self.inner.cache.as_ref());
        match format {
            MetricsFormat::Prometheus => pif_obs::render_prometheus(&self.inner.metrics.registry),
            MetricsFormat::Json => pif_obs::render_json(&self.inner.metrics.registry),
        }
    }

    /// Graceful shutdown: refuses new submissions (and unblocks any
    /// submitter stuck on backpressure with a typed rejection), drains
    /// every queued job, joins the workers and supervisor, and returns
    /// the final counters.
    pub fn shutdown(mut self) -> ServiceStats {
        self.close();
        if let Some(supervisor) = self.supervisor.take() {
            supervisor.join().expect("service supervisor panicked");
        }
        self.stats()
    }

    fn close(&self) {
        let mut state = self.inner.lock_state();
        state.closed = true;
        self.inner.not_empty.notify_all();
        self.inner.not_full.notify_all();
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.close();
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
    }
}

/// How often the supervisor scans for dead workers and expired
/// deadlines. Bounds how late a deadline can be observed.
const SUPERVISOR_POLL: Duration = Duration::from_millis(5);

fn spawn_worker(inner: &Arc<Inner>, w: usize) -> JoinHandle<()> {
    let worker_inner = Arc::clone(inner);
    std::thread::Builder::new()
        .name(format!("pifd-worker-{w}"))
        .spawn(move || worker_loop(&worker_inner, w))
        .expect("spawn service worker")
}

/// Owns the worker pool: spawns it, enforces deadlines on running jobs,
/// quarantines jobs whose worker died, restarts dead workers, and joins
/// everything on shutdown.
fn supervisor_loop(inner: &Arc<Inner>, workers: usize) {
    let mut pool: Vec<Option<JoinHandle<()>>> =
        (0..workers).map(|w| Some(spawn_worker(inner, w))).collect();
    loop {
        // Deadline watchdog: a stuck job is failed *while its worker is
        // still running it* — the submitter unblocks now, the worker's
        // eventual result is discarded by the first-delivery-wins slot.
        for w in 0..workers {
            let expired = {
                let guard = inner.lock_running(w);
                guard.as_ref().and_then(|running| {
                    running.deadline.and_then(|deadline| {
                        (running.enqueued.elapsed() >= deadline)
                            .then(|| (running.handle.clone(), deadline, running.spec.clone()))
                    })
                })
            };
            if let Some((handle, deadline, spec)) = expired {
                deliver_deadline(inner, &handle, deadline, &spec);
            }
        }
        // Worker reaper: a panicked worker poisons only the job it was
        // running; the job is quarantined and the worker replaced.
        for (w, slot) in pool.iter_mut().enumerate() {
            let finished = slot.as_ref().is_some_and(JoinHandle::is_finished);
            if !finished {
                continue;
            }
            let handle = slot.take().expect("checked above");
            let panicked = handle.join().is_err();
            if !panicked {
                // Clean exit: only happens once the queue is closed and
                // drained; leave the slot empty.
                continue;
            }
            let poisoned = inner.lock_running(w).take();
            if let Some(running) = poisoned {
                let err = JobError::WorkerPanicked {
                    message: format!(
                        "worker {w} died while running {}; job quarantined",
                        running.spec
                    ),
                };
                pif_obs::log::error(
                    "pif_lab::service",
                    "job quarantined",
                    &[("spec", &running.spec), ("worker", &w)],
                );
                if running.handle.try_claim() {
                    inner.metrics.jobs_completed.inc();
                    inner.metrics.jobs_failed.inc();
                    inner.metrics.jobs_quarantined.inc();
                    {
                        let mut state = inner.lock_state();
                        state.completed += 1;
                        state.quarantined += 1;
                    }
                    running.handle.fulfill(Err(err));
                }
            }
            let restart = {
                let state = inner.lock_state();
                !state.closed || !state.queue.is_empty()
            };
            if restart {
                pif_obs::log::warn("pif_lab::service", "worker restarted", &[("worker", &w)]);
                inner.metrics.worker_restarts.inc();
                inner.lock_state().worker_restarts += 1;
                *slot = Some(spawn_worker(inner, w));
            }
        }
        if pool.iter().all(Option::is_none) {
            // Every worker exited (cleanly, or panicked with nothing
            // left to drain): reject whatever the queue still holds and
            // stop supervising.
            let leftovers: Vec<QueuedJob> = {
                let mut state = inner.lock_state();
                if !state.closed {
                    // All workers panicked while the service is live
                    // and the queue is empty; respawn the pool.
                    drop(state);
                    for (w, slot) in pool.iter_mut().enumerate() {
                        inner.metrics.worker_restarts.inc();
                        inner.lock_state().worker_restarts += 1;
                        *slot = Some(spawn_worker(inner, w));
                    }
                    continue;
                }
                state.queue.drain(..).collect()
            };
            for entry in leftovers {
                if entry.handle.try_claim() {
                    inner.metrics.jobs_completed.inc();
                    inner.metrics.jobs_failed.inc();
                    inner.lock_state().completed += 1;
                    entry.handle.fulfill(Err(JobError::Rejected {
                        reason: "service shut down before the job ran".to_string(),
                    }));
                }
            }
            return;
        }
        std::thread::sleep(SUPERVISOR_POLL);
    }
}

fn deliver_deadline(inner: &Inner, handle: &SubmitHandle, deadline: Duration, spec: &str) {
    let deadline_ms = u64::try_from(deadline.as_millis()).unwrap_or(u64::MAX);
    if !handle.try_claim() {
        return;
    }
    pif_obs::log::warn(
        "pif_lab::service",
        "job deadline exceeded",
        &[("spec", &spec), ("deadline_ms", &deadline_ms)],
    );
    inner.metrics.jobs_completed.inc();
    inner.metrics.jobs_failed.inc();
    inner.metrics.deadline_exceeded.inc();
    {
        let mut state = inner.lock_state();
        state.completed += 1;
        state.deadline_exceeded += 1;
    }
    handle.fulfill(Err(JobError::DeadlineExceeded { deadline_ms }));
}

fn worker_loop(inner: &Inner, w: usize) {
    loop {
        let QueuedJob {
            job,
            handle,
            enqueued,
        } = {
            let mut state = inner.lock_state();
            loop {
                if let Some(entry) = state.queue.pop_front() {
                    inner.not_full.notify_one();
                    break entry;
                }
                if state.closed {
                    return;
                }
                state = inner.not_empty.wait(state).expect("service state poisoned");
            }
        };
        let deadline = job.deadline.or(inner.default_deadline);
        // Expired while still queued: fail it typed without burning a
        // pool run (the cheapest way a deadline "never blocks the
        // queue").
        if let Some(dl) = deadline {
            if enqueued.elapsed() >= dl {
                deliver_deadline(inner, &handle, dl, job.spec.name);
                continue;
            }
        }
        *inner.lock_running(w) = Some(RunningJob {
            handle: handle.clone(),
            spec: job.spec.name.to_string(),
            enqueued,
            deadline,
        });
        // Sits outside the catch_unwind on purpose: an injected panic
        // here kills this worker thread, exercising the supervisor's
        // quarantine-and-restart path.
        pif_fail::fail_point!("service.worker.panic");
        let wait_us = duration_us(enqueued.elapsed());
        let started = Instant::now();
        let result = run_one(inner, &job);
        let exec_us = duration_us(started.elapsed());
        *inner.lock_running(w) = None;
        if !handle.try_claim() {
            // The watchdog already failed this job; its accounting is
            // done. Drop the late result.
            continue;
        }
        let stolen = match &result {
            Ok(outcome) => {
                pif_obs::log::info(
                    "pif_lab::service",
                    "job completed",
                    &[
                        ("spec", &job.spec.name),
                        ("queue_wait_us", &wait_us),
                        ("exec_us", &exec_us),
                        ("cached_cells", &outcome.cached_cells),
                        ("executed_cells", &outcome.executed_cells),
                    ],
                );
                outcome.stolen_jobs
            }
            Err(e) => {
                inner.metrics.jobs_failed.inc();
                pif_obs::log::error("pif_lab::service", "job failed", &[("error", e)]);
                0
            }
        };
        inner.metrics.queue_wait_us.record(wait_us);
        inner.metrics.exec_us.record(exec_us);
        inner.metrics.jobs_completed.inc();
        inner.metrics.stolen_jobs.add(stolen);
        // Counters update before delivery, so a client that waited on
        // the handle observes its own job in the stats.
        {
            let mut state = inner.lock_state();
            state.completed += 1;
            state.queue_wait.record(wait_us);
            state.exec.record(exec_us);
            state.stolen_jobs += stolen;
        }
        handle.fulfill(result);
    }
}

fn run_one(inner: &Inner, job: &SweepJob) -> Result<SweepOutcome, JobError> {
    // An injected `error` here models a deterministic execution failure:
    // typed, non-retryable, worker survives.
    pif_fail::fail_point!("service.job.exec", |e: pif_fail::FailError| Err(
        JobError::Failed {
            message: e.to_string()
        }
    ));
    // A panicking sweep (e.g. a spec naming an unknown workload) fails
    // that submission, not the daemon.
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // Inside the harness: an injected `panic` is caught (job fails,
        // worker survives); an injected `delay` makes the job overstay
        // its deadline for the watchdog to catch.
        pif_fail::fail_point!("service.job.run");
        let mut opts = RunOptions::new()
            .scale(job.scale)
            .threads(inner.pool_threads)
            .smoke(job.smoke);
        if let Some(cache) = &inner.cache {
            opts = opts.cache(cache);
        }
        crate::run_spec_stats(&job.spec, &opts)
    }));
    match run {
        Ok((
            report,
            SweepRunStats {
                cached_cells,
                executed_cells,
                stolen_jobs,
            },
        )) => Ok(SweepOutcome {
            report,
            cached_cells,
            executed_cells,
            stolen_jobs,
        }),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("sweep panicked");
            Err(JobError::Failed {
                message: format!("sweep {} failed: {msg}", job.spec.name),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    #[test]
    fn pool_results_ordered_by_index_for_any_thread_count() {
        for threads in [1, 2, 3, 8, 64] {
            let out = Pool::new(threads).run_indexed(17, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pool_zero_jobs_is_fine() {
        let out: Vec<u32> = Pool::new(4).run_indexed(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn pool_parallel_map_preserves_order() {
        let out = Pool::new(4).parallel_map(vec![1, 2, 3, 4], |x| x * 10);
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn pool_steal_stats_zero_on_single_worker() {
        let (out, stats) = Pool::new(1).run_indexed_stats(9, |i| i);
        assert_eq!(out.len(), 9);
        assert_eq!(
            stats,
            PoolRunStats {
                jobs: 9,
                stolen_jobs: 0
            }
        );
    }

    #[test]
    fn latency_summary_folds_and_means() {
        let mut s = LatencySummary::default();
        assert_eq!(s.mean_us(), 0.0);
        s.record(10);
        s.record(30);
        assert_eq!(
            s,
            LatencySummary {
                count: 2,
                total_us: 40,
                max_us: 30
            }
        );
        assert_eq!(s.mean_us(), 20.0);
        s.record(u64::MAX);
        assert_eq!(s.total_us, u64::MAX, "total saturates");
    }

    #[test]
    fn service_latency_and_metrics_cover_completed_jobs() {
        let service = Service::start(ServiceConfig {
            queue_depth: 4,
            threads: 2,
            ..ServiceConfig::default()
        });
        for _ in 0..2 {
            service
                .submit(SweepJob::new(registry::table1(), Scale::tiny()).smoke(true))
                .expect("queue open")
                .wait()
                .expect("job ran");
        }
        let stats = service.stats();
        assert_eq!(stats.queue_wait.count, 2);
        assert_eq!(stats.exec.count, 2);
        assert!(stats.exec.max_us <= stats.exec.total_us);

        let text = service.render_metrics(MetricsFormat::Prometheus);
        pif_obs::validate_prometheus(&text).expect("service exposition must validate");
        assert!(text.contains("# TYPE pif_service_exec_us histogram"));
        assert!(text.contains("pif_service_jobs_completed 2"));

        let json = service.render_metrics(MetricsFormat::Json);
        let parsed = crate::json::Json::parse(&json).expect("metrics JSON parses");
        assert_eq!(
            parsed.get("schema").and_then(|s| s.as_str()),
            Some("pif-obs/v1")
        );
        service.shutdown();
    }

    #[test]
    fn service_runs_jobs_and_shuts_down() {
        let service = Service::start(ServiceConfig {
            queue_depth: 2,
            threads: 2,
            ..ServiceConfig::default()
        });
        let handles: Vec<_> = (0..3)
            .map(|_| {
                service
                    .submit(SweepJob::new(registry::table1(), Scale::tiny()).smoke(true))
                    .expect("queue open")
            })
            .collect();
        for h in &handles {
            let outcome = h.wait().expect("job ran");
            assert_eq!(outcome.report.cells.len(), 6);
            assert_eq!(outcome.cached_cells, 0, "no cache attached");
        }
        let stats = service.shutdown();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.completed, 3);
        assert!(stats.max_queue_depth <= 2);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let service = Service::start(ServiceConfig {
            queue_depth: 8,
            threads: 1,
            ..ServiceConfig::default()
        });
        let handles: Vec<_> = (0..4)
            .map(|_| {
                service
                    .submit(SweepJob::new(registry::table1(), Scale::tiny()).smoke(true))
                    .expect("queue open")
            })
            .collect();
        let stats = service.shutdown();
        assert_eq!(stats.completed, 4, "queued jobs drained before join");
        for h in handles {
            h.wait().expect("drained job delivered");
        }
    }

    #[test]
    fn submit_after_shutdown_is_refused() {
        let service = Service::start(ServiceConfig::default());
        service.close();
        let err = service
            .submit(SweepJob::new(registry::table1(), Scale::tiny()))
            .unwrap_err();
        assert!(matches!(err, JobError::Rejected { .. }), "{err}");
    }

    #[test]
    fn failing_job_reports_error_without_killing_worker() {
        let service = Service::start(ServiceConfig {
            queue_depth: 4,
            threads: 1,
            ..ServiceConfig::default()
        });
        let bad = crate::SweepSpec::new("bad", "bad", crate::Measure::Static)
            .with_workloads(vec!["No-Such-Workload"]);
        let h_bad = service
            .submit(SweepJob::new(bad, Scale::tiny()).smoke(true))
            .unwrap();
        let h_ok = service
            .submit(SweepJob::new(registry::table1(), Scale::tiny()).smoke(true))
            .unwrap();
        let err = h_bad.wait().unwrap_err();
        assert!(matches!(err, JobError::Failed { .. }), "{err}");
        assert_eq!(err.kind(), "failed");
        assert!(!err.retryable());
        h_ok.wait().expect("worker survived the panic");
        service.shutdown();
    }

    #[test]
    fn job_error_kinds_and_retryability() {
        let cases: [(JobError, &str, bool); 4] = [
            (
                JobError::Rejected {
                    reason: "closed".into(),
                },
                "rejected",
                false,
            ),
            (
                JobError::DeadlineExceeded { deadline_ms: 50 },
                "deadline_exceeded",
                true,
            ),
            (
                JobError::WorkerPanicked {
                    message: "gone".into(),
                },
                "worker_panicked",
                true,
            ),
            (
                JobError::Failed {
                    message: "boom".into(),
                },
                "failed",
                false,
            ),
        ];
        for (err, kind, retryable) in cases {
            assert_eq!(err.kind(), kind);
            assert_eq!(err.retryable(), retryable, "{kind}");
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn expired_deadline_fails_typed_without_blocking_the_queue() {
        let service = Service::start(ServiceConfig {
            queue_depth: 4,
            threads: 1,
            ..ServiceConfig::default()
        });
        // A zero deadline is already expired at dequeue: the job must
        // fail typed (and deterministically — no watchdog race), and the
        // queue must keep flowing for the unconstrained job behind it.
        let h_dead = service
            .submit(
                SweepJob::new(registry::table1(), Scale::tiny())
                    .smoke(true)
                    .deadline(Some(Duration::ZERO)),
            )
            .unwrap();
        let h_ok = service
            .submit(SweepJob::new(registry::table1(), Scale::tiny()).smoke(true))
            .unwrap();
        let err = h_dead.wait().unwrap_err();
        assert_eq!(err, JobError::DeadlineExceeded { deadline_ms: 0 });
        assert!(err.retryable());
        h_ok.wait().expect("queue flowed past the dead job");
        let stats = service.shutdown();
        assert_eq!(stats.deadline_exceeded, 1);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.exec.count, 1, "dead job never burned a pool run");
    }

    #[test]
    fn shutdown_unblocks_blocked_submitter_with_typed_rejection() {
        // The satellite regression: a submitter blocked on backpressure
        // when shutdown begins must be woken and refused, not
        // deadlocked.
        let service = Arc::new(Service::start(ServiceConfig {
            queue_depth: 1,
            threads: 1,
            ..ServiceConfig::default()
        }));
        // One job runs, one sits in the single queue slot; the third
        // submit blocks on backpressure (or, if the worker drains fast,
        // lands after close and is refused — both are the typed path).
        let _running = service
            .submit(SweepJob::new(registry::table1(), Scale::tiny()).smoke(true))
            .unwrap();
        let _queued = service
            .submit(SweepJob::new(registry::table1(), Scale::tiny()).smoke(true))
            .unwrap();
        let submitter = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                service.submit(SweepJob::new(registry::table1(), Scale::tiny()).smoke(true))
            })
        };
        // Give the submitter time to reach the backpressure wait.
        std::thread::sleep(Duration::from_millis(20));
        service.close();
        let result = submitter.join().expect("submitter must return, not hang");
        match result {
            Ok(handle) => {
                // Raced in before close: the job either drains or is
                // rejected by the supervisor — either way wait()
                // returns.
                let _ = handle.wait();
            }
            Err(err) => assert!(matches!(err, JobError::Rejected { .. }), "{err}"),
        }
        // Drain fully so drop is clean.
        drop(service);
    }
}
