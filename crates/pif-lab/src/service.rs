//! Reusable sweep execution: the work-stealing [`Pool`] and the
//! long-running [`Service`] job queue behind `piflab serve`.
//!
//! [`Pool`] is the thread-count policy extracted from the old free
//! functions in [`crate::pool`]: construct one with the worker count and
//! every indexed run or parallel map goes through it, so thread plumbing
//! lives in one place.
//!
//! [`Service`] turns [`crate::run_spec`] into simulation-as-a-service: a
//! bounded job queue fed by [`Service::submit`] (which **blocks when the
//! queue is full** — backpressure, not unbounded buffering), drained by a
//! worker thread that executes each sweep on the service's pool and
//! result cache, delivering each result through its [`SubmitHandle`].
//! [`Service::shutdown`] is graceful: already-queued jobs finish, new
//! submissions are refused, and the worker is joined before it returns.
//!
//! ```
//! use pif_lab::{registry, service::{Service, ServiceConfig, SweepJob}, Scale};
//!
//! let service = Service::start(ServiceConfig::default());
//! let handle = service
//!     .submit(SweepJob::new(registry::table1(), Scale::tiny()).smoke(true))
//!     .expect("queue open");
//! let outcome = handle.wait().expect("sweep ran");
//! assert_eq!(outcome.report.cells.len(), 6);
//! service.shutdown();
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::cache::{CacheStats, ResultCache};
use crate::report::SweepReport;
use crate::scale::Scale;
use crate::spec::SweepSpec;
use crate::{RunOptions, SweepRunStats};

/// Number of worker threads to use by default: one per available core.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A scoped, work-stealing job pool with deterministic result merge.
///
/// Workers pull job indices from a shared atomic counter (the idle
/// worker steals the next unclaimed job, so an expensive job never
/// serializes the grid behind it) and deposit each result into its
/// index's slot. The merged output is ordered by job index —
/// **independent of thread count and schedule** — which is what makes
/// sweep reports byte-identical across `--threads` settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    /// A pool with one worker per available core.
    fn default() -> Self {
        Pool::new(default_threads())
    }
}

impl Pool {
    /// A pool running jobs on `threads` workers (at least 1).
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `n_jobs` jobs on this pool's workers and returns the results
    /// ordered by job index.
    ///
    /// `f` is called with each job index exactly once. The assignment of
    /// jobs to workers is dynamic (first idle worker takes the next
    /// job), but the returned `Vec` is always
    /// `[f(0), f(1), …, f(n_jobs - 1)]`.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any worker.
    pub fn run_indexed<R, F>(&self, n_jobs: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let threads = self.threads.min(n_jobs.max(1));
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_jobs {
                        break;
                    }
                    let result = f(i);
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("job completed")
            })
            .collect()
    }

    /// Maps `f` over `items` in parallel (one logical job per item),
    /// preserving input order in the output.
    pub fn parallel_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        self.run_indexed(n, |i| {
            let item = slots[i]
                .lock()
                .expect("item slot poisoned")
                .take()
                .expect("item taken once");
            f(item)
        })
    }
}

/// Configuration of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum queued (not yet running) jobs before
    /// [`Service::submit`] blocks.
    pub queue_depth: usize,
    /// Worker threads of the pool each sweep runs on.
    pub threads: usize,
    /// Directory of the persistent result cache, if any.
    pub cache_dir: Option<std::path::PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_depth: 16,
            threads: default_threads(),
            cache_dir: None,
        }
    }
}

/// One sweep submission: a spec plus its run parameters.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// The grid to run.
    pub spec: SweepSpec,
    /// The scale to run it at.
    pub scale: Scale,
    /// Whether the report is marked as a smoke run.
    pub smoke: bool,
}

impl SweepJob {
    /// A job for `spec` at `scale` (non-smoke).
    pub fn new(spec: SweepSpec, scale: Scale) -> Self {
        SweepJob {
            spec,
            scale,
            smoke: false,
        }
    }

    /// Sets the smoke flag.
    #[must_use]
    pub fn smoke(mut self, smoke: bool) -> Self {
        self.smoke = smoke;
        self
    }
}

/// A finished sweep: the report plus how much of it came from the cache.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The merged report (byte-identical to a direct [`crate::run_spec`]
    /// of the same job, whether or not cells came from the cache).
    pub report: SweepReport,
    /// Cells answered from the result cache.
    pub cached_cells: usize,
    /// Cells simulated fresh.
    pub executed_cells: usize,
}

type ResultSlot = Arc<(Mutex<Option<Result<SweepOutcome, String>>>, Condvar)>;

/// The caller's side of one submission: blocks until the service worker
/// delivers the sweep's outcome.
#[derive(Debug, Clone)]
pub struct SubmitHandle {
    slot: ResultSlot,
}

impl SubmitHandle {
    fn new() -> Self {
        SubmitHandle {
            slot: Arc::new((Mutex::new(None), Condvar::new())),
        }
    }

    fn deliver(&self, result: Result<SweepOutcome, String>) {
        let (lock, cv) = &*self.slot;
        *lock.lock().expect("result slot poisoned") = Some(result);
        cv.notify_all();
    }

    /// Blocks until the job completes.
    ///
    /// # Errors
    ///
    /// Returns the job's failure message if the sweep panicked or the
    /// service shut down before running it.
    pub fn wait(&self) -> Result<SweepOutcome, String> {
        let (lock, cv) = &*self.slot;
        let mut guard = lock.lock().expect("result slot poisoned");
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            guard = cv.wait(guard).expect("result slot poisoned");
        }
    }
}

/// Point-in-time counters of a [`Service`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs accepted by [`Service::submit`].
    pub submitted: u64,
    /// Jobs completed (delivered, successfully or not).
    pub completed: u64,
    /// High-water mark of the queue depth (for backpressure asserts).
    pub max_queue_depth: usize,
    /// Result-cache counters, when a cache is attached.
    pub cache: Option<CacheStats>,
}

#[derive(Debug)]
struct QueueState {
    queue: VecDeque<(SweepJob, SubmitHandle)>,
    closed: bool,
    submitted: u64,
    completed: u64,
    max_depth: usize,
}

#[derive(Debug)]
struct Inner {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    queue_depth: usize,
    pool_threads: usize,
    cache: Option<ResultCache>,
}

/// A long-running sweep executor with a bounded job queue.
///
/// See the module docs for the lifecycle; `piflab serve` wraps one of
/// these in the line-delimited JSON protocol of [`crate::protocol`].
#[derive(Debug)]
pub struct Service {
    inner: Arc<Inner>,
    worker: Option<JoinHandle<()>>,
}

impl Service {
    /// Starts the service worker.
    ///
    /// # Panics
    ///
    /// Panics if `config.cache_dir` names a directory that cannot be
    /// created (a daemon that silently ran uncached would defeat the
    /// point of pointing it at a cache).
    pub fn start(config: ServiceConfig) -> Self {
        let cache = config.cache_dir.map(|dir| {
            ResultCache::open(&dir)
                .unwrap_or_else(|e| panic!("cannot open cache at {}: {e}", dir.display()))
        });
        let inner = Arc::new(Inner {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                closed: false,
                submitted: 0,
                completed: 0,
                max_depth: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            queue_depth: config.queue_depth.max(1),
            pool_threads: config.threads.max(1),
            cache,
        });
        let worker_inner = Arc::clone(&inner);
        let worker = std::thread::Builder::new()
            .name("pifd-worker".into())
            .spawn(move || worker_loop(&worker_inner))
            .expect("spawn service worker");
        Service {
            inner,
            worker: Some(worker),
        }
    }

    /// Enqueues a job, **blocking while the queue is at capacity**
    /// (backpressure: a flood of submissions throttles the submitters,
    /// it does not balloon daemon memory).
    ///
    /// # Errors
    ///
    /// Refuses the job if the service is shutting down.
    pub fn submit(&self, job: SweepJob) -> Result<SubmitHandle, String> {
        let mut state = self.inner.state.lock().expect("service state poisoned");
        while !state.closed && state.queue.len() >= self.inner.queue_depth {
            state = self
                .inner
                .not_full
                .wait(state)
                .expect("service state poisoned");
        }
        if state.closed {
            return Err("service is shut down".to_string());
        }
        let handle = SubmitHandle::new();
        state.queue.push_back((job, handle.clone()));
        state.submitted += 1;
        state.max_depth = state.max_depth.max(state.queue.len());
        self.inner.not_empty.notify_one();
        Ok(handle)
    }

    /// Current counters.
    pub fn stats(&self) -> ServiceStats {
        let state = self.inner.state.lock().expect("service state poisoned");
        ServiceStats {
            submitted: state.submitted,
            completed: state.completed,
            max_queue_depth: state.max_depth,
            cache: self.inner.cache.as_ref().map(ResultCache::stats),
        }
    }

    /// The attached result cache, if any.
    pub fn cache(&self) -> Option<&ResultCache> {
        self.inner.cache.as_ref()
    }

    /// Graceful shutdown: refuses new submissions, drains every queued
    /// job, joins the worker, and returns the final counters.
    pub fn shutdown(mut self) -> ServiceStats {
        self.close();
        if let Some(worker) = self.worker.take() {
            worker.join().expect("service worker panicked");
        }
        self.stats()
    }

    fn close(&self) {
        let mut state = self.inner.state.lock().expect("service state poisoned");
        state.closed = true;
        self.inner.not_empty.notify_all();
        self.inner.not_full.notify_all();
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.close();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let (job, handle) = {
            let mut state = inner.state.lock().expect("service state poisoned");
            loop {
                if let Some(entry) = state.queue.pop_front() {
                    inner.not_full.notify_one();
                    break entry;
                }
                if state.closed {
                    return;
                }
                state = inner.not_empty.wait(state).expect("service state poisoned");
            }
        };
        let result = run_one(inner, &job);
        handle.deliver(result);
        let mut state = inner.state.lock().expect("service state poisoned");
        state.completed += 1;
    }
}

fn run_one(inner: &Inner, job: &SweepJob) -> Result<SweepOutcome, String> {
    // A panicking sweep (e.g. a spec naming an unknown workload) fails
    // that submission, not the daemon.
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut opts = RunOptions::new()
            .scale(job.scale)
            .threads(inner.pool_threads)
            .smoke(job.smoke);
        if let Some(cache) = &inner.cache {
            opts = opts.cache(cache);
        }
        crate::run_spec_stats(&job.spec, &opts)
    }));
    match run {
        Ok((
            report,
            SweepRunStats {
                cached_cells,
                executed_cells,
            },
        )) => Ok(SweepOutcome {
            report,
            cached_cells,
            executed_cells,
        }),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("sweep panicked");
            Err(format!("sweep {} failed: {msg}", job.spec.name))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    #[test]
    fn pool_results_ordered_by_index_for_any_thread_count() {
        for threads in [1, 2, 3, 8, 64] {
            let out = Pool::new(threads).run_indexed(17, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pool_zero_jobs_is_fine() {
        let out: Vec<u32> = Pool::new(4).run_indexed(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn pool_parallel_map_preserves_order() {
        let out = Pool::new(4).parallel_map(vec![1, 2, 3, 4], |x| x * 10);
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn service_runs_jobs_and_shuts_down() {
        let service = Service::start(ServiceConfig {
            queue_depth: 2,
            threads: 2,
            cache_dir: None,
        });
        let handles: Vec<_> = (0..3)
            .map(|_| {
                service
                    .submit(SweepJob::new(registry::table1(), Scale::tiny()).smoke(true))
                    .expect("queue open")
            })
            .collect();
        for h in &handles {
            let outcome = h.wait().expect("job ran");
            assert_eq!(outcome.report.cells.len(), 6);
            assert_eq!(outcome.cached_cells, 0, "no cache attached");
        }
        let stats = service.shutdown();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.completed, 3);
        assert!(stats.max_queue_depth <= 2);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let service = Service::start(ServiceConfig {
            queue_depth: 8,
            threads: 1,
            cache_dir: None,
        });
        let handles: Vec<_> = (0..4)
            .map(|_| {
                service
                    .submit(SweepJob::new(registry::table1(), Scale::tiny()).smoke(true))
                    .expect("queue open")
            })
            .collect();
        let stats = service.shutdown();
        assert_eq!(stats.completed, 4, "queued jobs drained before join");
        for h in handles {
            h.wait().expect("drained job delivered");
        }
    }

    #[test]
    fn submit_after_shutdown_is_refused() {
        let service = Service::start(ServiceConfig::default());
        service.close();
        let err = service
            .submit(SweepJob::new(registry::table1(), Scale::tiny()))
            .unwrap_err();
        assert!(err.contains("shut down"), "{err}");
    }

    #[test]
    fn failing_job_reports_error_without_killing_worker() {
        let service = Service::start(ServiceConfig {
            queue_depth: 4,
            threads: 1,
            cache_dir: None,
        });
        let bad = crate::SweepSpec::new("bad", "bad", crate::Measure::Static)
            .with_workloads(vec!["No-Such-Workload"]);
        let h_bad = service
            .submit(SweepJob::new(bad, Scale::tiny()).smoke(true))
            .unwrap();
        let h_ok = service
            .submit(SweepJob::new(registry::table1(), Scale::tiny()).smoke(true))
            .unwrap();
        assert!(h_bad.wait().is_err());
        h_ok.wait().expect("worker survived the panic");
        service.shutdown();
    }
}
