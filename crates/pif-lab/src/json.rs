//! Minimal hand-rolled JSON: a value parser and emitter helpers.
//!
//! The workspace has no JSON dependency (see `vendor/README.md`), and the
//! sweep reports must be *parsed* — `piflab check` and `piflab diff`
//! compare metric values, not bytes — so this is a small recursive-descent
//! parser producing a [`Json`] tree, in the style of the
//! `pif-bench-engine/v1` validator but value-producing. Parsing a
//! document *is* validation: anything malformed is rejected with a byte
//! offset.

/// A parsed JSON value. Object keys keep document order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first malformed
    /// construct, or of trailing garbage after the document.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos == p.bytes.len() {
            Ok(v)
        } else {
            Err(p.error("trailing garbage after document"))
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object's fields, if it is one.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.error(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.error("malformed number"))
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| self.error("bad \\u escape"))?;
        self.pos += 4;
        Ok(hex)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while let Some(b) = self.peek() {
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => match self.peek() {
                    Some(e) => {
                        self.pos += 1;
                        match e {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b't' => out.push('\t'),
                            b'r' => out.push('\r'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'u' => {
                                let hex = self.hex4()?;
                                // Combine UTF-16 surrogate pairs, which
                                // JSON uses for code points above U+FFFF.
                                let code = if (0xD800..0xDC00).contains(&hex) {
                                    if self.bytes.get(self.pos..self.pos + 2) != Some(&b"\\u"[..]) {
                                        return Err(self.error("unpaired high surrogate"));
                                    }
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    0x10000 + ((hex - 0xD800) << 10) + (low - 0xDC00)
                                } else {
                                    hex
                                };
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| self.error("bad \\u code point"))?,
                                );
                            }
                            _ => return Err(self.error("unknown escape")),
                        }
                    }
                    None => return Err(self.error("unterminated escape")),
                },
                _ => {
                    // Re-sync to the char boundary for multi-byte UTF-8.
                    let tail = &self.bytes[self.pos - 1..];
                    let s = std::str::from_utf8(tail).map_err(|_| self.error("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty tail");
                    out.push(c);
                    self.pos += c.len_utf8() - 1;
                }
            }
        }
        Err(self.error("unterminated string"))
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number token with shortest round-trip
/// precision; non-finite values (which JSON cannot represent) become
/// `null`.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\"y", "d": null}, "e": true}"#;
        let j = Json::parse(doc).unwrap();
        assert_eq!(j.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(j.get("b").unwrap().get("c").unwrap().as_str(), Some("x\"y"));
        assert_eq!(j.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(j.get("e").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\": }", "tru", "1 2", "\"abc"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn roundtrips_floats() {
        for v in [0.0, 1.0, 0.1, 1e-9, 123456.789, -2.5e10] {
            let s = fmt_f64(v);
            let j = Json::parse(&s).unwrap();
            assert_eq!(j.as_f64(), Some(v), "{s}");
        }
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn escape_covers_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn unicode_strings_roundtrip() {
        let doc = "{\"k\": \"héllo ☃\"}";
        let j = Json::parse(doc).unwrap();
        assert_eq!(j.get("k").unwrap().as_str(), Some("héllo ☃"));
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        // U+1F600 escaped per the JSON spec as a UTF-16 surrogate pair.
        let j = Json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(j.as_str(), Some("\u{1F600}"));
        // BMP escapes still decode directly.
        assert_eq!(
            Json::parse(r#""\u00e9\u2603""#).unwrap().as_str(),
            Some("\u{e9}\u{2603}")
        );
        // Unpaired or inverted surrogates are malformed.
        for bad in [r#""\ud83d""#, r#""\ud83dAAAA""#, r#""\udc00""#] {
            assert!(Json::parse(bad).is_err(), "{bad} should not parse");
        }
    }
}
