//! Structured sweep results: the `pif-lab-sweep/v1` report, its JSON
//! emitter/validator, and the tolerance-checked baseline comparison
//! behind `piflab check`.
//!
//! Reports deliberately contain **no wall-clock data** — every value is a
//! deterministic function of the spec, the scale, and the seeds — so a
//! report is byte-identical across thread counts and machines, and a
//! committed report is a regression baseline, not a snapshot.

use crate::json::{escape, fmt_f64, Json};
use crate::scale::Scale;

/// The schema identifier embedded in every report.
pub const SCHEMA: &str = "pif-lab-sweep/v1";

/// One measured value. `F64` non-finite values serialize as `null`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Metric {
    /// An exact counter.
    U64(u64),
    /// A derived ratio/rate.
    F64(f64),
}

impl Metric {
    /// The value as `f64` (`None` for non-finite floats).
    pub fn as_f64(self) -> Option<f64> {
        match self {
            Metric::U64(v) => Some(v as f64),
            Metric::F64(v) => v.is_finite().then_some(v),
        }
    }

    fn render(self) -> String {
        match self {
            Metric::U64(v) => v.to_string(),
            Metric::F64(v) => fmt_f64(v),
        }
    }
}

/// One grid cell: coordinates plus its measured metrics, in emission
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Flat job index (also the merge position).
    pub index: usize,
    /// Workload name.
    pub workload: String,
    /// Prefetcher label for engine grids.
    pub prefetcher: Option<&'static str>,
    /// Parameter-axis point label (`"-"` on unit axes).
    pub point: String,
    /// Named metrics in deterministic emission order.
    pub metrics: Vec<(String, Metric)>,
}

impl Cell {
    /// Looks up a metric as `f64`.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, m)| m.as_f64())
    }

    /// Looks up an exact counter metric.
    pub fn metric_u64(&self, name: &str) -> Option<u64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, m)| {
                if let Metric::U64(v) = m {
                    Some(*v)
                } else {
                    None
                }
            })
    }

    /// Looks up a metric that the grid guarantees to exist, preserving
    /// non-finite values as NaN (the emitter rejects them, but in-memory
    /// consumers still see the raw ratio).
    ///
    /// # Panics
    ///
    /// Panics if the metric is absent — that is emitter/consumer drift,
    /// which must fail loudly rather than render a plausible zero.
    pub fn expect_metric(&self, name: &str) -> f64 {
        match self.metrics.iter().find(|(n, _)| n == name) {
            Some((_, Metric::U64(v))) => *v as f64,
            Some((_, Metric::F64(v))) => *v,
            None => panic!(
                "cell {}/{}/{}: metric {name:?} missing",
                self.workload,
                self.prefetcher.unwrap_or("-"),
                self.point
            ),
        }
    }

    /// Looks up a counter metric that the grid guarantees to exist.
    ///
    /// # Panics
    ///
    /// Panics if the metric is absent or not a counter (see
    /// [`Cell::expect_metric`]).
    pub fn expect_metric_u64(&self, name: &str) -> u64 {
        match self.metrics.iter().find(|(n, _)| n == name) {
            Some((_, Metric::U64(v))) => *v,
            Some((_, Metric::F64(_))) => panic!(
                "cell {}/{}/{}: metric {name:?} is not a counter",
                self.workload,
                self.prefetcher.unwrap_or("-"),
                self.point
            ),
            None => panic!(
                "cell {}/{}/{}: metric {name:?} missing",
                self.workload,
                self.prefetcher.unwrap_or("-"),
                self.point
            ),
        }
    }

    /// Adds a metric (builder-style, used by the measure drivers).
    pub fn push(&mut self, name: impl Into<String>, metric: Metric) {
        self.metrics.push((name.into(), metric));
    }
}

/// A completed sweep: spec identity, grid, configuration summary, and one
/// [`Cell`] per job, ordered by job index.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Spec name.
    pub spec: String,
    /// Spec title.
    pub title: String,
    /// Whether this was a `--smoke` run.
    pub smoke: bool,
    /// The scale the grid ran at.
    pub scale: Scale,
    /// Default check tolerance for this report.
    pub tolerance: f64,
    /// Workload axis.
    pub workloads: Vec<String>,
    /// Prefetcher axis labels (empty on analysis grids).
    pub prefetchers: Vec<&'static str>,
    /// Parameter-axis name.
    pub axis: String,
    /// Parameter-axis point labels.
    pub points: Vec<String>,
    /// Static configuration summary (drift detection).
    pub config: Vec<(String, Metric)>,
    /// One cell per job, index-ordered.
    pub cells: Vec<Cell>,
}

impl SweepReport {
    /// Finds the cell at the given coordinates.
    pub fn cell(&self, workload: &str, prefetcher: Option<&str>, point: &str) -> Option<&Cell> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.prefetcher == prefetcher && c.point == point)
    }

    /// All cells of one workload, in grid order.
    pub fn workload_cells<'a>(&'a self, workload: &'a str) -> impl Iterator<Item = &'a Cell> {
        self.cells.iter().filter(move |c| c.workload == workload)
    }

    /// Checks that every metric value is representable in JSON: NaN and
    /// infinity are **rejected at emit time** with the offending cell and
    /// metric named, never silently serialized (a non-finite metric means
    /// a measurement bug — a 0/0 ratio, a division by an empty baseline —
    /// and must fail the run, not poison the golden).
    ///
    /// # Errors
    ///
    /// The first non-finite metric found, by location.
    pub fn check_finite(&self) -> Result<(), String> {
        let check = |where_: String, name: &str, m: &Metric| match m {
            Metric::F64(v) if !v.is_finite() => Err(format!(
                "{where_}: metric {name:?} is non-finite ({v}); refusing to emit"
            )),
            _ => Ok(()),
        };
        for (name, m) in &self.config {
            check("config".to_string(), name, m)?;
        }
        for cell in &self.cells {
            for (name, m) in &cell.metrics {
                check(
                    format!(
                        "cell {} ({}/{}/{})",
                        cell.index,
                        cell.workload,
                        cell.prefetcher.unwrap_or("-"),
                        cell.point
                    ),
                    name,
                    m,
                )?;
            }
        }
        Ok(())
    }

    /// Serializes the report as a `pif-lab-sweep/v1` JSON document.
    ///
    /// The byte stream is fully deterministic: field order is fixed,
    /// floats use shortest-round-trip formatting, and nothing
    /// schedule- or clock-dependent is recorded.
    ///
    /// # Errors
    ///
    /// Rejects non-finite metric values (see
    /// [`SweepReport::check_finite`]) instead of serializing them.
    pub fn to_json(&self) -> Result<String, String> {
        self.check_finite()?;
        Ok(self.render_json())
    }

    fn render_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        s.push_str(&format!("  \"spec\": \"{}\",\n", escape(&self.spec)));
        s.push_str(&format!("  \"title\": \"{}\",\n", escape(&self.title)));
        s.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        s.push_str(&format!(
            "  \"scale\": {{\"instructions\": {}, \"footprint\": {}, \"warmup_fraction\": {}}},\n",
            self.scale.instructions,
            fmt_f64(self.scale.footprint),
            fmt_f64(self.scale.warmup_fraction)
        ));
        s.push_str(&format!("  \"tolerance\": {},\n", fmt_f64(self.tolerance)));
        s.push_str("  \"grid\": {\n");
        s.push_str(&format!(
            "    \"workloads\": [{}],\n",
            join_strings(self.workloads.iter().map(String::as_str))
        ));
        s.push_str(&format!(
            "    \"prefetchers\": [{}],\n",
            join_strings(self.prefetchers.iter().copied())
        ));
        s.push_str(&format!("    \"axis\": \"{}\",\n", escape(&self.axis)));
        s.push_str(&format!(
            "    \"points\": [{}]\n",
            join_strings(self.points.iter().map(String::as_str))
        ));
        s.push_str("  },\n");
        s.push_str("  \"config\": {");
        for (i, (name, metric)) in self.config.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {}", escape(name), metric.render()));
        }
        s.push_str("},\n");
        s.push_str("  \"cells\": [\n");
        for (i, cell) in self.cells.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"index\": {}, \"workload\": \"{}\", \"prefetcher\": {}, \"point\": \"{}\", \"metrics\": {{",
                cell.index,
                escape(&cell.workload),
                match cell.prefetcher {
                    Some(p) => format!("\"{}\"", escape(p)),
                    None => "null".to_string(),
                },
                escape(&cell.point),
            ));
            for (j, (name, metric)) in cell.metrics.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("\"{}\": {}", escape(name), metric.render()));
            }
            s.push_str("}}");
            s.push_str(if i + 1 == self.cells.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn join_strings<'a>(items: impl Iterator<Item = &'a str>) -> String {
    items
        .map(|s| format!("\"{}\"", escape(s)))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Validates that `j` is a structurally well-formed `pif-lab-sweep/v1`
/// report.
///
/// # Errors
///
/// Returns the first structural violation found.
pub fn validate_report(j: &Json) -> Result<(), String> {
    let schema = j
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing \"schema\"")?;
    if schema != SCHEMA {
        return Err(format!("schema is {schema:?}, expected {SCHEMA:?}"));
    }
    j.get("spec")
        .and_then(Json::as_str)
        .ok_or("missing \"spec\"")?;
    j.get("smoke")
        .and_then(Json::as_bool)
        .ok_or("missing \"smoke\"")?;
    let scale = j.get("scale").ok_or("missing \"scale\"")?;
    for field in ["instructions", "footprint", "warmup_fraction"] {
        scale
            .get(field)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("scale missing numeric {field:?}"))?;
    }
    j.get("tolerance")
        .and_then(Json::as_f64)
        .ok_or("missing \"tolerance\"")?;
    let grid = j.get("grid").ok_or("missing \"grid\"")?;
    let workloads = grid
        .get("workloads")
        .and_then(Json::as_arr)
        .ok_or("grid missing \"workloads\"")?;
    let prefetchers = grid
        .get("prefetchers")
        .and_then(Json::as_arr)
        .ok_or("grid missing \"prefetchers\"")?;
    grid.get("axis")
        .and_then(Json::as_str)
        .ok_or("grid missing \"axis\"")?;
    let points = grid
        .get("points")
        .and_then(Json::as_arr)
        .ok_or("grid missing \"points\"")?;
    j.get("config")
        .and_then(Json::as_obj)
        .ok_or("missing \"config\"")?;
    let cells = j
        .get("cells")
        .and_then(Json::as_arr)
        .ok_or("missing \"cells\"")?;
    let expected = workloads.len() * prefetchers.len().max(1) * points.len();
    if cells.len() != expected {
        return Err(format!(
            "grid is {} x {} x {} but report has {} cells",
            workloads.len(),
            prefetchers.len().max(1),
            points.len(),
            cells.len()
        ));
    }
    for (i, cell) in cells.iter().enumerate() {
        let index = cell
            .get("index")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("cell {i} missing \"index\""))?;
        if index as usize != i {
            return Err(format!("cell {i} has out-of-order index {index}"));
        }
        cell.get("workload")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("cell {i} missing \"workload\""))?;
        match cell.get("prefetcher") {
            Some(Json::Str(_)) | Some(Json::Null) => {}
            _ => return Err(format!("cell {i} missing \"prefetcher\"")),
        }
        cell.get("point")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("cell {i} missing \"point\""))?;
        let metrics = cell
            .get("metrics")
            .and_then(Json::as_obj)
            .ok_or_else(|| format!("cell {i} missing \"metrics\""))?;
        for (name, v) in metrics {
            if !matches!(v, Json::Num(_) | Json::Null) {
                return Err(format!("cell {i} metric {name:?} is not a number or null"));
            }
        }
    }
    Ok(())
}

/// Summary of a successful `piflab check` comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckSummary {
    /// Cells compared.
    pub cells: usize,
    /// Metric values compared.
    pub metrics: usize,
    /// Largest relative delta observed (still within tolerance).
    pub max_rel_delta: f64,
}

/// Relative delta with a floor of 1.0 on the denominator, so tolerances
/// behave sensibly for both ratios (~1) and large counters.
fn rel_delta(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1.0)
}

/// Compares a freshly produced report against a committed baseline.
///
/// Identity fields (spec, scale, grid, config, cell coordinates, metric
/// sets) must match exactly; metric values must agree within
/// `tol_override` (defaulting to the baseline's embedded tolerance).
///
/// # Errors
///
/// Returns every violation found, one message per line.
pub fn check_reports(
    new: &Json,
    baseline: &Json,
    tol_override: Option<f64>,
) -> Result<CheckSummary, Vec<String>> {
    let mut violations = Vec::new();
    if let Err(e) = validate_report(new) {
        violations.push(format!("new report invalid: {e}"));
    }
    if let Err(e) = validate_report(baseline) {
        violations.push(format!("baseline report invalid: {e}"));
    }
    if !violations.is_empty() {
        return Err(violations);
    }
    let tolerance = tol_override
        .or_else(|| baseline.get("tolerance").and_then(Json::as_f64))
        .unwrap_or(1e-9);

    for field in ["schema", "spec", "scale", "grid", "config"] {
        if new.get(field) != baseline.get(field) {
            violations.push(format!("{field:?} differs from baseline"));
        }
    }
    let new_cells = new.get("cells").and_then(Json::as_arr).unwrap_or(&[]);
    let base_cells = baseline.get("cells").and_then(Json::as_arr).unwrap_or(&[]);
    if new_cells.len() != base_cells.len() {
        violations.push(format!(
            "cell count differs: {} vs baseline {}",
            new_cells.len(),
            base_cells.len()
        ));
        return Err(violations);
    }

    let mut metrics_compared = 0usize;
    let mut max_rel = 0.0f64;
    for (i, (nc, bc)) in new_cells.iter().zip(base_cells).enumerate() {
        let coord = |c: &Json| {
            format!(
                "{}/{}/{}",
                c.get("workload").and_then(Json::as_str).unwrap_or("?"),
                c.get("prefetcher").and_then(Json::as_str).unwrap_or("-"),
                c.get("point").and_then(Json::as_str).unwrap_or("?"),
            )
        };
        if coord(nc) != coord(bc) {
            violations.push(format!(
                "cell {i}: coordinates differ: {} vs baseline {}",
                coord(nc),
                coord(bc)
            ));
            continue;
        }
        let nm = nc.get("metrics").and_then(Json::as_obj).unwrap_or(&[]);
        let bm = bc.get("metrics").and_then(Json::as_obj).unwrap_or(&[]);
        for (name, bv) in bm {
            let Some(nv) = nm.iter().find(|(n, _)| n == name).map(|(_, v)| v) else {
                violations.push(format!("cell {i} ({}): metric {name:?} missing", coord(nc)));
                continue;
            };
            metrics_compared += 1;
            match (nv, bv) {
                (Json::Null, Json::Null) => {}
                (Json::Num(a), Json::Num(b)) => {
                    let delta = rel_delta(*a, *b);
                    max_rel = max_rel.max(delta);
                    if delta > tolerance {
                        violations.push(format!(
                            "cell {i} ({}): {name} = {a} vs baseline {b} \
                             (rel delta {delta:.3e} > tolerance {tolerance:.3e})",
                            coord(nc)
                        ));
                    }
                }
                _ => violations.push(format!(
                    "cell {i} ({}): {name} changed between null and a number",
                    coord(nc)
                )),
            }
        }
        for (name, _) in nm {
            if !bm.iter().any(|(n, _)| n == name) {
                violations.push(format!(
                    "cell {i} ({}): unexpected new metric {name:?} (regenerate the baseline)",
                    coord(nc)
                ));
            }
        }
    }

    if violations.is_empty() {
        Ok(CheckSummary {
            cells: new_cells.len(),
            metrics: metrics_compared,
            max_rel_delta: max_rel,
        })
    } else {
        Err(violations)
    }
}

/// Renders a human-readable metric diff between two reports (best-effort;
/// unlike [`check_reports`] it never fails, it just describes).
pub fn diff_reports(a: &Json, b: &Json) -> String {
    let mut out = String::new();
    for field in ["schema", "spec", "scale", "grid", "config"] {
        if a.get(field) != b.get(field) {
            out.push_str(&format!("{field} differs\n"));
        }
    }
    let ac = a.get("cells").and_then(Json::as_arr).unwrap_or(&[]);
    let bc = b.get("cells").and_then(Json::as_arr).unwrap_or(&[]);
    if ac.len() != bc.len() {
        out.push_str(&format!("cell count: {} vs {}\n", ac.len(), bc.len()));
    }
    // Aggregate the largest delta per metric name across matched cells.
    let mut per_metric: Vec<(String, f64, String)> = Vec::new();
    for (i, (ca, cb)) in ac.iter().zip(bc).enumerate() {
        let ma = ca.get("metrics").and_then(Json::as_obj).unwrap_or(&[]);
        let mb = cb.get("metrics").and_then(Json::as_obj).unwrap_or(&[]);
        for (name, va) in ma {
            let Some(vb) = mb.iter().find(|(n, _)| n == name).map(|(_, v)| v) else {
                continue;
            };
            if let (Json::Num(x), Json::Num(y)) = (va, vb) {
                let delta = rel_delta(*x, *y);
                if delta == 0.0 {
                    continue;
                }
                let where_ = format!(
                    "cell {i} ({}): {x} vs {y}",
                    ca.get("workload").and_then(Json::as_str).unwrap_or("?")
                );
                match per_metric.iter_mut().find(|(n, _, _)| n == name) {
                    Some(entry) if entry.1 < delta => {
                        entry.1 = delta;
                        entry.2 = where_;
                    }
                    Some(_) => {}
                    None => per_metric.push((name.clone(), delta, where_)),
                }
            }
        }
    }
    per_metric.sort_by(|x, y| y.1.total_cmp(&x.1));
    if per_metric.is_empty() && out.is_empty() {
        out.push_str("reports are metric-identical\n");
    }
    for (name, delta, where_) in per_metric {
        out.push_str(&format!("{name}: max rel delta {delta:.3e} at {where_}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> SweepReport {
        SweepReport {
            spec: "test".into(),
            title: "A test grid".into(),
            smoke: true,
            scale: Scale::tiny(),
            tolerance: 1e-9,
            workloads: vec!["OLTP-DB2".into()],
            prefetchers: vec!["None", "PIF"],
            axis: "unit".into(),
            points: vec!["-".into()],
            config: vec![("icache_capacity_bytes".into(), Metric::U64(65536))],
            cells: vec![
                Cell {
                    index: 0,
                    workload: "OLTP-DB2".into(),
                    prefetcher: Some("None"),
                    point: "-".into(),
                    metrics: vec![
                        ("demand_misses".into(), Metric::U64(1234)),
                        ("uipc".into(), Metric::F64(1.5)),
                    ],
                },
                Cell {
                    index: 1,
                    workload: "OLTP-DB2".into(),
                    prefetcher: Some("PIF"),
                    point: "-".into(),
                    metrics: vec![
                        ("demand_misses".into(), Metric::U64(34)),
                        ("uipc".into(), Metric::F64(2.25)),
                    ],
                },
            ],
        }
    }

    #[test]
    fn serialized_report_parses_and_validates() {
        let json = sample_report().to_json().unwrap();
        let parsed = Json::parse(&json).expect("report parses");
        validate_report(&parsed).expect("report validates");
    }

    #[test]
    fn cell_lookup_and_metric_accessors() {
        let r = sample_report();
        let c = r.cell("OLTP-DB2", Some("PIF"), "-").unwrap();
        assert_eq!(c.metric_u64("demand_misses"), Some(34));
        assert_eq!(c.metric("uipc"), Some(2.25));
        assert!(r.cell("OLTP-DB2", Some("TIFS"), "-").is_none());
        assert_eq!(r.workload_cells("OLTP-DB2").count(), 2);
    }

    #[test]
    fn nonfinite_metrics_are_rejected_at_emit_time() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut r = sample_report();
            r.cells[1].push("bad", Metric::F64(bad));
            let err = r.to_json().expect_err("non-finite must not serialize");
            assert!(err.contains("bad") && err.contains("non-finite"), "{err}");
            assert!(err.contains("OLTP-DB2"), "location named: {err}");
        }
        // Config values are checked too.
        let mut r = sample_report();
        r.config.push(("drift".into(), Metric::F64(f64::NAN)));
        assert!(r.to_json().unwrap_err().contains("config"));
        // But a fully finite report still round-trips.
        sample_report().to_json().expect("finite report emits");
    }

    #[test]
    fn check_accepts_identical_reports() {
        let j = Json::parse(&sample_report().to_json().unwrap()).unwrap();
        let summary = check_reports(&j, &j, None).expect("identical reports pass");
        assert_eq!(summary.cells, 2);
        assert!(summary.metrics >= 4);
        assert_eq!(summary.max_rel_delta, 0.0);
    }

    #[test]
    fn check_tolerance_passes_inside_and_fails_outside() {
        let base = sample_report();
        let mut near = base.clone();
        // Perturb uipc by a relative 1e-6.
        near.cells[1].metrics[1] = ("uipc".into(), Metric::F64(2.25 * (1.0 + 1e-6)));
        let jb = Json::parse(&base.to_json().unwrap()).unwrap();
        let jn = Json::parse(&near.to_json().unwrap()).unwrap();
        // Inside a loose tolerance: passes.
        check_reports(&jn, &jb, Some(1e-4)).expect("inside tolerance");
        // Outside a tight tolerance: fails, naming the metric.
        let violations = check_reports(&jn, &jb, Some(1e-8)).unwrap_err();
        assert!(
            violations.iter().any(|v| v.contains("uipc")),
            "{violations:?}"
        );
    }

    #[test]
    fn check_flags_missing_and_unexpected_metrics() {
        let base = sample_report();
        let mut changed = base.clone();
        changed.cells[0].metrics.remove(0);
        changed.cells[1].push("extra", Metric::U64(1));
        let jb = Json::parse(&base.to_json().unwrap()).unwrap();
        let jc = Json::parse(&changed.to_json().unwrap()).unwrap();
        let violations = check_reports(&jc, &jb, None).unwrap_err();
        assert!(violations.iter().any(|v| v.contains("missing")));
        assert!(violations.iter().any(|v| v.contains("unexpected")));
    }

    #[test]
    fn check_flags_grid_drift() {
        let base = sample_report();
        let mut moved = base.clone();
        moved.config[0].1 = Metric::U64(131072);
        let jb = Json::parse(&base.to_json().unwrap()).unwrap();
        let jm = Json::parse(&moved.to_json().unwrap()).unwrap();
        let violations = check_reports(&jm, &jb, None).unwrap_err();
        assert!(
            violations.iter().any(|v| v.contains("config")),
            "{violations:?}"
        );
    }

    #[test]
    fn validator_rejects_wrong_cell_count() {
        let mut r = sample_report();
        r.cells.pop();
        let parsed = Json::parse(&r.to_json().unwrap()).unwrap();
        assert!(validate_report(&parsed).is_err());
    }

    #[test]
    fn diff_describes_deltas() {
        let base = sample_report();
        let mut other = base.clone();
        other.cells[0].metrics[0] = ("demand_misses".into(), Metric::U64(1250));
        let ja = Json::parse(&base.to_json().unwrap()).unwrap();
        let jo = Json::parse(&other.to_json().unwrap()).unwrap();
        let d = diff_reports(&ja, &jo);
        assert!(d.contains("demand_misses"), "{d}");
        assert!(diff_reports(&ja, &ja).contains("metric-identical"));
    }
}
