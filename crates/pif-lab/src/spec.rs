//! Declarative sweep specifications.
//!
//! A [`SweepSpec`] names the axes of one experiment grid — workloads,
//! prefetchers, and one typed parameter sweep — plus the measurement to
//! take in each cell. Expanding the spec yields a flat, index-ordered job
//! list; running it (see [`crate::run_spec`]) yields a
//! [`crate::SweepReport`].

use pif_core::PifConfig;
use pif_sim::EngineConfig;

/// The prefetcher attached to the engine in an [`Measure::Engine`] cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetcherKind {
    /// No prefetching (the baseline every speedup is relative to).
    None,
    /// Next-N-line prefetcher (aggressive depth).
    NextLine,
    /// Temporal Instruction Fetch Streaming at its paper scale.
    Tifs,
    /// TIFS without history storage limits (the §5.5 predictor-gap
    /// configuration).
    TifsUnbounded,
    /// Discontinuity prefetcher at its paper scale.
    Discontinuity,
    /// Proactive Instruction Fetch, configured by the cell's
    /// [`PifConfig`].
    Pif,
    /// Perfect (always-hit) L1-I — the speedup ceiling.
    Perfect,
}

impl PrefetcherKind {
    /// Stable label used in reports and golden baselines.
    pub fn label(self) -> &'static str {
        match self {
            PrefetcherKind::None => "None",
            PrefetcherKind::NextLine => "Next-Line",
            PrefetcherKind::Tifs => "TIFS",
            PrefetcherKind::TifsUnbounded => "TIFS-unbounded",
            PrefetcherKind::Discontinuity => "Discontinuity",
            PrefetcherKind::Pif => "PIF",
            PrefetcherKind::Perfect => "Perfect",
        }
    }
}

/// One typed parameter sweep over the simulator/PIF configuration.
///
/// Each variant names the knob and carries the values to sweep; applying
/// point `i` mutates the cell's [`PifConfig`] / [`EngineConfig`] through
/// the config-sweep setters.
#[derive(Debug, Clone)]
pub enum ParamAxis {
    /// No parameter sweep: a single grid point.
    Unit,
    /// PIF history-buffer capacity in region records (Fig. 9 right).
    HistoryCapacity(Vec<usize>),
    /// Number of stream address buffers (SAB pool depth).
    SabCount(Vec<usize>),
    /// SAB stream-window length in regions.
    SabWindow(Vec<usize>),
    /// Total spatial-region size in blocks, skewed per the paper
    /// (Fig. 8 right).
    RegionBlocks(Vec<u8>),
    /// L1-I capacity in bytes (cache-geometry sweeps).
    ICacheCapacity(Vec<usize>),
    /// Named full PIF design points (ablation grids).
    PifPoints(Vec<(String, PifConfig)>),
    /// Sample counts for [`Measure::Sampled`] grids (the `fig-sampling`
    /// CI-half-width-vs-samples study). Leaves the configs untouched;
    /// the sampled measure reads its point directly.
    SampleCount(Vec<u32>),
}

impl ParamAxis {
    /// Stable axis name recorded in the report grid.
    pub fn name(&self) -> &'static str {
        match self {
            ParamAxis::Unit => "unit",
            ParamAxis::HistoryCapacity(_) => "history_capacity",
            ParamAxis::SabCount(_) => "sab_count",
            ParamAxis::SabWindow(_) => "sab_window",
            ParamAxis::RegionBlocks(_) => "region_blocks",
            ParamAxis::ICacheCapacity(_) => "icache_capacity_bytes",
            ParamAxis::PifPoints(_) => "pif_point",
            ParamAxis::SampleCount(_) => "sample_count",
        }
    }

    /// Number of points on this axis (at least 1: [`ParamAxis::Unit`] is a
    /// single implicit point).
    pub fn len(&self) -> usize {
        match self {
            ParamAxis::Unit => 1,
            ParamAxis::HistoryCapacity(v) => v.len(),
            ParamAxis::SabCount(v) => v.len(),
            ParamAxis::SabWindow(v) => v.len(),
            ParamAxis::RegionBlocks(v) => v.len(),
            ParamAxis::ICacheCapacity(v) => v.len(),
            ParamAxis::PifPoints(v) => v.len(),
            ParamAxis::SampleCount(v) => v.len(),
        }
    }

    /// Always false: every axis has at least the implicit unit point.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Stable label of point `i`, recorded per cell.
    pub fn label(&self, i: usize) -> String {
        match self {
            ParamAxis::Unit => "-".to_string(),
            ParamAxis::HistoryCapacity(v) => v[i].to_string(),
            ParamAxis::SabCount(v) => v[i].to_string(),
            ParamAxis::SabWindow(v) => v[i].to_string(),
            ParamAxis::RegionBlocks(v) => v[i].to_string(),
            ParamAxis::ICacheCapacity(v) => v[i].to_string(),
            ParamAxis::PifPoints(v) => v[i].0.clone(),
            ParamAxis::SampleCount(v) => v[i].to_string(),
        }
    }

    /// Applies point `i` to the cell's configuration pair.
    pub fn apply(&self, i: usize, pif: &mut PifConfig, engine: &mut EngineConfig) {
        match self {
            ParamAxis::Unit => {}
            ParamAxis::HistoryCapacity(v) => *pif = pif.with_history_capacity(v[i]),
            ParamAxis::SabCount(v) => *pif = pif.with_sab_count(v[i]),
            ParamAxis::SabWindow(v) => *pif = pif.with_sab_window(v[i]),
            ParamAxis::RegionBlocks(v) => {
                let geometry = pif_types::RegionGeometry::skewed_with_total(v[i])
                    .expect("axis carries valid region sizes");
                *pif = pif.with_geometry(geometry);
            }
            ParamAxis::ICacheCapacity(v) => {
                *engine = engine.with_icache(engine.icache.with_capacity_bytes(v[i]));
            }
            ParamAxis::PifPoints(v) => *pif = v[i].1,
            // The sample count is not a simulator knob; Measure::Sampled
            // reads it from the axis point itself.
            ParamAxis::SampleCount(_) => {}
        }
    }
}

/// Which CDF a [`Measure::PifAnalysis`] cell emits, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CdfKind {
    /// No CDF metrics.
    None,
    /// Prediction-weighted jump distance in history, log2 buckets
    /// (Fig. 7).
    JumpDistance,
    /// Prediction-weighted temporal stream length, log2 buckets
    /// (Fig. 9 left).
    StreamLength,
}

/// The measurement taken in each grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Measure {
    /// Full engine simulation with the cell's prefetcher: RunReport
    /// counters plus derived MPKI / coverage / UIPC speedup vs the `None`
    /// cell of the same (workload, point).
    Engine,
    /// PIF predictor analysis (no timing): predictor/miss coverage and an
    /// optional CDF.
    PifAnalysis(CdfKind),
    /// Spatial-region characterization at a fixed probe geometry.
    Regions {
        /// Blocks preceding the trigger.
        preceding: u8,
        /// Blocks succeeding the trigger.
        succeeding: u8,
    },
    /// Stream-observation-point coverage study (Fig. 2).
    StreamCoverage,
    /// Static workload/system parameters (Table I); runs no simulation
    /// and ignores the run scale.
    Static,
    /// SimFlex-style **sampled** engine simulation
    /// (`pif_sim::sampling`): seeded-random measurement windows with
    /// functional warmup, reporting per-sample UIPC/MPKI summaries
    /// (mean/stderr/ci95) instead of whole-trace counters. Window seeds
    /// derive from the job index, so reports stay byte-identical across
    /// thread counts. An [`ParamAxis::SampleCount`] axis overrides
    /// `samples` per point.
    Sampled {
        /// Measurement windows per cell (unless a
        /// [`ParamAxis::SampleCount`] axis overrides it).
        samples: u32,
    },
}

/// A declarative experiment grid: axes × measurement.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Registry name (`piflab run <name>`).
    pub name: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// Workload names (must match [`pif_workloads::WorkloadProfile`]
    /// names); empty means all six. With
    /// [`SweepSpec::with_recorded_workloads`] the names are recorded
    /// traces instead, resolved by [`crate::recorded::load`].
    pub workloads: Vec<String>,
    /// Workload names denote recorded real-binary traces rather than
    /// synthetic profiles (see [`crate::recorded`]).
    pub recorded: bool,
    /// Prefetcher axis; empty means the implicit unit axis (analysis
    /// measures).
    pub prefetchers: Vec<PrefetcherKind>,
    /// The typed parameter axis.
    pub axis: ParamAxis,
    /// Per-cell measurement.
    pub measure: Measure,
    /// Base PIF configuration before the axis applies.
    pub pif_base: PifConfig,
    /// Base engine configuration before the axis applies.
    pub engine_base: EngineConfig,
    /// Execution-seed offset for the per-job workload streams.
    pub seed_offset: u64,
    /// Default relative tolerance for `piflab check` against this spec's
    /// reports.
    pub tolerance: f64,
}

impl SweepSpec {
    /// A new spec over all six workloads with unit axes and paper-default
    /// configurations.
    pub fn new(name: &'static str, title: &'static str, measure: Measure) -> Self {
        SweepSpec {
            name,
            title,
            workloads: Vec::new(),
            recorded: false,
            prefetchers: Vec::new(),
            axis: ParamAxis::Unit,
            measure,
            pif_base: PifConfig::paper_default(),
            engine_base: EngineConfig::paper_default(),
            seed_offset: 0,
            tolerance: 1e-9,
        }
    }

    /// Restricts the workload axis.
    #[must_use]
    pub fn with_workloads<S: Into<String>>(mut self, workloads: Vec<S>) -> Self {
        self.workloads = workloads.into_iter().map(Into::into).collect();
        self
    }

    /// Marks the workload names as recorded real-binary traces, resolved
    /// against [`crate::recorded::trace_dir`] instead of the synthetic
    /// profile set. Recorded specs must name their workloads explicitly
    /// and support only measures that consume a materialized trace
    /// (engine, analysis, and sampled grids — not [`Measure::Static`]).
    #[must_use]
    pub fn with_recorded_workloads(mut self) -> Self {
        self.recorded = true;
        self
    }

    /// Sets the prefetcher axis.
    #[must_use]
    pub fn with_prefetchers(mut self, prefetchers: Vec<PrefetcherKind>) -> Self {
        self.prefetchers = prefetchers;
        self
    }

    /// Sets the parameter axis.
    #[must_use]
    pub fn with_axis(mut self, axis: ParamAxis) -> Self {
        self.axis = axis;
        self
    }

    /// Sets the base PIF configuration.
    #[must_use]
    pub fn with_pif_base(mut self, pif_base: PifConfig) -> Self {
        self.pif_base = pif_base;
        self
    }

    /// Sets the base engine configuration.
    #[must_use]
    pub fn with_engine_base(mut self, engine_base: EngineConfig) -> Self {
        self.engine_base = engine_base;
        self
    }

    /// Sets the check tolerance.
    #[must_use]
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// The resolved workload-name axis (defaults to all six).
    pub fn workload_names(&self) -> Vec<String> {
        if self.workloads.is_empty() {
            pif_workloads::WorkloadProfile::all()
                .iter()
                .map(|w| w.name().to_string())
                .collect()
        } else {
            self.workloads.clone()
        }
    }

    /// Prefetcher labels recorded in the report grid.
    pub fn prefetcher_labels(&self) -> Vec<&'static str> {
        self.prefetchers.iter().map(|p| p.label()).collect()
    }

    /// Number of grid cells.
    pub fn grid_len(&self) -> usize {
        self.workload_names().len() * self.prefetchers.len().max(1) * self.axis.len()
    }

    /// Expands the grid into index-ordered job coordinates
    /// (workload-major, then prefetcher, then axis point).
    pub fn jobs(&self) -> Vec<JobCoord> {
        let workloads = self.workload_names();
        let n_pref = self.prefetchers.len().max(1);
        let mut out = Vec::with_capacity(self.grid_len());
        for (wi, _) in workloads.iter().enumerate() {
            for pi in 0..n_pref {
                for xi in 0..self.axis.len() {
                    out.push(JobCoord {
                        index: out.len(),
                        workload: wi,
                        prefetcher: self.prefetchers.get(pi).copied(),
                        point: xi,
                    });
                }
            }
        }
        out
    }
}

/// One cell's position in the expanded grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobCoord {
    /// Flat job index (merge order).
    pub index: usize,
    /// Index into the spec's resolved workload list.
    pub workload: usize,
    /// Prefetcher for [`Measure::Engine`] cells (`None` on analysis
    /// grids).
    pub prefetcher: Option<PrefetcherKind>,
    /// Index into the parameter axis.
    pub point: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_expansion_is_workload_major() {
        let spec = SweepSpec::new("t", "t", Measure::Engine)
            .with_workloads(vec!["OLTP-DB2", "Web-Apache"])
            .with_prefetchers(vec![PrefetcherKind::None, PrefetcherKind::Pif])
            .with_axis(ParamAxis::HistoryCapacity(vec![1024, 2048, 4096]));
        let jobs = spec.jobs();
        assert_eq!(jobs.len(), 2 * 2 * 3);
        assert_eq!(spec.grid_len(), jobs.len());
        assert_eq!(jobs[0].workload, 0);
        assert_eq!(jobs[0].prefetcher, Some(PrefetcherKind::None));
        assert_eq!(jobs[0].point, 0);
        assert_eq!(jobs[5].workload, 0);
        assert_eq!(jobs[5].prefetcher, Some(PrefetcherKind::Pif));
        assert_eq!(jobs[5].point, 2);
        assert_eq!(jobs[6].workload, 1);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.index, i);
        }
    }

    #[test]
    fn axis_apply_mutates_configs() {
        let mut pif = PifConfig::paper_default();
        let mut engine = EngineConfig::paper_default();
        ParamAxis::HistoryCapacity(vec![999]).apply(0, &mut pif, &mut engine);
        assert_eq!(pif.history_capacity, 999);
        ParamAxis::SabCount(vec![2]).apply(0, &mut pif, &mut engine);
        assert_eq!(pif.sab_count, 2);
        ParamAxis::SabWindow(vec![3]).apply(0, &mut pif, &mut engine);
        assert_eq!(pif.sab_window, 3);
        ParamAxis::RegionBlocks(vec![4]).apply(0, &mut pif, &mut engine);
        assert_eq!(pif.geometry.total_blocks(), 4);
        ParamAxis::ICacheCapacity(vec![128 * 1024]).apply(0, &mut pif, &mut engine);
        assert_eq!(engine.icache.capacity_bytes, 128 * 1024);
        assert!(engine.icache.validate().is_ok());
    }

    #[test]
    fn unit_axis_is_single_point() {
        let axis = ParamAxis::Unit;
        assert_eq!(axis.len(), 1);
        assert!(!axis.is_empty());
        assert_eq!(axis.label(0), "-");
        assert_eq!(axis.name(), "unit");
    }

    #[test]
    fn default_workloads_are_all_six() {
        let spec = SweepSpec::new("t", "t", Measure::Static);
        assert_eq!(spec.workload_names().len(), 6);
        assert_eq!(spec.grid_len(), 6);
    }
}
