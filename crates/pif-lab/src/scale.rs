//! Experiment scale control (trace length, footprint, warmup).

use pif_workloads::WorkloadProfile;

/// How big an experiment run should be.
///
/// The paper traces 1B instructions per core on full server binaries; the
/// synthetic workloads reach steady state far sooner, so even
/// [`Scale::paper`] runs on a laptop in minutes while preserving the
/// result *shapes*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Instructions per workload trace.
    pub instructions: usize,
    /// Footprint scale factor applied to each profile.
    pub footprint: f64,
    /// Fraction of the trace treated as warmup (recorded, not measured).
    pub warmup_fraction: f64,
}

impl Scale {
    /// Minimal scale for doctests and unit tests (sub-second).
    pub fn tiny() -> Self {
        Scale {
            instructions: 40_000,
            footprint: 0.03,
            warmup_fraction: 0.3,
        }
    }

    /// Quick scale for integration tests (a few seconds per figure).
    pub fn quick() -> Self {
        Scale {
            instructions: 300_000,
            footprint: 0.15,
            warmup_fraction: 0.3,
        }
    }

    /// Paper-like scale used by the experiment binaries and benches.
    pub fn paper() -> Self {
        Scale {
            instructions: 12_000_000,
            footprint: 1.0,
            warmup_fraction: 0.3,
        }
    }

    /// Reads `PIF_SCALE` from the environment (`tiny`, `quick`, `paper`;
    /// default `paper`). An unrecognized value warns on stderr before
    /// falling back to `paper`, so a typo cannot silently turn a smoke
    /// run into a 12M-instruction full-scale sweep.
    pub fn from_env() -> Self {
        match std::env::var("PIF_SCALE").as_deref() {
            Ok("tiny") => Self::tiny(),
            Ok("quick") => Self::quick(),
            Ok("paper") | Err(_) => Self::paper(),
            Ok(other) => {
                eprintln!(
                    "warning: unknown PIF_SCALE {other:?} (expected tiny|quick|paper); \
                     using paper scale"
                );
                Self::paper()
            }
        }
    }

    /// The six workloads at this scale.
    pub fn workloads(&self) -> Vec<WorkloadProfile> {
        WorkloadProfile::all()
            .into_iter()
            .map(|w| w.scaled(self.footprint))
            .collect()
    }

    /// Warmup length in instructions.
    pub fn warmup_instrs(&self) -> usize {
        (self.instructions as f64 * self.warmup_fraction) as usize
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::tiny().instructions < Scale::quick().instructions);
        assert!(Scale::quick().instructions < Scale::paper().instructions);
    }

    #[test]
    fn workloads_scaled() {
        let s = Scale::tiny();
        let ws = s.workloads();
        assert_eq!(ws.len(), 6);
        assert!(ws[0].params().num_functions < WorkloadProfile::oltp_db2().params().num_functions);
    }

    #[test]
    fn warmup_instrs_follow_fraction() {
        let s = Scale {
            instructions: 1000,
            footprint: 1.0,
            warmup_fraction: 0.25,
        };
        assert_eq!(s.warmup_instrs(), 250);
    }
}
