//! Recorded real-binary workloads: the bridge between `pif-bintrace`
//! trace files and the sweep grid.
//!
//! A spec built with [`crate::SweepSpec::with_recorded_workloads`] treats
//! its workload names not as synthetic [`pif_workloads::WorkloadProfile`]s
//! but as **recorded traces**: each name `w` resolves to
//! `<trace dir>/w.pift`, a v1/v2 trace file produced by
//! `tracectl record-elf`. The trace directory defaults to
//! `target/bintrace` and is overridden with the `PIF_BINTRACE_DIR`
//! environment variable.
//!
//! One name is special: [`DEMO_WORKLOAD`] (`"bintrace-demo"`). When its
//! file is absent, the workload is synthesized in memory by walking the
//! hand-assembled demo ELF baked into `pif-bintrace` with the default
//! [`pif_bintrace::walk::WalkConfig`]. The walker's determinism contract
//! (the stream is a pure function of the ELF bytes and the config, with a
//! prefix independent of the requested length) makes that fallback
//! **byte-identical** to reading a `tracectl record-elf` recording of the
//! same fixture — so the `fig-bintrace` golden gates both paths, and the
//! registry stays self-contained for tests and fresh checkouts.

use std::fs::File;
use std::io::BufReader;
use std::path::PathBuf;
use std::sync::Arc;

use pif_bintrace::cfg::Cfg;
use pif_bintrace::elf::ElfImage;
use pif_bintrace::fixture;
use pif_bintrace::walk::{WalkConfig, Walker};
use pif_workloads::Trace;

/// The recorded workload that falls back to an in-memory walk of the
/// `pif-bintrace` demo fixture when no trace file has been recorded.
pub const DEMO_WORKLOAD: &str = "bintrace-demo";

/// Environment variable overriding the recorded-trace directory.
pub const TRACE_DIR_ENV: &str = "PIF_BINTRACE_DIR";

/// The directory recorded workload names resolve in:
/// `$PIF_BINTRACE_DIR`, or `target/bintrace` when unset.
pub fn trace_dir() -> PathBuf {
    std::env::var_os(TRACE_DIR_ENV)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/bintrace"))
}

/// The trace file a recorded workload name resolves to.
pub fn trace_path(name: &str) -> PathBuf {
    trace_dir().join(format!("{name}.pift"))
}

/// Loads the recorded trace for workload `name`, truncated to exactly
/// `instructions` records.
///
/// Reads [`trace_path`]`(name)` when it exists; otherwise
/// [`DEMO_WORKLOAD`] synthesizes its stream from the built-in demo ELF
/// and every other name is an error telling the user to record first.
///
/// # Errors
///
/// A human-readable message when the file is missing (non-demo names),
/// fails to decode, or holds fewer than `instructions` records — a short
/// recording silently shrinking the run would invalidate golden
/// comparisons, so it is rejected instead.
pub fn load(name: &str, instructions: usize) -> Result<Trace, String> {
    let path = trace_path(name);
    if path.exists() {
        return load_file(&path, name, instructions);
    }
    if name == DEMO_WORKLOAD {
        return Ok(demo_walk(instructions));
    }
    Err(format!(
        "no recorded trace at {} — record it first with `tracectl record-elf <binary> {}`",
        path.display(),
        path.display()
    ))
}

fn load_file(path: &std::path::Path, name: &str, instructions: usize) -> Result<Trace, String> {
    let file = File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let reader = pif_trace::TraceReader::open(BufReader::new(file))
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let mut source = reader.instrs();
    let instrs: Vec<_> = source.by_ref().take(instructions).collect();
    if let Some(e) = source.take_error() {
        return Err(format!("{}: {e}", path.display()));
    }
    if instrs.len() < instructions {
        return Err(format!(
            "{}: {} records, but the run scale needs {instructions} — re-record with `-n {instructions}` or more",
            path.display(),
            instrs.len(),
        ));
    }
    Ok(Trace::new(name, instrs))
}

/// In-memory [`DEMO_WORKLOAD`] stream: a default-config walk of the
/// hand-assembled demo ELF.
fn demo_walk(instructions: usize) -> Trace {
    let image = ElfImage::parse(&fixture::demo_elf()).expect("built-in demo ELF parses");
    let cfg = Arc::new(Cfg::recover(&image));
    let walker = Walker::new(cfg, WalkConfig::default()).expect("demo ELF has walkable code");
    Trace::new(DEMO_WORKLOAD, walker.take(instructions).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_workload_synthesizes_without_a_file() {
        let t = load(DEMO_WORKLOAD, 5_000).expect("fallback walk");
        assert_eq!(t.name(), DEMO_WORKLOAD);
        assert_eq!(t.len(), 5_000);
        // Deterministic: two loads are identical.
        assert_eq!(t, load(DEMO_WORKLOAD, 5_000).unwrap());
    }

    #[test]
    fn unknown_recorded_workload_errors_with_recording_hint() {
        let err = load("no-such-recording", 100).unwrap_err();
        assert!(err.contains("record-elf"), "{err}");
        assert!(err.contains("no-such-recording.pift"), "{err}");
    }

    #[test]
    fn fallback_matches_a_recorded_file_of_the_same_fixture() {
        // The differential contract the fig-bintrace golden rests on:
        // write-then-read of a longer recording equals direct emit.
        let dir = std::env::temp_dir().join(format!("pif-recorded-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo.pift");
        let image = ElfImage::parse(&fixture::demo_elf()).unwrap();
        let cfg = Arc::new(Cfg::recover(&image));
        let walker = Walker::new(cfg, WalkConfig::default()).unwrap();
        let mut writer =
            pif_trace::AtomicTraceWriter::create_default(&path, DEMO_WORKLOAD).unwrap();
        for instr in walker.take(9_000) {
            writer.push(&instr).unwrap();
        }
        writer.finish().unwrap();

        let reread = load_file(&path, DEMO_WORKLOAD, 4_000).unwrap();
        assert_eq!(reread, demo_walk(4_000), "prefix independence violated");
        // A recording shorter than the requested scale is rejected.
        let err = load_file(&path, DEMO_WORKLOAD, 10_000).unwrap_err();
        assert!(err.contains("re-record"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
