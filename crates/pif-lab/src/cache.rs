//! Content-addressed persistent result cache for sweep cells.
//!
//! Each grid cell's metrics are keyed by [`CacheKey`] — the pair of
//!
//! * **trace hash**: `pif_trace`'s FNV-1a 64 content hash of the cell's
//!   workload instruction stream at the run scale and seed (container-
//!   independent, so a recorded trace file and the generator stream it
//!   came from address the same entries), and
//! * **config fingerprint**: an FNV-1a 64 over an *injective* canonical
//!   string covering the spec identity, the cell coordinate, the scale,
//!   and the cell's applied configuration summary (the same flat block
//!   reports embed for drift detection, with the parameter axis applied
//!   to the cell's point).
//!
//! Canonical strings length-prefix every field and every value, so two
//! distinct `(spec, scale, coordinate, config)` tuples can never
//! concatenate to the same bytes — `tests/cache.rs` proptests this
//! injectivity over differing config blocks.
//!
//! # On-disk layout and invalidation
//!
//! ```text
//! <cache_dir>/pif-lab-cell/v1/<trace_hash:016x>/<config_fp:016x>.json
//! ```
//!
//! One JSON document per cell, storing each metric as a
//! `[name, kind, token]` triple where `kind` tags the value as counter
//! (`"u"`) or float (`"f"`) and `token` is the exact decimal token the
//! report emitter renders (shortest-round-trip for floats). Replaying a
//! cached cell therefore reproduces report bytes exactly — a warm-cache
//! rerun is byte-identical to the cold run that populated it.
//!
//! Invalidation is purely key-based: any change to the trace content,
//! the scale, the seed, the cell coordinate, or any summarized
//! configuration knob derives a different key, and the stale entry is
//! simply never addressed again. The versioned `pif-lab-cell/v1`
//! directory segment invalidates the whole cache when the storage format
//! itself changes. Corrupt or unreadable entries are treated as misses
//! and re-simulated.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use pif_trace::hash::fnv1a_64_once;

use crate::json::{escape, Json};
use crate::report::Metric;
use crate::scale::Scale;
use crate::spec::{JobCoord, Measure, SweepSpec};

/// Storage schema identifier; bump to invalidate every existing entry.
const CELL_SCHEMA: &str = "pif-lab-cell/v1";

/// The content address of one cached cell result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Content hash of the cell's workload instruction stream.
    pub trace_hash: u64,
    /// Fingerprint of the cell's full configuration identity.
    pub config_fp: u64,
}

/// Hit/miss counters of one [`ResultCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from disk.
    pub hits: u64,
    /// Lookups that missed (including corrupt entries).
    pub misses: u64,
    /// The subset of misses where the entry file existed but failed to
    /// parse or echo its key — evidence of on-disk damage, not absence.
    pub corrupt: u64,
    /// Corrupt entries moved aside to `<dir>/quarantine/` (a subset of
    /// `corrupt`: a quarantine that itself fails leaves the file in
    /// place).
    pub quarantined: u64,
}

/// Appends one `key=value` field to a canonical string with length
/// prefixes on both sides, so no two field sequences share an encoding.
fn push_field(s: &mut String, key: &str, value: &str) {
    s.push_str(&format!("{}:{}={}:{};", key.len(), key, value.len(), value));
}

/// The metric's kind tag and exact report-emission token.
fn metric_token(m: Metric) -> (char, String) {
    match m {
        Metric::U64(v) => ('u', v.to_string()),
        Metric::F64(v) => ('f', crate::json::fmt_f64(v)),
    }
}

/// Canonical, injective encoding of a flat `config` metric block (the
/// drift-detection summary embedded in reports). Two blocks encode to
/// the same string only if they have identical names, kinds, and exact
/// rendered values in identical order.
pub fn config_block_canon(entries: &[(String, Metric)]) -> String {
    let mut s = String::new();
    for (name, m) in entries {
        let (kind, tok) = metric_token(*m);
        s.push_str(&format!(
            "{}:{}={}{}:{};",
            name.len(),
            name,
            kind,
            tok.len(),
            tok
        ));
    }
    s
}

/// The canonical identity string a cell's config fingerprint hashes.
/// Exposed (crate-wide) so tests can assert injectivity on the string
/// itself, not just on its 64-bit digest.
pub(crate) fn cell_identity(
    spec: &SweepSpec,
    scale: &Scale,
    workload: &str,
    coord: JobCoord,
) -> String {
    let mut pif = spec.pif_base;
    let mut engine = spec.engine_base;
    spec.axis.apply(coord.point, &mut pif, &mut engine);
    let entries = crate::config_entries(&engine, &pif, spec.seed_offset);

    let mut s = String::new();
    push_field(&mut s, "spec", spec.name);
    push_field(&mut s, "measure", &format!("{:?}", spec.measure));
    push_field(&mut s, "axis", spec.axis.name());
    push_field(&mut s, "point", &spec.axis.label(coord.point));
    push_field(&mut s, "workload", workload);
    push_field(
        &mut s,
        "prefetcher",
        coord.prefetcher.map(|p| p.label()).unwrap_or("-"),
    );
    // Sampled cells derive their window seeds from the job index, so the
    // index is part of the result's identity, not just its position.
    push_field(&mut s, "index", &coord.index.to_string());
    // Sampled semantics moved from continuous to per-window predictor
    // warming; the driver version keys the identity so results produced
    // under the old warming can never replay from the cache.
    if matches!(spec.measure, Measure::Sampled { .. }) {
        push_field(&mut s, "sampled_driver", "per-window-v2");
    }
    push_field(
        &mut s,
        "scale",
        &format!(
            "{}:{}:{}",
            scale.instructions,
            crate::json::fmt_f64(scale.footprint),
            crate::json::fmt_f64(scale.warmup_fraction)
        ),
    );
    s.push_str(&config_block_canon(&entries));
    s
}

/// Derives the config-fingerprint half of a cell's [`CacheKey`].
pub fn cell_fingerprint(spec: &SweepSpec, scale: &Scale, workload: &str, coord: JobCoord) -> u64 {
    fnv1a_64_once(cell_identity(spec, scale, workload, coord).as_bytes())
}

/// A persistent, content-addressed store of cell metrics.
///
/// Lookups and stores are safe to issue concurrently from many threads
/// (and many processes: stores write a temp file and atomically rename).
/// See the module docs for layout and invalidation.
#[derive(Debug)]
pub struct ResultCache {
    root: PathBuf,
    /// The user-facing cache directory (`root`'s grandparent): the
    /// quarantine directory lives here, *outside* the versioned root
    /// that `entries`/`verify_entries` walk.
    quarantine_dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    quarantined: AtomicU64,
}

impl ResultCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    ///
    /// Entries live under `dir/pif-lab-cell/v1/`.
    ///
    /// # Errors
    ///
    /// Fails if the versioned subdirectory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        let root = dir.join(CELL_SCHEMA);
        std::fs::create_dir_all(&root)?;
        Ok(ResultCache {
            root,
            quarantine_dir: dir.join("quarantine"),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        })
    }

    /// The default cache directory: `$PIFD_CACHE_DIR`, else
    /// `$XDG_CACHE_HOME/pifd`, else `$HOME/.cache/pifd`, else a
    /// `.pifd-cache` directory under the working directory.
    pub fn default_dir() -> PathBuf {
        if let Ok(dir) = std::env::var("PIFD_CACHE_DIR") {
            return PathBuf::from(dir);
        }
        if let Ok(xdg) = std::env::var("XDG_CACHE_HOME") {
            return Path::new(&xdg).join("pifd");
        }
        if let Ok(home) = std::env::var("HOME") {
            return Path::new(&home).join(".cache").join("pifd");
        }
        PathBuf::from(".pifd-cache")
    }

    /// The versioned root directory entries are stored under.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.root
            .join(format!("{:016x}", key.trace_hash))
            .join(format!("{:016x}.json", key.config_fp))
    }

    /// Looks up a cell's stored metrics. Corrupt, unreadable, or
    /// kind-mismatched entries count as misses (and additionally as
    /// corrupt when the file was readable but failed validation).
    pub fn lookup(&self, key: &CacheKey) -> Option<Vec<(String, Metric)>> {
        let path = self.entry_path(key);
        // An injected read fault (EIO) degrades to a plain miss: the
        // cell re-simulates, the run stays correct.
        pif_fail::fail_point!("cache.lookup.read", |e: pif_fail::FailError| {
            self.misses.fetch_add(1, Ordering::Relaxed);
            pif_obs::log::warn(
                "pif_lab::cache",
                "cache read failed; re-simulating",
                &[("error", &e)],
            );
            None
        });
        match std::fs::read_to_string(&path) {
            Ok(text) => match parse_entry(&text, key) {
                Some(metrics) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Some(metrics)
                }
                None => {
                    // Readable but invalid: damaged or hand-moved entry.
                    // Quarantine it so the damage is preserved for
                    // inspection but never rescanned or re-trusted.
                    self.corrupt.fetch_add(1, Ordering::Relaxed);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    let quarantined = self.quarantine(key, &path);
                    pif_obs::log::warn(
                        "pif_lab::cache",
                        "corrupt cache entry; re-simulating",
                        &[("path", &path.display()), ("quarantined", &quarantined)],
                    );
                    None
                }
            },
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Moves a corrupt entry into the quarantine directory (named by its
    /// full key, so entries from different shards cannot collide).
    /// Best-effort: on failure the file stays where it is and only the
    /// `corrupt` counter records the damage.
    fn quarantine(&self, key: &CacheKey, path: &Path) -> bool {
        let moved = std::fs::create_dir_all(&self.quarantine_dir).is_ok()
            && std::fs::rename(
                path,
                self.quarantine_dir.join(format!(
                    "{:016x}-{:016x}.json",
                    key.trace_hash, key.config_fp
                )),
            )
            .is_ok();
        if moved {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
        }
        moved
    }

    /// Where corrupt entries are moved: `<dir>/quarantine/`.
    pub fn quarantine_dir(&self) -> &Path {
        &self.quarantine_dir
    }

    /// Persists a cell's metrics under `key`.
    ///
    /// The entry is written to a temp file and renamed into place, so
    /// concurrent readers never observe a partial document.
    ///
    /// # Errors
    ///
    /// Refuses non-finite float metrics (they cannot round-trip through
    /// the token encoding and would poison reports), and reports I/O
    /// failures.
    pub fn store(&self, key: &CacheKey, metrics: &[(String, Metric)]) -> Result<(), String> {
        for (name, m) in metrics {
            if let Metric::F64(v) = m {
                if !v.is_finite() {
                    return Err(format!(
                        "metric {name:?} is non-finite ({v}); refusing to cache"
                    ));
                }
            }
        }
        let path = self.entry_path(key);
        let dir = path.parent().expect("entry path has a parent");
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let mut doc = String::new();
        doc.push_str(&format!(
            "{{\"schema\": \"{CELL_SCHEMA}\", \"trace\": \"{:016x}\", \"fp\": \"{:016x}\", \"metrics\": [",
            key.trace_hash, key.config_fp
        ));
        for (i, (name, m)) in metrics.iter().enumerate() {
            let (kind, tok) = metric_token(*m);
            if i > 0 {
                doc.push_str(", ");
            }
            doc.push_str(&format!("[\"{}\", \"{kind}\", \"{tok}\"]", escape(name)));
        }
        doc.push_str("]}\n");
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let write = (|| -> Result<(), String> {
            pif_fail::fail_point!("cache.store.write", |e: pif_fail::FailError| Err(
                e.to_string()
            ));
            let mut file = std::fs::File::create(&tmp)
                .map_err(|e| format!("create {}: {e}", tmp.display()))?;
            use std::io::Write as _;
            file.write_all(doc.as_bytes())
                .map_err(|e| format!("write {}: {e}", tmp.display()))?;
            // fsync before rename: without it a crash can publish the
            // entry's *name* while its bytes never reached the disk,
            // leaving a zero-length (corrupt) entry under a valid key.
            file.sync_all()
                .map_err(|e| format!("fsync {}: {e}", tmp.display()))
        })();
        if let Err(e) = write {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        std::fs::rename(&tmp, &path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            format!("rename {}: {e}", path.display())
        })
    }

    /// This cache's hit/miss counters (process-local).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }

    /// Number of entries on disk.
    ///
    /// # Errors
    ///
    /// Reports directory-walk failures.
    pub fn entries(&self) -> std::io::Result<usize> {
        let mut n = 0;
        for shard in std::fs::read_dir(&self.root)? {
            let shard = shard?.path();
            if shard.is_dir() {
                n += std::fs::read_dir(&shard)?
                    .filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .count();
            }
        }
        Ok(n)
    }

    /// Walks the store, validating every entry against its path-derived
    /// key, and returns `(valid, corrupt)` counts. Files with non-hex
    /// names count as corrupt — they can never be addressed by a lookup.
    ///
    /// # Errors
    ///
    /// Reports directory-walk failures.
    pub fn verify_entries(&self) -> std::io::Result<(usize, usize)> {
        let hex =
            |s: &std::ffi::OsStr| -> Option<u64> { u64::from_str_radix(s.to_str()?, 16).ok() };
        let (mut valid, mut corrupt) = (0, 0);
        for shard in std::fs::read_dir(&self.root)? {
            let shard = shard?.path();
            if !shard.is_dir() {
                continue;
            }
            let trace_hash = shard.file_name().and_then(hex);
            for entry in std::fs::read_dir(&shard)? {
                let path = entry?.path();
                if path.extension().is_none_or(|x| x != "json") {
                    continue;
                }
                let key = trace_hash.zip(path.file_stem().and_then(hex)).map(
                    |(trace_hash, config_fp)| CacheKey {
                        trace_hash,
                        config_fp,
                    },
                );
                let ok = key.is_some_and(|key| {
                    std::fs::read_to_string(&path)
                        .ok()
                        .and_then(|text| parse_entry(&text, &key))
                        .is_some()
                });
                if ok {
                    valid += 1;
                } else {
                    corrupt += 1;
                }
            }
        }
        Ok((valid, corrupt))
    }

    /// Removes every entry, returning how many were deleted.
    ///
    /// # Errors
    ///
    /// Reports filesystem failures; entries removed before the failure
    /// stay removed.
    pub fn clear(&self) -> std::io::Result<usize> {
        let n = self.entries()?;
        for shard in std::fs::read_dir(&self.root)? {
            let shard = shard?.path();
            if shard.is_dir() {
                std::fs::remove_dir_all(&shard)?;
            }
        }
        Ok(n)
    }
}

/// Parses a stored entry, validating schema and key echo.
fn parse_entry(text: &str, key: &CacheKey) -> Option<Vec<(String, Metric)>> {
    let j = Json::parse(text).ok()?;
    if j.get("schema")?.as_str()? != CELL_SCHEMA {
        return None;
    }
    // The embedded key must echo the path-derived one; a mismatch means
    // a hand-moved or corrupted file.
    if j.get("trace")?.as_str()? != format!("{:016x}", key.trace_hash)
        || j.get("fp")?.as_str()? != format!("{:016x}", key.config_fp)
    {
        return None;
    }
    let mut metrics = Vec::new();
    for triple in j.get("metrics")?.as_arr()? {
        let [name, kind, tok] = triple.as_arr()? else {
            return None;
        };
        let (name, kind, tok) = (name.as_str()?, kind.as_str()?, tok.as_str()?);
        let m = match kind {
            "u" => Metric::U64(tok.parse().ok()?),
            "f" => {
                let v: f64 = tok.parse().ok()?;
                if !v.is_finite() {
                    return None;
                }
                Metric::F64(v)
            }
            _ => return None,
        };
        metrics.push((name.to_string(), m));
    }
    Some(metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(t: u64, f: u64) -> CacheKey {
        CacheKey {
            trace_hash: t,
            config_fp: f,
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pif-lab-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_lookup_roundtrips_exact_tokens() {
        let cache = ResultCache::open(tmpdir("roundtrip")).unwrap();
        let metrics = vec![
            ("demand_misses".into(), Metric::U64(123_456)),
            ("uipc".into(), Metric::F64(1.5)),
            ("ratio".into(), Metric::F64(0.1 + 0.2)),
        ];
        let k = key(0xdead_beef, 0x1234_5678);
        cache.store(&k, &metrics).unwrap();
        let back = cache.lookup(&k).expect("hit");
        assert_eq!(back, metrics);
        // Exact render equality, not just value equality.
        for ((_, a), (_, b)) in metrics.iter().zip(&back) {
            assert_eq!(metric_token(*a), metric_token(*b));
        }
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                ..CacheStats::default()
            }
        );
    }

    #[test]
    fn missing_and_corrupt_entries_are_misses() {
        let cache = ResultCache::open(tmpdir("corrupt")).unwrap();
        let k = key(1, 2);
        assert!(cache.lookup(&k).is_none());
        cache.store(&k, &[("x".into(), Metric::U64(1))]).unwrap();
        std::fs::write(
            cache.root().join("0000000000000001/0000000000000002.json"),
            "{oops",
        )
        .unwrap();
        assert!(cache.lookup(&k).is_none());
        assert_eq!(cache.stats().misses, 2);
        // Only the damaged file counts as corrupt; the absent one is a
        // plain miss.
        assert_eq!(cache.stats().corrupt, 1);
        // The damaged file was moved aside, out of the addressable
        // store, and preserved under the quarantine directory.
        assert_eq!(cache.stats().quarantined, 1);
        assert!(!cache.entry_path(&k).exists());
        assert!(cache
            .quarantine_dir()
            .join("0000000000000001-0000000000000002.json")
            .exists());
        // A fresh store under the same key works again.
        cache.store(&k, &[("x".into(), Metric::U64(2))]).unwrap();
        assert_eq!(cache.lookup(&k).unwrap()[0].1, Metric::U64(2));
    }

    #[test]
    fn verify_entries_splits_valid_from_corrupt() {
        let cache = ResultCache::open(tmpdir("verify")).unwrap();
        for i in 0..3 {
            cache
                .store(&key(i, i), &[("m".into(), Metric::U64(i))])
                .unwrap();
        }
        assert_eq!(cache.verify_entries().unwrap(), (3, 0));
        std::fs::write(cache.entry_path(&key(1, 1)), "{oops").unwrap();
        // A hand-moved entry fails the key echo.
        std::fs::copy(cache.entry_path(&key(2, 2)), cache.entry_path(&key(2, 9))).unwrap();
        assert_eq!(cache.verify_entries().unwrap(), (2, 2));
    }

    #[test]
    fn nonfinite_metrics_refuse_to_cache() {
        let cache = ResultCache::open(tmpdir("nonfinite")).unwrap();
        let err = cache
            .store(&key(1, 1), &[("bad".into(), Metric::F64(f64::NAN))])
            .unwrap_err();
        assert!(err.contains("non-finite"), "{err}");
    }

    #[test]
    fn clear_and_entries_count() {
        let cache = ResultCache::open(tmpdir("clear")).unwrap();
        for i in 0..5 {
            cache
                .store(&key(i, i), &[("m".into(), Metric::U64(i))])
                .unwrap();
        }
        assert_eq!(cache.entries().unwrap(), 5);
        assert_eq!(cache.clear().unwrap(), 5);
        assert_eq!(cache.entries().unwrap(), 0);
    }

    #[test]
    fn key_echo_mismatch_is_a_miss() {
        let cache = ResultCache::open(tmpdir("echo")).unwrap();
        let k1 = key(10, 20);
        cache.store(&k1, &[("m".into(), Metric::U64(7))]).unwrap();
        // Simulate a hand-moved file: copy the entry under a different key.
        let moved = key(10, 21);
        std::fs::copy(cache.entry_path(&k1), cache.entry_path(&moved)).unwrap();
        assert!(cache.lookup(&moved).is_none());
    }

    #[test]
    fn config_block_canon_is_order_and_kind_sensitive() {
        let a = vec![
            ("x".to_string(), Metric::U64(1)),
            ("y".to_string(), Metric::U64(2)),
        ];
        let b = vec![
            ("y".to_string(), Metric::U64(2)),
            ("x".to_string(), Metric::U64(1)),
        ];
        assert_ne!(config_block_canon(&a), config_block_canon(&b));
        let as_float = vec![
            ("x".to_string(), Metric::F64(1.0)),
            ("y".to_string(), Metric::U64(2)),
        ];
        assert_ne!(config_block_canon(&a), config_block_canon(&as_float));
        // Name/value boundary ambiguity is defeated by length prefixes.
        let c = vec![("ab".to_string(), Metric::U64(12))];
        let d = vec![("a".to_string(), Metric::U64(212))];
        assert_ne!(config_block_canon(&c), config_block_canon(&d));
    }
}
