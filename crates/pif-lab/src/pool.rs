//! Deprecated free-function façade over [`crate::service::Pool`].
//!
//! The work-stealing pool implementation moved to [`crate::service`],
//! where it is a constructed `Pool` value instead of free functions
//! threading a `threads` argument everywhere. This module keeps the old
//! names alive as thin delegates for one release; new code should hold a
//! [`crate::service::Pool`] and call its methods.

pub use crate::service::default_threads;

use crate::service::Pool;

/// Runs `n_jobs` jobs on `threads` scoped workers and returns the results
/// ordered by job index.
#[deprecated(
    since = "0.6.0",
    note = "use pif_lab::Pool::new(threads).run_indexed(n_jobs, f)"
)]
pub fn run_indexed<R, F>(n_jobs: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    Pool::new(threads).run_indexed(n_jobs, f)
}

/// Maps `f` over `items` in parallel (one logical job per item),
/// preserving input order in the output.
#[deprecated(
    since = "0.6.0",
    note = "use pif_lab::Pool::default().parallel_map(items, f)"
)]
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    Pool::new(items.len()).parallel_map(items, f)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn deprecated_run_indexed_matches_pool() {
        let old = run_indexed(9, 3, |i| i + 1);
        let new = Pool::new(3).run_indexed(9, |i| i + 1);
        assert_eq!(old, new);
    }

    #[test]
    fn deprecated_parallel_map_matches_pool() {
        let old = parallel_map(vec![1, 2, 3], |x| x * 2);
        let new = Pool::new(3).parallel_map(vec![1, 2, 3], |x| x * 2);
        assert_eq!(old, new);
    }
}
