//! A scoped, work-stealing job pool with deterministic result merge.
//!
//! Workers pull job indices from a shared atomic counter (the idle worker
//! steals the next unclaimed job, so an expensive job never serializes the
//! grid behind it) and deposit each result into its index's slot. The
//! merged output is ordered by job index — **independent of thread count
//! and schedule** — which is what makes sweep reports byte-identical
//! across `--threads` settings.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use by default: one per available core.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `n_jobs` jobs on `threads` scoped workers and returns the results
/// ordered by job index.
///
/// `f` is called with each job index exactly once. The assignment of jobs
/// to workers is dynamic (first idle worker takes the next job), but the
/// returned `Vec` is always `[f(0), f(1), …, f(n_jobs - 1)]`.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn run_indexed<R, F>(n_jobs: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.max(1).min(n_jobs.max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_jobs {
                    break;
                }
                let result = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("job completed")
        })
        .collect()
}

/// Maps `f` over `items` in parallel (one logical job per item),
/// preserving input order in the output.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    run_indexed(n, n, |i| {
        let item = slots[i]
            .lock()
            .expect("item slot poisoned")
            .take()
            .expect("item taken once");
        f(item)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_ordered_by_index_for_any_thread_count() {
        for threads in [1, 2, 3, 8, 64] {
            let out = run_indexed(17, threads, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let out = run_indexed(100, 8, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<u32> = run_indexed(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(vec![1, 2, 3, 4], |x| x * 10);
        assert_eq!(out, vec![10, 20, 30, 40]);
    }
}
