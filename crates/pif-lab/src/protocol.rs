//! The `piflab/1` wire protocol: line-delimited JSON over TCP.
//!
//! `piflab serve` (the `pifd` daemon) and `piflab submit` speak this
//! protocol. Framing is one JSON object per line, newline-terminated, in
//! both directions; a connection may carry any number of request/response
//! pairs in order. Every object carries `"proto": "piflab/1"` so either
//! end can reject a version mismatch with a real error instead of a
//! parse failure.
//!
//! Requests:
//!
//! ```text
//! {"proto": "piflab/1", "cmd": "ping"}
//! {"proto": "piflab/1", "cmd": "stats"}
//! {"proto": "piflab/1", "cmd": "metrics", "format": "prometheus"}
//! {"proto": "piflab/1", "cmd": "shutdown"}
//! {"proto": "piflab/1", "cmd": "submit", "id": 7, "spec": "fig10", "smoke": true,
//!  "deadline_ms": 30000,
//!  "scale": {"instructions": 40000, "footprint": 0.03, "warmup_fraction": 0.3}}
//! ```
//!
//! Responses mirror the request (`pong`, `stats`, `metrics`,
//! `shutting_down`, `report`) or report an error. A `report` response
//! embeds the full `pif-lab-sweep/v1` document **as a JSON string**, not
//! as a nested object: the report's own serialization is a byte-identity
//! contract (goldens are compared byte-for-byte), and string-embedding
//! lets the client recover those exact bytes with one unescape while
//! keeping the one-line framing. A `metrics` response embeds the
//! daemon's full `pif_obs` exposition (Prometheus text or `pif-obs/v1`
//! JSON, per the request's `"format"`) as a string for the same reason.
//!
//! Error frames are typed: every `error` carries a `"kind"` token (see
//! [`Response::Error`]), a `"retryable"` flag telling clients whether a
//! resubmit can succeed, and the `"request_id"` echoed from the submit
//! (0 when the failure predates parsing an id). An `error` response to a
//! `submit` naming an unknown spec additionally carries the registry's
//! spec names in `"candidates"`, so clients can print the same hint
//! `piflab run` prints locally.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use crate::json::{escape, fmt_f64, Json};
use crate::scale::Scale;
use crate::service::{JobError, LatencySummary, MetricsFormat, Service, ServiceStats, SweepJob};
use crate::{registry, CacheStats};

/// Protocol identifier carried by every frame.
pub const PROTO: &str = "piflab/1";

/// One client request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Ask for the daemon's counters.
    Stats,
    /// Ask for the daemon's full metrics exposition.
    Metrics {
        /// The exposition format to render.
        format: MetricsFormat,
    },
    /// Ask the daemon to drain and exit.
    Shutdown,
    /// Submit one sweep.
    Submit {
        /// Client-chosen correlation id, echoed in the report or error
        /// frame (0 when the client does not correlate).
        id: u64,
        /// Registry name of the spec to run.
        spec: String,
        /// Scale to run it at.
        scale: Scale,
        /// Mark the report as a smoke run.
        smoke: bool,
        /// Per-job deadline in milliseconds, measured from submission.
        deadline_ms: Option<u64>,
    },
}

impl Request {
    /// Serializes to one newline-terminated frame.
    pub fn to_line(&self) -> String {
        match self {
            Request::Ping => format!("{{\"proto\": \"{PROTO}\", \"cmd\": \"ping\"}}\n"),
            Request::Stats => format!("{{\"proto\": \"{PROTO}\", \"cmd\": \"stats\"}}\n"),
            Request::Metrics { format } => format!(
                "{{\"proto\": \"{PROTO}\", \"cmd\": \"metrics\", \"format\": \"{}\"}}\n",
                format_token(*format)
            ),
            Request::Shutdown => {
                format!("{{\"proto\": \"{PROTO}\", \"cmd\": \"shutdown\"}}\n")
            }
            Request::Submit {
                id,
                spec,
                scale,
                smoke,
                deadline_ms,
            } => {
                let deadline = match deadline_ms {
                    Some(ms) => format!(", \"deadline_ms\": {ms}"),
                    None => String::new(),
                };
                format!(
                    "{{\"proto\": \"{PROTO}\", \"cmd\": \"submit\", \"id\": {id}, \
                     \"spec\": \"{}\", \"smoke\": {smoke}{deadline}, \"scale\": {}}}\n",
                    escape(spec),
                    scale_json(scale)
                )
            }
        }
    }

    /// Parses one frame (the line's trailing newline is optional).
    ///
    /// # Errors
    ///
    /// Reports malformed JSON, a proto mismatch, or an unknown/ill-typed
    /// command.
    pub fn parse(line: &str) -> Result<Self, String> {
        let j = Json::parse(line).map_err(|e| format!("malformed request: {e}"))?;
        check_proto(&j)?;
        let cmd = j
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or("request missing \"cmd\"")?;
        match cmd {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics {
                format: match j.get("format").and_then(Json::as_str) {
                    None | Some("prometheus") => MetricsFormat::Prometheus,
                    Some("json") => MetricsFormat::Json,
                    Some(other) => return Err(format!("unknown metrics format {other:?}")),
                },
            }),
            "shutdown" => Ok(Request::Shutdown),
            "submit" => {
                let spec = j
                    .get("spec")
                    .and_then(Json::as_str)
                    .ok_or("submit missing \"spec\"")?
                    .to_string();
                let smoke = j.get("smoke").and_then(Json::as_bool).unwrap_or(false);
                let scale = j
                    .get("scale")
                    .map(parse_scale)
                    .transpose()?
                    .unwrap_or_default();
                let id = j.get("id").and_then(Json::as_f64).map_or(0, |v| v as u64);
                let deadline_ms = j
                    .get("deadline_ms")
                    .and_then(Json::as_f64)
                    .map(|v| v as u64);
                Ok(Request::Submit {
                    id,
                    spec,
                    scale,
                    smoke,
                    deadline_ms,
                })
            }
            other => Err(format!("unknown command {other:?}")),
        }
    }
}

/// One daemon response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness reply.
    Pong,
    /// Counter snapshot.
    Stats {
        /// Jobs accepted so far.
        submitted: u64,
        /// Jobs completed so far.
        completed: u64,
        /// High-water mark of the queue depth.
        max_queue_depth: u64,
        /// Queue-wait latency of completed jobs.
        queue_wait: LatencySummary,
        /// Execution latency of completed jobs.
        exec: LatencySummary,
        /// Work-stealing handoffs across completed jobs' pool runs.
        stolen_jobs: u64,
        /// Jobs failed because their deadline expired.
        deadline_exceeded: u64,
        /// Worker threads restarted after a panic.
        worker_restarts: u64,
        /// Jobs quarantined because their worker died running them.
        quarantined: u64,
        /// Result-cache counters, when the daemon has a cache.
        cache: Option<CacheStats>,
    },
    /// The daemon's metrics exposition.
    Metrics {
        /// Format of `body`.
        format: MetricsFormat,
        /// The exposition document, embedded as a string.
        body: String,
    },
    /// Acknowledges a `shutdown` request.
    ShuttingDown,
    /// A finished sweep.
    Report {
        /// The submit's correlation id, echoed back.
        request_id: u64,
        /// The spec that ran.
        spec: String,
        /// Cells replayed from the daemon's result cache.
        cached_cells: u64,
        /// Cells simulated fresh.
        executed_cells: u64,
        /// The exact `pif-lab-sweep/v1` report bytes.
        json: String,
    },
    /// Request failed.
    Error {
        /// Failure class: `bad_request`, `unknown_spec`, `rejected`,
        /// `deadline_exceeded`, `worker_panicked`, `failed`, or
        /// `internal`.
        kind: String,
        /// Whether resubmitting the same request can succeed.
        retryable: bool,
        /// The submit's correlation id (0 when the failure predates
        /// parsing one).
        request_id: u64,
        /// Human-readable failure.
        message: String,
        /// For unknown-spec errors: the valid spec names.
        candidates: Vec<String>,
    },
}

impl Response {
    /// Serializes to one newline-terminated frame.
    pub fn to_line(&self) -> String {
        match self {
            Response::Pong => format!("{{\"proto\": \"{PROTO}\", \"resp\": \"pong\"}}\n"),
            Response::Stats {
                submitted,
                completed,
                max_queue_depth,
                queue_wait,
                exec,
                stolen_jobs,
                deadline_exceeded,
                worker_restarts,
                quarantined,
                cache,
            } => {
                let cache = match cache {
                    Some(c) => format!(
                        "{{\"hits\": {}, \"misses\": {}, \"corrupt\": {}, \
                         \"quarantined\": {}}}",
                        c.hits, c.misses, c.corrupt, c.quarantined
                    ),
                    None => "null".to_string(),
                };
                format!(
                    "{{\"proto\": \"{PROTO}\", \"resp\": \"stats\", \"submitted\": {submitted}, \
                     \"completed\": {completed}, \"max_queue_depth\": {max_queue_depth}, \
                     \"queue_wait\": {}, \"exec\": {}, \"stolen_jobs\": {stolen_jobs}, \
                     \"deadline_exceeded\": {deadline_exceeded}, \
                     \"worker_restarts\": {worker_restarts}, \"quarantined\": {quarantined}, \
                     \"cache\": {cache}}}\n",
                    latency_json(queue_wait),
                    latency_json(exec)
                )
            }
            Response::Metrics { format, body } => format!(
                "{{\"proto\": \"{PROTO}\", \"resp\": \"metrics\", \"format\": \"{}\", \
                 \"body\": \"{}\"}}\n",
                format_token(*format),
                escape(body)
            ),
            Response::ShuttingDown => {
                format!("{{\"proto\": \"{PROTO}\", \"resp\": \"shutting_down\"}}\n")
            }
            Response::Report {
                request_id,
                spec,
                cached_cells,
                executed_cells,
                json,
            } => format!(
                "{{\"proto\": \"{PROTO}\", \"resp\": \"report\", \"request_id\": {request_id}, \
                 \"spec\": \"{}\", \"cached_cells\": {cached_cells}, \
                 \"executed_cells\": {executed_cells}, \"report\": \"{}\"}}\n",
                escape(spec),
                escape(json)
            ),
            Response::Error {
                kind,
                retryable,
                request_id,
                message,
                candidates,
            } => {
                let cands: Vec<String> = candidates
                    .iter()
                    .map(|c| format!("\"{}\"", escape(c)))
                    .collect();
                format!(
                    "{{\"proto\": \"{PROTO}\", \"resp\": \"error\", \"kind\": \"{}\", \
                     \"retryable\": {retryable}, \"request_id\": {request_id}, \
                     \"message\": \"{}\", \"candidates\": [{}]}}\n",
                    escape(kind),
                    escape(message),
                    cands.join(", ")
                )
            }
        }
    }

    /// Parses one frame (the line's trailing newline is optional).
    ///
    /// # Errors
    ///
    /// Reports malformed JSON, a proto mismatch, or an unknown/ill-typed
    /// response kind.
    pub fn parse(line: &str) -> Result<Self, String> {
        let j = Json::parse(line).map_err(|e| format!("malformed response: {e}"))?;
        check_proto(&j)?;
        let resp = j
            .get("resp")
            .and_then(Json::as_str)
            .ok_or("response missing \"resp\"")?;
        let u = |key: &str| -> Result<u64, String> {
            j.get(key)
                .and_then(Json::as_f64)
                .map(|v| v as u64)
                .ok_or_else(|| format!("response missing numeric {key:?}"))
        };
        match resp {
            "pong" => Ok(Response::Pong),
            "shutting_down" => Ok(Response::ShuttingDown),
            "stats" => Ok(Response::Stats {
                submitted: u("submitted")?,
                completed: u("completed")?,
                max_queue_depth: u("max_queue_depth")?,
                queue_wait: j
                    .get("queue_wait")
                    .and_then(parse_latency)
                    .ok_or("stats missing \"queue_wait\"")?,
                exec: j
                    .get("exec")
                    .and_then(parse_latency)
                    .ok_or("stats missing \"exec\"")?,
                stolen_jobs: u("stolen_jobs")?,
                deadline_exceeded: u("deadline_exceeded")?,
                worker_restarts: u("worker_restarts")?,
                quarantined: u("quarantined")?,
                cache: j.get("cache").and_then(|c| {
                    Some(CacheStats {
                        hits: c.get("hits")?.as_f64()? as u64,
                        misses: c.get("misses")?.as_f64()? as u64,
                        corrupt: c.get("corrupt")?.as_f64()? as u64,
                        quarantined: c.get("quarantined")?.as_f64()? as u64,
                    })
                }),
            }),
            "metrics" => Ok(Response::Metrics {
                format: match j.get("format").and_then(Json::as_str) {
                    Some("prometheus") => MetricsFormat::Prometheus,
                    Some("json") => MetricsFormat::Json,
                    other => return Err(format!("metrics response has bad format {other:?}")),
                },
                body: j
                    .get("body")
                    .and_then(Json::as_str)
                    .ok_or("metrics missing \"body\"")?
                    .to_string(),
            }),
            "report" => Ok(Response::Report {
                request_id: j
                    .get("request_id")
                    .and_then(Json::as_f64)
                    .map_or(0, |v| v as u64),
                spec: j
                    .get("spec")
                    .and_then(Json::as_str)
                    .ok_or("report missing \"spec\"")?
                    .to_string(),
                cached_cells: u("cached_cells")?,
                executed_cells: u("executed_cells")?,
                json: j
                    .get("report")
                    .and_then(Json::as_str)
                    .ok_or("report missing \"report\"")?
                    .to_string(),
            }),
            "error" => Ok(Response::Error {
                kind: j
                    .get("kind")
                    .and_then(Json::as_str)
                    .unwrap_or("internal")
                    .to_string(),
                retryable: j.get("retryable").and_then(Json::as_bool).unwrap_or(false),
                request_id: j
                    .get("request_id")
                    .and_then(Json::as_f64)
                    .map_or(0, |v| v as u64),
                message: j
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown error")
                    .to_string(),
                candidates: j
                    .get("candidates")
                    .and_then(Json::as_arr)
                    .map(|a| {
                        a.iter()
                            .filter_map(|c| c.as_str().map(str::to_string))
                            .collect()
                    })
                    .unwrap_or_default(),
            }),
            other => Err(format!("unknown response {other:?}")),
        }
    }
}

/// The wire token of a [`MetricsFormat`].
fn format_token(format: MetricsFormat) -> &'static str {
    match format {
        MetricsFormat::Prometheus => "prometheus",
        MetricsFormat::Json => "json",
    }
}

fn latency_json(summary: &LatencySummary) -> String {
    format!(
        "{{\"count\": {}, \"total_us\": {}, \"max_us\": {}}}",
        summary.count, summary.total_us, summary.max_us
    )
}

fn parse_latency(j: &Json) -> Option<LatencySummary> {
    Some(LatencySummary {
        count: j.get("count")?.as_f64()? as u64,
        total_us: j.get("total_us")?.as_f64()? as u64,
        max_us: j.get("max_us")?.as_f64()? as u64,
    })
}

fn check_proto(j: &Json) -> Result<(), String> {
    match j.get("proto").and_then(Json::as_str) {
        Some(PROTO) => Ok(()),
        Some(other) => Err(format!("protocol mismatch: {other:?}, want {PROTO:?}")),
        None => Err(format!("frame missing \"proto\": \"{PROTO}\"")),
    }
}

fn scale_json(scale: &Scale) -> String {
    format!(
        "{{\"instructions\": {}, \"footprint\": {}, \"warmup_fraction\": {}}}",
        scale.instructions,
        fmt_f64(scale.footprint),
        fmt_f64(scale.warmup_fraction)
    )
}

fn parse_scale(j: &Json) -> Result<Scale, String> {
    let f = |key: &str| -> Result<f64, String> {
        j.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("scale missing numeric {key:?}"))
    };
    Ok(Scale {
        instructions: f("instructions")? as usize,
        footprint: f("footprint")?,
        warmup_fraction: f("warmup_fraction")?,
    })
}

/// How often blocked accept/read calls re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(50);

/// Serves `piflab/1` on `listener` until `shutdown` becomes true.
///
/// Each connection gets its own scoped thread and is served
/// request-by-request; a `submit` blocks its connection (honoring the
/// service queue's backpressure) while other connections keep being
/// accepted. A `shutdown` request sets the shared flag, so either a
/// signal handler or a client can stop the daemon; in-flight submissions
/// finish before `serve` returns.
///
/// # Errors
///
/// Reports listener configuration failures. Per-connection I/O errors
/// drop that connection only.
pub fn serve(
    listener: TcpListener,
    service: &Service,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    std::thread::scope(|s| {
        while !shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    s.spawn(move || {
                        if let Err(e) = serve_connection(stream, service, shutdown) {
                            eprintln!("pifd: connection error: {e}");
                        }
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL);
                }
                Err(e) => {
                    eprintln!("pifd: accept error: {e}");
                    std::thread::sleep(POLL);
                }
            }
        }
        Ok(())
    })
}

fn serve_connection(
    stream: TcpStream,
    service: &Service,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(POLL))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        // `read_line` keeps partial data in `line` across timeouts, so a
        // slow client cannot split a frame.
        // Injected socket faults drop the connection (the daemon-side
        // symptom of a flaky network); the client's retry loop owns
        // recovery.
        pif_fail::fail_point!("proto.read.frame", |e: pif_fail::FailError| Err(
            std::io::Error::other(e.to_string())
        ));
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()),
            Ok(_) => {
                if line.trim().is_empty() {
                    line.clear();
                    continue;
                }
                let response = handle_request(&line, service, shutdown);
                let done = matches!(response, Response::ShuttingDown);
                pif_fail::fail_point!("proto.write.frame", |e: pif_fail::FailError| Err(
                    std::io::Error::other(e.to_string())
                ));
                writer.write_all(response.to_line().as_bytes())?;
                writer.flush()?;
                line.clear();
                if done {
                    return Ok(());
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Handles one parsed request against the service. Exposed so tests can
/// drive the dispatch without sockets.
pub fn handle_request(line: &str, service: &Service, shutdown: &AtomicBool) -> Response {
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(message) => {
            return Response::Error {
                kind: "bad_request".to_string(),
                retryable: false,
                request_id: 0,
                message,
                candidates: Vec::new(),
            }
        }
    };
    match request {
        Request::Ping => Response::Pong,
        Request::Stats => {
            let ServiceStats {
                submitted,
                completed,
                max_queue_depth,
                queue_wait,
                exec,
                stolen_jobs,
                deadline_exceeded,
                worker_restarts,
                quarantined,
                cache,
            } = service.stats();
            Response::Stats {
                submitted,
                completed,
                max_queue_depth: max_queue_depth as u64,
                queue_wait,
                exec,
                stolen_jobs,
                deadline_exceeded,
                worker_restarts,
                quarantined,
                cache,
            }
        }
        Request::Metrics { format } => Response::Metrics {
            format,
            body: service.render_metrics(format),
        },
        Request::Shutdown => {
            shutdown.store(true, Ordering::SeqCst);
            Response::ShuttingDown
        }
        Request::Submit {
            id,
            spec,
            scale,
            smoke,
            deadline_ms,
        } => {
            let Some(resolved) = registry::spec(&spec) else {
                return Response::Error {
                    kind: "unknown_spec".to_string(),
                    retryable: false,
                    request_id: id,
                    message: format!("unknown spec {spec:?}"),
                    candidates: registry::all_specs()
                        .iter()
                        .map(|s| s.name.to_string())
                        .collect(),
                };
            };
            let job = SweepJob::new(resolved, scale)
                .smoke(smoke)
                .deadline(deadline_ms.map(Duration::from_millis));
            let outcome = service.submit(job).and_then(|handle| handle.wait());
            match outcome {
                Ok(outcome) => match outcome.report.to_json() {
                    Ok(json) => Response::Report {
                        request_id: id,
                        spec,
                        cached_cells: outcome.cached_cells as u64,
                        executed_cells: outcome.executed_cells as u64,
                        json,
                    },
                    Err(e) => Response::Error {
                        kind: "internal".to_string(),
                        retryable: false,
                        request_id: id,
                        message: format!("report for {spec} failed to serialize: {e}"),
                        candidates: Vec::new(),
                    },
                },
                Err(err) => error_frame(id, &err),
            }
        }
    }
}

/// Renders a [`JobError`] as a typed wire error frame.
fn error_frame(request_id: u64, err: &JobError) -> Response {
    Response::Error {
        kind: err.kind().to_string(),
        retryable: err.retryable(),
        request_id,
        message: err.to_string(),
        candidates: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Ping,
            Request::Stats,
            Request::Metrics {
                format: MetricsFormat::Prometheus,
            },
            Request::Metrics {
                format: MetricsFormat::Json,
            },
            Request::Shutdown,
            Request::Submit {
                id: 0,
                spec: "fig10".to_string(),
                scale: Scale::tiny(),
                smoke: true,
                deadline_ms: None,
            },
            Request::Submit {
                id: 41,
                spec: "fig10".to_string(),
                scale: Scale::tiny(),
                smoke: false,
                deadline_ms: Some(30_000),
            },
        ];
        for r in reqs {
            let line = r.to_line();
            assert!(line.ends_with('\n'), "{line:?}");
            assert!(
                !line.trim_end().contains('\n'),
                "one-line framing: {line:?}"
            );
            assert_eq!(Request::parse(&line).unwrap(), r);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Pong,
            Response::ShuttingDown,
            Response::Stats {
                submitted: 9,
                completed: 7,
                max_queue_depth: 4,
                queue_wait: LatencySummary {
                    count: 7,
                    total_us: 900,
                    max_us: 400,
                },
                exec: LatencySummary {
                    count: 7,
                    total_us: 123_456,
                    max_us: 50_000,
                },
                stolen_jobs: 3,
                deadline_exceeded: 2,
                worker_restarts: 1,
                quarantined: 1,
                cache: Some(CacheStats {
                    hits: 3,
                    misses: 2,
                    corrupt: 1,
                    quarantined: 1,
                }),
            },
            Response::Stats {
                submitted: 0,
                completed: 0,
                max_queue_depth: 0,
                queue_wait: LatencySummary::default(),
                exec: LatencySummary::default(),
                stolen_jobs: 0,
                deadline_exceeded: 0,
                worker_restarts: 0,
                quarantined: 0,
                cache: None,
            },
            Response::Metrics {
                format: MetricsFormat::Prometheus,
                body: "# TYPE pif_service_jobs_completed counter\n\
                       pif_service_jobs_completed 2\n"
                    .to_string(),
            },
            Response::Metrics {
                format: MetricsFormat::Json,
                body: "{\"schema\": \"pif-obs/v1\", \"metrics\": []}".to_string(),
            },
            Response::Report {
                request_id: 41,
                spec: "fig10".to_string(),
                cached_cells: 5,
                executed_cells: 1,
                json: "{\"schema\": \"pif-lab-sweep/v1\",\n  \"cells\": []}\n".to_string(),
            },
            Response::Error {
                kind: "unknown_spec".to_string(),
                retryable: false,
                request_id: 41,
                message: "unknown spec \"nope\"".to_string(),
                candidates: vec!["fig2".to_string(), "fig10".to_string()],
            },
            Response::Error {
                kind: "deadline_exceeded".to_string(),
                retryable: true,
                request_id: 7,
                message: "job deadline of 30000 ms exceeded".to_string(),
                candidates: Vec::new(),
            },
        ];
        for r in resps {
            let line = r.to_line();
            assert!(line.ends_with('\n'), "{line:?}");
            assert!(
                !line.trim_end().contains('\n'),
                "one-line framing: {line:?}"
            );
            assert_eq!(Response::parse(&line).unwrap(), r);
        }
    }

    #[test]
    fn report_bytes_survive_embedding_exactly() {
        let json = "{\"a\": 1.5, \"b\": \"x\\\"y\",\n \"c\": [1, 2]}\n";
        let line = Response::Report {
            request_id: 0,
            spec: "s".to_string(),
            cached_cells: 0,
            executed_cells: 0,
            json: json.to_string(),
        }
        .to_line();
        match Response::parse(&line).unwrap() {
            Response::Report { json: back, .. } => assert_eq!(back, json),
            other => panic!("expected report, got {other:?}"),
        }
    }

    #[test]
    fn proto_mismatch_is_rejected() {
        let err = Request::parse("{\"proto\": \"piflab/9\", \"cmd\": \"ping\"}").unwrap_err();
        assert!(err.contains("mismatch"), "{err}");
        let err = Request::parse("{\"cmd\": \"ping\"}").unwrap_err();
        assert!(err.contains("proto"), "{err}");
    }

    #[test]
    fn submit_defaults_and_unknown_cmd() {
        let r = Request::parse(&format!(
            "{{\"proto\": \"{PROTO}\", \"cmd\": \"submit\", \"spec\": \"table1\"}}"
        ))
        .unwrap();
        assert_eq!(
            r,
            Request::Submit {
                id: 0,
                spec: "table1".to_string(),
                scale: Scale::default(),
                smoke: false,
                deadline_ms: None,
            }
        );
        assert!(
            Request::parse(&format!("{{\"proto\": \"{PROTO}\", \"cmd\": \"dance\"}}")).is_err()
        );
    }
}
