//! # pif-lab — declarative sweep orchestration
//!
//! The paper's evaluation is a grid: every figure is
//! {workload × prefetcher × one swept parameter}. This crate turns each
//! figure into data instead of a hand-rolled binary: a [`SweepSpec`]
//! names the axes, [`run_spec`] expands the grid and runs it on a
//! work-stealing thread pool with per-job seeded workload streams, and
//! the result is a [`SweepReport`] — a machine-checkable JSON artifact
//! per figure.
//!
//! Determinism is the core contract: job results merge by job index and
//! reports carry no wall-clock data, so **a report is byte-identical
//! regardless of `--threads`** (proven by `tests/determinism.rs`). A
//! committed report is therefore a regression baseline: `piflab check`
//! re-runs a spec and compares every metric against the golden copy with
//! per-metric tolerances.
//!
//! # The `pif-lab-sweep/v1` schema
//!
//! A report is one JSON object:
//!
//! ```json
//! {
//!   "schema": "pif-lab-sweep/v1",
//!   "spec": "fig9-history",
//!   "title": "Fig. 9 right: history size sensitivity",
//!   "smoke": true,
//!   "scale": {"instructions": 40000, "footprint": 0.03, "warmup_fraction": 0.3},
//!   "tolerance": 1e-9,
//!   "grid": {
//!     "workloads": ["OLTP-DB2", "..."],
//!     "prefetchers": [],
//!     "axis": "history_capacity",
//!     "points": ["2048", "8192", "..."]
//!   },
//!   "config": {"icache_capacity_bytes": 65536, "...": 0},
//!   "cells": [
//!     {"index": 0, "workload": "OLTP-DB2", "prefetcher": null,
//!      "point": "2048", "metrics": {"miss_coverage": 0.42, "...": 0}}
//!   ]
//! }
//! ```
//!
//! * `grid` spans the cell array: cells appear workload-major, then by
//!   prefetcher, then by axis point, and `cells[i].index == i`.
//! * `metrics` values are JSON numbers (counters are exact integers,
//!   ratios shortest-round-trip floats). Non-finite values are rejected
//!   at emit time ([`SweepReport::to_json`] errors naming the cell);
//!   the validator still tolerates `null` metrics in old artifacts.
//! * `config` is a flat summary of the spec's base simulator/PIF
//!   configuration, so `piflab check` catches silent config drift.
//! * Engine grids with a `None` prefetcher cell gain a derived
//!   `uipc_speedup_vs_none` metric on every non-`None` cell of the same
//!   (workload, point).
//!
//! # Example
//!
//! ```
//! use pif_lab::{registry, run_spec, RunOptions, Scale};
//!
//! let spec = registry::table1();
//! let report = run_spec(&spec, &RunOptions::new().scale(Scale::tiny()).threads(2).smoke(true));
//! assert_eq!(report.cells.len(), 6);
//! let json = report.to_json().unwrap();
//! let parsed = pif_lab::json::Json::parse(&json).unwrap();
//! pif_lab::report::validate_report(&parsed).unwrap();
//! ```
//!
//! # Running as a service
//!
//! [`service`] wraps this same sweep path in a bounded job queue
//! ([`service::Service`]) so sweeps can be submitted by many clients to
//! one long-running daemon (`piflab serve`), and [`cache`] adds a
//! persistent content-addressed store so repeated cells replay from disk
//! instead of re-simulating — with byte-identical reports either way.
//! [`protocol`] defines the line-delimited JSON the daemon speaks.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod json;
mod measure;
pub mod profile;
pub mod protocol;
pub mod recorded;
pub mod registry;
pub mod report;
pub mod sampled;
mod scale;
pub mod service;
pub mod spec;

pub use cache::{CacheKey, CacheStats, ResultCache};
pub use measure::{density_metric, jump_cdf_metric, len_cdf_metric, offset_metric, runs_metric};
pub use profile::{CellProfile, SweepProfile};
pub use report::{Cell, CheckSummary, Metric, SweepReport};
pub use scale::Scale;
pub use service::{default_threads, LatencySummary, MetricsFormat, Pool, PoolRunStats};
pub use spec::{CdfKind, Measure, ParamAxis, PrefetcherKind, SweepSpec};

#[doc(hidden)]
pub use measure::jobs_executed;

/// How to execute a sweep: scale, parallelism, smoke flag, and an
/// optional result cache.
///
/// Replaces the old positional `(scale, threads, smoke)` arguments of
/// [`run_spec`]; build one with [`RunOptions::new`] and the chainable
/// setters. The struct is non-exhaustive so future knobs (and there will
/// be more) extend it without breaking callers.
///
/// ```
/// use pif_lab::{registry, run_spec, RunOptions, Scale};
/// let report = run_spec(&registry::table1(), &RunOptions::new().scale(Scale::tiny()).smoke(true));
/// assert!(report.smoke);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RunOptions<'a> {
    /// Run scale (instruction budget, footprint, warmup fraction).
    pub scale: Scale,
    /// Worker threads of the job pool.
    pub threads: usize,
    /// Mark the report as a smoke (reduced-scale) run.
    pub smoke: bool,
    /// Persistent result cache: cells found here replay from disk, fresh
    /// cells are stored back. `None` always simulates.
    pub cache: Option<&'a ResultCache>,
}

impl Default for RunOptions<'_> {
    fn default() -> Self {
        RunOptions::new()
    }
}

impl<'a> RunOptions<'a> {
    /// Paper scale, one thread per core, non-smoke, no cache.
    pub fn new() -> Self {
        RunOptions {
            scale: Scale::default(),
            threads: default_threads(),
            smoke: false,
            cache: None,
        }
    }

    /// Sets the run scale.
    #[must_use]
    pub fn scale(mut self, scale: Scale) -> Self {
        self.scale = scale;
        self
    }

    /// Sets the worker-thread count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the smoke flag.
    #[must_use]
    pub fn smoke(mut self, smoke: bool) -> Self {
        self.smoke = smoke;
        self
    }

    /// Attaches a result cache.
    #[must_use]
    pub fn cache(mut self, cache: &'a ResultCache) -> Self {
        self.cache = Some(cache);
        self
    }
}

/// How much of a sweep came from the cache vs. fresh simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepRunStats {
    /// Cells answered by [`RunOptions::cache`].
    pub cached_cells: usize,
    /// Cells simulated by this run.
    pub executed_cells: usize,
    /// Pool jobs claimed by a different worker than the preceding job
    /// index (see [`service::PoolRunStats::stolen_jobs`]). Schedule-
    /// dependent diagnostics only — never part of a report.
    pub stolen_jobs: u64,
}

/// Expands `spec` into its job grid, runs it per `opts`, and merges the
/// cells by job index into a [`SweepReport`].
///
/// The report depends only on `(spec, opts.scale)` — not on
/// `opts.threads`, the schedule, the clock, or whether cells replayed
/// from `opts.cache` — so serialized reports are byte-identical across
/// thread counts and across cold/warm cache runs.
///
/// # Panics
///
/// Panics if the spec names a workload that does not exist (or, for
/// recorded specs, a trace that cannot be loaded — see [`recorded`]).
pub fn run_spec(spec: &SweepSpec, opts: &RunOptions<'_>) -> SweepReport {
    run_spec_stats(spec, opts).0
}

/// [`run_spec`], also reporting the cache split of the run.
///
/// # Panics
///
/// Panics if the spec names a workload that does not exist (or, for
/// recorded specs, a trace that cannot be loaded — see [`recorded`]).
pub fn run_spec_stats(spec: &SweepSpec, opts: &RunOptions<'_>) -> (SweepReport, SweepRunStats) {
    let (report, stats, _) = run_spec_impl(spec, opts, false);
    (report, stats)
}

/// [`run_spec_stats`], also collecting a wall-clock [`SweepProfile`].
///
/// The profile is a sidecar: the returned report is byte-identical to an
/// unprofiled run of the same `(spec, opts)` (asserted by
/// `profile::tests`), and timing data never enters it.
///
/// # Panics
///
/// Panics if the spec names a workload that does not exist (or, for
/// recorded specs, a trace that cannot be loaded — see [`recorded`]).
pub fn run_spec_profiled(
    spec: &SweepSpec,
    opts: &RunOptions<'_>,
) -> (SweepReport, SweepRunStats, SweepProfile) {
    let (report, stats, profile) = run_spec_impl(spec, opts, true);
    (
        report,
        stats,
        profile.expect("profile collected when requested"),
    )
}

fn run_spec_impl(
    spec: &SweepSpec,
    opts: &RunOptions<'_>,
    want_profile: bool,
) -> (SweepReport, SweepRunStats, Option<SweepProfile>) {
    let scale = &opts.scale;
    let names = spec.workload_names();
    let workloads: Vec<measure::JobWorkload> = if spec.recorded {
        names
            .iter()
            .map(|n| measure::JobWorkload {
                name: n.clone(),
                profile: None,
            })
            .collect()
    } else {
        let available = scale.workloads();
        names
            .iter()
            .map(|n| measure::JobWorkload {
                name: n.clone(),
                profile: Some(
                    available
                        .iter()
                        .find(|w| w.name() == *n)
                        .unwrap_or_else(|| panic!("spec {}: unknown workload {n:?}", spec.name))
                        .clone(),
                ),
            })
            .collect()
    };

    let coords = spec.jobs();
    // Per-workload trace memo for analysis measures (see `measure`):
    // generated at most once per workload, shared across axis points.
    let traces: Vec<std::sync::OnceLock<pif_workloads::Trace>> =
        (0..workloads.len()).map(|_| Default::default()).collect();

    // Per-workload content-hash memo: the trace half of every cache key.
    // Hashing streams the workload once per (workload, scale, seed) —
    // far cheaper than simulating, which is the point of the cache.
    let trace_hashes: Vec<std::sync::OnceLock<u64>> =
        (0..workloads.len()).map(|_| Default::default()).collect();

    // Recorded workloads have no generator: load (or, for the demo
    // workload, synthesize) every trace up front and seed both memos, so
    // job execution and cache keying never touch the filesystem and the
    // report stays a pure function of the trace bytes.
    if spec.recorded {
        for (i, name) in names.iter().enumerate() {
            let trace = recorded::load(name, scale.instructions)
                .unwrap_or_else(|e| panic!("spec {}: workload {name:?}: {e}", spec.name));
            let _ = trace_hashes[i].set(pif_trace::content_hash(trace.instrs().iter().copied()));
            let _ = traces[i].set(trace);
        }
    }

    let cell_key = |coord: spec::JobCoord| -> CacheKey {
        let workload = &workloads[coord.workload];
        let trace_hash = *trace_hashes[coord.workload].get_or_init(|| {
            let profile = workload
                .profile
                .as_ref()
                .expect("recorded hashes are pre-seeded above");
            pif_trace::content_hash(
                profile.stream_with_execution_seed(scale.instructions, spec.seed_offset),
            )
        });
        CacheKey {
            trace_hash,
            config_fp: cache::cell_fingerprint(spec, scale, &workload.name, coord),
        }
    };

    // Partition the grid: cells answered by the cache are reconstructed
    // from their stored metric tokens, the rest go to the pool.
    let mut cells: Vec<Option<Cell>> = (0..coords.len()).map(|_| None).collect();
    let mut missing: Vec<spec::JobCoord> = Vec::new();
    let mut cached_by_index = vec![false; coords.len()];
    let mut exec_us_by_index = vec![0u64; coords.len()];
    for &coord in &coords {
        let cached = opts.cache.and_then(|c| c.lookup(&cell_key(coord)));
        match cached {
            Some(metrics) => {
                cached_by_index[coord.index] = true;
                cells[coord.index] = Some(Cell {
                    index: coord.index,
                    workload: workloads[coord.workload].name.clone(),
                    prefetcher: coord.prefetcher.map(PrefetcherKind::label),
                    point: spec.axis.label(coord.point),
                    metrics,
                });
            }
            None => missing.push(coord),
        }
    }
    let cached_cells = coords.len() - missing.len();

    // Two-level parallelism without oversubscription: when the grid has
    // enough cells to keep every worker busy, cells run on the outer pool
    // and each cell's sampled windows run serially; a sparse grid (fewer
    // cells than threads) instead hands the whole thread budget to each
    // cell's window fan-out.
    let inner = Pool::new(if missing.len() >= opts.threads {
        1
    } else {
        opts.threads
    });
    let (fresh, pool_stats) = Pool::new(opts.threads).run_indexed_stats(missing.len(), |i| {
        // Timed only under profiling, and into a sidecar value — timing
        // never reaches the cell or the report.
        let started = want_profile.then(std::time::Instant::now);
        let cell = measure::run_job(spec, scale, &workloads, &traces, missing[i], &inner);
        // Sub-microsecond cells (release builds at tiny scale) round up
        // to 1 so an executed cell is never recorded as untimed.
        let exec_us = started
            .map(|t| service::duration_us(t.elapsed()).max(1))
            .unwrap_or(0);
        (cell, exec_us)
    });
    let executed_cells = fresh.len();
    for (coord, (cell, exec_us)) in missing.iter().zip(fresh) {
        exec_us_by_index[coord.index] = exec_us;
        // Stored pre-derive: `derive_speedups` is a cross-cell merge pass
        // and is recomputed on every run, cached or not.
        if let Some(cache) = opts.cache {
            // A failed store (disk full, EIO) degrades to running
            // uncached: the sweep still completes with the fresh cell.
            if let Err(e) = cache.store(&cell_key(*coord), &cell.metrics) {
                pif_obs::log::warn(
                    "pif_lab",
                    "cache store failed; running uncached",
                    &[("spec", &spec.name), ("error", &e)],
                );
            }
        }
        cells[coord.index] = Some(cell);
    }
    let mut cells: Vec<Cell> = cells
        .into_iter()
        .map(|c| c.expect("every grid index filled"))
        .collect();
    derive_speedups(spec, &mut cells);

    let report = SweepReport {
        spec: spec.name.to_string(),
        title: spec.title.to_string(),
        smoke: opts.smoke,
        scale: *scale,
        tolerance: spec.tolerance,
        workloads: names,
        prefetchers: spec.prefetcher_labels(),
        axis: spec.axis.name().to_string(),
        points: (0..spec.axis.len()).map(|i| spec.axis.label(i)).collect(),
        config: config_summary(spec),
        cells,
    };
    let profile = want_profile.then(|| SweepProfile {
        spec: spec.name.to_string(),
        threads: opts.threads,
        cells: report
            .cells
            .iter()
            .map(|c| CellProfile {
                index: c.index,
                workload: c.workload.clone(),
                prefetcher: c.prefetcher,
                point: c.point.clone(),
                cached: cached_by_index[c.index],
                exec_us: exec_us_by_index[c.index],
            })
            .collect(),
    });
    (
        report,
        SweepRunStats {
            cached_cells,
            executed_cells,
            stolen_jobs: pool_stats.stolen_jobs,
        },
        profile,
    )
}

/// Post-merge derived metrics: UIPC speedup of every engine (or sampled,
/// via the per-sample mean) cell over the `None` cell of the same
/// (workload, point), when one exists.
fn derive_speedups(spec: &SweepSpec, cells: &mut [Cell]) {
    let uipc_metric = match spec.measure {
        Measure::Engine => "uipc",
        Measure::Sampled { .. } => "uipc_mean",
        _ => return,
    };
    let none_label = PrefetcherKind::None.label();
    let baselines: Vec<(String, String, f64)> = cells
        .iter()
        .filter(|c| c.prefetcher == Some(none_label))
        .filter_map(|c| {
            c.metric(uipc_metric)
                .map(|u| (c.workload.clone(), c.point.clone(), u))
        })
        .collect();
    for cell in cells.iter_mut() {
        if cell.prefetcher == Some(none_label) {
            continue;
        }
        let Some(base) = baselines
            .iter()
            .find(|(w, p, _)| *w == cell.workload && *p == cell.point)
        else {
            continue;
        };
        if let Some(uipc) = cell.metric(uipc_metric) {
            cell.push("uipc_speedup_vs_none", Metric::F64(uipc / base.2));
        }
    }
}

/// Flat summary of the spec's base configuration, embedded in every
/// report for drift detection.
fn config_summary(spec: &SweepSpec) -> Vec<(String, Metric)> {
    config_entries(&spec.engine_base, &spec.pif_base, spec.seed_offset)
}

/// The flat config metric block for one concrete `(engine, pif, seed)`
/// configuration. `config_summary` embeds the spec's base configuration
/// in reports; `cache::cell_identity` fingerprints the *cell's* applied
/// configuration (base plus the axis point) with the same entries, so
/// any knob that reports can detect drifting on also invalidates cache
/// entries.
pub(crate) fn config_entries(
    e: &pif_sim::EngineConfig,
    p: &pif_core::PifConfig,
    seed_offset: u64,
) -> Vec<(String, Metric)> {
    let u = |v: usize| Metric::U64(v as u64);
    vec![
        ("icache_capacity_bytes".into(), u(e.icache.capacity_bytes)),
        ("icache_ways".into(), u(e.icache.ways)),
        (
            "icache_latency_cycles".into(),
            Metric::U64(e.icache.latency_cycles),
        ),
        ("l2_capacity_bytes".into(), u(e.l2.capacity_bytes)),
        ("l2_ways".into(), u(e.l2.ways)),
        (
            "l2_hit_latency_cycles".into(),
            Metric::U64(e.l2.hit_latency_cycles),
        ),
        (
            "l2_memory_latency_cycles".into(),
            Metric::U64(e.l2.memory_latency_cycles),
        ),
        (
            "dispatch_width".into(),
            Metric::U64(e.timing.dispatch_width),
        ),
        (
            "prefetch_latency_events".into(),
            Metric::U64(e.prefetch_latency_events),
        ),
        (
            "pif_region_preceding".into(),
            u(p.geometry.preceding() as usize),
        ),
        (
            "pif_region_succeeding".into(),
            u(p.geometry.succeeding() as usize),
        ),
        ("pif_temporal_entries".into(), u(p.temporal_entries)),
        ("pif_history_capacity".into(), u(p.history_capacity)),
        ("pif_index_entries".into(), u(p.index_entries)),
        ("pif_index_ways".into(), u(p.index_ways)),
        ("pif_sab_count".into(), u(p.sab_count)),
        ("pif_sab_window".into(), u(p.sab_window)),
        ("pif_storage_bytes".into(), u(p.approx_storage_bytes())),
        ("seed_offset".into(), Metric::U64(seed_offset)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(threads: usize, smoke: bool) -> RunOptions<'static> {
        RunOptions::new()
            .scale(Scale::tiny())
            .threads(threads)
            .smoke(smoke)
    }

    #[test]
    fn static_spec_runs_and_reports() {
        let report = run_spec(&registry::table1(), &tiny(3, true));
        assert_eq!(report.cells.len(), 6);
        assert_eq!(report.spec, "table1");
        assert!(report.smoke);
        let oltp = report.cell("OLTP-DB2", None, "-").expect("OLTP cell");
        // Static metrics ignore the run scale: full-size footprint.
        assert!(oltp.metric("footprint_mb").unwrap() > 1.0);
        let parsed = json::Json::parse(&report.to_json().unwrap()).unwrap();
        report::validate_report(&parsed).unwrap();
    }

    #[test]
    fn sampled_spec_reports_summaries_and_speedup() {
        let report = run_spec(&registry::fig_sampling(), &tiny(3, true));
        assert_eq!(report.cells.len(), registry::fig_sampling().grid_len());
        for cell in &report.cells {
            let n: u32 = cell.point.parse().expect("sample-count point label");
            assert_eq!(cell.metric_u64("samples"), Some(n as u64));
            let mean = cell.metric("uipc_mean").unwrap();
            assert!(mean > 0.0 && mean.is_finite(), "uipc_mean {mean}");
            let ci = cell.metric("uipc_ci95").unwrap();
            assert!(ci >= 0.0);
            assert!(cell.metric("sampled_fraction").unwrap() > 0.0);
            if cell.prefetcher == Some("PIF") {
                assert!(cell.metric("uipc_speedup_vs_none").is_some());
            }
        }
        // The ci95 is the normal-approximation half-width of the stderr
        // in every cell, and per-cell estimates of the same coordinate
        // agree across sample counts to within their joint error bars.
        for cell in &report.cells {
            let stderr = cell.metric("uipc_stderr").unwrap();
            let ci = cell.metric("uipc_ci95").unwrap();
            assert!((ci - 1.96 * stderr).abs() < 1e-12);
        }
    }

    #[test]
    fn engine_spec_derives_speedup_vs_none() {
        let spec = SweepSpec::new("mini", "mini engine grid", Measure::Engine)
            .with_workloads(vec!["OLTP-DB2"])
            .with_prefetchers(vec![PrefetcherKind::None, PrefetcherKind::Perfect]);
        let report = run_spec(&spec, &tiny(2, false));
        assert_eq!(report.cells.len(), 2);
        let none = report.cell("OLTP-DB2", Some("None"), "-").unwrap();
        assert!(none.metric("uipc_speedup_vs_none").is_none());
        let perfect = report.cell("OLTP-DB2", Some("Perfect"), "-").unwrap();
        let speedup = perfect.metric("uipc_speedup_vs_none").unwrap();
        assert!(
            speedup >= 1.0,
            "perfect cache should not slow down: {speedup}"
        );
    }
}
