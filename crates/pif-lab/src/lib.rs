//! # pif-lab — declarative sweep orchestration
//!
//! The paper's evaluation is a grid: every figure is
//! {workload × prefetcher × one swept parameter}. This crate turns each
//! figure into data instead of a hand-rolled binary: a [`SweepSpec`]
//! names the axes, [`run_spec`] expands the grid and runs it on a
//! work-stealing thread pool with per-job seeded workload streams, and
//! the result is a [`SweepReport`] — a machine-checkable JSON artifact
//! per figure.
//!
//! Determinism is the core contract: job results merge by job index and
//! reports carry no wall-clock data, so **a report is byte-identical
//! regardless of `--threads`** (proven by `tests/determinism.rs`). A
//! committed report is therefore a regression baseline: `piflab check`
//! re-runs a spec and compares every metric against the golden copy with
//! per-metric tolerances.
//!
//! # The `pif-lab-sweep/v1` schema
//!
//! A report is one JSON object:
//!
//! ```json
//! {
//!   "schema": "pif-lab-sweep/v1",
//!   "spec": "fig9-history",
//!   "title": "Fig. 9 right: history size sensitivity",
//!   "smoke": true,
//!   "scale": {"instructions": 40000, "footprint": 0.03, "warmup_fraction": 0.3},
//!   "tolerance": 1e-9,
//!   "grid": {
//!     "workloads": ["OLTP-DB2", "..."],
//!     "prefetchers": [],
//!     "axis": "history_capacity",
//!     "points": ["2048", "8192", "..."]
//!   },
//!   "config": {"icache_capacity_bytes": 65536, "...": 0},
//!   "cells": [
//!     {"index": 0, "workload": "OLTP-DB2", "prefetcher": null,
//!      "point": "2048", "metrics": {"miss_coverage": 0.42, "...": 0}}
//!   ]
//! }
//! ```
//!
//! * `grid` spans the cell array: cells appear workload-major, then by
//!   prefetcher, then by axis point, and `cells[i].index == i`.
//! * `metrics` values are JSON numbers (counters are exact integers,
//!   ratios shortest-round-trip floats). Non-finite values are rejected
//!   at emit time ([`SweepReport::to_json`] errors naming the cell);
//!   the validator still tolerates `null` metrics in old artifacts.
//! * `config` is a flat summary of the spec's base simulator/PIF
//!   configuration, so `piflab check` catches silent config drift.
//! * Engine grids with a `None` prefetcher cell gain a derived
//!   `uipc_speedup_vs_none` metric on every non-`None` cell of the same
//!   (workload, point).
//!
//! # Example
//!
//! ```
//! use pif_lab::{registry, run_spec, Scale};
//!
//! let spec = registry::table1();
//! let report = run_spec(&spec, &Scale::tiny(), 2, true);
//! assert_eq!(report.cells.len(), 6);
//! let json = report.to_json().unwrap();
//! let parsed = pif_lab::json::Json::parse(&json).unwrap();
//! pif_lab::report::validate_report(&parsed).unwrap();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod json;
mod measure;
pub mod pool;
pub mod registry;
pub mod report;
mod scale;
pub mod spec;

pub use measure::{density_metric, jump_cdf_metric, len_cdf_metric, offset_metric, runs_metric};
pub use pool::{default_threads, parallel_map};
pub use report::{Cell, CheckSummary, Metric, SweepReport};
pub use scale::Scale;
pub use spec::{CdfKind, Measure, ParamAxis, PrefetcherKind, SweepSpec};

use pif_workloads::WorkloadProfile;

/// Expands `spec` into its job grid, runs it on `threads` workers, and
/// merges the cells by job index into a [`SweepReport`].
///
/// The report depends only on `(spec, scale)` — not on `threads`, the
/// schedule, or the clock — so serialized reports are byte-identical
/// across thread counts.
///
/// # Panics
///
/// Panics if the spec names a workload that does not exist.
pub fn run_spec(spec: &SweepSpec, scale: &Scale, threads: usize, smoke: bool) -> SweepReport {
    let names = spec.workload_names();
    let available = scale.workloads();
    let profiles: Vec<WorkloadProfile> = names
        .iter()
        .map(|n| {
            available
                .iter()
                .find(|w| w.name() == *n)
                .unwrap_or_else(|| panic!("spec {}: unknown workload {n:?}", spec.name))
                .clone()
        })
        .collect();

    let coords = spec.jobs();
    // Per-workload trace memo for analysis measures (see `measure`):
    // generated at most once per workload, shared across axis points.
    let traces: Vec<std::sync::OnceLock<pif_workloads::Trace>> =
        (0..profiles.len()).map(|_| Default::default()).collect();
    let mut cells = pool::run_indexed(coords.len(), threads, |i| {
        measure::run_job(spec, scale, &profiles, &traces, coords[i])
    });
    derive_speedups(spec, &mut cells);

    SweepReport {
        spec: spec.name.to_string(),
        title: spec.title.to_string(),
        smoke,
        scale: *scale,
        tolerance: spec.tolerance,
        workloads: names,
        prefetchers: spec.prefetcher_labels(),
        axis: spec.axis.name().to_string(),
        points: (0..spec.axis.len()).map(|i| spec.axis.label(i)).collect(),
        config: config_summary(spec),
        cells,
    }
}

/// Post-merge derived metrics: UIPC speedup of every engine (or sampled,
/// via the per-sample mean) cell over the `None` cell of the same
/// (workload, point), when one exists.
fn derive_speedups(spec: &SweepSpec, cells: &mut [Cell]) {
    let uipc_metric = match spec.measure {
        Measure::Engine => "uipc",
        Measure::Sampled { .. } => "uipc_mean",
        _ => return,
    };
    let none_label = PrefetcherKind::None.label();
    let baselines: Vec<(String, String, f64)> = cells
        .iter()
        .filter(|c| c.prefetcher == Some(none_label))
        .filter_map(|c| {
            c.metric(uipc_metric)
                .map(|u| (c.workload.clone(), c.point.clone(), u))
        })
        .collect();
    for cell in cells.iter_mut() {
        if cell.prefetcher == Some(none_label) {
            continue;
        }
        let Some(base) = baselines
            .iter()
            .find(|(w, p, _)| *w == cell.workload && *p == cell.point)
        else {
            continue;
        };
        if let Some(uipc) = cell.metric(uipc_metric) {
            cell.push("uipc_speedup_vs_none", Metric::F64(uipc / base.2));
        }
    }
}

/// Flat summary of the spec's base configuration, embedded in every
/// report for drift detection.
fn config_summary(spec: &SweepSpec) -> Vec<(String, Metric)> {
    let e = &spec.engine_base;
    let p = &spec.pif_base;
    let u = |v: usize| Metric::U64(v as u64);
    vec![
        ("icache_capacity_bytes".into(), u(e.icache.capacity_bytes)),
        ("icache_ways".into(), u(e.icache.ways)),
        (
            "icache_latency_cycles".into(),
            Metric::U64(e.icache.latency_cycles),
        ),
        ("l2_capacity_bytes".into(), u(e.l2.capacity_bytes)),
        ("l2_ways".into(), u(e.l2.ways)),
        (
            "l2_hit_latency_cycles".into(),
            Metric::U64(e.l2.hit_latency_cycles),
        ),
        (
            "l2_memory_latency_cycles".into(),
            Metric::U64(e.l2.memory_latency_cycles),
        ),
        (
            "dispatch_width".into(),
            Metric::U64(e.timing.dispatch_width),
        ),
        (
            "prefetch_latency_events".into(),
            Metric::U64(e.prefetch_latency_events),
        ),
        (
            "pif_region_preceding".into(),
            u(p.geometry.preceding() as usize),
        ),
        (
            "pif_region_succeeding".into(),
            u(p.geometry.succeeding() as usize),
        ),
        ("pif_temporal_entries".into(), u(p.temporal_entries)),
        ("pif_history_capacity".into(), u(p.history_capacity)),
        ("pif_index_entries".into(), u(p.index_entries)),
        ("pif_index_ways".into(), u(p.index_ways)),
        ("pif_sab_count".into(), u(p.sab_count)),
        ("pif_sab_window".into(), u(p.sab_window)),
        ("pif_storage_bytes".into(), u(p.approx_storage_bytes())),
        ("seed_offset".into(), Metric::U64(spec.seed_offset)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_spec_runs_and_reports() {
        let report = run_spec(&registry::table1(), &Scale::tiny(), 3, true);
        assert_eq!(report.cells.len(), 6);
        assert_eq!(report.spec, "table1");
        assert!(report.smoke);
        let oltp = report.cell("OLTP-DB2", None, "-").expect("OLTP cell");
        // Static metrics ignore the run scale: full-size footprint.
        assert!(oltp.metric("footprint_mb").unwrap() > 1.0);
        let parsed = json::Json::parse(&report.to_json().unwrap()).unwrap();
        report::validate_report(&parsed).unwrap();
    }

    #[test]
    fn sampled_spec_reports_summaries_and_speedup() {
        let report = run_spec(&registry::fig_sampling(), &Scale::tiny(), 3, true);
        assert_eq!(report.cells.len(), registry::fig_sampling().grid_len());
        for cell in &report.cells {
            let n: u32 = cell.point.parse().expect("sample-count point label");
            assert_eq!(cell.metric_u64("samples"), Some(n as u64));
            let mean = cell.metric("uipc_mean").unwrap();
            assert!(mean > 0.0 && mean.is_finite(), "uipc_mean {mean}");
            let ci = cell.metric("uipc_ci95").unwrap();
            assert!(ci >= 0.0);
            assert!(cell.metric("sampled_fraction").unwrap() > 0.0);
            if cell.prefetcher == Some("PIF") {
                assert!(cell.metric("uipc_speedup_vs_none").is_some());
            }
        }
        // The ci95 is the normal-approximation half-width of the stderr
        // in every cell, and per-cell estimates of the same coordinate
        // agree across sample counts to within their joint error bars.
        for cell in &report.cells {
            let stderr = cell.metric("uipc_stderr").unwrap();
            let ci = cell.metric("uipc_ci95").unwrap();
            assert!((ci - 1.96 * stderr).abs() < 1e-12);
        }
    }

    #[test]
    fn engine_spec_derives_speedup_vs_none() {
        let spec = SweepSpec::new("mini", "mini engine grid", Measure::Engine)
            .with_workloads(vec!["OLTP-DB2"])
            .with_prefetchers(vec![PrefetcherKind::None, PrefetcherKind::Perfect]);
        let report = run_spec(&spec, &Scale::tiny(), 2, false);
        assert_eq!(report.cells.len(), 2);
        let none = report.cell("OLTP-DB2", Some("None"), "-").unwrap();
        assert!(none.metric("uipc_speedup_vs_none").is_none());
        let perfect = report.cell("OLTP-DB2", Some("Perfect"), "-").unwrap();
        let speedup = perfect.metric("uipc_speedup_vs_none").unwrap();
        assert!(
            speedup >= 1.0,
            "perfect cache should not slow down: {speedup}"
        );
    }
}
