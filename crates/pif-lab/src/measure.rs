//! Per-cell measurement drivers: run one job of a sweep grid and emit its
//! metrics.
//!
//! Every driver derives its trace from the job's workload via
//! [`WorkloadProfile::stream_with_execution_seed`] /
//! `generate_with_execution_seed`, so a cell's result depends only on
//! (spec, scale, seed) — never on which worker thread ran it or when.
//! Engine cells stream (no trace materialization); analysis and sampled
//! cells need random access into a slice, so the generated trace is
//! memoized per workload and shared across the parameter axis instead of
//! regenerated per cell.
//!
//! Recorded workloads ([`crate::recorded`]) have no generator at all:
//! `run_spec_impl` pre-seeds the per-workload memo with the loaded trace,
//! and every measure — engine cells included — consumes the memo.

use pif_baselines::{DiscontinuityPrefetcher, NextLinePrefetcher, PerfectICache, Tifs};
use pif_core::analysis::{analyze_regions, PifAnalyzer};
use pif_core::Pif;
use pif_sim::predictor_eval::{evaluate_stream_coverage_warmup, TemporalPredictorConfig};
use pif_sim::prefetch::Prefetcher;
use pif_sim::sampling::{SampledRunReport, SamplingPlan, WarmStrategy};
use pif_sim::{Engine, EngineConfig, NoPrefetcher, RunOptions, RunReport};
use pif_types::{RegionGeometry, TrapLevel};
use pif_workloads::{Trace, WorkloadProfile};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::registry::{
    DENSITY_BUCKETS, JUMP_CDF_BUCKETS, LENGTH_CDF_BUCKETS, REGION_OFFSETS, RUN_BUCKETS,
};
use crate::report::{Cell, Metric};
use crate::sampled::run_sampled_parallel;
use crate::scale::Scale;
use crate::service::Pool;
use crate::spec::{CdfKind, JobCoord, Measure, ParamAxis, PrefetcherKind, SweepSpec};

/// Metric name for a jump-distance CDF point (`jump_cdf_le_2p07` = the
/// cumulative fraction of prediction-weighted jumps of length <= 2^7).
pub fn jump_cdf_metric(log2: usize) -> String {
    format!("jump_cdf_le_2p{log2:02}")
}

/// Metric name for a stream-length CDF point.
pub fn len_cdf_metric(log2: usize) -> String {
    format!("len_cdf_le_2p{log2:02}")
}

/// Metric name for a trigger-relative offset frequency (`offset_m2`,
/// `offset_p1`, …).
pub fn offset_metric(offset: i64) -> String {
    if offset < 0 {
        format!("offset_m{}", -offset)
    } else {
        format!("offset_p{offset}")
    }
}

/// Metric name for a region-density bucket.
pub fn density_metric(lo: u32, hi: u32) -> String {
    format!("density_{lo}_{hi}")
}

/// Metric name for a discontinuous-runs bucket.
pub fn runs_metric(lo: u32, hi: u32) -> String {
    format!("runs_{lo}_{hi}")
}

/// Process-wide count of cells actually simulated (not cache replays).
static JOBS_EXECUTED: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of grid cells executed by [`run_job`] since process
/// start. A cache replay does not increment it, which is what lets
/// `tests/cache.rs` prove a warm-cache sweep runs zero engine jobs.
#[doc(hidden)]
pub fn jobs_executed() -> u64 {
    JOBS_EXECUTED.load(Ordering::Relaxed)
}

/// One workload of the expanded grid: its stable report name plus, for
/// synthetic workloads, the generating profile. Recorded workloads carry
/// no profile — their traces are pre-seeded into the per-workload memo
/// by `run_spec_impl` before any job runs.
#[derive(Debug, Clone)]
pub(crate) struct JobWorkload {
    pub name: String,
    pub profile: Option<WorkloadProfile>,
}

/// Runs one grid cell and returns it (without cross-cell derived
/// metrics — see [`crate::run_spec`] for the merge pass).
pub(crate) fn run_job(
    spec: &SweepSpec,
    scale: &Scale,
    workloads: &[JobWorkload],
    traces: &[OnceLock<Trace>],
    coord: JobCoord,
    pool: &Pool,
) -> Cell {
    JOBS_EXECUTED.fetch_add(1, Ordering::Relaxed);
    let workload = &workloads[coord.workload];
    // Memoized per-workload trace for the slice-consuming analysis
    // measures: generated once per (workload, seed), shared across axis
    // points. `get_or_init` blocks concurrent initializers, so exactly
    // one job pays the generation cost. Recorded workloads arrive
    // pre-seeded, so the generating closure never runs for them.
    let trace = || {
        traces[coord.workload].get_or_init(|| {
            workload
                .profile
                .as_ref()
                .expect("recorded traces are pre-seeded by run_spec_impl")
                .generate_with_execution_seed(scale.instructions, spec.seed_offset)
        })
    };
    let mut pif = spec.pif_base;
    let mut engine_cfg = spec.engine_base;
    spec.axis.apply(coord.point, &mut pif, &mut engine_cfg);
    let warmup = scale.warmup_instrs();

    let mut cell = Cell {
        index: coord.index,
        workload: workload.name.clone(),
        prefetcher: coord.prefetcher.map(PrefetcherKind::label),
        point: spec.axis.label(coord.point),
        metrics: Vec::new(),
    };

    match spec.measure {
        Measure::Engine => {
            let engine = Engine::new(engine_cfg);
            let kind = coord.prefetcher.unwrap_or(PrefetcherKind::None);
            let report = match &workload.profile {
                // Synthetic workloads stream — no trace materialization.
                Some(profile) => engine_run(
                    &engine,
                    profile.stream_with_execution_seed(scale.instructions, spec.seed_offset),
                    kind,
                    pif,
                    warmup,
                ),
                // Recorded workloads replay the pre-seeded trace memo.
                None => engine_run(&engine, trace().instrs().iter().copied(), kind, pif, warmup),
            };
            engine_metrics(&mut cell, &report);
        }
        Measure::PifAnalysis(cdf) => {
            let report = PifAnalyzer::new(pif, engine_cfg.icache).analyze(trace().instrs(), warmup);
            cell.push("miss_coverage", Metric::F64(report.overall_miss_coverage()));
            cell.push(
                "predictor_coverage",
                Metric::F64(report.overall_predictor_coverage()),
            );
            cell.push(
                "miss_coverage_tl0",
                Metric::F64(report.miss_coverage(TrapLevel::Tl0)),
            );
            cell.push(
                "miss_coverage_tl1",
                Metric::F64(report.miss_coverage(TrapLevel::Tl1)),
            );
            match cdf {
                CdfKind::None => {}
                CdfKind::JumpDistance => {
                    let mut cdf = report.jump_distance.cdf();
                    cdf.resize(JUMP_CDF_BUCKETS, 1.0);
                    for (i, v) in cdf.iter().enumerate() {
                        cell.push(jump_cdf_metric(i), Metric::F64(*v));
                    }
                }
                CdfKind::StreamLength => {
                    let mut cdf = report.stream_length.cdf();
                    cdf.resize(LENGTH_CDF_BUCKETS, 1.0);
                    for (i, v) in cdf.iter().enumerate() {
                        cell.push(len_cdf_metric(i), Metric::F64(*v));
                    }
                }
            }
        }
        Measure::Regions {
            preceding,
            succeeding,
        } => {
            let geometry =
                RegionGeometry::new(preceding, succeeding).expect("spec carries valid geometry");
            let report = analyze_regions(trace().instrs(), geometry);
            cell.push("total_regions", Metric::U64(report.total_regions));
            for &(lo, hi) in &DENSITY_BUCKETS {
                cell.push(
                    density_metric(lo, hi),
                    Metric::F64(report.density_fraction(lo, hi)),
                );
            }
            for &(lo, hi) in &RUN_BUCKETS {
                cell.push(
                    runs_metric(lo, hi),
                    Metric::F64(report.runs_fraction(lo, hi)),
                );
            }
            for &o in &REGION_OFFSETS {
                cell.push(offset_metric(o), Metric::F64(report.offset_frequency(o)));
            }
        }
        Measure::StreamCoverage => {
            let report = evaluate_stream_coverage_warmup(
                &engine_cfg,
                TemporalPredictorConfig::default(),
                trace().instrs(),
                warmup,
            );
            cell.push(
                "correct_path_misses",
                Metric::U64(report.correct_path_misses),
            );
            cell.push("miss", Metric::F64(report.miss));
            cell.push("access", Metric::F64(report.access));
            cell.push("retire", Metric::F64(report.retire));
            cell.push("retire_sep", Metric::F64(report.retire_sep));
        }
        Measure::Sampled { samples } => {
            let samples = match &spec.axis {
                ParamAxis::SampleCount(v) => v[coord.point],
                _ => samples,
            } as usize;
            // Window lengths scale with the run so smoke and paper runs
            // keep the same shape: 0.1% of the trace measured per sample
            // (SMARTS-style many-small-windows; floored so smoke windows
            // still exercise steady state), twice that as warmup.
            let measure_instrs = (scale.instructions as u64 / 1_000).max(1_000);
            let warmup_instrs = 2 * measure_instrs;
            // The seed is a pure function of (spec, job index): reports
            // stay byte-identical across thread counts and runs.
            let seed = spec.seed_offset.wrapping_add(coord.index as u64);
            // Per-window warming with an extra warmup's worth of burn-in
            // prepended: windows become independent units of work (the
            // precondition for the parallel fan-out below), and the
            // doubled warm-up prefix rebuilds the predictor state that
            // continuous warming used to carry across windows.
            let plan = SamplingPlan::random(samples, seed, warmup_instrs, measure_instrs)
                .with_warm_strategy(WarmStrategy::PerWindow {
                    extra_warmup_instrs: warmup_instrs,
                });
            let kind = coord.prefetcher.unwrap_or(PrefetcherKind::None);
            let t = trace();
            let report = match kind {
                PrefetcherKind::None => sampled_run(&engine_cfg, &plan, t, pool, || NoPrefetcher),
                PrefetcherKind::NextLine => {
                    sampled_run(&engine_cfg, &plan, t, pool, NextLinePrefetcher::aggressive)
                }
                PrefetcherKind::Tifs => {
                    sampled_run(
                        &engine_cfg,
                        &plan,
                        t,
                        pool,
                        || Tifs::new(Default::default()),
                    )
                }
                PrefetcherKind::TifsUnbounded => {
                    sampled_run(&engine_cfg, &plan, t, pool, Tifs::unbounded)
                }
                PrefetcherKind::Discontinuity => sampled_run(
                    &engine_cfg,
                    &plan,
                    t,
                    pool,
                    DiscontinuityPrefetcher::paper_scale,
                ),
                PrefetcherKind::Pif => sampled_run(&engine_cfg, &plan, t, pool, || Pif::new(pif)),
                PrefetcherKind::Perfect => {
                    sampled_run(&engine_cfg, &plan, t, pool, || PerfectICache)
                }
            };
            sampled_metrics(&mut cell, &plan, &report);
        }
        Measure::Static => {
            // Table I reports workload identity parameters, which do not
            // depend on the run scale: use the unscaled profile.
            let profile = workload.profile.as_ref().unwrap_or_else(|| {
                panic!(
                    "spec {}: Measure::Static needs synthetic workloads",
                    spec.name
                )
            });
            let unscaled = WorkloadProfile::all()
                .into_iter()
                .find(|w| w.name() == profile.name());
            let params = unscaled.as_ref().unwrap_or(profile).params().clone();
            cell.push(
                "footprint_mb",
                Metric::F64(params.approx_footprint_bytes() as f64 / (1024.0 * 1024.0)),
            );
            cell.push("num_functions", Metric::U64(params.num_functions as u64));
            cell.push(
                "num_transaction_types",
                Metric::U64(params.num_transaction_types as u64),
            );
        }
    }
    cell
}

/// One engine run of `source` under the cell's prefetcher kind — shared
/// by the synthetic streaming path and the recorded-trace replay path.
fn engine_run(
    engine: &Engine,
    source: impl pif_types::InstrSource,
    kind: PrefetcherKind,
    pif: pif_core::PifConfig,
    warmup: usize,
) -> RunReport {
    let opts = RunOptions::new().warmup(warmup);
    match kind {
        PrefetcherKind::None => engine.run(source, NoPrefetcher, opts),
        PrefetcherKind::NextLine => engine.run(source, NextLinePrefetcher::aggressive(), opts),
        PrefetcherKind::Tifs => engine.run(source, Tifs::new(Default::default()), opts),
        PrefetcherKind::TifsUnbounded => engine.run(source, Tifs::unbounded(), opts),
        PrefetcherKind::Discontinuity => {
            engine.run(source, DiscontinuityPrefetcher::paper_scale(), opts)
        }
        PrefetcherKind::Pif => engine.run(source, Pif::new(pif), opts),
        PrefetcherKind::Perfect => engine.run(source, PerfectICache, opts),
    }
}

/// One sampled cell run: windows over the memoized workload trace, fanned
/// out on `pool`. The cell's plan uses per-window warming, so `mk` builds
/// one fresh prefetcher per window and the merged report is byte-identical
/// for every worker count (see [`crate::sampled`]).
fn sampled_run<P: Prefetcher>(
    engine_cfg: &EngineConfig,
    plan: &SamplingPlan,
    trace: &Trace,
    pool: &Pool,
    mk: impl Fn() -> P + Sync,
) -> SampledRunReport {
    run_sampled_parallel(
        engine_cfg,
        plan,
        trace.len() as u64,
        |w| trace.instrs()[w.warmup_start as usize..].iter().copied(),
        |_| mk(),
        pool,
    )
}

fn sampled_metrics(cell: &mut Cell, plan: &SamplingPlan, report: &SampledRunReport) {
    cell.push("samples", Metric::U64(report.samples.len() as u64));
    cell.push("warmup_instrs", Metric::U64(plan.warmup_instrs));
    cell.push("measure_instrs", Metric::U64(plan.measure_instrs));
    cell.push(
        "measured_instructions",
        Metric::U64(report.measured_instructions()),
    );
    cell.push("sampled_fraction", Metric::F64(report.sampled_fraction()));
    let uipc = report.uipc();
    cell.push("uipc_mean", Metric::F64(uipc.mean));
    cell.push("uipc_stderr", Metric::F64(uipc.stderr));
    cell.push("uipc_ci95", Metric::F64(uipc.ci95));
    cell.push("uipc_rel_err", Metric::F64(uipc.relative_error()));
    let mpki = report.mpki();
    cell.push("mpki_mean", Metric::F64(mpki.mean));
    cell.push("mpki_ci95", Metric::F64(mpki.ci95));
    let coverage = report.miss_coverage();
    cell.push("miss_coverage_mean", Metric::F64(coverage.mean));
}

fn engine_metrics(cell: &mut Cell, report: &RunReport) {
    cell.push("instructions", Metric::U64(report.frontend.instructions));
    cell.push("cycles", Metric::U64(report.timing.cycles));
    cell.push("demand_accesses", Metric::U64(report.fetch.demand_accesses));
    cell.push("demand_misses", Metric::U64(report.fetch.demand_misses));
    cell.push(
        "wrong_path_accesses",
        Metric::U64(report.fetch.wrong_path_accesses),
    );
    cell.push(
        "covered_by_prefetch",
        Metric::U64(report.fetch.covered_by_prefetch),
    );
    cell.push("partial_covered", Metric::U64(report.fetch.partial_covered));
    cell.push("prefetch_issued", Metric::U64(report.prefetch.issued));
    cell.push("prefetch_useful", Metric::U64(report.prefetch.useful));
    cell.push("l2_hits", Metric::U64(report.l2_hits));
    cell.push("l2_misses", Metric::U64(report.l2_misses));
    cell.push("hit_rate", Metric::F64(report.fetch.hit_rate()));
    cell.push("miss_coverage", Metric::F64(report.miss_coverage()));
    let mpki = report.fetch.demand_misses as f64 / (report.frontend.instructions as f64 / 1000.0);
    cell.push("mpki", Metric::F64(mpki));
    cell.push("prefetch_accuracy", Metric::F64(report.prefetch.accuracy()));
    cell.push("uipc", Metric::F64(report.timing.uipc()));
}
