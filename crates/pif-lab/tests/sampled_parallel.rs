//! Tier-1 determinism contract for parallel sampled execution: for any
//! plan with independent windows, the pool-parallel drivers produce
//! reports **equal in every field** to the serial drivers, at every
//! thread count. `--threads` is a scheduling knob, never a results knob.

use pif_baselines::NextLinePrefetcher;
use pif_core::Pif;
use pif_lab::sampled::{run_sampled_parallel, sample_trace_file_parallel};
use pif_lab::Pool;
use pif_sim::sampling::{run_sampled, sample_trace_file, SamplingPlan, WarmStrategy};
use pif_sim::{EngineConfig, NoPrefetcher};
use pif_types::{Address, BranchInfo, BranchKind, RetiredInstr, TrapLevel};

/// A looped trace with periodic calls, so prefetchers and branch
/// predictors have structure to latch onto (pure straight-line code
/// would make every prefetcher a no-op and the test vacuous).
fn synthetic_trace(n: u64) -> Vec<RetiredInstr> {
    (0..n)
        .map(|i| {
            let pc = Address::new(0x40_0000 + (i % 6000) * 4);
            if i % 97 == 0 {
                RetiredInstr::branch(
                    pc,
                    TrapLevel::Tl0,
                    BranchInfo {
                        kind: BranchKind::Call,
                        taken: true,
                        taken_target: Address::new(0x48_0000 + (i % 13) * 256),
                        fall_through: Address::new(pc.raw() + 4),
                    },
                )
            } else {
                RetiredInstr::simple(pc, TrapLevel::Tl0)
            }
        })
        .collect()
}

fn per_window_plan() -> SamplingPlan {
    SamplingPlan::random(12, 0x51ec, 3_000, 1_500)
        .with_warm_strategy(WarmStrategy::PerWindow {
            extra_warmup_instrs: 3_000,
        })
        .with_burn_in(2)
}

#[test]
fn parallel_in_memory_reports_equal_serial_at_every_thread_count() {
    let trace = synthetic_trace(120_000);
    let config = EngineConfig::paper_default();
    let plan = per_window_plan();
    let serial = run_sampled(
        &config,
        &plan,
        trace.len() as u64,
        |w| trace[w.warmup_start as usize..].iter().copied(),
        |_| Pif::new(Default::default()),
    );
    for threads in [1, 2, 8] {
        let parallel = run_sampled_parallel(
            &config,
            &plan,
            trace.len() as u64,
            |w| trace[w.warmup_start as usize..].iter().copied(),
            |_| Pif::new(Default::default()),
            &Pool::new(threads),
        );
        assert_eq!(
            parallel, serial,
            "threads={threads} must not change results"
        );
    }
}

#[test]
fn parallel_file_sampling_equals_serial_at_every_thread_count() {
    let trace = synthetic_trace(90_000);
    let path =
        std::env::temp_dir().join(format!("pif-sampled-parallel-{}.pift", std::process::id()));
    let file = std::fs::File::create(&path).unwrap();
    let mut writer =
        pif_trace::TraceWriter::with_chunk_records(std::io::BufWriter::new(file), "par", 2048)
            .unwrap();
    writer.extend(trace.iter().copied()).unwrap();
    writer.finish().unwrap();

    let config = EngineConfig::paper_default();
    let plan = per_window_plan();
    let serial =
        sample_trace_file(&config, &plan, &path, |_| NextLinePrefetcher::aggressive()).unwrap();
    // The file path must also agree with the in-memory path.
    let in_memory = run_sampled(
        &config,
        &plan,
        trace.len() as u64,
        |w| trace[w.warmup_start as usize..].iter().copied(),
        |_| NextLinePrefetcher::aggressive(),
    );
    assert_eq!(serial, in_memory);
    for threads in [1, 2, 8] {
        let parallel = sample_trace_file_parallel(
            &config,
            &plan,
            &path,
            |_| NextLinePrefetcher::aggressive(),
            &Pool::new(threads),
        )
        .unwrap();
        assert_eq!(
            parallel, serial,
            "threads={threads} must not change results"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn continuous_plans_fall_back_to_the_serial_driver() {
    let trace = synthetic_trace(60_000);
    let config = EngineConfig::paper_default();
    // Continuous warming threads predictor state through windows in file
    // order; the parallel entry point must run it serially (and exactly),
    // not approximate it with independent windows.
    let plan = SamplingPlan::random(8, 7, 2_000, 1_000).with_burn_in(1);
    assert!(!plan.windows_independent());
    let serial = run_sampled(
        &config,
        &plan,
        trace.len() as u64,
        |w| trace[w.warmup_start as usize..].iter().copied(),
        |_| Pif::new(Default::default()),
    );
    let via_parallel = run_sampled_parallel(
        &config,
        &plan,
        trace.len() as u64,
        |w| trace[w.warmup_start as usize..].iter().copied(),
        |_| Pif::new(Default::default()),
        &Pool::new(8),
    );
    assert_eq!(via_parallel, serial);
}

#[test]
fn truncated_files_report_the_lowest_indexed_windows_error() {
    let trace = synthetic_trace(50_000);
    let mut writer = pif_trace::TraceWriter::with_chunk_records(Vec::new(), "trunc", 1024).unwrap();
    writer.extend(trace.iter().copied()).unwrap();
    let bytes = writer.finish().unwrap();
    let path = std::env::temp_dir().join(format!("pif-sampled-trunc-{}.pift", std::process::id()));
    // Chop the trace mid-body: the chunk-header scan fails up front, the
    // same way the serial out-of-core driver fails.
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    let config = EngineConfig::paper_default();
    let plan = per_window_plan();
    let serial = sample_trace_file(&config, &plan, &path, |_| NoPrefetcher);
    let parallel =
        sample_trace_file_parallel(&config, &plan, &path, |_| NoPrefetcher, &Pool::new(4));
    assert!(serial.is_err() && parallel.is_err());
    assert_eq!(
        format!("{}", parallel.unwrap_err()),
        format!("{}", serial.unwrap_err()),
        "parallel driver surfaces the same error the serial driver hits"
    );
    std::fs::remove_file(&path).ok();
}
