//! End-to-end exercise of the `pifd` building blocks in-process: a real
//! TCP listener speaking `piflab/1`, a bounded-queue [`Service`], and
//! clients submitting sweeps concurrently. The CI smoke shard and the
//! soak test drive the same path through the `piflab` binary; this test
//! keeps the library layer honest without spawning processes.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::AtomicBool;

use pif_lab::json::Json;
use pif_lab::protocol::{serve, Request, Response};
use pif_lab::report::validate_report;
use pif_lab::service::{Service, ServiceConfig};
use pif_lab::{registry, run_spec, RunOptions, Scale};

fn exchange(stream: &TcpStream, request: &Request) -> Response {
    let mut writer = stream.try_clone().unwrap();
    writer.write_all(request.to_line().as_bytes()).unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    BufReader::new(stream.try_clone().unwrap())
        .read_line(&mut line)
        .unwrap();
    Response::parse(&line).unwrap()
}

#[test]
fn daemon_round_trip_over_tcp() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let service = Service::start(ServiceConfig {
        queue_depth: 4,
        threads: 2,
        cache_dir: None,
        ..ServiceConfig::default()
    });
    let shutdown = AtomicBool::new(false);

    std::thread::scope(|s| {
        let server = s.spawn(|| serve(listener, &service, &shutdown).unwrap());

        // Three concurrent clients: ping, then submit, then check bytes.
        let mut clients = Vec::new();
        for _ in 0..3 {
            clients.push(s.spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                assert_eq!(exchange(&stream, &Request::Ping), Response::Pong);
                let response = exchange(
                    &stream,
                    &Request::Submit {
                        id: 7,
                        spec: "table1".to_string(),
                        scale: Scale::tiny(),
                        smoke: true,
                        deadline_ms: None,
                    },
                );
                let Response::Report {
                    request_id,
                    spec,
                    json,
                    ..
                } = response
                else {
                    panic!("expected report, got {response:?}");
                };
                assert_eq!(request_id, 7, "submit id must echo back");
                assert_eq!(spec, "table1");
                json
            }));
        }
        let reports: Vec<String> = clients.into_iter().map(|c| c.join().unwrap()).collect();

        // Every client got valid, identical bytes — and they match a
        // direct local run of the same job.
        let direct = run_spec(
            &registry::table1(),
            &RunOptions::new().scale(Scale::tiny()).smoke(true),
        )
        .to_json()
        .unwrap();
        for json in &reports {
            validate_report(&Json::parse(json).unwrap()).unwrap();
            assert_eq!(json, &direct, "daemon bytes must equal local run");
        }

        // Unknown specs come back as errors with the candidate list, and
        // the connection stays usable.
        let stream = TcpStream::connect(addr).unwrap();
        let response = exchange(
            &stream,
            &Request::Submit {
                id: 9,
                spec: "not-a-spec".to_string(),
                scale: Scale::tiny(),
                smoke: true,
                deadline_ms: None,
            },
        );
        let Response::Error {
            kind,
            retryable,
            request_id,
            message,
            candidates,
        } = response
        else {
            panic!("expected error, got {response:?}");
        };
        assert_eq!(kind, "unknown_spec");
        assert!(!retryable, "an unknown spec can never succeed on retry");
        assert_eq!(request_id, 9, "error frames must echo the submit id");
        assert!(message.contains("unknown spec"), "{message}");
        assert_eq!(candidates.len(), registry::all_specs().len());

        match exchange(&stream, &Request::Stats) {
            Response::Stats {
                submitted,
                completed,
                ..
            } => {
                assert_eq!(submitted, 3);
                assert_eq!(completed, 3);
            }
            other => panic!("expected stats, got {other:?}"),
        }

        // A protocol shutdown stops the serve loop.
        assert_eq!(
            exchange(&stream, &Request::Shutdown),
            Response::ShuttingDown
        );
        server.join().unwrap();
    });

    let stats = service.shutdown();
    assert_eq!(stats.completed, 3);
}

#[test]
fn malformed_frames_get_errors_not_disconnects() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let service = Service::start(ServiceConfig {
        queue_depth: 2,
        threads: 1,
        cache_dir: None,
        ..ServiceConfig::default()
    });
    let shutdown = AtomicBool::new(false);

    std::thread::scope(|s| {
        let server = s.spawn(|| serve(listener, &service, &shutdown).unwrap());
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());

        for bad in ["not json at all\n", "{\"cmd\": \"ping\"}\n"] {
            writer.write_all(bad.as_bytes()).unwrap();
            writer.flush().unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            match Response::parse(&line).unwrap() {
                Response::Error {
                    kind, retryable, ..
                } => {
                    assert_eq!(kind, "bad_request");
                    assert!(!retryable);
                }
                other => panic!("expected error for {bad:?}, got {other:?}"),
            }
        }
        // Still alive afterwards.
        assert_eq!(exchange(&stream, &Request::Ping), Response::Pong);
        assert_eq!(
            exchange(&stream, &Request::Shutdown),
            Response::ShuttingDown
        );
        server.join().unwrap();
    });
    service.shutdown();
}
