//! The result cache's two contracts:
//!
//! 1. **Key injectivity** — two cells with different configuration
//!    blocks (names, kinds, values, order) can never share a canonical
//!    identity string, so they can never share a cache key (proptested).
//! 2. **Byte-identical replay** — a warm-cache `run_spec` performs zero
//!    engine runs (proven by the `jobs_executed` counting hook) yet
//!    serializes to exactly the bytes of the cold run that populated the
//!    cache, and of a cache-free run.

use std::path::PathBuf;

use pif_lab::cache::{cell_fingerprint, config_block_canon};
use pif_lab::json::fmt_f64;
use pif_lab::{registry, run_spec_stats, Metric, ResultCache, RunOptions, Scale};
use proptest::prelude::*;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pif-lab-cache-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The warm-replay contract, end to end. One test (not several) because
/// `jobs_executed` is a process-wide counter: running the cold and warm
/// sweeps in a single sequence keeps other tests in this binary from
/// perturbing the deltas we assert on.
#[test]
fn warm_cache_rerun_is_byte_identical_with_zero_engine_runs() {
    let dir = tmpdir("warm");
    let cache = ResultCache::open(&dir).unwrap();
    let spec = registry::fig10();
    let base = RunOptions::new()
        .scale(Scale::tiny())
        .threads(4)
        .smoke(true);

    // Reference: no cache involved at all.
    let (reference, _) = run_spec_stats(&spec, &base);
    let reference_json = reference.to_json().unwrap();

    // Cold run populates the cache — every cell executes.
    let cached_opts = base.clone().cache(&cache);
    let (cold, cold_stats) = run_spec_stats(&spec, &cached_opts);
    assert_eq!(cold_stats.executed_cells, spec.grid_len());
    assert_eq!(cold_stats.cached_cells, 0);
    assert_eq!(cache.entries().unwrap(), spec.grid_len());
    assert_eq!(cold.to_json().unwrap(), reference_json);

    // Warm run answers everything from disk: zero jobs reach the
    // measurement layer, and the report bytes are untouched.
    let before = pif_lab::jobs_executed();
    let (warm, warm_stats) = run_spec_stats(&spec, &cached_opts);
    let executed_during_warm = pif_lab::jobs_executed() - before;
    assert_eq!(executed_during_warm, 0, "warm cache must not simulate");
    assert_eq!(warm_stats.cached_cells, spec.grid_len());
    assert_eq!(warm_stats.executed_cells, 0);
    assert_eq!(warm.to_json().unwrap(), reference_json);

    // Partial warmth: clearing the store re-simulates everything (the
    // mixed case is exercised by the service soak test).
    cache.clear().unwrap();
    let (refilled, refill_stats) = run_spec_stats(&spec, &cached_opts);
    assert_eq!(refill_stats.executed_cells, spec.grid_len());
    assert_eq!(refilled.to_json().unwrap(), reference_json);

    let _ = std::fs::remove_dir_all(&dir);
}

/// A different scale must address different entries, not hit stale ones.
#[test]
fn scale_change_misses_the_cache() {
    let dir = tmpdir("scale");
    let cache = ResultCache::open(&dir).unwrap();
    let spec = registry::table1();
    let tiny = RunOptions::new()
        .scale(Scale::tiny())
        .threads(2)
        .smoke(true)
        .cache(&cache);
    let quick = RunOptions::new()
        .scale(Scale::quick())
        .threads(2)
        .smoke(true)
        .cache(&cache);
    let (_, first) = run_spec_stats(&spec, &tiny);
    assert_eq!(first.cached_cells, 0);
    let (_, second) = run_spec_stats(&spec, &quick);
    assert_eq!(
        second.cached_cells, 0,
        "quick scale must not reuse tiny cells"
    );
    let (_, third) = run_spec_stats(&spec, &tiny);
    assert_eq!(third.executed_cells, 0, "tiny entries still valid");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every cell of every committed spec has a distinct fingerprint — the
/// registry-level consequence of key injectivity.
#[test]
fn committed_grids_have_distinct_cell_fingerprints() {
    let scale = Scale::tiny();
    for spec in registry::all_specs() {
        let names = spec.workload_names();
        let mut seen = std::collections::HashSet::new();
        for coord in spec.jobs() {
            let fp = cell_fingerprint(&spec, &scale, &names[coord.workload], coord);
            assert!(
                seen.insert(fp),
                "{}: duplicate fingerprint at cell {}",
                spec.name,
                coord.index
            );
        }
    }
}

/// The single `.json` entry file under the cache's versioned root.
fn only_entry_file(root: &std::path::Path) -> PathBuf {
    let mut found = Vec::new();
    for shard in std::fs::read_dir(root).unwrap() {
        let shard = shard.unwrap().path();
        if shard.is_dir() {
            for entry in std::fs::read_dir(shard).unwrap() {
                found.push(entry.unwrap().path());
            }
        }
    }
    assert_eq!(found.len(), 1, "expected exactly one entry, got {found:?}");
    found.remove(0)
}

/// Torn-write robustness (crash-mid-write simulation): an entry
/// truncated at **every** byte offset must either replay the exact
/// stored metrics (a prefix that is still a valid document) or miss and
/// quarantine — and must never panic the lookup path.
#[test]
fn truncated_entries_at_every_offset_replay_exactly_or_quarantine() {
    let dir = tmpdir("torn");
    let cache = ResultCache::open(&dir).unwrap();
    let key = pif_lab::CacheKey {
        trace_hash: 0xabc,
        config_fp: 0xdef,
    };
    let metrics = vec![
        ("uipc".to_string(), Metric::F64(1.5)),
        ("misses".to_string(), Metric::U64(42)),
    ];
    cache.store(&key, &metrics).unwrap();
    let path = only_entry_file(cache.root());
    let full = std::fs::read(&path).unwrap();

    let mut hits = 0u64;
    for len in 0..full.len() {
        std::fs::write(&path, &full[..len]).unwrap();
        match cache.lookup(&key) {
            Some(got) => {
                assert_eq!(
                    got, metrics,
                    "a hit on a {len}-byte truncation must be byte-equivalent"
                );
                hits += 1;
            }
            None => {
                // The damaged file must be quarantined, not left in
                // place to be re-read (and re-failed) forever.
                assert!(!path.exists(), "offset {len}: corrupt entry left in place");
            }
        }
        // Restore a pristine entry for the next offset.
        cache.store(&key, &metrics).unwrap();
    }
    let stats = cache.stats();
    assert_eq!(
        stats.corrupt, stats.quarantined,
        "every corrupt truncation must quarantine"
    );
    assert_eq!(stats.corrupt + hits, full.len() as u64);
    assert!(stats.quarantined > 0, "most truncations must be corrupt");

    // After all that damage the cache still round-trips normally.
    assert_eq!(cache.lookup(&key).unwrap(), metrics);
    let _ = std::fs::remove_dir_all(&dir);
}

fn entry_name() -> impl Strategy<Value = String> {
    "[a-z_][a-z0-9_]{0,11}"
}

fn metric() -> impl Strategy<Value = Metric> {
    (any::<u64>(), 0u8..2).prop_map(|(bits, kind)| match kind {
        0 => Metric::U64(bits),
        _ => {
            let v = f64::from_bits(bits);
            Metric::F64(if v.is_finite() { v } else { bits as f64 })
        }
    })
}

fn config_block() -> impl Strategy<Value = Vec<(String, Metric)>> {
    proptest::collection::vec((entry_name(), metric()), 1..12)
}

/// Two blocks are equal iff names, kinds, and *exact rendered tokens*
/// match pairwise in order — the equivalence the canonical encoding must
/// respect on both sides.
fn blocks_equal(a: &[(String, Metric)], b: &[(String, Metric)]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|((an, am), (bn, bm))| {
            an == bn
                && match (am, bm) {
                    (Metric::U64(x), Metric::U64(y)) => x == y,
                    (Metric::F64(x), Metric::F64(y)) => fmt_f64(*x) == fmt_f64(*y),
                    _ => false,
                }
        })
}

proptest! {
    /// Injectivity: distinct config blocks get distinct canonical strings
    /// and distinct fingerprint inputs; equal blocks get equal ones.
    #[test]
    fn config_canon_is_injective(a in config_block(), b in config_block()) {
        let (ca, cb) = (config_block_canon(&a), config_block_canon(&b));
        if blocks_equal(&a, &b) {
            prop_assert_eq!(ca, cb);
        } else {
            prop_assert_ne!(&ca, &cb, "distinct blocks must encode apart");
            // The full identity string is what gets hashed; a 64-bit
            // collision between two *specific* distinct strings would be
            // astronomically unlikely and indicates a hashing bug here.
            prop_assert_ne!(
                pif_trace::hash::fnv1a_64_once(ca.as_bytes()),
                pif_trace::hash::fnv1a_64_once(cb.as_bytes())
            );
        }
    }

    /// Single-entry perturbations — rename, kind flip, value nudge,
    /// entry split — all change the encoding.
    #[test]
    fn config_canon_detects_single_entry_drift(
        block in config_block(),
        pick in any::<u64>(),
        bump in 1u64..1000,
    ) {
        let i = (pick % block.len() as u64) as usize;
        let base = config_block_canon(&block);

        let mut renamed = block.clone();
        renamed[i].0.push('x');
        prop_assert_ne!(&base, &config_block_canon(&renamed));

        let mut flipped = block.clone();
        flipped[i].1 = match flipped[i].1 {
            Metric::U64(v) => Metric::F64(v as f64),
            Metric::F64(v) => Metric::U64(v.to_bits()),
        };
        prop_assert_ne!(&base, &config_block_canon(&flipped));

        let mut nudged = block.clone();
        nudged[i].1 = match nudged[i].1 {
            Metric::U64(v) => Metric::U64(v.wrapping_add(bump)),
            Metric::F64(v) => Metric::F64(f64::from_bits(v.to_bits().wrapping_add(bump))),
        };
        // A nudge that lands on a non-finite float would be rejected
        // upstream of the cache; only assert on finite drift.
        let nudge_is_finite = match nudged[i].1 {
            Metric::F64(v) => v.is_finite(),
            Metric::U64(_) => true,
        };
        if nudge_is_finite {
            prop_assert_ne!(&base, &config_block_canon(&nudged));
        }

        let mut split = block.clone();
        let (name, m) = split[i].clone();
        split[i] = (name.clone(), m);
        split.insert(i + 1, (name, Metric::U64(0)));
        prop_assert_ne!(&base, &config_block_canon(&split), "extra entry must show");
    }
}
