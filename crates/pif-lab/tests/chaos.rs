//! Chaos soak: the PR-6 service soak re-run under a seeded fault plan
//! that injects at every `pif-lab` failpoint. Compiled only with
//! `--features fail-inject`; CI's chaos shard runs it.
//!
//! The acceptance criteria, from the ISSUE:
//!
//! 1. the daemon drains cleanly — no deadlock, no abort, every client
//!    thread finishes;
//! 2. every report a client *does* receive is byte-identical to a
//!    direct `run_spec` of the same job (faults fail closed, they never
//!    corrupt results);
//! 3. every injected fault surfaces as a typed error — a known error
//!    frame kind on the wire, or a dropped connection the client's
//!    retry loop recovers from — never a hang or a garbled frame.

#![cfg(feature = "fail-inject")]

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use pif_fail::{FailAction, FailPlan, SiteRule};
use pif_lab::json::Json;
use pif_lab::protocol::{serve, Request, Response};
use pif_lab::report::validate_report;
use pif_lab::service::{JobError, Service, ServiceConfig, SweepJob};
use pif_lab::{registry, run_spec, ResultCache, RunOptions, Scale};

/// The active fail plan is process-global; serialize the tests.
static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    match SERIAL.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Error-frame kinds a chaos client may legitimately see.
const KNOWN_KINDS: &[&str] = &["rejected", "deadline_exceeded", "worker_panicked", "failed"];

fn rule(p: f64) -> SiteRule {
    SiteRule {
        action: FailAction::Error,
        probability: p,
        max_fires: None,
    }
}

/// Faults at every service-path site. Probabilities are tuned so most
/// submissions eventually succeed within the retry budget while every
/// site still fires during the soak.
fn chaos_plan(seed: u64) -> FailPlan {
    FailPlan::new(seed)
        .site("cache.store.write", rule(0.3))
        .site("cache.lookup.read", rule(0.3))
        // Evaluated once per job (a dozen-odd times a soak), so it
        // needs a high probability to be certain to fire.
        .site("service.job.exec", rule(0.5))
        .site("proto.read.frame", rule(0.10))
        .site("proto.write.frame", rule(0.10))
}

/// One submit with reconnect-and-retry: injected connection drops and
/// retryable error frames get another attempt; terminal typed errors
/// are returned as their kind.
fn chaos_submit(addr: std::net::SocketAddr, spec: &str, attempts: u32) -> Result<String, String> {
    let mut last = String::from("no attempt made");
    for _ in 0..attempts {
        let Ok(stream) = TcpStream::connect(addr) else {
            last = "connect refused".to_string();
            continue;
        };
        let request = Request::Submit {
            id: 1,
            spec: spec.to_string(),
            scale: Scale::tiny(),
            smoke: true,
            deadline_ms: None,
        };
        let mut writer = stream.try_clone().unwrap();
        let mut line = String::new();
        let exchanged = writer
            .write_all(request.to_line().as_bytes())
            .and_then(|()| writer.flush())
            .and_then(|()| BufReader::new(stream).read_line(&mut line));
        match exchanged {
            Ok(0) | Err(_) => {
                // The daemon dropped the connection (an injected proto
                // fault): reconnect and resubmit.
                last = "connection dropped".to_string();
                continue;
            }
            Ok(_) => {}
        }
        // A garbled frame would be a real failure: faults must surface
        // as typed errors or dropped connections, never as bad bytes.
        match Response::parse(&line).expect("frames stay well-formed under chaos") {
            Response::Report { json, .. } => return Ok(json),
            Response::Error {
                kind, retryable, ..
            } => {
                assert!(
                    KNOWN_KINDS.contains(&kind.as_str()),
                    "unknown error kind {kind:?}"
                );
                if !retryable {
                    return Err(kind);
                }
                last = format!("retryable {kind}");
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    Err(format!("retry budget exhausted ({last})"))
}

#[test]
fn chaos_soak_drains_cleanly_with_byte_identical_reports() {
    let _serial = lock();
    const CLIENTS: usize = 3;
    const ROUNDS: usize = 2;

    let cache_dir = std::env::temp_dir().join(format!("pif-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);

    // Reference bytes, computed before any fault is armed.
    let specs = [registry::table1(), registry::fig10()];
    let reference: Vec<(String, String)> = specs
        .iter()
        .map(|spec| {
            let report = run_spec(
                spec,
                &RunOptions::new()
                    .scale(Scale::tiny())
                    .threads(2)
                    .smoke(true),
            );
            (spec.name.to_string(), report.to_json().unwrap())
        })
        .collect();

    pif_fail::install(&chaos_plan(0xC4A0_5EED));

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let service = Service::start(ServiceConfig {
        queue_depth: 4,
        threads: 2,
        workers: 2,
        cache_dir: Some(cache_dir.clone()),
        ..ServiceConfig::default()
    });
    let shutdown = AtomicBool::new(false);

    let (successes, typed_failures) = std::thread::scope(|s| {
        let server = s.spawn(|| serve(listener, &service, &shutdown).unwrap());
        let reference = &reference;
        let clients: Vec<_> = (0..CLIENTS)
            .map(|client| {
                s.spawn(move || {
                    let mut ok = 0u64;
                    let mut failed = 0u64;
                    for round in 0..ROUNDS {
                        let (name, want) = &reference[(client + round) % reference.len()];
                        match chaos_submit(addr, name, 40) {
                            Ok(json) => {
                                validate_report(&Json::parse(&json).unwrap()).unwrap();
                                assert_eq!(
                                    &json, want,
                                    "client {client} round {round}: {name} bytes drifted under chaos"
                                );
                                ok += 1;
                            }
                            Err(kind) => {
                                assert!(
                                    kind == "failed" || kind.starts_with("retry budget"),
                                    "client {client}: unexpected terminal failure {kind:?}"
                                );
                                failed += 1;
                            }
                        }
                    }
                    (ok, failed)
                })
            })
            .collect();
        let mut ok = 0u64;
        let mut failed = 0u64;
        for c in clients {
            let (o, f) = c.join().expect("no client may deadlock or die");
            ok += o;
            failed += f;
        }
        shutdown.store(true, Ordering::SeqCst);
        server.join().unwrap();
        (ok, failed)
    });

    let fired: Vec<String> = pif_fail::stats()
        .into_iter()
        .filter(|s| s.fires > 0)
        .map(|s| s.site)
        .collect();
    pif_fail::clear();

    let stats = service.shutdown();
    assert_eq!(
        successes + typed_failures,
        (CLIENTS * ROUNDS) as u64,
        "every submission must resolve"
    );
    assert!(successes > 0, "chaos must not starve every client");
    assert!(
        fired.iter().any(|s| s.starts_with("cache."))
            && fired.iter().any(|s| s.starts_with("service.")),
        "the plan must actually fire across layers, fired: {fired:?}"
    );
    assert!(stats.completed > 0);

    // Faults never corrupt the store: whatever entries survived the
    // soak all verify.
    let cache = ResultCache::open(&cache_dir).unwrap();
    let (_valid, corrupt) = cache.verify_entries().unwrap();
    assert_eq!(corrupt, 0, "injected faults must never corrupt entries");

    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn injected_worker_panic_quarantines_the_job_and_restarts_the_worker() {
    let _serial = lock();
    pif_fail::install(&FailPlan::new(7).site(
        "service.worker.panic",
        SiteRule {
            action: FailAction::Panic,
            probability: 1.0,
            max_fires: Some(1),
        },
    ));
    let service = Service::start(ServiceConfig {
        queue_depth: 4,
        threads: 1,
        workers: 1,
        cache_dir: None,
        ..ServiceConfig::default()
    });

    let job = || SweepJob::new(registry::table1(), Scale::tiny()).smoke(true);
    let err = service.submit(job()).unwrap().wait().unwrap_err();
    assert!(
        matches!(err, JobError::WorkerPanicked { .. }),
        "expected quarantine, got {err:?}"
    );
    assert!(err.retryable(), "a panicked worker is worth a resubmit");

    // The supervisor restarted the pool: the next job runs to completion.
    service
        .submit(job())
        .unwrap()
        .wait()
        .expect("restarted worker must serve jobs");

    pif_fail::clear();
    let stats = service.shutdown();
    assert_eq!(stats.quarantined, 1);
    assert!(stats.worker_restarts >= 1);
    assert_eq!(stats.completed, 2, "both jobs resolved");
}

#[test]
fn injected_slow_job_trips_the_deadline_watchdog() {
    let _serial = lock();
    pif_fail::install(&FailPlan::new(7).site(
        "service.job.run",
        SiteRule {
            action: FailAction::Delay(Duration::from_millis(300)),
            probability: 1.0,
            max_fires: Some(1),
        },
    ));
    let service = Service::start(ServiceConfig {
        queue_depth: 4,
        threads: 1,
        workers: 1,
        cache_dir: None,
        ..ServiceConfig::default()
    });

    let slow = SweepJob::new(registry::table1(), Scale::tiny())
        .smoke(true)
        .deadline(Some(Duration::from_millis(40)));
    let err = service.submit(slow).unwrap().wait().unwrap_err();
    match err {
        JobError::DeadlineExceeded { deadline_ms } => assert_eq!(deadline_ms, 40),
        other => panic!("expected deadline error, got {other:?}"),
    }

    // The watchdog freed the queue without waiting for the stuck run:
    // an undeadlined job completes right after.
    service
        .submit(SweepJob::new(registry::table1(), Scale::tiny()).smoke(true))
        .unwrap()
        .wait()
        .expect("queue must not be blocked by an expired job");

    pif_fail::clear();
    let stats = service.shutdown();
    assert_eq!(stats.deadline_exceeded, 1);
}

#[test]
fn injected_store_faults_degrade_to_uncached_runs() {
    let _serial = lock();
    let dir = std::env::temp_dir().join(format!("pif-chaos-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = registry::table1();
    let opts = RunOptions::new()
        .scale(Scale::tiny())
        .threads(2)
        .smoke(true);
    let reference = run_spec(&spec, &opts).to_json().unwrap();

    pif_fail::install(
        &FailPlan::new(3).site("cache.store.write", SiteRule::always(FailAction::Error)),
    );
    let cache = ResultCache::open(&dir).unwrap();
    let cached_opts = opts.clone().cache(&cache);
    let report = run_spec(&spec, &cached_opts);
    pif_fail::clear();

    assert_eq!(
        report.to_json().unwrap(),
        reference,
        "store faults must not change results"
    );
    assert_eq!(
        cache.entries().unwrap(),
        0,
        "every injected store failure must leave the store empty"
    );

    // With the fault gone the same cache fills and replays normally.
    let report = run_spec(&spec, &cached_opts);
    assert_eq!(report.to_json().unwrap(), reference);
    assert_eq!(cache.entries().unwrap(), spec.grid_len());
    let _ = std::fs::remove_dir_all(&dir);
}
