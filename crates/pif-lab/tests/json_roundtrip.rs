//! Property tests for the `pif-lab-sweep/v1` JSON emitter/parser pair:
//! whatever the emitter accepts, the parser must recover exactly — for
//! arbitrary metric names needing escapes and extreme-but-finite floats —
//! and whatever is not representable (NaN/Inf) must be rejected **at emit
//! time**, never silently serialized.

use pif_lab::json::Json;
use pif_lab::report::{validate_report, Cell, Metric, SweepReport};
use pif_lab::Scale;
use proptest::prelude::*;

fn report_with_metrics(metrics: Vec<(String, Metric)>) -> SweepReport {
    SweepReport {
        spec: "prop".into(),
        title: "proptest grid".into(),
        smoke: true,
        scale: Scale::tiny(),
        tolerance: 1e-9,
        workloads: vec!["OLTP-DB2".into()],
        prefetchers: vec![],
        axis: "unit".into(),
        points: vec!["-".into()],
        config: vec![("icache_capacity_bytes".into(), Metric::U64(65536))],
        cells: vec![Cell {
            index: 0,
            workload: "OLTP-DB2".into(),
            prefetcher: None,
            point: "-".into(),
            metrics,
        }],
    }
}

/// Extreme finite floats the shortest-round-trip formatter must survive:
/// subnormals, the extremes, negative zero, and fine-grained fractions.
fn finite_f64() -> impl Strategy<Value = f64> {
    (any::<u64>(), 0u8..8).prop_map(|(bits, pick)| {
        let raw = f64::from_bits(bits);
        match pick {
            0 => f64::MIN_POSITIVE,
            1 => f64::MAX,
            2 => f64::MIN,
            3 => -0.0,
            4 => f64::MIN_POSITIVE / 8.0, // subnormal
            5 => (bits as f64) / 7.0,
            _ => {
                if raw.is_finite() {
                    raw
                } else {
                    (bits >> 12) as f64 * 1e-30
                }
            }
        }
    })
}

/// Metric names that stress the string escaper: quotes, backslashes,
/// control characters, unicode, and plain identifiers.
fn metric_name() -> impl Strategy<Value = String> {
    // The vendored proptest supports `[class]{m,n}` patterns; the class
    // below includes the JSON-special characters (escaped per Rust string
    // syntax) plus unicode.
    "[a-zA-Z0-9_\"\\\n\t\r é☃/.{}-]{1,24}"
}

proptest! {
    /// Finite metrics of any name round-trip exactly through
    /// to_json -> parse, bit for bit.
    #[test]
    fn emitter_and_parser_roundtrip_exactly(
        names in proptest::collection::vec(metric_name(), 0..8),
        values in proptest::collection::vec(finite_f64(), 0..8),
        counters in proptest::collection::vec(any::<u64>(), 0..4),
    ) {
        let mut metrics: Vec<(String, Metric)> = Vec::new();
        for (i, (name, v)) in names.iter().zip(&values).enumerate() {
            // Deduplicate names positionally: JSON objects with repeated
            // keys are legal to emit but ambiguous to compare.
            metrics.push((format!("{i}_{name}"), Metric::F64(*v)));
        }
        for (i, c) in counters.iter().enumerate() {
            metrics.push((format!("c{i}"), Metric::U64(*c)));
        }
        let report = report_with_metrics(metrics.clone());
        let json = report.to_json().expect("finite report must emit");
        let parsed = Json::parse(&json).expect("emitted JSON must parse");
        validate_report(&parsed).expect("emitted JSON must validate");

        let cell = &parsed.get("cells").unwrap().as_arr().unwrap()[0];
        let parsed_metrics = cell.get("metrics").unwrap().as_obj().unwrap();
        prop_assert_eq!(parsed_metrics.len(), metrics.len());
        for ((name, metric), (pname, pvalue)) in metrics.iter().zip(parsed_metrics) {
            prop_assert_eq!(name, pname, "names survive escaping");
            let got = pvalue.as_f64().expect("metric is a number");
            match metric {
                // Counters above 2^53 lose precision through f64 — the
                // parser's number type — so compare through the same cast.
                Metric::U64(v) => prop_assert_eq!(got, *v as f64),
                Metric::F64(v) => prop_assert_eq!(
                    got.to_bits(), v.to_bits(),
                    "float {} must round-trip exactly", v
                ),
            }
        }
    }

    /// NaN and infinities anywhere in the metrics abort the emit with the
    /// metric named — no artifact is produced.
    #[test]
    fn nonfinite_metrics_always_rejected(
        bits in any::<u64>(),
        name in metric_name(),
        kind in 0u8..3,
    ) {
        let bad = match kind {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            _ => unreachable!(),
        };
        // Mix a finite metric in so rejection is clearly about the bad one.
        let fine = f64::from_bits(bits);
        let mut metrics = vec![("ok".to_string(), Metric::F64(if fine.is_finite() { fine } else { 1.0 }))];
        metrics.push((name, Metric::F64(bad)));
        let report = report_with_metrics(metrics);
        let err = report.to_json().expect_err("non-finite must be rejected at emit time");
        prop_assert!(err.contains("non-finite"), "error names the cause: {}", err);
        prop_assert!(report.check_finite().is_err());
    }
}
